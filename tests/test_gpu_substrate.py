"""Unit tests for the simulated GPU substrate: device, calibration, PCIe."""

import dataclasses

import pytest

from repro.gpu.calibration import Calibration, DEFAULT_CALIBRATION
from repro.gpu.device import A100, DeviceSpec, RTX3090
from repro.gpu.pcie import (
    NVLINK2,
    PCIE3,
    PCIE4,
    PCIeSpec,
    interconnect_by_name,
)


class TestDeviceSpec:
    def test_presets_sane(self):
        for spec in (RTX3090, A100):
            assert spec.total_cores == spec.num_sms * spec.cores_per_sm
            assert spec.mem_bytes > spec.l2_bytes > 0

    def test_cycles_to_seconds(self):
        assert RTX3090.cycles_to_seconds(RTX3090.clock_hz) == pytest.approx(1.0)

    def test_with_memory(self):
        capped = A100.with_memory(1 << 30)
        assert capped.mem_bytes == 1 << 30
        assert capped.num_sms == A100.num_sms

    def test_invalid_specs(self):
        with pytest.raises(ValueError):
            dataclasses.replace(RTX3090, num_sms=0)
        with pytest.raises(ValueError):
            dataclasses.replace(RTX3090, clock_hz=0)
        with pytest.raises(ValueError):
            dataclasses.replace(RTX3090, mem_bytes=0)


class TestCalibration:
    def test_default_validates(self):
        DEFAULT_CALIBRATION.validate()

    def test_sim_scale_scales_fixed_costs(self):
        cal = Calibration(sim_scale=0.5)
        assert cal.scaled_kernel_launch_seconds == pytest.approx(
            cal.kernel_launch_seconds / 2
        )
        assert cal.scaled_memcpy_call_seconds == pytest.approx(
            cal.memcpy_call_seconds / 2
        )

    def test_invalid_sim_scale(self):
        with pytest.raises(ValueError):
            Calibration(sim_scale=0.0).validate()
        with pytest.raises(ValueError):
            Calibration(sim_scale=2.0).validate()

    def test_invalid_fractions(self):
        with pytest.raises(ValueError):
            Calibration(zero_copy_bandwidth_fraction=0.0).validate()
        with pytest.raises(ValueError):
            Calibration(random_access_efficiency=1.5).validate()

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            Calibration(kernel_launch_seconds=-1.0).validate()


class TestPCIe:
    def test_explicit_copy_bandwidth(self):
        # 128 "MB" over PCIe3 at 12 GB/s: the paper's ~10.4 ms anchor.
        t = PCIE3.explicit_copy_time(128 * (1 << 20))
        assert t == pytest.approx(128 * (1 << 20) / 12e9 + PCIE3.latency_seconds)
        assert 0.010 < t < 0.012

    def test_explicit_copy_zero_bytes(self):
        assert PCIE3.explicit_copy_time(0) == 0.0

    def test_explicit_copy_negative(self):
        with pytest.raises(ValueError):
            PCIE3.explicit_copy_time(-1)

    def test_pcie4_doubles_bandwidth(self):
        big = 1 << 26
        assert PCIE4.explicit_copy_time(big) < PCIE3.explicit_copy_time(big)
        assert PCIE4.bandwidth == pytest.approx(2 * PCIE3.bandwidth)

    def test_zero_copy_rounds_to_cachelines(self):
        cal = DEFAULT_CALIBRATION
        one_byte = PCIE3.zero_copy_time(1, cal)
        full_line = PCIE3.zero_copy_time(cal.cacheline_bytes, cal)
        assert one_byte == pytest.approx(full_line)
        two_lines = PCIE3.zero_copy_time(cal.cacheline_bytes + 1, cal)
        assert two_lines == pytest.approx(2 * full_line)

    def test_zero_copy_slower_than_dma_per_byte(self):
        nbytes = 1 << 20
        assert PCIE3.zero_copy_time(nbytes) > nbytes / PCIE3.bandwidth

    def test_zero_copy_zero_bytes(self):
        assert PCIE3.zero_copy_time(0) == 0.0

    def test_lookup_by_name(self):
        assert interconnect_by_name("pcie3") is PCIE3
        assert interconnect_by_name("nvlink2") is NVLINK2
        with pytest.raises(KeyError, match="unknown interconnect"):
            interconnect_by_name("pcie5")

    def test_invalid_spec(self):
        with pytest.raises(ValueError):
            PCIeSpec(name="bad", bandwidth=0)
        with pytest.raises(ValueError):
            PCIeSpec(name="bad", bandwidth=1e9, latency_seconds=-1)

    def test_nvlink_fastest(self):
        nbytes = 1 << 26
        assert NVLINK2.explicit_copy_time(nbytes) < PCIE4.explicit_copy_time(
            nbytes
        )
