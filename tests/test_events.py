"""Tests for CUDA-event-like synchronization primitives."""

import pytest

from repro.gpu.events import Event, StreamGroup, elapsed_between
from repro.gpu.timeline import Stream, Timeline


class TestEvent:
    def test_records_completion_frontier(self):
        s = Stream("s")
        s.schedule(2.0, "op")
        event = Event(s)
        assert event.time == 2.0
        assert event.is_recorded

    def test_unrecorded_raises(self):
        event = Event()
        assert not event.is_recorded
        with pytest.raises(RuntimeError):
            event.time

    def test_wait_gates_dependent_stream(self):
        tl = Timeline()
        tl.load.schedule(5.0, "graph_load")
        event = Event(tl.load)
        start, __ = tl.compute.schedule(1.0, "k", earliest=event.wait())
        assert start == 5.0

    def test_re_record_updates(self):
        s = Stream("s")
        event = Event(s)
        assert event.time == 0.0
        s.schedule(3.0, "op")
        event.record(s)
        assert event.time == 3.0

    def test_query(self):
        s = Stream("s")
        s.schedule(2.0, "op")
        event = Event(s)
        assert event.query(2.0)
        assert not event.query(1.0)
        assert not Event().query(10.0)


class TestElapsed:
    def test_elapsed_between(self):
        s = Stream("s")
        start = Event(s)
        s.schedule(4.0, "op")
        end = Event(s)
        assert elapsed_between(start, end) == 4.0

    def test_reversed_raises(self):
        s = Stream("s")
        start = Event(s)
        s.schedule(1.0, "op")
        end = Event(s)
        with pytest.raises(ValueError):
            elapsed_between(end, start)


class TestStreamGroup:
    def test_synchronize_is_max(self):
        tl = Timeline()
        tl.load.schedule(7.0, "a")
        tl.compute.schedule(3.0, "b")
        group = StreamGroup(tl.streams)
        assert group.synchronize() == 7.0

    def test_barrier_gates_all_streams(self):
        tl = Timeline()
        tl.load.schedule(7.0, "a")
        tl.compute.schedule(3.0, "b")
        StreamGroup(tl.streams).barrier()
        start, __ = tl.compute.schedule(1.0, "c")
        assert start == 7.0  # compute may not run before the barrier

    def test_empty_group(self):
        with pytest.raises(ValueError):
            StreamGroup([])
