"""Tests for the engine event bus (repro.core.events)."""

import pytest

from repro.core.events import (
    EVENT_TYPES,
    SERVED_MODES,
    BatchEvicted,
    BatchLoaded,
    EventBus,
    GraphServed,
    IterationStarted,
    KernelDispatched,
    Reshuffled,
    RunCompleted,
    WalkFinished,
)


class TestSubscribe:
    def test_subscribe_and_emit(self):
        bus = EventBus()
        seen = []
        bus.subscribe(IterationStarted, seen.append)
        event = IterationStarted(iteration=1, partition=3, pending_walks=7)
        bus.emit(event)
        assert seen == [event]

    def test_emission_order_preserved(self):
        bus = EventBus()
        seen = []
        bus.subscribe(IterationStarted, seen.append)
        bus.subscribe(KernelDispatched, seen.append)
        events = [
            IterationStarted(1, 0),
            KernelDispatched(partition=0, walks=4, steps=4),
            IterationStarted(2, 1),
        ]
        for event in events:
            bus.emit(event)
        assert seen == events

    def test_handlers_run_in_subscription_order(self):
        bus = EventBus()
        order = []
        bus.subscribe(WalkFinished, lambda e: order.append("first"))
        bus.subscribe(WalkFinished, lambda e: order.append("second"))
        bus.emit(WalkFinished(partition=0, count=1))
        assert order == ["first", "second"]

    def test_only_matching_type_delivered(self):
        bus = EventBus()
        seen = []
        bus.subscribe(BatchLoaded, seen.append)
        bus.emit(BatchEvicted(partition=0, walks=8))
        bus.emit(BatchLoaded(partition=0, walks=8))
        assert [type(e) for e in seen] == [BatchLoaded]

    def test_subscribe_rejects_non_event_type(self):
        with pytest.raises(TypeError, match="not an EngineEvent"):
            EventBus().subscribe(int, print)

    def test_subscribe_rejects_non_callable(self):
        with pytest.raises(TypeError, match="callable"):
            EventBus().subscribe(IterationStarted, 42)

    def test_unsubscribe(self):
        bus = EventBus()
        seen = []
        handler = bus.subscribe(Reshuffled, seen.append)
        bus.unsubscribe(Reshuffled, handler)
        bus.emit(Reshuffled(partition=0, walks=2))
        assert seen == []
        assert not bus.active

    def test_unsubscribe_unknown_raises(self):
        with pytest.raises(KeyError):
            EventBus().unsubscribe(Reshuffled, print)


class TestNoSubscriberFastPath:
    def test_emit_without_subscribers_is_noop(self):
        bus = EventBus()
        bus.emit(RunCompleted(total_time=1.0))  # must not raise

    def test_wants_and_active(self):
        bus = EventBus()
        assert not bus.active
        assert not bus.wants(GraphServed)
        handler = bus.subscribe(GraphServed, lambda e: None)
        assert bus.active
        assert bus.wants(GraphServed)
        assert not bus.wants(RunCompleted)
        bus.unsubscribe(GraphServed, handler)
        assert not bus.active

    def test_emit_skips_handler_lists_of_other_types(self):
        bus = EventBus()
        calls = []
        bus.subscribe(IterationStarted, calls.append)
        bus.emit(RunCompleted(total_time=0.0))
        assert calls == []


class TestAttach:
    class Recorder:
        def __init__(self):
            self.events = []

        def on_iteration_started(self, event):
            self.events.append(event)

        def on_graph_served(self, event):
            self.events.append(event)

        def on_run_completed(self, event):
            self.events.append(event)

    def test_attach_binds_on_methods(self):
        bus = EventBus()
        recorder = bus.attach(self.Recorder())
        bus.emit(IterationStarted(1, 0))
        bus.emit(GraphServed(iteration=1, partition=0, mode="hit"))
        bus.emit(KernelDispatched(partition=0, walks=1, steps=1))  # unbound
        bus.emit(RunCompleted(total_time=2.0))
        assert [type(e).__name__ for e in recorder.events] == [
            "IterationStarted", "GraphServed", "RunCompleted",
        ]

    def test_attach_requires_a_handler(self):
        with pytest.raises(TypeError, match="no on_<event> handler"):
            EventBus().attach(object())

    def test_detach_removes_all_bound_handlers(self):
        bus = EventBus()
        recorder = bus.attach(self.Recorder())
        bus.detach(recorder)
        bus.emit(IterationStarted(1, 0))
        bus.emit(RunCompleted(total_time=0.0))
        assert recorder.events == []
        assert not bus.active

    def test_detach_leaves_other_subscribers(self):
        bus = EventBus()
        survivor = []
        bus.subscribe(IterationStarted, survivor.append)
        recorder = bus.attach(self.Recorder())
        bus.detach(recorder)
        bus.emit(IterationStarted(1, 0))
        assert len(survivor) == 1

    def test_every_event_type_is_attachable(self):
        bus = EventBus()

        class Everything:
            pass

        seen = []
        for event_type in EVENT_TYPES:
            name = "on_" + "".join(
                ("_" + c.lower()) if c.isupper() else c
                for c in event_type.__name__
            ).lstrip("_")
            setattr(Everything, name, lambda self, e, _s=seen: _s.append(e))
        bus.attach(Everything())
        bus.emit(IterationStarted(1, 0))
        bus.emit(BatchLoaded(partition=0, walks=1))
        bus.emit(WalkFinished(partition=0, count=1))
        assert len(seen) == 3


class TestEventShapes:
    def test_events_are_frozen(self):
        event = IterationStarted(1, 0)
        with pytest.raises(AttributeError):
            event.iteration = 2

    def test_served_modes(self):
        assert SERVED_MODES == ("hit", "explicit", "zero_copy")

    def test_run_completed_defaults(self):
        event = RunCompleted(total_time=1.5)
        assert event.breakdown == {}
        assert event.graph_pool_hits == 0
        assert event.finished_walks == 0
