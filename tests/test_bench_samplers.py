"""The `repro bench samplers` microbenchmark harness."""

import json

import numpy as np

from repro.bench import samplers as bench
from repro.cli import main


class TestRunBench:
    def test_quick_run_structure_and_parity(self):
        results = bench.run_bench(vertices=600, edge_factor=5, quick=True)
        assert results["alias_build"]["tables_bit_identical"]
        assert results["node2vec_step"]["acceptance_bit_identical"]
        assert results["checks"]["parity_ok"]
        assert results["checks"]["all_ok"]  # quick mode: parity gates only
        for entry in results["distribution_parity"].values():
            assert entry["ok"]
        rates = results["sampling_steps_per_second"]
        for name in ("uniform", "alias", "inverse", "rejection"):
            assert all(rate > 0 for rate in rates[name].values())

    def test_bench_graph_weights_are_integer_valued(self):
        g = bench.make_bench_graph(vertices=300, edge_factor=4)
        assert g.is_weighted
        assert np.array_equal(g.weights, np.floor(g.weights))
        assert (g.weights >= 1).all()

    def test_summary_mentions_speedups(self):
        results = bench.run_bench(vertices=400, edge_factor=4, quick=True)
        text = bench.format_summary(results)
        assert "alias build" in text
        assert "node2vec step" in text
        assert "parity" in text


class TestCLI:
    def test_bench_samplers_writes_json(self, tmp_path):
        out = tmp_path / "BENCH_samplers.json"
        code = main(
            [
                "bench", "samplers", "--quick",
                "--vertices", "500", "--edge-factor", "4",
                "--out", str(out),
            ]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["checks"]["parity_ok"]
        assert payload["config"]["quick"] is True

    def test_bench_samplers_stdout_only(self, capsys):
        code = main(
            [
                "bench", "samplers", "--quick",
                "--vertices", "400", "--edge-factor", "4",
                "--out", "-",
            ]
        )
        assert code == 0
        assert "sampler microbenchmark" in capsys.readouterr().out
