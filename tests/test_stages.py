"""Isolation tests for the engine's pipeline stages (repro.core.stages)."""

import numpy as np
import pytest

from repro.algorithms import PageRank
from repro.core.config import COPY_EXPLICIT, COPY_ZERO
from repro.core.engine import LightTrafficEngine
from repro.core.events import (
    SERVED_EXPLICIT,
    SERVED_HIT,
    SERVED_ZERO_COPY,
    BatchEvicted,
    BatchLoaded,
    EventBus,
    GraphServed,
    KernelDispatched,
    Reshuffled,
    WalkFinished,
)
from repro.core.stages import (
    ComputeDispatcher,
    GraphServer,
    PreemptiveDispatcher,
    WalkLoader,
)
from repro.core.stats import CAT_GRAPH_LOAD, CAT_WALK_LOAD


def build_ctx(graph, config, num_walks=96, length=4):
    """A seeded StageContext plus an event recorder, no engine loop."""
    engine = LightTrafficEngine(graph, PageRank(length=length), config)
    bus = EventBus()
    ctx = engine._build_context(num_walks, bus)
    engine._seed_walks(ctx, num_walks)
    events = []
    for event_type in (
        GraphServed, BatchLoaded, KernelDispatched,
        Reshuffled, BatchEvicted, WalkFinished,
    ):
        bus.subscribe(event_type, events.append)
    return ctx, events


def first_populated(ctx):
    """A partition index that got seeded walks."""
    return int(ctx.host.partitions_with_walks()[0])


class TestGraphServer:
    def test_explicit_cold_load(self, small_graph, tiny_config):
        config = tiny_config.with_options(copy_mode=COPY_EXPLICIT)
        ctx, events = build_ctx(small_graph, config)
        part = first_populated(ctx)
        served = GraphServer(ctx).serve(part)
        assert served.mode == SERVED_EXPLICIT
        assert not served.zero_copy
        assert served.ready_time > 0
        assert ctx.graph_pool.lookup(part) is not None
        assert ctx.graph_ready[part] == served.ready_time
        assert ctx.timeline.breakdown.as_dict()[CAT_GRAPH_LOAD] > 0
        (event,) = events
        assert isinstance(event, GraphServed)
        assert event.mode == SERVED_EXPLICIT
        assert event.copy_seconds > 0

    def test_hit_on_second_serve(self, small_graph, tiny_config):
        config = tiny_config.with_options(copy_mode=COPY_EXPLICIT)
        ctx, events = build_ctx(small_graph, config)
        part = first_populated(ctx)
        server = GraphServer(ctx)
        explicit = server.serve(part)
        hit = server.serve(part)
        assert hit.mode == SERVED_HIT
        assert hit.ready_time == explicit.ready_time
        assert events[1].copy_seconds == 0.0
        assert ctx.graph_pool.hits == 1

    def test_zero_copy_mode(self, small_graph, tiny_config):
        config = tiny_config.with_options(copy_mode=COPY_ZERO)
        ctx, events = build_ctx(small_graph, config)
        part = first_populated(ctx)
        served = GraphServer(ctx).serve(part)
        assert served.mode == SERVED_ZERO_COPY
        assert served.zero_copy
        assert served.ready_time == 0.0
        assert ctx.graph_pool.lookup(part) is None  # nothing cached
        assert events[0].copy_seconds == 0.0

    def test_full_pool_evicts_victim(self, small_graph, tiny_config):
        config = tiny_config.with_options(
            graph_pool_partitions=2, copy_mode=COPY_EXPLICIT
        )
        ctx, __ = build_ctx(small_graph, config)
        server = GraphServer(ctx)
        parts = [int(p) for p in ctx.host.partitions_with_walks()[:3]]
        assert len(parts) == 3
        for part in parts:
            server.serve(part)
        assert ctx.graph_pool.is_full
        cached = set(ctx.graph_pool.keys())
        assert len(cached) == 2
        assert parts[2] in cached  # newest always resident
        evicted = set(parts) - cached
        assert len(evicted) == 1
        assert not (evicted & set(ctx.graph_ready))


class TestWalkLoader:
    def test_streams_all_host_batches(self, small_graph, tiny_config):
        ctx, events = build_ctx(small_graph, tiny_config)
        part = first_populated(ctx)
        expected_walks = int(ctx.host.counts[part])
        expected_batches = ctx.host.num_batches(part)
        contents, ready_time = WalkLoader(ctx).stream(part)
        assert len(contents) == expected_walks
        assert not ctx.host.has_walks(part)
        assert ready_time > 0
        loads = [e for e in events if isinstance(e, BatchLoaded)]
        assert len(loads) == expected_batches
        assert sum(e.walks for e in loads) == expected_walks
        assert all(e.partition == part and e.seconds > 0 for e in loads)
        assert ctx.timeline.breakdown.as_dict()[CAT_WALK_LOAD] > 0

    def test_empty_partition_loads_nothing(self, small_graph, tiny_config):
        ctx, events = build_ctx(small_graph, tiny_config)
        empty = int(np.nonzero(ctx.host.counts == 0)[0][0])
        contents, ready_time = WalkLoader(ctx).stream(empty)
        assert contents is None
        assert ready_time == 0.0
        assert events == []


class TestComputeDispatcher:
    def test_dispatch_emits_kernel_and_advances(self, small_graph, tiny_config):
        ctx, events = build_ctx(small_graph, tiny_config)
        part = first_populated(ctx)
        contents, __ = WalkLoader(ctx).stream(part)
        before = len(contents)
        ComputeDispatcher(ctx).dispatch(
            part, contents, earliest=0.0, zero_copy=False
        )
        kernels = [e for e in events if isinstance(e, KernelDispatched)]
        (kernel,) = kernels
        assert kernel.partition == part
        assert kernel.walks == before
        assert kernel.steps > 0
        assert not kernel.preemptive and not kernel.zero_copy
        # every walk either finished or was reshuffled onward
        finished = sum(
            e.count for e in events if isinstance(e, WalkFinished)
        )
        reshuffled = sum(
            e.walks for e in events if isinstance(e, Reshuffled)
        )
        assert finished + reshuffled == before
        assert ctx.finished == finished
        assert ctx.device.cached_walks == reshuffled

    def test_empty_contents_noop(self, small_graph, tiny_config):
        from repro.walks.state import WalkArrays

        ctx, events = build_ctx(small_graph, tiny_config)
        ComputeDispatcher(ctx).dispatch(
            0, WalkArrays.empty(), earliest=0.0, zero_copy=False
        )
        assert events == []
        assert ctx.timeline.total_time() == 0.0

    def test_zero_copy_dispatch_occupies_link(self, small_graph, tiny_config):
        from repro.core.stats import CAT_ZERO_COPY

        config = tiny_config.with_options(copy_mode=COPY_ZERO)
        ctx, events = build_ctx(small_graph, config)
        part = first_populated(ctx)
        contents, __ = WalkLoader(ctx).stream(part)
        ComputeDispatcher(ctx).dispatch(
            part, contents, earliest=0.0, zero_copy=True
        )
        (kernel,) = [e for e in events if isinstance(e, KernelDispatched)]
        assert kernel.zero_copy
        assert ctx.timeline.breakdown.as_dict()[CAT_ZERO_COPY] > 0

    def test_capacity_enforcement_evicts(self, small_graph, tiny_config):
        config = tiny_config.with_options(walk_pool_walks=32)
        ctx, events = build_ctx(small_graph, config, num_walks=1500, length=8)
        dispatcher = ComputeDispatcher(ctx)
        loader = WalkLoader(ctx)
        evicted = []
        for part in [int(p) for p in ctx.host.partitions_with_walks()]:
            contents, __ = loader.stream(part)
            dispatcher.dispatch(part, contents, earliest=0.0, zero_copy=False)
            assert ctx.device.overflow == 0
            evicted.extend(
                e for e in events if isinstance(e, BatchEvicted)
            )
            if evicted:
                break
        assert evicted, "expected the 32-walk pool to overflow"
        for event in evicted:
            assert event.walks > 0
            assert event.seconds > 0
            # evicted batches land back in the host pool
            assert ctx.host.counts[event.partition] > 0


class TestPreemptiveDispatcher:
    def make_ready(self, ctx, exclude):
        """Cache partition B's graph + a full batch of its walks on-device."""
        counts = ctx.host.counts.copy()
        counts[exclude] = -1
        ready = int(np.argmax(counts))  # most walks -> fullest device batch
        ctx.graph_pool.insert(ready, ctx.pgraph.partitions[ready])
        contents, __ = WalkLoader(ctx).stream(ready)
        ctx.device.append_walks(ready, contents)
        return ready

    def test_disabled_without_preemptive_flag(self, small_graph, tiny_config):
        ctx, events = build_ctx(small_graph, tiny_config)
        compute = ComputeDispatcher(ctx)
        selected = first_populated(ctx)
        self.make_ready(ctx, selected)
        ctx.timeline.load.schedule(1.0, CAT_GRAPH_LOAD)
        n_before = len(events)
        PreemptiveDispatcher(ctx, compute).fill(exclude=selected)
        assert len(events) == n_before  # no kernels dispatched

    def test_fills_load_window(self, small_graph, tiny_config):
        config = tiny_config.with_options(preemptive=True, selective=True)
        ctx, events = build_ctx(small_graph, config, num_walks=1500)
        compute = ComputeDispatcher(ctx)
        selected = first_populated(ctx)
        ready = self.make_ready(ctx, selected)
        hits_before = ctx.graph_pool.hits
        ctx.timeline.load.schedule(1.0, CAT_GRAPH_LOAD)
        assert ctx.timeline.load.leads(ctx.timeline.compute)
        PreemptiveDispatcher(ctx, compute).fill(exclude=selected)
        kernels = [e for e in events if isinstance(e, KernelDispatched)]
        preempted = [e for e in kernels if e.preemptive]
        assert preempted
        assert all(e.partition != selected for e in preempted)
        assert preempted[0].partition == ready
        assert ctx.graph_pool.hits > hits_before
