"""Tests for graph analysis utilities (validated against networkx)."""

import networkx as nx
import numpy as np
import pytest

from repro.graph import generators
from repro.graph.analysis import (
    bfs_levels,
    connected_components,
    degree_stats,
    effective_diameter,
    largest_component_fraction,
    walk_pressure_profile,
)
from repro.graph.builders import from_edges
from repro.graph.partition import partition_by_range


class TestDegreeStats:
    def test_ring_uniform(self):
        stats = degree_stats(generators.ring(10))
        assert stats.minimum == stats.maximum == 2
        assert stats.mean == 2.0
        assert stats.gini == pytest.approx(0.0, abs=1e-9)
        assert not stats.skewed

    def test_star_skewed(self):
        stats = degree_stats(generators.star(50))
        assert stats.maximum == 50
        assert stats.skewed

    def test_rmat_heavy_tail(self, small_graph):
        stats = degree_stats(small_graph)
        assert stats.p99 > stats.median
        assert stats.maximum >= stats.p99

    def test_empty(self):
        from repro.graph.csr import CSRGraph

        empty = CSRGraph(np.array([0]), np.array([], dtype=np.int64))
        stats = degree_stats(empty)
        assert stats.mean == 0.0


class TestBFS:
    def test_line_distances(self, line_graph):
        levels = bfs_levels(line_graph, 0)
        assert levels.tolist() == [0, 1, 2, 3, 4]

    def test_ring_symmetry(self):
        levels = bfs_levels(generators.ring(8), 0)
        assert levels.max() == 4
        assert levels[4] == 4

    def test_unreachable_marked(self):
        g = from_edges([(0, 1), (1, 0), (2, 3), (3, 2)], num_vertices=4)
        levels = bfs_levels(g, 0)
        assert levels[2] == -1 and levels[3] == -1

    def test_matches_networkx(self, small_graph):
        levels = bfs_levels(small_graph, 0)
        nx_graph = nx.DiGraph(list(small_graph.iter_edges()))
        nx_levels = nx.single_source_shortest_path_length(nx_graph, 0)
        for v in range(0, small_graph.num_vertices, 37):
            expected = nx_levels.get(v, -1)
            assert levels[v] == expected

    def test_invalid_source(self, line_graph):
        with pytest.raises(IndexError):
            bfs_levels(line_graph, 99)


class TestComponents:
    def test_two_components(self):
        g = from_edges([(0, 1), (1, 0), (2, 3), (3, 2)], num_vertices=4)
        labels, count = connected_components(g)
        assert count == 2
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert labels[0] != labels[2]

    def test_rmat_mostly_connected(self, small_graph):
        # Preprocessing drops isolated vertices; R-MAT cores are connected.
        assert largest_component_fraction(small_graph) > 0.9

    def test_matches_networkx_count(self):
        g = from_edges(
            [(0, 1), (1, 0), (2, 3), (3, 2), (4, 5), (5, 4)], num_vertices=6
        )
        __, count = connected_components(g)
        nx_graph = nx.Graph(list(g.iter_edges()))
        assert count == nx.number_connected_components(nx_graph)


class TestEffectiveDiameter:
    def test_ring_diameter(self):
        diameter = effective_diameter(generators.ring(20), percentile=100, samples=4)
        assert diameter == pytest.approx(10.0, abs=1.0)

    def test_small_world_rmat(self, small_graph):
        diameter = effective_diameter(small_graph, samples=6)
        assert 1.0 < diameter < 12.0

    def test_invalid_percentile(self, line_graph):
        with pytest.raises(ValueError):
            effective_diameter(line_graph, percentile=0)


class TestWalkPressure:
    def test_sums_to_one(self, small_graph):
        pg = partition_by_range(small_graph, 4096)
        pressure = walk_pressure_profile(pg)
        assert pressure.sum() == pytest.approx(1.0)
        assert pressure.size == pg.num_partitions

    def test_range_partitioning_equalizes_edges(self, small_graph):
        """Equal-byte partitions carry near-equal stationary walk mass —
        the structural fact behind the scheduling dynamics in DESIGN.md."""
        pg = partition_by_range(small_graph, 8192)
        if pg.num_partitions < 4:
            pytest.skip("need several partitions")
        pressure = walk_pressure_profile(pg)
        # No partition dominates: max within a few x of the mean.
        assert pressure.max() < 5.0 / pg.num_partitions
