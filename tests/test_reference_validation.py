"""Validation against independent reference implementations (networkx).

These tests guard the *semantics* of the reproduction with third-party
references: PageRank scores against ``networkx.pagerank``, simple-walk
stationary behaviour against the degree distribution, and graph conversion
consistency.
"""

import networkx as nx
import numpy as np
import pytest

from repro.algorithms import PageRank, UniformSampling
from repro.algorithms.pagerank import power_iteration_pagerank
from repro.baselines.inmemory_cpu import execute_in_memory
from repro.core.config import EngineConfig
from repro.core.engine import run_walks
from repro.graph import generators
from repro.graph.csr import CSRGraph


def to_networkx(graph: CSRGraph) -> nx.DiGraph:
    g = nx.DiGraph()
    g.add_nodes_from(range(graph.num_vertices))
    g.add_edges_from(graph.iter_edges())
    return g


@pytest.fixture(scope="module")
def graph():
    return generators.rmat(scale=10, edge_factor=7, seed=3, name="ref")


class TestPowerIterationVsNetworkx:
    def test_pagerank_vectors_agree(self, graph):
        ours = power_iteration_pagerank(graph, damping=0.85, iterations=200)
        nx_scores = nx.pagerank(to_networkx(graph), alpha=0.85, tol=1e-12)
        theirs = np.array([nx_scores[v] for v in range(graph.num_vertices)])
        assert np.abs(ours - theirs).max() < 1e-6

    def test_ranking_identical(self, graph):
        ours = power_iteration_pagerank(graph, damping=0.85, iterations=200)
        nx_scores = nx.pagerank(to_networkx(graph), alpha=0.85, tol=1e-12)
        theirs = np.array([nx_scores[v] for v in range(graph.num_vertices)])
        top_ours = np.argsort(ours)[-25:]
        top_theirs = np.argsort(theirs)[-25:]
        assert set(top_ours.tolist()) == set(top_theirs.tolist())


class TestEngineVsNetworkx:
    def test_monte_carlo_pagerank_tracks_networkx(self, graph):
        algo = PageRank(length=50, restart_prob=0.15)
        config = EngineConfig(
            partition_bytes=8 * 1024,
            batch_walks=64,
            graph_pool_partitions=6,
            seed=31,
        )
        run_walks(graph, algo, 6 * graph.num_vertices, config)
        estimated = algo.pagerank_scores()
        nx_scores = nx.pagerank(to_networkx(graph), alpha=0.85)
        theirs = np.array([nx_scores[v] for v in range(graph.num_vertices)])
        tv = 0.5 * np.abs(estimated - theirs).sum()
        assert tv < 0.08
        top_est = set(np.argsort(estimated)[-15:].tolist())
        top_ref = set(np.argsort(theirs)[-15:].tolist())
        assert len(top_est & top_ref) >= 10


class TestStationaryDistribution:
    def test_simple_walk_visits_proportional_to_degree(self, graph):
        """On an undirected graph the simple walk's stationary distribution
        is degree/2|E| — long uniform walks must converge to it."""

        class VisitCountingWalk(UniformSampling):
            def __init__(self, length):
                super().__init__(length)
                self.visit_counts = None

            def start_vertices(self, g, n, rng):
                self.visit_counts = np.zeros(g.num_vertices, dtype=np.int64)
                return super().start_vertices(g, n, rng)

            def observe(self, vertices, ids, terminated):
                np.add.at(self.visit_counts, vertices, 1)

        rng = np.random.default_rng(12)
        algo = VisitCountingWalk(length=200)
        execute_in_memory(graph, algo, 2 * graph.num_vertices, rng)
        measured = algo.visit_counts / algo.visit_counts.sum()
        stationary = graph.degrees() / graph.num_edges
        tv = 0.5 * np.abs(measured - stationary).sum()
        assert tv < 0.05


class TestGraphConversion:
    def test_edge_sets_match(self, graph):
        nx_graph = to_networkx(graph)
        assert nx_graph.number_of_nodes() == graph.num_vertices
        assert nx_graph.number_of_edges() == graph.num_edges

    def test_degrees_match(self, graph):
        nx_graph = to_networkx(graph)
        for v in range(0, graph.num_vertices, 53):
            assert nx_graph.out_degree(v) == graph.degree(v)
