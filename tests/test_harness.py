"""Schema/consistency tests for the benchmark harness (smallest dataset).

The heavy sweeps run under `benchmarks/`; here we validate the row schemas
and basic invariants on the cheapest dataset so `pytest tests/` stays fast.
"""

import pytest

from repro.bench import harness


class TestAlgorithmFactory:
    def test_known_algorithms(self):
        for name in ("uniform", "pagerank", "ppr"):
            algo = harness.make_algorithm(name)
            assert algo.name == name

    def test_fresh_instances(self):
        assert harness.make_algorithm("pagerank") is not harness.make_algorithm(
            "pagerank"
        )

    def test_unknown(self):
        with pytest.raises(KeyError):
            harness.make_algorithm("metropolis")


class TestSmallDatasetRuns:
    def test_fig3_schema(self):
        rows = harness.fig3_active_ratio(datasets=("lj-sim",), sample_every=4)
        assert rows
        for row in rows:
            assert row["dataset"] == "lj-sim"
            assert 0 <= row["active_vertex_pct"] <= 100
            assert 0 <= row["used_edge_pct"] <= 100

    def test_table1_schema(self):
        rows = harness.table1_subway_breakdown(datasets=("lj-sim",))
        (row,) = rows
        total = (
            row["computation_pct"]
            + row["transmission_pct"]
            + row["subgraph_pct"]
        )
        assert total == pytest.approx(100.0)

    def test_fig9_schema_one_dataset(self):
        rows = harness.fig9_cpu_comparison(
            datasets=("lj-sim",), algorithms=("pagerank",)
        )
        systems = {r["system"] for r in rows}
        assert systems == {"thunderrw", "flashmob", "lt-pcie3", "lt-pcie4"}
        speedups = harness.fig9_speedups(rows)
        assert {s["vs"] for s in speedups} == {"flashmob", "thunderrw"}
        for s in speedups:
            assert s["speedup"] > 0

    def test_fig12_schema(self):
        rows = harness.fig12_reshuffle(
            partition_kib=(16,), dataset="lj-sim"
        )
        (row,) = rows
        assert row["two_level_reshuffle_time"] <= row["direct_reshuffle_time"]

    def test_fig13_and_table3(self):
        rows = harness.fig13_pipeline(
            pool_partitions=(4,), dataset="lj-sim"
        )
        assert {r["variant"] for r in rows} == {
            "baseline",
            "ps",
            "ss",
            "ps+ss",
        }
        t3 = harness.table3_scheduling(pool_partitions=4, dataset="lj-sim")
        assert len(t3) == 4

    def test_fig17_schema(self):
        rows = harness.fig17_partition_size(
            partition_kib=(16, 64), dataset="lj-sim"
        )
        assert rows[0]["num_partitions"] > rows[1]["num_partitions"]


class TestMoreHarnessRunners:
    def test_fig14_schema(self):
        rows = harness.fig14_adaptive(
            datasets=("lj-sim",), algorithms=("ppr",)
        )
        (row,) = rows
        assert row["adaptive_speedup"] > 0
        assert row["zero_copy_speedup"] > 0

    def test_fig11_schema(self):
        rows = harness.fig11_nextdoor(
            datasets=("lj-sim",), algorithms=("pagerank",)
        )
        (row,) = rows
        assert row["lt_throughput"] > 0
        assert row["nextdoor_throughput"] > 0

    def test_fig10_schema(self):
        rows = harness.fig10_subway_comparison(
            datasets=("lj-sim",), algorithms=("pagerank",)
        )
        (row,) = rows
        assert row["total_speedup"] > 0

    def test_fig18_schema(self):
        rows = harness.fig18_scalability(
            densities=(0.25,), datasets=("lj-sim",), walk_length=4
        )
        assert rows
        for row in rows:
            assert row["theory_throughput"] > 0
            assert row["throughput"] > 0


class TestMetricsObservatory:
    def test_all_systems_observed(self):
        rows = harness.metrics_observatory(dataset="lj-sim")
        assert [r["system"] for r in rows] == [
            "lighttraffic", "subway", "uvm", "multiround",
        ]
        for row in rows:
            assert row["total_time"] > 0
            assert row["iterations"] > 0
            served = (
                row["served_hit"]
                + row["served_explicit"]
                + row["served_zero_copy"]
            )
            assert served > 0
            assert 0 <= row["preemption_pct"] <= 100

    def test_unpartitioned_baselines_never_hit_or_zero_copy(self):
        rows = harness.metrics_observatory(dataset="lj-sim")
        by_system = {r["system"]: r for r in rows}
        assert by_system["subway"]["served_explicit"] > 0
        assert by_system["subway"]["served_zero_copy"] == 0
        assert by_system["uvm"]["served_explicit"] > 0
