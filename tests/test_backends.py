"""Execution backends (:mod:`repro.backends`).

Conformance matrix: every real backend (numba pure-Python kernels via a
forced availability flag, multiprocess shared-memory precompute, and —
when the optional dependency is installed — real JIT numba) must
reproduce the ``simulated`` baseline bit-identically across transition
samplers and device counts, sanitizer-clean.  Plus the replayability
gates, the registry, the measured-timings surface and the CLI exit
codes for unavailable backends.
"""

import json

import numpy as np
import pytest

from repro import cli
from repro.algorithms import PageRank, UniformSampling
from repro.backends import (
    BACKEND_MULTIPROCESS,
    BACKEND_NUMBA,
    BACKEND_SIMULATED,
    BackendUnavailable,
    available_backends,
    make_backend,
)
from repro.backends import numba_kernels
from repro.core.config import EngineConfig
from repro.core.engine import LightTrafficEngine
from repro.gpu.kernels import fit_time_scale, relative_errors
from repro.graph import generators
from repro.graph.partition import partition_by_range
from repro.walks.state import WalkArrays

NUMBA_INSTALLED = numba_kernels.NUMBA_AVAILABLE
REAL_BACKENDS = (BACKEND_NUMBA, BACKEND_MULTIPROCESS)
SAMPLERS = ("uniform", "alias", "inverse")

#: Run facts that must match the simulated baseline exactly.
IDENTITY_FIELDS = (
    "total_steps",
    "iterations",
    "total_time",
    "walks_migrated",
    "explicit_copies",
    "walk_batches_evicted",
)


def force_numba(monkeypatch):
    """Exercise the numba kernels' pure-Python path when numba is absent."""
    if not NUMBA_INSTALLED:
        monkeypatch.setattr(numba_kernels, "NUMBA_AVAILABLE", True)


def backend_config(backend, *, devices=1, **overrides):
    config = dict(
        partition_bytes=2048,
        batch_walks=64,
        graph_pool_partitions=4,
        walk_pool_walks=256,
        seed=11,
        rng_mode="counter",
        backend=backend,
        devices=devices,
        sanitize=True,
    )
    config.update(overrides)
    return EngineConfig(**config)


def run_backend(graph, backend, *, sampler="uniform", length=8, walks=300,
                **overrides):
    weighted = sampler != "uniform"
    algorithm = UniformSampling(
        length=length, weighted=weighted, sampler=sampler
    )
    config = backend_config(backend, **overrides)
    return LightTrafficEngine(graph, algorithm, config).run(walks)


@pytest.fixture(scope="module")
def plain_graph():
    return generators.rmat(scale=9, edge_factor=6, seed=5, name="bk-plain")


@pytest.fixture(scope="module")
def weighted_graph():
    graph = generators.rmat(scale=9, edge_factor=6, seed=5, name="bk-wt")
    return generators.with_random_weights(graph, seed=6)


class TestRegistry:
    def test_builtins_registered(self):
        names = available_backends()
        assert BACKEND_SIMULATED in names
        assert BACKEND_NUMBA in names
        assert BACKEND_MULTIPROCESS in names

    def test_unknown_backend_raises_value_error(self):
        with pytest.raises(ValueError, match="unknown backend"):
            make_backend("cuda")

    def test_simulated_always_constructible(self):
        backend = make_backend(BACKEND_SIMULATED)
        assert backend.name == BACKEND_SIMULATED

    @pytest.mark.skipif(NUMBA_INSTALLED, reason="numba is installed here")
    def test_numba_distinct_from_unknown_when_missing(self):
        # Known-but-unavailable is BackendUnavailable, not ValueError.
        with pytest.raises(BackendUnavailable, match="numba"):
            make_backend(BACKEND_NUMBA)


class TestConformanceMatrix:
    @pytest.mark.parametrize("sampler", SAMPLERS)
    @pytest.mark.parametrize("backend", REAL_BACKENDS)
    def test_run_facts_match_simulated(
        self, backend, sampler, plain_graph, weighted_graph, monkeypatch
    ):
        if backend == BACKEND_NUMBA:
            force_numba(monkeypatch)
        graph = plain_graph if sampler == "uniform" else weighted_graph
        base = run_backend(graph, BACKEND_SIMULATED, sampler=sampler)
        real = run_backend(graph, backend, sampler=sampler)
        for field in IDENTITY_FIELDS:
            assert getattr(real, field) == getattr(base, field), field
        assert real.backend == backend

    @pytest.mark.parametrize("backend", REAL_BACKENDS)
    def test_sanitizer_clean(self, backend, plain_graph, monkeypatch):
        if backend == BACKEND_NUMBA:
            force_numba(monkeypatch)
        stats = run_backend(plain_graph, backend)
        assert stats.sanitizer is not None
        assert stats.sanitizer["clean"]

    @pytest.mark.parametrize("backend", REAL_BACKENDS)
    def test_multi_device_migrations_match(
        self, backend, plain_graph, monkeypatch
    ):
        if backend == BACKEND_NUMBA:
            force_numba(monkeypatch)
        base = run_backend(plain_graph, BACKEND_SIMULATED, devices=2)
        real = run_backend(plain_graph, backend, devices=2)
        assert base.walks_migrated > 0
        for field in IDENTITY_FIELDS:
            assert getattr(real, field) == getattr(base, field), field

    @pytest.mark.skipif(
        not NUMBA_INSTALLED, reason="optional numba not installed"
    )
    def test_real_numba_jit_matches_simulated(self, plain_graph):
        base = run_backend(plain_graph, BACKEND_SIMULATED)
        real = run_backend(plain_graph, BACKEND_NUMBA)
        for field in IDENTITY_FIELDS:
            assert getattr(real, field) == getattr(base, field), field


class TestMeasuredTimings:
    def test_simulated_backend_reports_wall_clock(self, plain_graph):
        stats = run_backend(plain_graph, BACKEND_SIMULATED)
        measured = stats.measured
        assert measured is not None
        assert measured["num_kernels"] > 0
        assert measured["walk_update_seconds"] > 0.0
        assert len(measured["kernels"]) == measured["num_kernels"]
        record = measured["kernels"][0]
        for key in ("partition", "lanes", "total_steps", "longest_run",
                    "partition_nbytes", "sampler", "seconds"):
            assert key in record

    def test_measured_steps_sum_to_simulated_total(self, plain_graph):
        stats = run_backend(plain_graph, BACKEND_MULTIPROCESS)
        kernels = stats.measured["kernels"]
        assert sum(r["total_steps"] for r in kernels) == stats.total_steps


class TestGating:
    def test_sequential_rng_rejected_at_config(self):
        # EngineConfig defaults to rng_mode="sequential".
        with pytest.raises(ValueError, match="rng_mode"):
            EngineConfig(backend=BACKEND_MULTIPROCESS)

    def test_unknown_backend_rejected_at_config(self):
        with pytest.raises(ValueError, match="unknown backend"):
            EngineConfig(backend="cuda", rng_mode="counter")

    def test_subset_draw_sampler_rejected(self, weighted_graph):
        algorithm = UniformSampling(
            length=4, weighted=True, sampler="rejection"
        )
        engine = LightTrafficEngine(
            weighted_graph, algorithm, backend_config(BACKEND_MULTIPROCESS)
        )
        with pytest.raises(ValueError, match="subset"):
            engine.run(50)

    def test_step_once_override_rejected(self, plain_graph):
        engine = LightTrafficEngine(
            plain_graph, PageRank(length=4),
            backend_config(BACKEND_MULTIPROCESS),
        )
        with pytest.raises(ValueError, match="step_once"):
            engine.run(50)

    def test_path_recording_rejected(self, plain_graph):
        algorithm = UniformSampling(length=4, record_paths=True)
        engine = LightTrafficEngine(
            plain_graph, algorithm, backend_config(BACKEND_MULTIPROCESS)
        )
        with pytest.raises(ValueError, match="path recording"):
            engine.run(50)

    def test_multiprocess_requires_contiguous_ids(self, plain_graph):
        backend = make_backend(BACKEND_MULTIPROCESS)
        backend.bind(
            plain_graph,
            partition_by_range(plain_graph, 2048),
            UniformSampling(length=4),
            backend_config(BACKEND_MULTIPROCESS),
        )
        walks = WalkArrays.fresh(np.zeros(6, dtype=np.int64))
        holey = walks.select(np.array([0, 2, 4]))
        with pytest.raises(ValueError, match="contiguous"):
            backend.on_walks_seeded(holey)
        backend.close()


class TestModelFitHelpers:
    def test_fit_recovers_exact_scale(self):
        predicted = [1.0, 2.0, 4.0]
        measured = [2.0, 4.0, 8.0]
        scale = fit_time_scale(predicted, measured)
        assert scale == pytest.approx(2.0)
        errors = relative_errors(predicted, measured, scale)
        assert errors == pytest.approx([0.0, 0.0, 0.0])

    def test_degenerate_inputs_yield_zero_scale(self):
        assert fit_time_scale([], []) == 0.0
        assert fit_time_scale([0.0, 0.0], [1.0, 1.0]) == 0.0

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            fit_time_scale([1.0], [])
        with pytest.raises(ValueError):
            relative_errors([1.0], [], 1.0)

    def test_relative_errors_skip_zero_measurements(self):
        errors = relative_errors([1.0, 1.0], [0.0, 2.0], 1.0)
        assert errors == pytest.approx([0.5])


class TestBenchBackends:
    def test_quick_bench_payload(self, tmp_path):
        from repro.bench import backends as bench_backends

        results = bench_backends.run_bench(
            scale=8, edge_factor=6, walks=200, seed=3, quick=True
        )
        checks = results["checks"]
        assert checks["identity_ok"]
        assert checks["sanitizer_ok"]
        assert not checks["speedup_enforced"]
        assert checks["all_ok"]
        runs = results["runs"]
        assert runs["simulated"]["available"]
        assert runs["multiprocess"]["available"]
        assert "overall_speedup" in runs["multiprocess"]
        if not NUMBA_INSTALLED:
            assert not runs["numba"]["available"]
            assert "numba" in runs["numba"]["reason"]
        summary = bench_backends.format_summary(results)
        assert "execution-backend benchmark" in summary
        out = tmp_path / "BENCH_backends.json"
        bench_backends.write_results(results, str(out))
        payload = json.loads(out.read_text())
        assert payload["checks"]["identity_ok"]


class TestCliSurface:
    def test_backend_numba_missing_exits_2(self, capsys, monkeypatch):
        monkeypatch.setattr(numba_kernels, "NUMBA_AVAILABLE", False)
        rc = cli.main(["run", "--dataset", "uk-sim", "--backend", "numba"])
        captured = capsys.readouterr()
        assert rc == 2
        assert captured.out == ""
        assert "numba" in captured.err
        assert "--backend multiprocess" in captured.err

    def test_backend_limited_to_lighttraffic(self, capsys):
        rc = cli.main(
            ["run", "--dataset", "uk-sim", "--system", "thunderrw",
             "--backend", "multiprocess"]
        )
        assert rc == 2
        assert "--backend" in capsys.readouterr().err

    def test_rejects_unknown_backend_name(self, capsys):
        rc = cli.main(["run", "--dataset", "uk-sim", "--backend", "cuda"])
        captured = capsys.readouterr()
        assert rc == 2
        assert captured.out == ""
        assert "'cuda'" in captured.err
        # the hint must list every registered name so users can pick one
        for name in available_backends():
            assert name in captured.err


class TestLifecycleAndLeaks:
    """The backend typestate contract and the shared-memory leak fix.

    Fault injection: a failure in any setup step after the first
    SharedMemory block exists (worker spawn, exit-table build) must
    release and unlink every block already registered — the scenario
    the `leaked-resource` static rule guards against.
    """

    def _bound_backend(self, graph):
        from repro.backends.multiprocess import MultiprocessBackend

        backend = MultiprocessBackend()
        algorithm = UniformSampling(length=4)
        config = backend_config(BACKEND_MULTIPROCESS)
        pgraph = partition_by_range(graph, config.partition_bytes)
        backend.bind(graph, pgraph, algorithm, config)
        return backend

    @pytest.mark.parametrize("failing", ["_run_workers", "_build_exit_table"])
    def test_seed_failure_releases_every_block(
        self, plain_graph, monkeypatch, failing
    ):
        from multiprocessing import shared_memory

        backend = self._bound_backend(plain_graph)
        block_names = []

        def boom(*args, **kwargs):
            block_names.extend(shm.name for shm in backend._shms)
            raise RuntimeError("injected setup failure")

        monkeypatch.setattr(backend, failing, boom)
        walks = WalkArrays.fresh(np.zeros(64, dtype=np.int64))
        with pytest.raises(RuntimeError, match="injected setup failure"):
            backend.on_walks_seeded(walks)
        assert backend._shms == []
        # The failure happened after real allocations, and every one of
        # them was unlinked: reattaching by name must fail.
        assert len(block_names) >= 4
        for name in block_names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_failed_backend_is_closed_for_good(self, plain_graph, monkeypatch):
        backend = self._bound_backend(plain_graph)
        monkeypatch.setattr(
            backend,
            "_run_workers",
            lambda n: (_ for _ in ()).throw(RuntimeError("boom")),
        )
        with pytest.raises(RuntimeError):
            backend.on_walks_seeded(WalkArrays.fresh(np.zeros(8, dtype=np.int64)))
        assert backend.closed
        config = backend_config(BACKEND_MULTIPROCESS)
        pgraph = partition_by_range(plain_graph, config.partition_bytes)
        with pytest.raises(RuntimeError, match="was closed"):
            backend.bind(plain_graph, pgraph, UniformSampling(length=4), config)

    def test_close_is_idempotent(self, plain_graph):
        backend = self._bound_backend(plain_graph)
        backend.close()
        backend.close()
        assert backend.closed and backend._shms == []

    def test_successful_run_leaves_no_blocks_behind(self, plain_graph):
        from multiprocessing import shared_memory

        backend = self._bound_backend(plain_graph)
        walks = WalkArrays.fresh(np.zeros(32, dtype=np.int64))
        backend.on_walks_seeded(walks)
        block_names = [shm.name for shm in backend._shms]
        assert block_names
        backend.close()
        assert backend._shms == []
        for name in block_names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)
