"""Unit and property tests for range-based graph partitioning."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import generators
from repro.graph.builders import from_edges
from repro.graph.csr import VERTEX_ENTRY_BYTES
from repro.graph.partition import (
    GraphPartition,
    PartitionedGraph,
    partition_by_range,
    partition_into,
)


class TestPartitionByRange:
    def test_tiles_vertex_range(self, small_graph):
        pg = partition_by_range(small_graph, 4096)
        assert pg.partitions[0].start == 0
        assert pg.partitions[-1].stop == small_graph.num_vertices
        for a, b in zip(pg.partitions, pg.partitions[1:]):
            assert a.stop == b.start

    def test_respects_size_bound(self, small_graph):
        block = 4096
        pg = partition_by_range(small_graph, block)
        for part in pg.partitions:
            if part.num_vertices > 1:
                assert part.nbytes <= block

    def test_oversized_singleton_allowed(self):
        g = generators.star(600)  # hub edges alone exceed a small block
        pg = partition_by_range(g, 1024)
        hub = pg.partition_of(0)
        assert hub.num_vertices == 1
        assert hub.nbytes > 1024

    def test_single_partition_when_block_huge(self, small_graph):
        pg = partition_by_range(small_graph, 10 * small_graph.csr_bytes)
        assert pg.num_partitions == 1

    def test_edges_follow_source_vertex(self, small_graph):
        pg = partition_by_range(small_graph, 8192)
        for part in pg.partitions[:5]:
            for v in range(part.start, min(part.stop, part.start + 3)):
                assert np.array_equal(
                    part.local_neighbors(v), small_graph.neighbors(v)
                )

    def test_invalid_block(self, small_graph):
        with pytest.raises(ValueError):
            partition_by_range(small_graph, 0)

    def test_empty_graph_rejected(self):
        g = from_edges([], num_vertices=0) if False else None
        from repro.graph.csr import CSRGraph

        tiny = CSRGraph(np.array([0]), np.array([], dtype=np.int64))
        with pytest.raises(ValueError):
            partition_by_range(tiny, 1024)

    def test_weighted_partitions_carry_weights(self):
        g = from_edges([(0, 1), (1, 0)], num_vertices=2, weights=[1.0, 2.0])
        pg = partition_by_range(g, VERTEX_ENTRY_BYTES * 100)
        assert pg.partitions[0].weights is not None


class TestFindPartition:
    def test_binary_search_matches_linear(self, small_graph):
        pg = partition_by_range(small_graph, 4096)
        for v in range(0, small_graph.num_vertices, 97):
            expected = next(
                p.index for p in pg.partitions if p.contains(v)
            )
            assert pg.find_partition(v) == expected

    def test_vectorized_matches_scalar(self, small_graph):
        pg = partition_by_range(small_graph, 4096)
        vertices = np.arange(0, small_graph.num_vertices, 13)
        vec = pg.find_partitions(vertices)
        for v, p in zip(vertices, vec):
            assert pg.find_partition(int(v)) == int(p)

    def test_out_of_range(self, small_graph):
        pg = partition_by_range(small_graph, 4096)
        with pytest.raises(IndexError):
            pg.find_partition(small_graph.num_vertices)
        with pytest.raises(IndexError):
            pg.find_partition(-1)

    def test_partition_sizes(self, small_graph):
        pg = partition_by_range(small_graph, 4096)
        sizes = pg.partition_sizes()
        assert sizes.sum() >= small_graph.csr_bytes * 0.9
        assert pg.max_partition_bytes == sizes.max()


class TestGraphPartition:
    def test_contains_and_local_neighbors(self, small_graph):
        pg = partition_by_range(small_graph, 4096)
        part = pg.partitions[1]
        assert part.contains(part.start)
        assert not part.contains(part.stop)
        with pytest.raises(IndexError):
            part.local_neighbors(part.stop)

    def test_validation_rejects_gaps(self, small_graph):
        pg = partition_by_range(small_graph, 4096)
        if pg.num_partitions < 2:
            pytest.skip("need at least 2 partitions")
        with pytest.raises(ValueError, match="tile|cover|order"):
            PartitionedGraph(small_graph, pg.partitions[1:])


class TestPartitionInto:
    def test_close_to_request(self, small_graph):
        for requested in (2, 4, 8):
            pg = partition_into(small_graph, requested)
            assert requested // 2 <= pg.num_partitions <= 2 * requested + 1

    def test_one_partition(self, small_graph):
        pg = partition_into(small_graph, 1)
        assert pg.num_partitions == 1

    def test_invalid(self, small_graph):
        with pytest.raises(ValueError):
            partition_into(small_graph, 0)


@given(
    scale=st.integers(6, 9),
    block_kib=st.sampled_from([1, 2, 4, 8]),
    seed=st.integers(0, 5),
)
@settings(max_examples=20, deadline=None)
def test_partition_properties(scale, block_kib, seed):
    """Property: disjoint cover, size bound, binary-search inversion."""
    g = generators.rmat(scale=scale, edge_factor=4, seed=seed)
    pg = partition_by_range(g, block_kib * 1024)
    # Cover & disjoint.
    covered = 0
    for part in pg.partitions:
        assert part.start == covered
        covered = part.stop
        if part.num_vertices > 1:
            assert part.nbytes <= block_kib * 1024
    assert covered == g.num_vertices
    # Lookup inversion on a sample.
    rng = np.random.default_rng(seed)
    sample = rng.integers(0, g.num_vertices, size=32)
    for v in sample:
        part = pg.partitions[pg.find_partition(int(v))]
        assert part.contains(int(v))
