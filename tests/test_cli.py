"""Tests for the command-line interface."""

import json

import numpy as np
import pytest

from repro.cli import EXPERIMENTS, build_parser, main
from repro.graph.io import load_csr


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_requires_source(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run"])

    def test_run_sources_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "--dataset", "lj-sim", "--graph", "x.npz"]
            )

    def test_experiment_names_cover_all_figures(self):
        expected = {"table1", "table2", "table3", "metrics"} | {
            f"fig{i}" for i in (3, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18)
        }
        assert set(EXPERIMENTS) == expected


class TestGenerate:
    def test_generate_npz(self, tmp_path, capsys):
        out = tmp_path / "g.npz"
        code = main(
            ["generate", "--kind", "rmat", "--scale", "8",
             "--edge-factor", "4", "--out", str(out)]
        )
        assert code == 0
        graph = load_csr(out)
        assert graph.num_vertices > 0
        assert "wrote" in capsys.readouterr().out

    def test_generate_edge_list(self, tmp_path):
        out = tmp_path / "g.txt"
        code = main(
            ["generate", "--kind", "ba", "--vertices", "50",
             "--edge-factor", "2", "--out", str(out)]
        )
        assert code == 0
        assert out.read_text().count("\n") > 10

    def test_generate_erdos(self, tmp_path):
        out = tmp_path / "e.npz"
        assert main(
            ["generate", "--kind", "erdos", "--vertices", "100",
             "--edge-factor", "3", "--out", str(out)]
        ) == 0


class TestRun:
    @pytest.fixture()
    def graph_file(self, tmp_path, small_graph):
        from repro.graph.io import save_csr

        path = tmp_path / "g.npz"
        save_csr(small_graph, path)
        return str(path)

    def test_run_lighttraffic(self, graph_file, capsys):
        code = main(
            ["run", "--graph", graph_file, "--algorithm", "pagerank",
             "--walks", "500"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "lighttraffic/pagerank" in out
        assert "breakdown" in out

    @pytest.mark.parametrize(
        "system",
        ["thunderrw", "flashmob", "subway", "nextdoor", "uvm", "multiround"],
    )
    def test_run_baselines(self, graph_file, capsys, system):
        code = main(
            ["run", "--graph", graph_file, "--algorithm", "uniform",
             "--walks", "200", "--system", system]
        )
        assert code == 0
        assert f"{system}/uniform" in capsys.readouterr().out

    @pytest.mark.parametrize(
        "system", ["lighttraffic", "multiround", "subway", "uvm"]
    )
    def test_sanitize_clean_run(self, graph_file, capsys, system):
        code = main(
            ["run", "--graph", graph_file, "--algorithm", "uniform",
             "--walks", "200", "--system", system, "--sanitize"]
        )
        assert code == 0
        assert "sanitizer: clean" in capsys.readouterr().out

    def test_sanitize_rejects_unrouted_system(self, graph_file, capsys):
        code = main(
            ["run", "--graph", graph_file, "--walks", "100",
             "--system", "thunderrw", "--sanitize"]
        )
        assert code == 2
        captured = capsys.readouterr()
        assert "--sanitize is not supported" in captured.err
        assert "supported engines:" in captured.err
        assert captured.out == ""

    @pytest.mark.no_sanitize  # injects a fake violation on purpose
    def test_sanitize_fails_on_violation(self, graph_file, capsys,
                                         monkeypatch):
        from repro.analysis import Sanitizer

        original_summary = Sanitizer.summary

        def tainted_summary(self):
            summary = original_summary(self)
            summary["clean"] = False
            summary["violation_count"] = 1
            summary["violations"] = [{
                "rule": "walk-conservation", "message": "injected",
                "iteration": 1, "provenance": ["#1 it=1 injected"],
            }]
            return summary

        monkeypatch.setattr(Sanitizer, "summary", tainted_summary)
        code = main(
            ["run", "--graph", graph_file, "--walks", "100", "--sanitize"]
        )
        assert code == 1
        assert "walk-conservation" in capsys.readouterr().out

    def test_run_multi_device(self, graph_file, capsys):
        code = main(
            ["run", "--graph", graph_file, "--algorithm", "uniform",
             "--walks", "300", "--devices", "2", "--sanitize"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "lighttraffic/uniform" in out
        assert "devices         : 2" in out
        assert "walks migrated" in out
        assert "sanitizer: clean" in out

    def test_run_multi_device_pcie_p2p(self, graph_file, capsys):
        code = main(
            ["run", "--graph", graph_file, "--algorithm", "uniform",
             "--walks", "200", "--devices", "2",
             "--peer-interconnect", "pcie-p2p"]
        )
        assert code == 0
        assert "devices         : 2" in capsys.readouterr().out

    def test_devices_rejects_non_lighttraffic(self, graph_file, capsys):
        code = main(
            ["run", "--graph", graph_file, "--walks", "100",
             "--system", "thunderrw", "--devices", "2"]
        )
        assert code == 2
        captured = capsys.readouterr()
        assert "--devices is not supported" in captured.err
        assert "supported engines: lighttraffic" in captured.err
        # the hint must never leak into stdout, where scripted callers
        # parse run statistics
        assert captured.out == ""

    def test_metrics_json_stdout(self, graph_file, capsys):
        import json

        code = main(
            ["run", "--graph", graph_file, "--algorithm", "pagerank",
             "--walks", "300", "--metrics-json", "-"]
        )
        assert code == 0
        out = capsys.readouterr().out
        # the JSON blob comes first, then the human-readable summary
        payload = json.loads(out[: out.rindex("}") + 1])
        assert payload["iterations"] > 0
        assert set(payload["serve_mode_totals"]) == {
            "hit", "explicit", "zero_copy"
        }
        assert payload["partitions"]

    def test_metrics_json_file(self, graph_file, tmp_path, capsys):
        import json

        out_path = tmp_path / "metrics.json"
        code = main(
            ["run", "--graph", graph_file, "--algorithm", "uniform",
             "--walks", "200", "--system", "subway",
             "--metrics-json", str(out_path)]
        )
        assert code == 0
        payload = json.loads(out_path.read_text())
        assert payload["runs_completed"] == 1
        assert payload["serve_mode_totals"]["explicit"] > 0
        assert "wrote metrics" in capsys.readouterr().out

    def test_metrics_json_rejects_unrouted_system(self, graph_file, capsys):
        code = main(
            ["run", "--graph", graph_file, "--walks", "100",
             "--system", "thunderrw", "--metrics-json", "-"]
        )
        assert code == 2
        captured = capsys.readouterr()
        assert "--metrics-json is not supported" in captured.err
        assert "supported engines:" in captured.err
        assert captured.out == ""

    def test_run_ppr_rejected_by_flashmob(self, graph_file):
        with pytest.raises(ValueError, match="fixed-length"):
            main(
                ["run", "--graph", graph_file, "--algorithm", "ppr",
                 "--walks", "100", "--system", "flashmob"]
            )

    def test_run_edge_list_input(self, tmp_path, small_graph, capsys):
        from repro.graph.io import save_edge_list

        path = tmp_path / "g.txt"
        save_edge_list(small_graph, path)
        code = main(
            ["run", "--graph", str(path), "--algorithm", "uniform",
             "--walks", "100"]
        )
        assert code == 0


class TestExperimentCommand:
    def test_experiment_prints_rows(self, capsys, monkeypatch):
        import repro.cli as cli

        monkeypatch.setitem(
            cli.EXPERIMENTS, "table3", (lambda: [{"variant": "x", "v": 1}], ())
        )
        assert main(["experiment", "table3"]) == 0
        out = capsys.readouterr().out
        assert "experiment table3" in out
        assert "variant" in out

    def test_experiment_empty_rows(self, capsys, monkeypatch):
        import repro.cli as cli

        monkeypatch.setitem(cli.EXPERIMENTS, "fig3", (lambda: [], ()))
        assert main(["experiment", "fig3"]) == 1

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])


class TestReportCommand:
    def test_report_written(self, tmp_path, capsys, monkeypatch):
        import repro.bench.report as report_mod

        monkeypatch.setattr(
            report_mod,
            "_REGISTRY",
            {"table2": (lambda: [{"a": 1}], "datasets")},
        )
        out = tmp_path / "r.md"
        assert main(["report", "--out", str(out), "--only", "table2"]) == 0
        assert "## table2" in out.read_text()


class TestDatasetsCommand:
    def test_datasets_table(self, capsys, monkeypatch):
        from repro.bench import harness

        monkeypatch.setattr(
            harness,
            "table2_dataset_stats",
            lambda: [
                {
                    "dataset": "lj-sim",
                    "paper": "LiveJournal",
                    "V": 10,
                    "E": 20,
                    "csr_mb": 0.1,
                    "d_max": 3,
                    "paper_V": 4.85e6,
                    "paper_E": 8.57e7,
                    "paper_csr_gb": 0.364,
                    "scale": 1000.0,
                }
            ],
        )
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "lj-sim" in out and "LiveJournal" in out


class TestLintCommand:
    def test_lint_clean_file(self, tmp_path, capsys):
        target = tmp_path / "ok.py"
        target.write_text("x = 1\n")
        assert main(["lint", str(target)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_lint_flags_violations(self, tmp_path, capsys):
        target = tmp_path / "bad.py"
        target.write_text("import random\n")
        assert main(["lint", str(target)]) == 1
        out = capsys.readouterr()
        assert "rng-factory" in out.out
        assert "1 violation(s)" in out.err

    def test_lint_missing_path(self, tmp_path, capsys):
        assert main(["lint", str(tmp_path / "nope.py")]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_lint_defaults_to_package_sources(self, capsys):
        # No paths: lints the installed repro package, which must be clean.
        assert main(["lint"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_lint_sarif_output(self, tmp_path, capsys):
        target = tmp_path / "bad.py"
        target.write_text("import random\n")
        sarif = tmp_path / "lint.sarif"
        assert main(["lint", "--sarif", str(sarif), str(target)]) == 1
        capsys.readouterr()
        payload = json.loads(sarif.read_text())
        assert payload["version"] == "2.1.0"
        results = payload["runs"][0]["results"]
        assert [r["ruleId"] for r in results] == ["rng-factory"]


class TestElasticRunFlags:
    @pytest.fixture()
    def graph_file(self, tmp_path, small_graph):
        from repro.graph.io import save_csr

        path = tmp_path / "g.npz"
        save_csr(small_graph, path)
        return str(path)

    def test_elastic_run_end_to_end(self, graph_file, capsys):
        code = main(
            ["run", "--graph", graph_file, "--algorithm", "uniform",
             "--walks", "300", "--devices", "2", "--sanitize",
             "--topology", "ring",
             "--device-spec", "big:compute=2,link=2",
             "--device-spec", "small:c=0.5",
             "--fail", "1@4", "--rebalance-threshold", "1.5"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "device failures : 1" in out
        assert "walks recovered" in out
        assert "sanitizer: clean" in out

    def test_metrics_prom_file(self, graph_file, tmp_path, capsys):
        prom = tmp_path / "metrics.prom"
        code = main(
            ["run", "--graph", graph_file, "--walks", "200",
             "--devices", "2", "--metrics-prom", str(prom)]
        )
        assert code == 0
        assert "wrote Prometheus metrics" in capsys.readouterr().out
        text = prom.read_text()
        assert "# TYPE repro_iterations_total counter" in text
        assert 'graph="small"' in text
        assert "repro_device_pending_walks{" in text

    def test_metrics_prom_stdout(self, graph_file, capsys):
        code = main(
            ["run", "--graph", graph_file, "--walks", "200",
             "--devices", "2", "--metrics-prom", "-"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "# HELP repro_iterations_total" in out

    def test_metrics_prom_rejects_unrouted_system(self, graph_file, capsys):
        code = main(
            ["run", "--graph", graph_file, "--walks", "100",
             "--system", "thunderrw", "--metrics-prom", "-"]
        )
        assert code == 2
        captured = capsys.readouterr()
        assert "not supported" in captured.err
        assert captured.out == ""

    @pytest.mark.parametrize(
        "flags",
        [
            ["--fail", "1@4"],
            ["--device-spec", "a:c=2"],
            ["--rebalance-threshold", "1.5"],
            ["--topology", "ring"],
        ],
    )
    def test_cluster_flags_require_multi_device(
        self, graph_file, capsys, flags
    ):
        code = main(
            ["run", "--graph", graph_file, "--walks", "100"] + flags
        )
        assert code == 2
        captured = capsys.readouterr()
        assert "requires --devices > 1" in captured.err
        assert captured.out == ""

    def test_cluster_flags_reject_non_lighttraffic(self, graph_file, capsys):
        code = main(
            ["run", "--graph", graph_file, "--walks", "100",
             "--system", "thunderrw", "--devices", "2", "--fail", "1@4"]
        )
        assert code == 2
        captured = capsys.readouterr()
        assert "is not supported" in captured.err
        assert "supported engines: lighttraffic" in captured.err
        assert captured.out == ""

    def test_malformed_fail_spec_rejected(self, graph_file, capsys):
        code = main(
            ["run", "--graph", graph_file, "--walks", "100",
             "--devices", "2", "--fail", "nope"]
        )
        assert code == 2
        assert "DEVICE@ITERATION" in capsys.readouterr().err

    def test_device_spec_count_mismatch_rejected(self, graph_file, capsys):
        code = main(
            ["run", "--graph", graph_file, "--walks", "100",
             "--devices", "2", "--device-spec", "only-one:c=2"]
        )
        assert code == 2
        assert "repeat it once per device" in capsys.readouterr().err

    def test_malformed_device_spec_rejected(self, graph_file, capsys):
        code = main(
            ["run", "--graph", graph_file, "--walks", "100",
             "--devices", "2",
             "--device-spec", "a:bogus=1", "--device-spec", "b"]
        )
        assert code == 2
        assert "bad device-spec item" in capsys.readouterr().err


class TestServeCLI:
    def test_serve_closed_loop_session(self, capsys):
        code = main(
            ["serve", "--scale", "8", "--workers", "4",
             "--queries", "8", "--seed", "5"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "served 8 queries" in out
        assert "p99" in out
        assert "sanitizer: clean" in out

    def test_serve_kind_subset(self, capsys):
        code = main(
            ["serve", "--scale", "8", "--queries", "4",
             "--kinds", "ppr,uniform"]
        )
        assert code == 0
        assert "served 4 queries" in capsys.readouterr().out

    def test_serve_rejects_unknown_kind(self, capsys):
        code = main(["serve", "--scale", "8", "--kinds", "bogus"])
        assert code == 2
        captured = capsys.readouterr()
        assert "--kinds bogus is not supported" in captured.err
        assert "supported engines:" in captured.err
        assert captured.out == ""

    def test_serve_rejects_bad_worker_count(self, capsys):
        code = main(["serve", "--scale", "8", "--workers", "0"])
        assert code == 2
        assert "workers must be >= 1" in capsys.readouterr().err

    def test_serve_rejects_oversized_query(self, capsys):
        # The default workload requests 4..16 walks per query, so a
        # 3-walk batch budget can never admit it: client error, exit 2
        # with a hint, nothing on stdout.
        code = main(
            ["serve", "--scale", "8", "--queries", "4",
             "--max-batch-walks", "3"]
        )
        assert code == 2
        captured = capsys.readouterr()
        assert "max_batch_walks=3" in captured.err
        assert "split the query" in captured.err
        assert captured.out == ""
