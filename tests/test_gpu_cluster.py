"""Units for the multi-device substrate (:mod:`repro.gpu.cluster`).

Covers the partition→device assignment (contiguity, coverage, byte
balance, degenerate shapes), the P2P link cost model (packet
quantization), channel stream serialization, and the cluster owner maps
the sharded engine and sanitizer rely on.
"""

import numpy as np
import pytest

from repro.gpu.cluster import (
    CAT_P2P,
    NVLINK_P2P,
    PCIE_P2P,
    DeviceCluster,
    PeerChannel,
    PeerLinkSpec,
    assign_partitions,
    available_peer_links,
    peer_link_by_name,
)


class TestAssignPartitions:
    def test_equal_sizes_split_evenly(self):
        device_of = assign_partitions(np.full(8, 100), 4)
        assert device_of.tolist() == [0, 0, 1, 1, 2, 2, 3, 3]

    def test_single_device_owns_everything(self):
        device_of = assign_partitions(np.full(5, 10), 1)
        assert device_of.tolist() == [0] * 5

    @pytest.mark.parametrize("num_devices", [1, 2, 3, 4, 7])
    def test_contiguous_and_covering(self, num_devices):
        rng = np.random.default_rng(3)
        sizes = rng.integers(1, 1000, size=16)
        device_of = assign_partitions(sizes, num_devices)
        # Non-decreasing => each device owns one contiguous range.
        assert (np.diff(device_of) >= 0).all()
        # Every device owns at least one partition.
        assert set(device_of.tolist()) == set(range(num_devices))

    def test_byte_balance_tracks_quota(self):
        # One huge partition followed by small ones: the huge one alone
        # exceeds device 0's quota, so everything after it moves on.
        sizes = np.array([1000, 10, 10, 10])
        device_of = assign_partitions(sizes, 2)
        assert device_of.tolist() == [0, 1, 1, 1]

    def test_forced_advance_leaves_one_each(self):
        # Byte-greedy assignment would starve the last device; the
        # forced advance guarantees every device at least one partition.
        sizes = np.array([1, 1, 1000])
        device_of = assign_partitions(sizes, 3)
        assert device_of.tolist() == [0, 1, 2]

    def test_more_devices_than_partitions_rejected(self):
        with pytest.raises(ValueError, match="cannot shard"):
            assign_partitions(np.array([10, 10]), 3)

    def test_zero_devices_rejected(self):
        with pytest.raises(ValueError, match="num_devices"):
            assign_partitions(np.array([10]), 0)

    def test_empty_sizes_rejected(self):
        with pytest.raises(ValueError, match="at least one partition"):
            assign_partitions(np.array([], dtype=np.int64), 1)


class TestPeerLinkSpec:
    def test_presets_registered(self):
        assert available_peer_links() == ("nvlink", "pcie-p2p")
        assert peer_link_by_name("nvlink") is NVLINK_P2P
        assert peer_link_by_name("pcie-p2p") is PCIE_P2P
        with pytest.raises(KeyError, match="unknown peer link"):
            peer_link_by_name("infiniband")

    def test_transfer_time_packet_quantized(self):
        spec = PeerLinkSpec(
            name="t", bandwidth=1e9, latency_seconds=1e-6, packet_bytes=256
        )
        one_packet = 1e-6 + 256 / 1e9
        # 1 byte and 256 bytes both occupy exactly one packet.
        assert spec.transfer_time(1) == pytest.approx(one_packet)
        assert spec.transfer_time(256) == pytest.approx(one_packet)
        # 257 bytes tips into a second packet.
        assert spec.transfer_time(257) == pytest.approx(
            1e-6 + 512 / 1e9
        )

    def test_empty_transfer_is_free(self):
        assert NVLINK_P2P.transfer_time(0) == 0.0

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            NVLINK_P2P.transfer_time(-1)

    def test_invalid_specs_rejected(self):
        with pytest.raises(ValueError, match="bandwidth"):
            PeerLinkSpec(name="x", bandwidth=0.0)
        with pytest.raises(ValueError, match="latency"):
            PeerLinkSpec(name="x", bandwidth=1.0, latency_seconds=-1.0)
        with pytest.raises(ValueError, match="packet_bytes"):
            PeerLinkSpec(name="x", bandwidth=1.0, packet_bytes=0)


class TestPeerChannel:
    def test_transfers_serialize_on_the_stream(self):
        spec = PeerLinkSpec(
            name="t", bandwidth=1e9, latency_seconds=0.0, packet_bytes=1
        )
        chan = PeerChannel(0, 1, spec)
        s0, e0 = chan.transfer(1000, earliest=0.0)
        s1, e1 = chan.transfer(1000, earliest=0.0)
        assert (s0, e0) == (0.0, pytest.approx(1e-6))
        # Second transfer waits for the first even though released at 0.
        assert s1 == e0
        assert e1 == pytest.approx(2e-6)

    def test_earliest_release_respected(self):
        chan = PeerChannel(0, 1, NVLINK_P2P)
        start, end = chan.transfer(100, earliest=5.0)
        assert start == 5.0
        assert end > start

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="distinct devices"):
            PeerChannel(2, 2, NVLINK_P2P)

    def test_op_category_recorded(self):
        chan = PeerChannel(0, 1, NVLINK_P2P, record_ops=True)
        chan.transfer(100, earliest=0.0)
        assert [op.category for op in chan.stream.ops] == [CAT_P2P]


class TestDeviceCluster:
    def make(self, num_devices=2):
        return DeviceCluster(np.full(8, 64), num_devices)

    def test_owner_maps_agree(self):
        cluster = self.make(4)
        for part in range(8):
            dev = cluster.owner(part)
            assert cluster.owned_mask(dev)[part]
            assert part in cluster.owned_partitions(dev)

    def test_owned_masks_partition_the_graph(self):
        cluster = self.make(3)
        stacked = np.stack(
            [cluster.owned_mask(d) for d in range(3)]
        )
        # Every partition owned by exactly one device.
        assert (stacked.sum(axis=0) == 1).all()

    def test_channels_cached_and_directed(self):
        cluster = self.make(2)
        forward = cluster.channel(0, 1)
        backward = cluster.channel(1, 0)
        assert forward is cluster.channel(0, 1)
        assert forward is not backward
        assert len(cluster.all_streams()) == 2

    def test_channel_device_range_checked(self):
        cluster = self.make(2)
        with pytest.raises(IndexError, match="out of range"):
            cluster.channel(0, 2)
