"""Coalesced serving is bit-identical per request to standalone runs.

The serving front-end's central contract: a query that rides a shared
coalesced batch receives *exactly* the walks it would have received from
a standalone engine run seeded with its own derived seed — final
vertices and per-walk step counts, bit for bit.  Two layers pin it:

* direct :class:`~repro.serve.batch.CoalescedBatch` parity per query
  kind and transition sampler, against
  :func:`~repro.serve.batch.run_standalone`;
* session-level parity — every request routed by a mixed-workload
  :class:`~repro.serve.session.ServeSession` replays standalone from its
  :class:`~repro.serve.session.RequestResult` seed.
"""

import numpy as np
import pytest

from repro.core.config import EngineConfig
from repro.core.engine import LightTrafficEngine
from repro.graph.generators import rmat, with_random_weights
from repro.serve import (
    CoalescedBatch,
    EmbeddingQuery,
    MetapathQuery,
    PPRQuery,
    ServeSession,
    UniformQuery,
    default_workload,
    make_vertex_types,
    run_standalone,
)


@pytest.fixture(scope="module")
def serve_graph():
    """Weighted power-law graph shared by every parity case."""
    graph = rmat(scale=9, edge_factor=6, seed=7, name="serve-parity")
    return with_random_weights(graph, seed=11)


@pytest.fixture(scope="module")
def serve_types(serve_graph):
    return make_vertex_types(serve_graph, seed=7)


@pytest.fixture()
def serve_config():
    return EngineConfig(
        partition_bytes=2048,
        batch_walks=32,
        graph_pool_partitions=4,
        walk_pool_walks=256,
        seed=123,
        sanitize=True,
    )


def coalescible_cases():
    return [
        pytest.param(
            lambda walks: PPRQuery(
                walks=walks, sources=(1, 5, 9), max_length=20
            ),
            id="ppr",
        ),
        pytest.param(
            lambda walks: UniformQuery(walks=walks, length=10),
            id="uniform-unweighted",
        ),
        pytest.param(
            lambda walks: UniformQuery(
                walks=walks, length=10, weighted=True, sampler="alias"
            ),
            id="uniform-alias",
        ),
        pytest.param(
            lambda walks: UniformQuery(
                walks=walks, length=10, weighted=True, sampler="inverse"
            ),
            id="uniform-inverse",
        ),
        pytest.param(
            lambda walks: MetapathQuery(
                walks=walks, metapath=(0, 1), length=10
            ),
            id="metapath",
        ),
    ]


class TestCoalescedBatchParity:
    @pytest.mark.parametrize("make_query", coalescible_cases())
    def test_two_query_batch_matches_standalone(
        self, serve_graph, serve_types, serve_config, make_query
    ):
        entries = [(make_query(9), 101), (make_query(6), 202)]
        batch = CoalescedBatch(
            serve_graph, entries, vertex_types=serve_types
        )
        cfg = serve_config.with_options(seed=999, rng_mode="counter")
        stats = LightTrafficEngine(serve_graph, batch, cfg).run(
            batch.total_walks
        )
        assert stats.sanitizer["clean"]
        for index, (query, seed) in enumerate(entries):
            solo = run_standalone(
                serve_graph, query, seed, serve_config,
                vertex_types=serve_types,
            )
            lane = batch.lane_slice(index)
            np.testing.assert_array_equal(
                batch.final_vertices[lane], solo.final_vertices
            )
            np.testing.assert_array_equal(
                batch.steps_taken[lane], solo.steps_taken
            )
            # Every lane actually terminated and was routed.
            assert (batch.final_vertices[lane] >= 0).all()

    def test_batch_engine_seed_is_irrelevant(
        self, serve_graph, serve_types, serve_config
    ):
        """Per-lane keying makes the batch engine's own seed inert."""
        entries = [
            (PPRQuery(walks=7, sources=(2, 4), max_length=16), 31),
            (PPRQuery(walks=5, sources=(8,), max_length=16), 32),
        ]
        outcomes = []
        for engine_seed in (1, 77777):
            batch = CoalescedBatch(
                serve_graph, entries, vertex_types=serve_types
            )
            cfg = serve_config.with_options(
                seed=engine_seed, rng_mode="counter"
            )
            LightTrafficEngine(serve_graph, batch, cfg).run(
                batch.total_walks
            )
            outcomes.append(
                (batch.final_vertices.copy(), batch.steps_taken.copy())
            )
        np.testing.assert_array_equal(outcomes[0][0], outcomes[1][0])
        np.testing.assert_array_equal(outcomes[0][1], outcomes[1][1])

    def test_mixed_batch_keys_rejected(self, serve_graph, serve_config):
        entries = [
            (UniformQuery(walks=4, length=10), 1),
            (UniformQuery(walks=4, length=12), 2),
        ]
        with pytest.raises(ValueError, match="batch key"):
            CoalescedBatch(serve_graph, entries)

    def test_subset_draw_queries_rejected(self, serve_graph):
        rejection = UniformQuery(
            walks=4, length=8, weighted=True, sampler="rejection"
        )
        assert not rejection.coalescible
        with pytest.raises(ValueError, match="coalesced"):
            CoalescedBatch(serve_graph, [(rejection, 1)])
        assert not EmbeddingQuery(walks=4, length=8).coalescible


class TestSessionParity:
    def test_every_routed_request_replays_standalone(
        self, serve_graph, serve_types, serve_config
    ):
        workload = default_workload(serve_graph, queries=12, seed=5)
        session = ServeSession(
            serve_graph,
            serve_config,
            workers=6,
            vertex_types=serve_types,
        )
        report = session.run(workload)
        assert len(report.results) == len(workload)
        assert report.coalesced_queries > 0
        seeds = {r.seed for r in report.results}
        assert len(seeds) == len(report.results)
        for result in report.results:
            solo = run_standalone(
                serve_graph,
                result.query,
                result.seed,
                serve_config,
                vertex_types=serve_types,
            )
            np.testing.assert_array_equal(
                result.final_vertices, solo.final_vertices
            )
            np.testing.assert_array_equal(
                result.steps_taken, solo.steps_taken
            )

    def test_parity_survives_batch_composition_changes(
        self, serve_graph, serve_types, serve_config
    ):
        """Worker count reshapes batches; per-request results do not move."""
        workload = default_workload(
            serve_graph, kinds=("ppr", "uniform"), queries=8, seed=3
        )
        outcomes = {}
        for workers in (1, 8):
            report = ServeSession(
                serve_graph,
                serve_config,
                workers=workers,
                vertex_types=serve_types,
            ).run(workload)
            outcomes[workers] = {
                r.request_id: (r.final_vertices, r.steps_taken)
                for r in report.results
            }
        assert set(outcomes[1]) == set(outcomes[8])
        for rid in outcomes[1]:
            np.testing.assert_array_equal(
                outcomes[1][rid][0], outcomes[8][rid][0]
            )
            np.testing.assert_array_equal(
                outcomes[1][rid][1], outcomes[8][rid][1]
            )
