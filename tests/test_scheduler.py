"""Unit tests for the scheduling policies (§III-D)."""

import numpy as np
import pytest

from repro.core.scheduler import Scheduler
from repro.gpu.memory import BlockPool
from repro.walks.pool import DeviceWalkPool, HostWalkPool
from repro.walks.state import WalkArrays


def walks(n, first_id=0):
    return WalkArrays.fresh(np.zeros(n, dtype=np.int64), first_id)


@pytest.fixture()
def pools():
    host = HostWalkPool(num_partitions=6, batch_capacity=4)
    device = DeviceWalkPool(6, batch_capacity=4, capacity_walks=10_000)
    return host, device


class TestSelectPartition:
    def test_selective_picks_most_walks(self, pools):
        host, device = pools
        host.append_walks(1, walks(3))
        host.append_walks(4, walks(9))
        device.append_walks(2, walks(5))
        sched = Scheduler(6, selective=True, preemptive=True)
        assert sched.select_partition(host, device) == 4

    def test_selective_counts_host_plus_device(self, pools):
        host, device = pools
        host.append_walks(1, walks(3))
        device.append_walks(1, walks(3))
        host.append_walks(2, walks(5))
        sched = Scheduler(6, selective=True, preemptive=True)
        assert sched.select_partition(host, device) == 1

    def test_round_robin_cycles_nonempty(self, pools):
        host, device = pools
        for p in (0, 2, 5):
            host.append_walks(p, walks(2))
        sched = Scheduler(6, selective=False, preemptive=False)
        order = [sched.select_partition(host, device) for __ in range(4)]
        assert order == [0, 2, 5, 0]

    def test_none_when_empty(self, pools):
        host, device = pools
        for selective in (True, False):
            sched = Scheduler(6, selective=selective, preemptive=False)
            assert sched.select_partition(host, device) is None

    def test_invalid_partition_count(self):
        with pytest.raises(ValueError):
            Scheduler(0, True, True)


class TestGraphVictim:
    def test_fifo_when_not_selective(self, pools):
        host, device = pools
        pool = BlockPool(3)
        for key in (4, 1, 2):
            pool.insert(key, key)
        sched = Scheduler(6, selective=False, preemptive=False)
        assert sched.graph_victim(pool, host, device) == 4

    def test_selective_evicts_fewest_walks(self, pools):
        host, device = pools
        pool = BlockPool(3)
        for key in (0, 1, 2):
            pool.insert(key, key)
        host.append_walks(0, walks(9))
        host.append_walks(1, walks(1))
        host.append_walks(2, walks(5))
        sched = Scheduler(6, selective=True, preemptive=True)
        assert sched.graph_victim(pool, host, device) == 1

    def test_protect_excluded(self, pools):
        host, device = pools
        pool = BlockPool(2)
        pool.insert(0, 0)
        pool.insert(1, 1)
        sched = Scheduler(6, selective=True, preemptive=True)
        assert sched.graph_victim(pool, host, device, protect=0) == 1

    def test_no_candidates(self, pools):
        host, device = pools
        pool = BlockPool(1)
        pool.insert(0, 0)
        sched = Scheduler(6, selective=True, preemptive=True)
        with pytest.raises(KeyError):
            sched.graph_victim(pool, host, device, protect=0)


class TestPreemptivePick:
    def test_requires_cached_graph_and_full_batch(self, pools):
        host, device = pools
        pool = BlockPool(4)
        pool.insert(1, 1)
        sched = Scheduler(6, selective=True, preemptive=True)
        assert sched.pick_preemptive_partition(pool, host, device) is None
        device.append_walks(1, walks(4))  # one full batch
        assert sched.pick_preemptive_partition(pool, host, device) == 1

    def test_uncached_graph_not_ready(self, pools):
        host, device = pools
        pool = BlockPool(4)
        device.append_walks(2, walks(8))  # graph for 2 not cached
        sched = Scheduler(6, selective=True, preemptive=True)
        assert sched.pick_preemptive_partition(pool, host, device) is None

    def test_full_batches_prefer_fewest_total_walks(self, pools):
        host, device = pools
        pool = BlockPool(4)
        pool.insert(1, 1)
        pool.insert(2, 2)
        device.append_walks(1, walks(4))
        device.append_walks(2, walks(4))
        host.append_walks(1, walks(10))  # partition 1 has more total
        sched = Scheduler(6, selective=True, preemptive=True)
        assert sched.pick_preemptive_partition(pool, host, device) == 2

    def test_partial_fallback_half_full(self, pools):
        host, device = pools
        pool = BlockPool(4)
        pool.insert(3, 3)
        device.append_walks(3, walks(1))  # < B/2: not worth preempting
        sched = Scheduler(6, selective=True, preemptive=True)
        assert sched.pick_preemptive_partition(pool, host, device) is None
        device.append_walks(3, walks(1))  # now B/2
        assert sched.pick_preemptive_partition(pool, host, device) == 3

    def test_exclude_selected(self, pools):
        host, device = pools
        pool = BlockPool(4)
        pool.insert(1, 1)
        device.append_walks(1, walks(4))
        sched = Scheduler(6, selective=True, preemptive=True)
        assert (
            sched.pick_preemptive_partition(pool, host, device, exclude=1)
            is None
        )

    def test_non_selective_takes_first(self, pools):
        host, device = pools
        pool = BlockPool(4)
        pool.insert(2, 2)
        pool.insert(1, 1)
        device.append_walks(1, walks(4))
        device.append_walks(2, walks(4))
        sched = Scheduler(6, selective=False, preemptive=True)
        assert sched.pick_preemptive_partition(pool, host, device) == 2


class TestWalkEviction:
    def test_prefers_uncached_graph_partitions(self, pools):
        host, device = pools
        pool = BlockPool(4)
        pool.insert(1, 1)
        device.append_walks(1, walks(2))
        device.append_walks(3, walks(9))  # graph not cached
        sched = Scheduler(6, selective=True, preemptive=True)
        assert sched.walk_evict_partition(pool, device) == 3

    def test_fewest_walks_among_uncached(self, pools):
        host, device = pools
        pool = BlockPool(4)
        device.append_walks(2, walks(9))
        device.append_walks(3, walks(2))
        sched = Scheduler(6, selective=True, preemptive=True)
        assert sched.walk_evict_partition(pool, device) == 3

    def test_protect_fallback(self, pools):
        host, device = pools
        pool = BlockPool(4)
        device.append_walks(2, walks(5))
        sched = Scheduler(6, selective=True, preemptive=True)
        # Only the protected partition has walks: it is still returned.
        assert sched.walk_evict_partition(pool, device, protect=2) == 2

    def test_nothing_to_evict(self, pools):
        host, device = pools
        sched = Scheduler(6, selective=True, preemptive=True)
        with pytest.raises(KeyError):
            sched.walk_evict_partition(BlockPool(2), device)

    def test_non_selective_first_candidate(self, pools):
        host, device = pools
        device.append_walks(4, walks(1))
        device.append_walks(1, walks(9))
        sched = Scheduler(6, selective=False, preemptive=False)
        assert sched.walk_evict_partition(BlockPool(2), device) == 1
