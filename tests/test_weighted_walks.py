"""Weighted-walk sampling strategies: alias vs rejection (§II-A)."""

import numpy as np
import pytest

from repro.algorithms.uniform import UniformSampling
from repro.baselines.inmemory_cpu import execute_in_memory
from repro.core.engine import run_walks
from repro.graph import generators
from repro.graph.builders import from_edges


@pytest.fixture()
def biased_graph():
    """Vertex 0 -> {1 (weight 9), 2 (weight 1)}, symmetric back edges."""
    return from_edges(
        [(0, 1), (0, 2), (1, 0), (2, 0)],
        num_vertices=3,
        weights=[9.0, 1.0, 1.0, 1.0],
    )


def first_hop_frequency(graph, sampler, rng_seed=0, walks=3000):
    rng = np.random.default_rng(rng_seed)
    algo = UniformSampling(
        length=1, weighted=True, sampler=sampler, record_paths=True
    )
    execute_in_memory(graph, algo, walks, rng)
    firsts = algo.paths[np.arange(walks) % 3 == 0, 1]
    return np.mean(firsts == 1)


class TestBiasAgreement:
    def test_alias_matches_weights(self, biased_graph):
        freq = first_hop_frequency(biased_graph, UniformSampling.SAMPLER_ALIAS)
        assert 0.85 < freq < 0.95

    def test_rejection_matches_weights(self, biased_graph):
        freq = first_hop_frequency(
            biased_graph, UniformSampling.SAMPLER_REJECTION
        )
        assert 0.85 < freq < 0.95

    def test_both_strategies_agree(self, biased_graph):
        alias = first_hop_frequency(biased_graph, "alias", rng_seed=1)
        rejection = first_hop_frequency(biased_graph, "rejection", rng_seed=2)
        assert abs(alias - rejection) < 0.05


class TestThroughEngine:
    def test_rejection_through_engine(self, tiny_config):
        g = generators.with_random_weights(
            generators.rmat(scale=9, edge_factor=5, seed=8), seed=9
        )
        algo = UniformSampling(
            length=6, weighted=True, sampler="rejection"
        )
        stats = run_walks(g, algo, 120, tiny_config)
        assert stats.total_steps == 720

    def test_uniform_weights_equal_unweighted_distribution(self, tiny_config):
        base = generators.rmat(scale=9, edge_factor=5, seed=8)
        weighted = generators.CSRGraph = None  # noqa - avoid confusion
        from repro.graph.csr import CSRGraph

        uniform_weighted = CSRGraph(
            base.offsets, base.targets, np.ones(base.num_edges), name="w1"
        )
        algo = UniformSampling(length=5, weighted=True, sampler="rejection")
        stats = run_walks(uniform_weighted, algo, 100, tiny_config)
        assert stats.total_steps == 500


class TestValidation:
    def test_unknown_sampler(self):
        with pytest.raises(ValueError, match="unknown sampler"):
            UniformSampling(weighted=True, sampler="quantum")

    def test_unweighted_graph_ignores_flag(self, tiny_config):
        g = generators.rmat(scale=9, edge_factor=5, seed=8)
        algo = UniformSampling(length=4, weighted=True)
        stats = run_walks(g, algo, 50, tiny_config)  # falls back to uniform
        assert stats.total_steps == 200
