"""Unit and property tests for walk reshuffling (§III-C, Algorithm 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.device import RTX3090
from repro.gpu.kernels import KernelModel
from repro.walks.pool import DeviceWalkPool
from repro.walks.reshuffle import (
    DirectWriteReshuffler,
    LocalIndex,
    TwoLevelReshuffler,
    group_by_partition,
)
from repro.walks.state import WalkArrays


class TestLocalIndex:
    def test_atomic_counter_semantics(self):
        idx = LocalIndex(num_partitions=3)
        assert idx.add(1, tid=0) == 0
        assert idx.add(1, tid=1) == 1
        assert idx.add(0, tid=2) == 0
        assert idx.local_len.tolist() == [1, 2, 0]
        assert len(idx) == 3

    def test_counting_sort_groups_partitions(self):
        idx = LocalIndex(num_partitions=3)
        order = [(2, 0), (0, 1), (2, 2), (1, 3), (0, 4)]
        for part, tid in order:
            idx.add(part, tid)
        entries = idx.sorted_entries()
        parts = [e[0] for e in entries]
        assert parts == sorted(parts)  # coalesced per partition
        # Within a partition, positions are 0..len-1 in insertion order.
        for part in range(3):
            positions = [pos for p, pos, __ in entries if p == part]
            assert positions == list(range(len(positions)))

    def test_out_of_range(self):
        with pytest.raises(IndexError):
            LocalIndex(2).add(5, 0)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            LocalIndex(0)


class TestGroupByPartition:
    def test_basic_grouping(self):
        w = WalkArrays.fresh(np.array([10, 20, 30, 40]))
        parts = np.array([1, 0, 1, 2])
        groups = group_by_partition(w, parts)
        assert set(groups) == {0, 1, 2}
        assert groups[1].vertices.tolist() == [10, 30]
        assert groups[0].vertices.tolist() == [20]

    def test_empty(self):
        assert group_by_partition(WalkArrays.empty(), np.array([], dtype=int)) == {}

    def test_misaligned(self):
        with pytest.raises(ValueError):
            group_by_partition(WalkArrays.fresh(np.array([1])), np.array([0, 1]))

    def test_stable_within_group(self):
        w = WalkArrays.fresh(np.array([5, 6, 7]), first_id=0)
        groups = group_by_partition(w, np.array([0, 0, 0]))
        assert groups[0].ids.tolist() == [0, 1, 2]


class TestReshufflers:
    def make_pool(self, partitions=8):
        return DeviceWalkPool(partitions, batch_capacity=4, capacity_walks=1000)

    def test_semantics_identical_across_modes(self):
        model = KernelModel(RTX3090)
        for cls in (TwoLevelReshuffler, DirectWriteReshuffler):
            pool = self.make_pool()
            shuffler = cls(model, num_partitions=8)
            w = WalkArrays.fresh(np.arange(20), first_id=0)
            parts = np.arange(20) % 8
            seconds, touched = shuffler.reshuffle(pool, w, parts)
            assert touched == 8
            assert seconds > 0
            assert pool.cached_walks == 20
            for p in range(8):
                for chunk in [pool.pop_all(p)]:
                    assert np.all(parts[np.isin(w.ids, chunk.ids)] == p)

    def test_two_level_faster(self):
        model = KernelModel(RTX3090)
        two = TwoLevelReshuffler(model, num_partitions=128)
        direct = DirectWriteReshuffler(model, num_partitions=128)
        assert two.seconds_for(10_000) < direct.seconds_for(10_000)

    def test_seconds_match_kernel_model(self):
        model = KernelModel(RTX3090)
        shuffler = TwoLevelReshuffler(model, num_partitions=64)
        assert shuffler.seconds_for(5_000) == pytest.approx(
            model.reshuffle_time(5_000, 64, "two_level"), rel=1e-9
        )

    def test_zero_walks(self):
        model = KernelModel(RTX3090)
        shuffler = TwoLevelReshuffler(model, num_partitions=4)
        seconds, touched = shuffler.reshuffle(
            self.make_pool(4), WalkArrays.empty(), np.array([], dtype=int)
        )
        assert seconds == 0.0 and touched == 0


@given(
    n=st.integers(1, 200),
    partitions=st.integers(1, 16),
    seed=st.integers(0, 100),
)
@settings(max_examples=60, deadline=None)
def test_reshuffle_conserves_and_places_walks(n, partitions, seed):
    """Property: every walk lands in exactly the partition it was assigned."""
    rng = np.random.default_rng(seed)
    w = WalkArrays.fresh(rng.integers(0, 1000, size=n), first_id=0)
    parts = rng.integers(0, partitions, size=n)
    pool = DeviceWalkPool(partitions, batch_capacity=3, capacity_walks=10**6)
    shuffler = TwoLevelReshuffler(KernelModel(RTX3090), partitions)
    shuffler.reshuffle(pool, w, parts)
    assert pool.cached_walks == n
    seen = set()
    for p in range(partitions):
        chunk = pool.pop_all(p)
        for wid in chunk.ids:
            assert parts[int(wid)] == p
            seen.add(int(wid))
    assert seen == set(range(n))


class TestBoundsGuard:
    def test_negative_partition_rejected(self):
        from repro.gpu.device import RTX3090
        from repro.gpu.kernels import KernelModel

        pool = DeviceWalkPool(4, batch_capacity=4, capacity_walks=100)
        shuffler = TwoLevelReshuffler(KernelModel(RTX3090), 4)
        w = WalkArrays.fresh(np.array([1, 2]))
        with pytest.raises(ValueError, match="out of range"):
            shuffler.reshuffle(pool, w, np.array([-1, 2]))

    def test_overflow_partition_rejected(self):
        from repro.gpu.device import RTX3090
        from repro.gpu.kernels import KernelModel

        pool = DeviceWalkPool(4, batch_capacity=4, capacity_walks=100)
        shuffler = TwoLevelReshuffler(KernelModel(RTX3090), 4)
        w = WalkArrays.fresh(np.array([1]))
        with pytest.raises(ValueError, match="out of range"):
            shuffler.reshuffle(pool, w, np.array([4]))
