"""End-to-end tests of the LightTraffic engine."""

import numpy as np
import pytest

from repro.algorithms import (
    Node2Vec,
    PageRank,
    PersonalizedPageRank,
    UniformSampling,
)
from repro.core.config import (
    COPY_ADAPTIVE,
    COPY_EXPLICIT,
    COPY_ZERO,
    EngineConfig,
)
from repro.core.engine import LightTrafficEngine, run_walks
from repro.core.stats import (
    CAT_GRAPH_LOAD,
    CAT_WALK_EVICT,
    CAT_WALK_UPDATE,
)
from repro.graph import generators


class TestCompletion:
    @pytest.mark.parametrize(
        "algorithm",
        [
            UniformSampling(length=12),
            PageRank(length=12),
            PersonalizedPageRank(stop_prob=0.2),
        ],
        ids=["uniform", "pagerank", "ppr"],
    )
    def test_all_walks_finish(self, small_graph, tiny_config, algorithm):
        stats = run_walks(small_graph, algorithm, 300, tiny_config)
        assert stats.num_walks == 300
        assert stats.total_steps > 0
        assert stats.iterations > 0
        assert stats.total_time > 0

    def test_uniform_step_count_exact(self, small_graph, tiny_config):
        stats = run_walks(small_graph, UniformSampling(length=7), 100, tiny_config)
        assert stats.total_steps == 700

    def test_single_walk(self, small_graph, tiny_config):
        stats = run_walks(small_graph, PageRank(length=3), 1, tiny_config)
        assert stats.total_steps == 3

    def test_invalid_walk_count(self, small_graph, tiny_config):
        with pytest.raises(ValueError):
            run_walks(small_graph, PageRank(length=3), 0, tiny_config)

    def test_node2vec_through_engine(self, small_graph, tiny_config):
        stats = run_walks(small_graph, Node2Vec(length=4), 50, tiny_config)
        assert stats.total_steps == 200

    def test_oversized_hub_partition(self, tiny_config):
        # The star hub's edges exceed partition_bytes: oversized singleton.
        g = generators.star(800)
        stats = run_walks(g, UniformSampling(length=4), 100, tiny_config)
        assert stats.total_steps == 400


class TestDeterminism:
    def test_same_seed_same_everything(self, small_graph, tiny_config):
        a = run_walks(small_graph, PageRank(length=10), 200, tiny_config)
        b = run_walks(small_graph, PageRank(length=10), 200, tiny_config)
        assert a.total_steps == b.total_steps
        assert a.total_time == b.total_time
        assert a.iterations == b.iterations
        assert a.breakdown == b.breakdown

    def test_same_seed_same_visit_counts(self, small_graph, tiny_config):
        algo_a, algo_b = PageRank(length=10), PageRank(length=10)
        run_walks(small_graph, algo_a, 200, tiny_config)
        run_walks(small_graph, algo_b, 200, tiny_config)
        assert np.array_equal(algo_a.visit_counts, algo_b.visit_counts)

    def test_different_seed_differs(self, small_graph, tiny_config):
        a = run_walks(small_graph, PageRank(length=10), 200, tiny_config)
        b = run_walks(
            small_graph,
            PageRank(length=10),
            200,
            tiny_config.with_options(seed=999),
        )
        assert a.total_time != b.total_time or a.iterations != b.iterations


class TestSemanticsMatchInMemory:
    def test_pagerank_distribution(self, medium_graph):
        """The out-of-memory engine estimates the same PageRank vector."""
        from repro.algorithms.pagerank import power_iteration_pagerank

        config = EngineConfig(
            partition_bytes=16 * 1024,
            batch_walks=128,
            graph_pool_partitions=8,
            seed=21,
        )
        algo = PageRank(length=50)
        run_walks(medium_graph, algo, 2 * medium_graph.num_vertices, config)
        estimated = algo.pagerank_scores()
        reference = power_iteration_pagerank(medium_graph)
        tv = 0.5 * np.abs(estimated - reference).sum()
        assert tv < 0.1

    def test_ppr_source_dominates(self, small_graph, tiny_config):
        algo = PersonalizedPageRank(stop_prob=0.15)
        run_walks(small_graph, algo, 2000, tiny_config)
        scores = algo.ppr_scores()
        assert scores[algo.resolve_source(small_graph)] == scores.max()

    def test_uniform_paths_valid_through_engine(self, small_graph, tiny_config):
        algo = UniformSampling(length=5, record_paths=True)
        run_walks(small_graph, algo, 60, tiny_config)
        for row in algo.paths:
            assert np.all(row >= 0)
            for a, b in zip(row, row[1:]):
                assert small_graph.has_edge(int(a), int(b))


class TestSchedulingToggles:
    @pytest.mark.parametrize("preemptive", [False, True])
    @pytest.mark.parametrize("selective", [False, True])
    @pytest.mark.parametrize("pipeline", [False, True])
    def test_every_toggle_combination_completes(
        self, small_graph, tiny_config, preemptive, selective, pipeline
    ):
        config = tiny_config.with_options(
            preemptive=preemptive, selective=selective, pipeline=pipeline
        )
        stats = run_walks(small_graph, PageRank(length=8), 200, config)
        assert stats.total_steps == 1600

    def test_pipeline_off_serializes(self, small_graph, tiny_config):
        config = tiny_config.with_options(
            pipeline=False, copy_mode=COPY_EXPLICIT
        )
        stats = run_walks(small_graph, PageRank(length=8), 200, config)
        # Serial execution: makespan equals the sum of all op durations.
        assert stats.total_time == pytest.approx(
            sum(stats.breakdown.values()), rel=1e-9
        )

    def test_pipeline_on_overlaps(self, small_graph, tiny_config):
        serial = run_walks(
            small_graph,
            PageRank(length=8),
            200,
            tiny_config.with_options(pipeline=False, copy_mode=COPY_EXPLICIT),
        )
        piped = run_walks(
            small_graph,
            PageRank(length=8),
            200,
            tiny_config.with_options(pipeline=True, copy_mode=COPY_EXPLICIT),
        )
        assert piped.total_time < serial.total_time

    def test_record_ops_validates_timeline(self, small_graph, tiny_config):
        config = tiny_config.with_options(record_ops=True)
        stats = run_walks(small_graph, PageRank(length=5), 100, config)
        assert stats.total_steps == 500


class TestCopyModes:
    def test_zero_copy_mode_never_copies_graph(self, small_graph, tiny_config):
        config = tiny_config.with_options(copy_mode=COPY_ZERO)
        stats = run_walks(small_graph, PageRank(length=6), 150, config)
        assert stats.explicit_copies == 0
        assert stats.zero_copy_iterations == stats.iterations
        assert stats.time(CAT_GRAPH_LOAD) == 0.0

    def test_explicit_mode_never_zero_copies(self, small_graph, tiny_config):
        config = tiny_config.with_options(copy_mode=COPY_EXPLICIT)
        stats = run_walks(small_graph, PageRank(length=6), 150, config)
        assert stats.zero_copy_iterations == 0
        assert stats.explicit_copies > 0

    def test_adaptive_uses_zero_copy_for_stragglers(self, small_graph, tiny_config):
        # PPR's geometric tail leaves few walks per partition late in the
        # run — exactly where adaptive switches to zero copy.
        config = tiny_config.with_options(copy_mode=COPY_ADAPTIVE)
        stats = run_walks(
            small_graph, PersonalizedPageRank(stop_prob=0.15), 400, config
        )
        assert stats.zero_copy_iterations > 0

    def test_miss_accounting_consistent(self, small_graph, tiny_config):
        config = tiny_config.with_options(copy_mode=COPY_ADAPTIVE)
        stats = run_walks(small_graph, PageRank(length=6), 150, config)
        # Every miss becomes either an explicit copy or a zero-copy pass.
        assert stats.graph_pool_misses == (
            stats.explicit_copies + stats.zero_copy_iterations
        )


class TestWalkPoolPressure:
    def test_eviction_triggered_and_conserves(self, small_graph):
        config = EngineConfig(
            partition_bytes=2048,
            batch_walks=16,
            graph_pool_partitions=3,
            walk_pool_walks=64,  # far below the walk count
            seed=5,
        )
        algo = UniformSampling(length=10)
        stats = run_walks(small_graph, algo, 600, config)
        assert stats.walk_batches_evicted > 0
        assert stats.time(CAT_WALK_EVICT) > 0
        assert stats.total_steps == 6000  # nothing lost

    def test_unbounded_pool_never_evicts(self, small_graph, tiny_config):
        stats = run_walks(small_graph, UniformSampling(length=10), 600, tiny_config)
        assert stats.walk_batches_evicted == 0


class TestStatsConsistency:
    def test_breakdown_nonnegative_and_total_bounds(
        self, small_graph, tiny_config
    ):
        stats = run_walks(small_graph, PageRank(length=10), 300, tiny_config)
        assert all(v >= 0 for v in stats.breakdown.values())
        # Makespan is at least the busiest single category and at most the
        # serial sum.
        assert stats.total_time <= sum(stats.breakdown.values()) + 1e-12
        assert stats.total_time >= max(stats.breakdown.values()) - 1e-12
        assert stats.throughput > 0
        assert 0 <= stats.graph_pool_hit_rate <= 1
        assert stats.time(CAT_WALK_UPDATE) > 0

    def test_summary_text(self, small_graph, tiny_config):
        stats = run_walks(small_graph, PageRank(length=4), 50, tiny_config)
        text = stats.summary()
        assert "lighttraffic/pagerank" in text
        assert "50 walks" in text


class TestGuards:
    def test_max_iterations_enforced(self, small_graph, tiny_config):
        config = tiny_config.with_options(max_iterations=2)
        with pytest.raises(RuntimeError, match="max_iterations"):
            run_walks(small_graph, PageRank(length=40), 500, config)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            EngineConfig(partition_bytes=0)
        with pytest.raises(ValueError):
            EngineConfig(batch_walks=0)
        with pytest.raises(ValueError):
            EngineConfig(graph_pool_partitions=0)
        with pytest.raises(ValueError):
            EngineConfig(copy_mode="maybe")
        with pytest.raises(ValueError):
            EngineConfig(reshuffle_mode="sometimes")

    def test_default_batch_is_16x_cores(self):
        config = EngineConfig()
        assert config.resolved_batch_walks() == 16 * config.device.total_cores

    def test_with_options(self, tiny_config):
        updated = tiny_config.with_options(seed=1)
        assert updated.seed == 1
        assert updated.partition_bytes == tiny_config.partition_bytes
