"""Model-based property tests: BatchQueue against a reference deque model."""

from collections import deque

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.walks.queue import BatchQueue
from repro.walks.state import WalkArrays


@given(
    capacity=st.integers(1, 6),
    ops=st.lists(
        st.one_of(
            st.tuples(st.just("append"), st.integers(1, 9)),
            st.tuples(st.just("pop"), st.just(0)),
        ),
        max_size=60,
    ),
)
@settings(max_examples=80, deadline=None)
def test_queue_matches_fifo_model(capacity, ops):
    """Property: batch queue pops walks in exact FIFO order, none lost."""
    queue = BatchQueue(partition=0, batch_capacity=capacity)
    model = deque()  # expected walk ids, FIFO
    next_id = 0
    for op, count in ops:
        if op == "append":
            walks = WalkArrays.fresh(
                np.zeros(count, dtype=np.int64), first_id=next_id
            )
            model.extend(range(next_id, next_id + count))
            next_id += count
            queue.append_walks(walks)
        else:
            if not model:
                continue
            batch = queue.pop_batch()
            ids = batch.ids[: batch.size].tolist()
            expected = [model.popleft() for __ in range(len(ids))]
            assert ids == expected
        assert queue.num_walks == len(model)
    # Drain the remainder and verify total conservation.
    drained = []
    for batch in queue.pop_all():
        drained.extend(batch.ids[: batch.size].tolist())
    assert drained == list(model)


@given(
    chunks=st.lists(st.integers(1, 7), min_size=1, max_size=20),
    capacity=st.integers(1, 5),
)
@settings(max_examples=60, deadline=None)
def test_rollover_batch_count(chunks, capacity):
    """Property: batches used = ceil(total / capacity) under append-only."""
    queue = BatchQueue(partition=0, batch_capacity=capacity)
    total = 0
    for count in chunks:
        queue.append_walks(
            WalkArrays.fresh(np.zeros(count, dtype=np.int64), first_id=total)
        )
        total += count
    expected_batches = -(-total // capacity)  # ceil division
    assert queue.num_batches == expected_batches
    assert queue.num_walks == total
    # Frontier is the only batch allowed to be partially full.
    for batch in queue.batches()[:-1]:
        assert batch.is_full
