"""Unit and property tests for the discrete-event timeline."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.timeline import (
    TIME_EPS,
    Stream,
    StreamOp,
    TimeBreakdown,
    Timeline,
    times_close,
)


class TestStream:
    def test_sequential_ops(self):
        s = Stream("s")
        assert s.schedule(1.0, "a") == (0.0, 1.0)
        assert s.schedule(2.0, "a") == (1.0, 3.0)
        assert s.busy_until == 3.0

    def test_earliest_release(self):
        s = Stream("s")
        start, end = s.schedule(1.0, "a", earliest=5.0)
        assert (start, end) == (5.0, 6.0)

    def test_earliest_in_past_ignored(self):
        s = Stream("s")
        s.schedule(4.0, "a")
        start, __ = s.schedule(1.0, "a", earliest=2.0)
        assert start == 4.0

    def test_zero_duration(self):
        s = Stream("s")
        start, end = s.schedule(0.0, "a")
        assert start == end == 0.0

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            Stream("s").schedule(-1.0, "a")

    def test_negative_earliest_rejected(self):
        with pytest.raises(ValueError):
            Stream("s").schedule(1.0, "a", earliest=-1.0)

    def test_idle_before(self):
        s = Stream("s")
        s.schedule(1.0, "a")
        assert s.idle_before(3.0) == 2.0
        assert s.idle_before(0.5) == 0.0

    def test_breakdown_recording(self):
        bd = TimeBreakdown()
        s = Stream("s", breakdown=bd)
        s.schedule(1.0, "load")
        s.schedule(2.0, "load")
        s.schedule(0.5, "compute")
        assert bd.get("load") == pytest.approx(3.0)
        assert bd.get("compute") == pytest.approx(0.5)
        assert bd.total() == pytest.approx(3.5)

    def test_op_recording(self):
        s = Stream("s", record_ops=True)
        s.schedule(1.0, "a")
        s.schedule(1.0, "b", earliest=4.0)
        assert [op.category for op in s.ops] == ["a", "b"]
        assert s.ops[1].start == 4.0
        assert s.ops[1].duration == 1.0


class TestTimesClose:
    def test_equal_times(self):
        assert times_close(1.5, 1.5)

    def test_rounding_noise_tolerated(self):
        t = 0.1 + 0.2  # classic float artifact vs 0.3
        assert times_close(t, 0.3)
        assert t != 0.3  # lint: allow-float-timestamp-eq

    def test_relative_scaling(self):
        # At large magnitudes the tolerance scales with the operands.
        big = 1e9
        assert times_close(big, big * (1.0 + TIME_EPS / 2))
        assert not times_close(big, big + 1.0)

    def test_distinct_times(self):
        assert not times_close(1.0, 2.0)


class TestStreamOp:
    def test_negative_duration_rejected_at_construction(self):
        with pytest.raises(ValueError, match="negative-duration"):
            StreamOp("a", start=2.0, end=1.0)

    def test_zero_duration_allowed(self):
        op = StreamOp("a", start=1.0, end=1.0)
        assert op.duration == 0.0


class TestStreamObserver:
    def test_observer_sees_every_op(self):
        tl = Timeline()
        seen = []
        tl.install_observer(
            lambda stream, cat, start, end, earliest: seen.append(
                (stream.name, cat, start, end, earliest)
            )
        )
        tl.load.schedule(1.0, "graph_load")
        tl.compute.schedule(2.0, "compute", earliest=1.0)
        assert seen == [
            ("load", "graph_load", 0.0, 1.0, 0.0),
            ("compute", "compute", 1.0, 3.0, 1.0),
        ]

    def test_double_install_rejected(self):
        tl = Timeline()
        tl.install_observer(lambda *args: None)
        with pytest.raises(RuntimeError, match="already has an observer"):
            tl.install_observer(lambda *args: None)

    def test_remove_observer(self):
        tl = Timeline()
        seen = []
        tl.install_observer(lambda *args: seen.append(args))
        tl.remove_observer()
        tl.load.schedule(1.0, "graph_load")
        assert seen == []
        tl.install_observer(lambda *args: None)  # reinstall works


class TestTimeBreakdown:
    def test_get_missing(self):
        assert TimeBreakdown().get("nope") == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            TimeBreakdown().add("a", -1.0)

    def test_merge(self):
        a, b = TimeBreakdown(), TimeBreakdown()
        a.add("x", 1.0)
        b.add("x", 2.0)
        b.add("y", 3.0)
        a.merge(b)
        assert a.get("x") == 3.0 and a.get("y") == 3.0

    def test_as_dict_copy(self):
        bd = TimeBreakdown()
        bd.add("x", 1.0)
        d = bd.as_dict()
        d["x"] = 99.0
        assert bd.get("x") == 1.0


class TestTimeline:
    def test_streams_overlap(self):
        tl = Timeline()
        tl.load.schedule(10.0, "graph_load")
        tl.compute.schedule(3.0, "compute")
        tl.evict.schedule(2.0, "evict")
        assert tl.now == 10.0  # overlapping, not summed

    def test_cross_stream_dependency(self):
        tl = Timeline()
        __, load_end = tl.load.schedule(5.0, "graph_load")
        start, __ = tl.compute.schedule(1.0, "compute", earliest=load_end)
        assert start == 5.0

    def test_validate_passes(self):
        tl = Timeline(record_ops=True)
        tl.load.schedule(1.0, "a")
        tl.load.schedule(1.0, "b")
        tl.compute.schedule(5.0, "c")
        tl.validate()

    def test_total_time(self):
        tl = Timeline()
        assert tl.total_time() == 0.0
        tl.compute.schedule(2.5, "x")
        assert tl.total_time() == 2.5


@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["compute", "load", "evict"]),
            st.floats(0.0, 10.0, allow_nan=False),
            st.floats(0.0, 20.0, allow_nan=False),
        ),
        min_size=1,
        max_size=50,
    )
)
@settings(max_examples=80, deadline=None)
def test_timeline_invariants(ops):
    """Property: per-stream ops never overlap; makespan >= every stream."""
    tl = Timeline(record_ops=True)
    streams = {"compute": tl.compute, "load": tl.load, "evict": tl.evict}
    total_by_cat = {}
    for name, duration, earliest in ops:
        start, end = streams[name].schedule(duration, name, earliest=earliest)
        assert start >= earliest
        assert end - start == pytest.approx(duration)
        total_by_cat[name] = total_by_cat.get(name, 0.0) + duration
    tl.validate()
    for name, total in total_by_cat.items():
        assert tl.breakdown.get(name) == pytest.approx(total)
        # A stream's busy_until is at least its total busy time.
        assert streams[name].busy_until >= total - 1e-9
    assert tl.now == max(s.busy_until for s in tl.streams)
