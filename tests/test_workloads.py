"""Unit tests for the benchmark workload registry and platform scaling."""

import dataclasses
import math

import pytest

from repro.bench.workloads import (
    DATASETS,
    SIM_SCALE,
    SimPlatform,
    default_platform,
    load_dataset,
    standard_config,
    standard_walks,
    user_scale,
)
from repro.gpu.device import RTX3090
from repro.gpu.pcie import PCIE3


class TestRegistry:
    def test_all_paper_datasets_present(self):
        assert set(DATASETS) == {
            "lj-sim",
            "or-sim",
            "tw-sim",
            "fs-sim",
            "uk-sim",
            "yh-sim",
            "cw-sim",
        }

    def test_unknown_dataset(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            load_dataset("nope")

    def test_smallest_dataset_loads_and_caches(self):
        a = load_dataset("lj-sim")
        b = load_dataset("lj-sim")
        assert a is b  # in-process memoization
        assert a.num_vertices > 1000
        assert a.degrees().min() >= 1


class TestUserScale:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert user_scale() == 1.0

    def test_parse(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.5")
        assert user_scale() == 0.5

    def test_invalid_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "zero")
        with pytest.raises(ValueError, match="float"):
            user_scale()

    def test_out_of_range(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "2.0")
        with pytest.raises(ValueError, match="in \\(0, 1\\]"):
            user_scale()


class TestPlatform:
    def test_scaled_sizes(self):
        platform = default_platform()
        assert platform.device.mem_bytes < RTX3090.mem_bytes
        assert platform.device.l2_bytes < RTX3090.l2_bytes
        assert platform.cpu.llc_bytes < 55 * (1 << 20)
        assert platform.calibration.sim_scale == SIM_SCALE

    def test_latency_scaled(self):
        platform = default_platform()
        assert platform.pcie3.latency_seconds == pytest.approx(
            PCIE3.latency_seconds * SIM_SCALE
        )
        # Bandwidth is NOT scaled (it is a rate, not a size).
        assert platform.pcie3.bandwidth == PCIE3.bandwidth

    def test_interconnect_lookup(self):
        platform = default_platform()
        assert platform.interconnect("pcie4").bandwidth == pytest.approx(24e9)
        with pytest.raises(KeyError):
            platform.interconnect("pcie5")

    def test_fit_boundary_matches_paper(self):
        """FS fits GPU memory; UK/YH/CW do not (paper §IV-A)."""
        platform = default_platform()
        for name, spec in DATASETS.items():
            if name in ("lj-sim", "fs-sim"):
                graph = load_dataset(name)
                assert (
                    graph.csr_bytes <= platform.gpu_memory_bytes
                ) == spec.fits_gpu_memory


class TestStandardConfig:
    def test_walk_count(self):
        graph = load_dataset("lj-sim")
        assert standard_walks(graph) == 2 * graph.num_vertices

    def test_fitting_graph_caches_all_partitions(self):
        graph = load_dataset("lj-sim")
        config = standard_config(graph)
        partitions = math.ceil(graph.csr_bytes / config.partition_bytes)
        assert config.graph_pool_partitions == max(2, partitions)

    def test_overrides_respected(self):
        graph = load_dataset("lj-sim")
        config = standard_config(graph, graph_pool_partitions=3, seed=9)
        assert config.graph_pool_partitions == 3
        assert config.seed == 9

    def test_interconnect_choice(self):
        graph = load_dataset("lj-sim")
        config = standard_config(graph, interconnect="pcie4")
        assert config.interconnect.bandwidth == pytest.approx(24e9)

    def test_batch_is_fraction_of_partition_walks(self):
        graph = load_dataset("lj-sim")
        config = standard_config(graph)
        assert 64 <= config.batch_walks <= 8192


class TestWalkIndexPressure:
    def test_cw_uniform_walk_index_strains_pool_budget(self):
        """Paper §II-B motivates out-of-memory walk indexes with CW: its
        walk index is the largest.  At our per-dataset scales the 16-byte
        uniform-sampling index of 2|V| CW walks exceeds the walk pool's
        byte budget (the walk-count cap is set from the 8-byte S_w)."""
        graph = load_dataset("cw-sim")
        config = standard_config(graph)
        platform = default_platform()
        walk_byte_budget = platform.gpu_memory_bytes * 0.4
        assert 16 * standard_walks(graph) > walk_byte_budget
        # And CW has the most walks of any dataset, as in the paper.
        assert standard_walks(graph) == max(
            standard_walks(load_dataset(n)) for n in DATASETS
        )

    def test_small_graph_walks_fit(self):
        graph = load_dataset("lj-sim")
        config = standard_config(graph)
        assert config.walk_pool_walks >= standard_walks(graph)
