"""Unit tests for graph IO (edge lists, binary CSR)."""

import numpy as np
import pytest

from repro.graph import generators
from repro.graph.builders import from_edges
from repro.graph.io import load_csr, load_edge_list, save_csr, save_edge_list


class TestEdgeListRoundtrip:
    def test_unweighted(self, tmp_path, small_graph):
        path = tmp_path / "g.txt"
        save_edge_list(small_graph, path)
        loaded = load_edge_list(path)
        assert loaded == small_graph

    def test_weighted(self, tmp_path):
        g = from_edges([(0, 1), (1, 0)], num_vertices=2, weights=[0.25, 4.0])
        path = tmp_path / "w.txt"
        save_edge_list(g, path)
        loaded = load_edge_list(path)
        assert loaded.is_weighted
        assert loaded == g

    def test_header_and_comments_skipped(self, tmp_path):
        path = tmp_path / "c.txt"
        path.write_text("# comment\n% other comment\n0 1\n1 0\n")
        g = load_edge_list(path)
        assert g.num_edges == 2

    def test_no_header(self, tmp_path, line_graph):
        path = tmp_path / "nh.txt"
        save_edge_list(line_graph, path, header=False)
        assert not path.read_text().startswith("#")
        assert load_edge_list(path) == line_graph

    def test_undirected_load(self, tmp_path):
        path = tmp_path / "d.txt"
        path.write_text("0 1\n")
        g = load_edge_list(path, undirected=True)
        assert g.has_edge(0, 1) and g.has_edge(1, 0)

    def test_preprocess_load(self, tmp_path):
        path = tmp_path / "p.txt"
        path.write_text("5 5\n5 9\n9 5\n")
        g = load_edge_list(path, preprocess=True)
        # Self loop dropped, dedup, ids compacted, undirected.
        assert g.num_vertices == 2
        assert g.num_edges == 2

    def test_malformed_line(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0\n")
        with pytest.raises(ValueError, match="malformed"):
            load_edge_list(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("")
        g = load_edge_list(path)
        assert g.num_vertices == 0
        assert g.num_edges == 0


class TestBinaryCSRRoundtrip:
    def test_unweighted(self, tmp_path, small_graph):
        path = tmp_path / "g.npz"
        save_csr(small_graph, path)
        loaded = load_csr(path)
        assert loaded == small_graph
        assert loaded.name == small_graph.name

    def test_weighted(self, tmp_path):
        g = generators.with_random_weights(generators.ring(8), seed=1)
        path = tmp_path / "w.npz"
        save_csr(g, path)
        loaded = load_csr(path)
        assert loaded.is_weighted
        assert np.allclose(loaded.weights, g.weights)

    def test_bit_exact(self, tmp_path, medium_graph):
        path = tmp_path / "m.npz"
        save_csr(medium_graph, path)
        loaded = load_csr(path)
        assert np.array_equal(loaded.offsets, medium_graph.offsets)
        assert np.array_equal(loaded.targets, medium_graph.targets)
