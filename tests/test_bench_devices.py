"""The `repro bench devices` multi-device scaling benchmark harness."""

import json

from repro.bench import devices as bench
from repro.cli import main


class TestRunBench:
    def test_quick_run_structure(self):
        results = bench.run_bench(scale=9, edge_factor=5, quick=True)
        assert results["config"]["quick"] is True
        assert results["config"]["device_counts"] == [1, 2, 4]
        runs = results["runs"]
        assert set(runs) == {"1", "2", "4"}
        assert runs["1"]["speedup"] == 1.0
        assert runs["1"]["walks_migrated"] == 0
        for run in runs.values():
            assert run["total_time"] > 0
            assert run["sanitizer_clean"]
        # Shards exchange walks once there is more than one of them.
        assert runs["2"]["walks_migrated"] > 0
        assert runs["4"]["walks_migrated"] > 0
        checks = results["checks"]
        assert checks["conservation_ok"]
        # quick mode reports the speedup but does not enforce the floor.
        assert checks["speedup_enforced"] is False
        assert checks["all_ok"]

    def test_multi_device_runs_report_device_times(self):
        results = bench.run_bench(scale=9, edge_factor=5, quick=True)
        times = results["runs"]["4"]["device_times"]
        assert set(times) == {"0", "1", "2", "3"}
        assert all(t >= 0 for t in times.values())

    def test_summary_mentions_speedup_and_checks(self):
        results = bench.run_bench(scale=9, edge_factor=5, quick=True)
        text = bench.format_summary(results)
        assert "multi-device scaling benchmark" in text
        assert "speedup" in text
        assert "conservation_ok=True" in text


class TestCLI:
    def test_bench_devices_writes_json(self, tmp_path):
        out = tmp_path / "BENCH_devices.json"
        code = main(
            [
                "bench", "devices", "--quick",
                "--scale", "9", "--edge-factor", "5",
                "--out", str(out),
            ]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["checks"]["conservation_ok"]
        assert payload["config"]["quick"] is True

    def test_bench_devices_stdout_only(self, capsys):
        code = main(
            [
                "bench", "devices", "--quick",
                "--scale", "9", "--edge-factor", "5",
                "--out", "-",
            ]
        )
        assert code == 0
        assert "multi-device scaling benchmark" in capsys.readouterr().out
