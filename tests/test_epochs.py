"""Tests for the multi-epoch driver."""

import numpy as np
import pytest

from repro.algorithms import PageRank, UniformSampling
from repro.core.epochs import run_epochs


class TestRunEpochs:
    def test_aggregates(self, small_graph, tiny_config):
        result = run_epochs(
            small_graph,
            lambda: UniformSampling(length=5),
            epochs=3,
            num_walks=60,
            config=tiny_config,
        )
        assert result.epochs == 3
        assert result.total_steps == 3 * 60 * 5
        assert len(result.per_epoch) == 3
        assert result.total_time == pytest.approx(
            sum(s.total_time for s in result.per_epoch)
        )
        assert result.mean_epoch_time > 0
        assert result.throughput > 0

    def test_default_walk_count_is_v(self, small_graph, tiny_config):
        result = run_epochs(
            small_graph, lambda: UniformSampling(length=2), epochs=1,
            config=tiny_config,
        )
        assert result.num_walks_per_epoch == small_graph.num_vertices

    def test_epochs_draw_independent_trajectories(self, small_graph, tiny_config):
        result = run_epochs(
            small_graph,
            lambda: PageRank(length=6),
            epochs=2,
            num_walks=100,
            config=tiny_config,
        )
        a, b = result.algorithms
        assert not np.array_equal(a.visit_counts, b.visit_counts)

    def test_keep_algorithms_false(self, small_graph, tiny_config):
        result = run_epochs(
            small_graph,
            lambda: UniformSampling(length=3),
            epochs=2,
            num_walks=40,
            config=tiny_config,
            keep_algorithms=False,
        )
        assert result.algorithms == []

    def test_invalid_epochs(self, small_graph, tiny_config):
        with pytest.raises(ValueError):
            run_epochs(
                small_graph, lambda: PageRank(3), epochs=0, config=tiny_config
            )

    def test_deterministic_given_seed(self, small_graph, tiny_config):
        def run():
            return run_epochs(
                small_graph,
                lambda: UniformSampling(length=4),
                epochs=2,
                num_walks=50,
                config=tiny_config,
            )

        assert run().total_time == run().total_time
