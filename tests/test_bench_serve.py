"""The `repro bench serve` sustained-load serving benchmark harness."""

import json

import pytest

from repro.bench import serve as bench
from repro.cli import main


@pytest.fixture(scope="module")
def quick_results():
    return bench.run_bench(scale=8, edge_factor=5, quick=True)


class TestRunBench:
    def test_quick_run_structure(self, quick_results):
        config = quick_results["config"]
        assert config["quick"] is True
        assert config["worker_counts"] == [2, 8]
        assert config["kinds"] == ["ppr", "uniform", "metapath", "node2vec"]
        runs = quick_results["runs"]
        assert set(runs) == {
            "closed-w2", "closed-w8", "open-w2", "open-w8",
        }
        for name, run in runs.items():
            assert run["sanitizer_clean"], name
            assert run["engine_sanitizers_clean"], name
            assert run["queries_admitted"] == config["queries"]
            assert run["queries_completed"] == config["queries"]
            assert run["makespan"] > 0
            assert run["throughput"]["queries_per_second"] > 0
            for series in run["latency"].values():
                assert series["p50"] <= series["p90"] <= series["p99"]
        for name in ("open-w2", "open-w8"):
            assert runs[name]["arrival"] == "open"
            assert runs[name]["arrival_rate"] > 0
        checks = quick_results["checks"]
        assert checks["parity_ok"]
        assert checks["conservation_ok"]
        assert checks["latency_monotonic"]
        assert checks["coalescing_exercised"]
        # quick mode reports latency but does not enforce perf gates.
        assert checks["perf_enforced"] is False
        assert checks["all_ok"]

    def test_parity_gate_rechecks_requests(self, quick_results):
        parity = quick_results["parity"]
        assert parity["requests_checked"] > 0
        assert parity["mismatched_requests"] == []
        assert parity["ok"]

    def test_results_round_trip_as_json(self, quick_results):
        payload = json.loads(json.dumps(quick_results))
        assert payload["checks"]["all_ok"]

    def test_summary_mentions_gates_and_latency(self, quick_results):
        text = bench.format_summary(quick_results)
        assert "walk-serving benchmark" in text
        assert "parity gate" in text
        assert "conservation_ok=True" in text
        assert "p99" in text


class TestCLI:
    def test_bench_serve_writes_json(self, tmp_path):
        out = tmp_path / "BENCH_serve.json"
        code = main(
            [
                "bench", "serve", "--quick",
                "--scale", "8", "--edge-factor", "5",
                "--out", str(out),
            ]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["checks"]["all_ok"]
        assert payload["config"]["quick"] is True
        assert payload["parity"]["ok"]

    def test_bench_serve_stdout_only(self, capsys):
        code = main(
            [
                "bench", "serve", "--quick",
                "--scale", "8", "--edge-factor", "5", "--out", "-",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "walk-serving benchmark" in out
