"""Tests for the markdown report generator."""

import pytest

from repro.bench.report import (
    experiment_registry,
    generate_report,
    rows_to_markdown,
    write_report,
)


def fake_registry():
    return {
        "alpha": (lambda: [{"x": 1, "y": 2.5}], "first experiment"),
        "beta": (lambda: [{"a": "b"}], "second experiment"),
        "empty": (lambda: [], "nothing"),
    }


class TestRowsToMarkdown:
    def test_table_shape(self):
        text = rows_to_markdown([{"x": 1, "y": 2}, {"x": 3, "y": 4}])
        lines = text.splitlines()
        assert lines[0] == "| x | y |"
        assert lines[1] == "|---|---|"
        assert len(lines) == 4

    def test_missing_keys_blank(self):
        text = rows_to_markdown([{"x": 1, "y": 2}, {"x": 3}])
        assert text.splitlines()[-1] == "| 3 |  |"

    def test_empty(self):
        assert rows_to_markdown([]) == "_no rows_"


class TestGenerateReport:
    def test_all_sections(self):
        text = generate_report(registry=fake_registry())
        assert "## alpha — first experiment" in text
        assert "## beta — second experiment" in text
        assert "_no rows_" in text
        assert "| x | y |" in text

    def test_only_subset(self):
        text = generate_report(only=["beta"], registry=fake_registry())
        assert "beta" in text
        assert "alpha" not in text

    def test_unknown_experiment(self):
        with pytest.raises(KeyError, match="unknown experiments"):
            generate_report(only=["gamma"], registry=fake_registry())

    def test_write_report(self, tmp_path):
        path = tmp_path / "r.md"
        text = write_report(str(path), registry=fake_registry())
        assert path.read_text() == text


class TestRealRegistry:
    def test_covers_all_paper_experiments(self):
        names = set(experiment_registry())
        assert {"table1", "table2", "table3"} <= names
        assert {f"fig{i}" for i in (3, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18)} <= names


class TestRealTable2:
    def test_table2_through_real_registry(self, tmp_path):
        """Integration: the lightest real experiment end to end."""
        text = write_report(str(tmp_path / "t2.md"), only=["table2"])
        assert "## table2 — dataset statistics" in text
        for name in ("lj-sim", "uk-sim", "cw-sim"):
            assert name in text
