"""Tests for the sparkline renderer."""

import math

import pytest

from repro.bench.sparkline import series_line, sparkline


class TestSparkline:
    def test_monotone_series(self):
        line = sparkline([1, 2, 3, 4])
        assert line[0] == "▁"
        assert line[-1] == "█"
        assert len(line) == 4

    def test_flat_series(self):
        line = sparkline([5, 5, 5])
        assert len(set(line)) == 1

    def test_empty(self):
        assert sparkline([]) == ""

    def test_downsampling(self):
        line = sparkline(list(range(100)), width=10)
        assert len(line) == 10
        assert line[0] == "▁" and line[-1] == "█"

    def test_width_shorter_than_data_keeps_data(self):
        assert len(sparkline([1, 2], width=10)) == 2

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            sparkline([1], width=0)

    def test_nan_rendered_as_space(self):
        line = sparkline([1.0, math.nan, 2.0])
        assert line[1] == " "

    def test_all_nan(self):
        assert sparkline([math.nan, math.nan]) == "  "


class TestSeriesLine:
    def test_label_and_range(self):
        text = series_line("active%", [10, 20, 30])
        assert text.startswith("active%: ")
        assert "[10 .. 30]" in text

    def test_empty_series(self):
        assert "empty" in series_line("x", [])
