"""Unit tests for run statistics."""

import pytest

from repro.core.stats import (
    CAT_CPU_COMPUTE,
    CAT_GRAPH_LOAD,
    CAT_KERNEL_OTHER,
    CAT_RESHUFFLE,
    CAT_WALK_EVICT,
    CAT_WALK_LOAD,
    CAT_WALK_UPDATE,
    CAT_ZERO_COPY,
    RunStats,
)


def make_stats(**overrides):
    defaults = dict(
        system="lighttraffic",
        algorithm="pagerank",
        graph="g",
        num_walks=10,
    )
    defaults.update(overrides)
    return RunStats(**defaults)


class TestDerivedMetrics:
    def test_throughput(self):
        stats = make_stats(total_steps=1000, total_time=2.0)
        assert stats.throughput == 500.0

    def test_throughput_zero_time(self):
        assert make_stats(total_steps=10).throughput == 0.0

    def test_hit_rate(self):
        stats = make_stats(graph_pool_hits=3, graph_pool_misses=1)
        assert stats.graph_pool_hit_rate == 0.75

    def test_hit_rate_no_probes(self):
        assert make_stats().graph_pool_hit_rate == 0.0

    def test_compute_vs_transmission_split(self):
        stats = make_stats(
            breakdown={
                CAT_WALK_UPDATE: 1.0,
                CAT_RESHUFFLE: 0.5,
                CAT_KERNEL_OTHER: 0.25,
                CAT_CPU_COMPUTE: 0.25,
                CAT_GRAPH_LOAD: 2.0,
                CAT_WALK_LOAD: 1.0,
                CAT_ZERO_COPY: 0.5,
                CAT_WALK_EVICT: 0.5,
            }
        )
        assert stats.compute_time == pytest.approx(2.0)
        assert stats.transmission_time == pytest.approx(4.0)

    def test_time_lookup(self):
        stats = make_stats(breakdown={CAT_GRAPH_LOAD: 1.5})
        assert stats.time(CAT_GRAPH_LOAD) == 1.5
        assert stats.time("nonexistent") == 0.0

    def test_summary_fields(self):
        stats = make_stats(total_steps=500, total_time=0.001, iterations=7)
        text = stats.summary()
        for token in ("lighttraffic/pagerank", "10 walks", "7 iters"):
            assert token in text
