"""Runtime sanitizer: clean runs stay clean, injected faults are caught.

Two halves:

* *Clean sweep* — full engine/baseline runs with ``sanitize=True`` must
  report zero violations across every transition sampler, copy mode and
  the multi-round/subway/UVM baselines.  The sanitizer is pure
  observation, so the run statistics must also be bit-identical with and
  without it.
* *Fault injection* — each invariant is deliberately broken through the
  real substrate objects (timeline streams, graph pool, walk pools, bus
  events) and must yield exactly one violation of the right rule, with a
  non-empty provenance trail.
"""

import numpy as np
import pytest

from repro.algorithms import PageRank, UniformSampling
from repro.analysis import (
    RULE_CROSS_DEVICE,
    RULE_DOUBLE_CONSUME,
    RULE_EVICT_IN_FLIGHT,
    RULE_MIGRATION,
    RULE_REQUEST_CONSERVATION,
    RULE_STALE_OWNER,
    RULE_RESIDENCY,
    RULE_STREAM_AFFINITY,
    RULE_STREAM_MONOTONIC,
    RULE_WALK_CAPACITY,
    RULE_WALK_CONSERVATION,
    Sanitizer,
    format_summary,
)
from repro.core.config import COPY_EXPLICIT, COPY_ZERO, EngineConfig
from repro.core.engine import LightTrafficEngine
from repro.core.events import (
    SERVED_EXPLICIT,
    BatchLoaded,
    DeviceFailed,
    DeviceRecoveredWalks,
    EventBus,
    GraphServed,
    IterationStarted,
    KernelDispatched,
    QueryAdmitted,
    QueryCompleted,
    Reshuffled,
    RunCompleted,
    ShardRebalanced,
    WalksDelivered,
    WalksMigrated,
)
from repro.gpu.cluster import DeviceCluster
from repro.core.stats import CAT_WALK_EVICT, CAT_WALK_LOAD, CAT_WALK_UPDATE
from repro.gpu.memory import BlockPool
from repro.gpu.timeline import Timeline
from repro.walks.pool import DeviceWalkPool, HostWalkPool
from repro.walks.state import WalkArrays


def sanitized_config(**overrides):
    base = dict(
        partition_bytes=2048,
        batch_walks=32,
        graph_pool_partitions=4,
        walk_pool_walks=256,
        seed=123,
        sanitize=True,
    )
    base.update(overrides)
    return EngineConfig(**base)


class TestCleanRuns:
    @pytest.mark.parametrize(
        "sampler", ["uniform", "alias", "inverse", "rejection"]
    )
    def test_all_samplers_clean(self, small_graph, sampler):
        algo = UniformSampling(length=5, weighted=True, sampler=sampler)
        stats = LightTrafficEngine(
            small_graph, algo, sanitized_config()
        ).run(500)
        assert stats.sanitizer is not None
        assert stats.sanitizer["clean"], format_summary(stats.sanitizer)
        assert stats.sanitizer["checks"] > 0
        assert stats.sanitizer["violation_count"] == 0

    @pytest.mark.parametrize("copy_mode", [COPY_EXPLICIT, COPY_ZERO])
    def test_copy_modes_clean(self, small_graph, copy_mode):
        stats = LightTrafficEngine(
            small_graph, PageRank(), sanitized_config(copy_mode=copy_mode)
        ).run(400)
        assert stats.sanitizer["clean"], format_summary(stats.sanitizer)

    def test_sanitizer_does_not_perturb_results(self, small_graph):
        baseline = LightTrafficEngine(
            small_graph, PageRank(), sanitized_config(sanitize=False)
        ).run(400)
        sanitized = LightTrafficEngine(
            small_graph, PageRank(), sanitized_config()
        ).run(400)
        assert sanitized.total_steps == baseline.total_steps
        assert sanitized.iterations == baseline.iterations
        assert sanitized.total_time == baseline.total_time
        assert sanitized.breakdown == baseline.breakdown

    @pytest.mark.no_sanitize  # asserts the sanitizer is absent
    def test_unsanitized_run_has_no_summary(self, small_graph):
        stats = LightTrafficEngine(
            small_graph, PageRank(), sanitized_config(sanitize=False)
        ).run(200)
        assert stats.sanitizer is None

    def test_multiround_aggregates_rounds(self, small_graph):
        from repro.baselines import MultiRoundEngine

        stats = MultiRoundEngine(
            small_graph, PageRank, sanitized_config(), rounds=2
        ).run(300)
        assert stats.sanitizer is not None
        assert stats.sanitizer["rounds"] == 2
        assert stats.sanitizer["clean"], format_summary(stats.sanitizer)

    @pytest.mark.parametrize("baseline", ["subway", "uvm"])
    def test_event_only_baselines_clean(self, small_graph, baseline):
        from repro.baselines import (
            SubwayConfig,
            SubwayEngine,
            UVMConfig,
            UVMEngine,
        )

        bus = EventBus()
        if baseline == "subway":
            engine = SubwayEngine(
                small_graph, PageRank(), SubwayConfig(seed=1), bus=bus
            )
        else:
            engine = UVMEngine(
                small_graph, PageRank(), UVMConfig(seed=1), bus=bus
            )
        sanitizer = Sanitizer().bind(expected_walks=300)
        bus.attach(sanitizer)
        engine.run(300)
        bus.detach(sanitizer)
        assert sanitizer.clean, sanitizer.format_report()
        assert sanitizer.checks >= 1


def one_violation(sanitizer, rule):
    """Assert exactly one violation, of ``rule``, carrying provenance."""
    assert len(sanitizer.violations) == 1, sanitizer.format_report()
    violation = sanitizer.violations[0]
    assert violation.rule == rule
    assert len(violation.provenance) > 0
    assert rule in str(violation)
    return violation


class TestFaultInjection:
    def test_stream_rewind_caught(self):
        timeline = Timeline()
        sanitizer = Sanitizer().bind(timeline=timeline)
        timeline.compute.schedule(1.0, CAT_WALK_UPDATE)
        # Rewind the stream clock behind its completion frontier.
        timeline.compute.busy_until = 0.0
        timeline.compute.schedule(0.5, CAT_WALK_UPDATE)
        sanitizer.unbind()
        one_violation(sanitizer, RULE_STREAM_MONOTONIC)

    def test_wrong_stream_caught(self):
        timeline = Timeline()
        sanitizer = Sanitizer().bind(timeline=timeline)
        # A device-to-host eviction on the host-to-device load stream
        # breaks the full-duplex PCIe contract.
        timeline.load.schedule(1.0, CAT_WALK_EVICT)
        sanitizer.unbind()
        one_violation(sanitizer, RULE_STREAM_AFFINITY)

    def test_clean_pipeline_passes(self):
        timeline = Timeline()
        sanitizer = Sanitizer().bind(timeline=timeline)
        timeline.load.schedule(1.0, CAT_WALK_LOAD)
        timeline.compute.schedule(2.0, CAT_WALK_UPDATE, earliest=1.0)
        timeline.evict.schedule(0.5, CAT_WALK_EVICT, earliest=3.0)
        sanitizer.unbind()
        assert sanitizer.clean, sanitizer.format_report()

    def test_evict_in_flight_load_caught(self):
        pool = BlockPool(2, name="graph-pool")
        sanitizer = Sanitizer().bind(graph_pool=pool)
        bus = EventBus()
        bus.attach(sanitizer)
        pool.insert(3, "payload")
        bus.emit(GraphServed(iteration=1, partition=3, mode=SERVED_EXPLICIT))
        # Evicted before any kernel consumed the freshly loaded partition.
        pool.evict(3)
        sanitizer.unbind()
        one_violation(sanitizer, RULE_EVICT_IN_FLIGHT)

    def test_evict_after_kernel_is_fine(self):
        pool = BlockPool(2, name="graph-pool")
        sanitizer = Sanitizer().bind(graph_pool=pool)
        bus = EventBus()
        bus.attach(sanitizer)
        pool.insert(3, "payload")
        bus.emit(GraphServed(iteration=1, partition=3, mode=SERVED_EXPLICIT))
        bus.emit(KernelDispatched(partition=3, walks=10, steps=10))
        pool.evict(3)
        sanitizer.unbind()
        assert sanitizer.clean, sanitizer.format_report()

    def test_kernel_on_evicted_partition_caught(self):
        pool = BlockPool(2, name="graph-pool")
        sanitizer = Sanitizer().bind(graph_pool=pool)
        bus = EventBus()
        bus.attach(sanitizer)
        # Partition 5 was never loaded: computing against absent graph data.
        bus.emit(KernelDispatched(partition=5, walks=10, steps=10))
        sanitizer.unbind()
        one_violation(sanitizer, RULE_RESIDENCY)

    def test_zero_copy_kernel_needs_no_residency(self):
        pool = BlockPool(2, name="graph-pool")
        sanitizer = Sanitizer().bind(graph_pool=pool)
        bus = EventBus()
        bus.attach(sanitizer)
        bus.emit(
            KernelDispatched(partition=5, walks=10, steps=10, zero_copy=True)
        )
        sanitizer.unbind()
        assert sanitizer.clean

    def test_overfilled_batch_caught(self):
        device = DeviceWalkPool(4, batch_capacity=32, capacity_walks=128)
        sanitizer = Sanitizer().bind(device=device)
        bus = EventBus()
        bus.attach(sanitizer)
        bus.emit(BatchLoaded(partition=0, walks=33))
        sanitizer.unbind()
        one_violation(sanitizer, RULE_WALK_CAPACITY)

    def test_double_consume_caught(self):
        device = DeviceWalkPool(4, batch_capacity=32, capacity_walks=128)
        sanitizer = Sanitizer().bind(device=device)
        device.append_walks(0, WalkArrays.fresh([1, 2, 3]))
        # Taking more walks than the partition buffer holds is the
        # signature of a double-consumed frontier batch.
        device._take(0, 5)
        sanitizer.unbind()
        one_violation(sanitizer, RULE_DOUBLE_CONSUME)

    def test_dropped_walk_mid_reshuffle_caught(self):
        host = HostWalkPool(4, batch_capacity=32)
        device = DeviceWalkPool(4, batch_capacity=32, capacity_walks=128)
        sanitizer = Sanitizer().bind(
            host=host, device=device, expected_walks=10
        )
        bus = EventBus()
        bus.attach(sanitizer)
        host.append_walks(0, WalkArrays.fresh(list(range(10))))
        # Pop a batch (walks now in flight) and "lose" it: the reshuffle
        # completes without re-appending or finishing those walks.
        host.pop_batch(0)
        bus.emit(Reshuffled(partition=0, walks=0))
        sanitizer.unbind()
        one_violation(sanitizer, RULE_WALK_CONSERVATION)

    def test_short_finish_count_caught(self):
        sanitizer = Sanitizer().bind(expected_walks=10)
        bus = EventBus()
        bus.attach(sanitizer)
        bus.emit(
            RunCompleted(total_time=1.0, finished_walks=9)
        )
        sanitizer.unbind()
        one_violation(sanitizer, RULE_WALK_CONSERVATION)

    def test_violation_cap_truncates(self):
        timeline = Timeline()
        sanitizer = Sanitizer(max_violations=2)
        sanitizer.bind(timeline=timeline)
        for _ in range(5):
            timeline.load.schedule(0.1, CAT_WALK_EVICT)
        sanitizer.unbind()
        assert len(sanitizer.violations) == 2
        assert sanitizer.dropped == 3
        assert not sanitizer.clean
        summary = sanitizer.summary()
        assert summary["violation_count"] == 5
        assert "truncated" in format_summary(summary)


class TestCrossDeviceFaults:
    """Multi-device invariants: each fault yields exactly one violation."""

    def test_duplicate_walk_on_two_devices_caught(self):
        pool0 = DeviceWalkPool(4, batch_capacity=32, capacity_walks=128)
        pool1 = DeviceWalkPool(4, batch_capacity=32, capacity_walks=128)
        sanitizer = (
            Sanitizer()
            .bind_shard(0, device=pool0)
            .bind_shard(1, device=pool1)
        )
        bus = EventBus()
        bus.attach(sanitizer)
        # Walk id 7 resident on both shards: a migrated walk that was
        # delivered without being removed from its source device.
        pool0.append_walks(0, WalkArrays.fresh([5, 6, 7], first_id=5))
        pool1.append_walks(1, WalkArrays.fresh([8, 9], first_id=7))
        bus.emit(IterationStarted(iteration=1, partition=0, pending_walks=5))
        sanitizer.unbind()
        one_violation(sanitizer, RULE_CROSS_DEVICE)

    def test_disjoint_shards_are_clean(self):
        pool0 = DeviceWalkPool(4, batch_capacity=32, capacity_walks=128)
        pool1 = DeviceWalkPool(4, batch_capacity=32, capacity_walks=128)
        sanitizer = (
            Sanitizer()
            .bind_shard(0, device=pool0)
            .bind_shard(1, device=pool1)
        )
        bus = EventBus()
        bus.attach(sanitizer)
        pool0.append_walks(0, WalkArrays.fresh([1, 2], first_id=0))
        pool1.append_walks(1, WalkArrays.fresh([3, 4], first_id=2))
        bus.emit(IterationStarted(iteration=1, partition=0, pending_walks=4))
        sanitizer.unbind()
        assert sanitizer.clean, sanitizer.format_report()

    def test_lost_migration_caught(self):
        sanitizer = Sanitizer()
        bus = EventBus()
        bus.attach(sanitizer)
        # Five walks enter the 0->1 channel but the run completes before
        # any delivery: the migration dropped walks in flight.
        bus.emit(WalksMigrated(src_device=0, dst_device=1, walks=5))
        bus.emit(RunCompleted(total_time=1.0, finished_walks=0))
        one_violation(sanitizer, RULE_MIGRATION)

    def test_phantom_delivery_caught(self):
        sanitizer = Sanitizer()
        bus = EventBus()
        bus.attach(sanitizer)
        # A delivery with no matching send duplicates walks out of thin
        # air; caught live, not just at run completion.
        bus.emit(WalksDelivered(src_device=1, dst_device=0, walks=3))
        one_violation(sanitizer, RULE_MIGRATION)

    def test_balanced_migration_is_clean(self):
        sanitizer = Sanitizer()
        bus = EventBus()
        bus.attach(sanitizer)
        bus.emit(WalksMigrated(src_device=0, dst_device=1, walks=5))
        bus.emit(WalksDelivered(src_device=0, dst_device=1, walks=5))
        bus.emit(RunCompleted(total_time=1.0, finished_walks=0))
        assert sanitizer.clean, sanitizer.format_report()


class TestSummary:
    def test_summary_shape(self):
        timeline = Timeline()
        sanitizer = Sanitizer().bind(timeline=timeline)
        timeline.load.schedule(1.0, CAT_WALK_LOAD)
        sanitizer.unbind()
        summary = sanitizer.summary()
        assert summary["clean"] is True
        assert summary["checks"] == 1
        assert summary["violations"] == []
        assert summary["by_rule"] == {}
        assert "clean" in format_summary(summary)

    def test_by_rule_counts(self):
        timeline = Timeline()
        sanitizer = Sanitizer().bind(timeline=timeline)
        timeline.load.schedule(1.0, CAT_WALK_EVICT)
        timeline.load.schedule(1.0, CAT_WALK_EVICT)
        sanitizer.unbind()
        summary = sanitizer.summary()
        assert summary["by_rule"] == {RULE_STREAM_AFFINITY: 2}
        report = format_summary(summary)
        assert RULE_STREAM_AFFINITY in report
        assert "2 violation(s)" in report

    def test_rebinding_timeline_requires_removal(self):
        timeline = Timeline()
        sanitizer = Sanitizer().bind(timeline=timeline)
        with pytest.raises(RuntimeError, match="already has an observer"):
            Sanitizer().bind(timeline=timeline)
        sanitizer.unbind()
        Sanitizer().bind(timeline=timeline).unbind()


class TestElasticFaults:
    """Failure/rebalance invariants: each fault yields one violation."""

    def test_lost_walk_on_failure_caught(self):
        sanitizer = Sanitizer()
        bus = EventBus()
        bus.attach(sanitizer)
        # Device 1 dies with seven pending walks but no recovery ever
        # lands them on a survivor: the failure lost walks.
        bus.emit(DeviceFailed(device=1, iteration=5, pending_walks=7))
        bus.emit(RunCompleted(total_time=1.0, finished_walks=0))
        violation = one_violation(sanitizer, RULE_MIGRATION)
        assert "lost to the failure" in violation.message

    def test_full_recovery_is_clean(self):
        sanitizer = Sanitizer()
        bus = EventBus()
        bus.attach(sanitizer)
        bus.emit(DeviceFailed(device=1, iteration=5, pending_walks=10))
        bus.emit(DeviceRecoveredWalks(src_device=1, dst_device=0, walks=4))
        bus.emit(DeviceRecoveredWalks(src_device=1, dst_device=2, walks=6))
        bus.emit(RunCompleted(total_time=1.0, finished_walks=0))
        assert sanitizer.clean, sanitizer.format_report()

    def test_over_recovery_caught_live(self):
        sanitizer = Sanitizer()
        bus = EventBus()
        bus.attach(sanitizer)
        # Recovery hands out more walks than the dead shard drained;
        # caught at the second DeviceRecoveredWalks, before run end.
        bus.emit(DeviceFailed(device=2, iteration=9, pending_walks=5))
        bus.emit(DeviceRecoveredWalks(src_device=2, dst_device=0, walks=5))
        bus.emit(DeviceRecoveredWalks(src_device=2, dst_device=1, walks=3))
        violation = one_violation(sanitizer, RULE_MIGRATION)
        assert "duplicated" in violation.message

    def test_double_delivery_on_rebalance_caught(self):
        sanitizer = Sanitizer()
        bus = EventBus()
        bus.attach(sanitizer)
        # A rebalance handoff delivered twice: the second delivery has
        # no matching send, duplicating the handed-off walks.
        bus.emit(WalksMigrated(src_device=0, dst_device=1, walks=5))
        bus.emit(WalksDelivered(src_device=0, dst_device=1, walks=5))
        bus.emit(WalksDelivered(src_device=0, dst_device=1, walks=5))
        one_violation(sanitizer, RULE_MIGRATION)

    def test_stale_owner_mask_caught(self):
        sizes = np.full(8, 1024, dtype=np.int64)
        cluster = DeviceCluster(sizes, 2)
        sanitizer = Sanitizer().bind_cluster(cluster)
        bus = EventBus()
        bus.attach(sanitizer)
        foreign = int(cluster.owned_partitions(1)[0])
        # Device 0 iterates over a partition the owner map assigns to
        # device 1: its scheduler decided on a stale owned mask.
        bus.emit(
            IterationStarted(
                iteration=1, partition=foreign, pending_walks=3, device=0
            )
        )
        violation = one_violation(sanitizer, RULE_STALE_OWNER)
        assert "stale owned mask" in violation.message

    def test_iteration_on_failed_device_caught(self):
        sizes = np.full(8, 1024, dtype=np.int64)
        cluster = DeviceCluster(sizes, 2)
        sanitizer = Sanitizer().bind_cluster(cluster)
        bus = EventBus()
        bus.attach(sanitizer)
        orphans = cluster.owned_partitions(1)
        owned = int(orphans[0])
        cluster.fail_device(1)
        cluster.set_owners(orphans, np.zeros(orphans.size, dtype=np.int64))
        bus.emit(
            IterationStarted(
                iteration=1, partition=owned, pending_walks=3, device=1
            )
        )
        violation = one_violation(sanitizer, RULE_STALE_OWNER)
        assert "failed" in violation.message

    def test_current_owner_is_clean(self):
        sizes = np.full(8, 1024, dtype=np.int64)
        cluster = DeviceCluster(sizes, 2)
        sanitizer = Sanitizer().bind_cluster(cluster)
        bus = EventBus()
        bus.attach(sanitizer)
        owned = int(cluster.owned_partitions(0)[0])
        bus.emit(
            IterationStarted(
                iteration=1, partition=owned, pending_walks=3, device=0
            )
        )
        assert sanitizer.clean, sanitizer.format_report()

    def test_rebalance_event_audits_population(self):
        pool0 = DeviceWalkPool(4, batch_capacity=32, capacity_walks=128)
        pool1 = DeviceWalkPool(4, batch_capacity=32, capacity_walks=128)
        sanitizer = (
            Sanitizer()
            .bind_shard(0, device=pool0)
            .bind_shard(1, device=pool1)
        )
        bus = EventBus()
        bus.attach(sanitizer)
        # A handoff that left walk 7 on both the old and new owner.
        pool0.append_walks(0, WalkArrays.fresh([5, 6, 7], first_id=5))
        pool1.append_walks(1, WalkArrays.fresh([8, 9], first_id=7))
        bus.emit(ShardRebalanced(iteration=4, moved_partitions=1,
                                 walks_moved=3))
        sanitizer.unbind()
        one_violation(sanitizer, RULE_CROSS_DEVICE)


class TestRequestConservation:
    """The serving front-end's request-conservation rule.

    Every admitted query must complete exactly once with exactly its
    requested walks before the session's ``RunCompleted``; each
    injected routing fault yields exactly one classified violation.
    """

    @staticmethod
    def _session():
        sanitizer = Sanitizer()
        bus = EventBus()
        bus.attach(sanitizer)
        return sanitizer, bus

    def test_clean_request_lifecycle(self):
        sanitizer, bus = self._session()
        bus.emit(QueryAdmitted(request_id=0, kind="ppr", walks=8))
        bus.emit(QueryAdmitted(request_id=1, kind="uniform", walks=4))
        bus.emit(QueryCompleted(request_id=1, kind="uniform", walks=4))
        bus.emit(QueryCompleted(request_id=0, kind="ppr", walks=8))
        bus.emit(RunCompleted(total_time=1.0, finished_walks=12))
        assert sanitizer.clean, sanitizer.format_report()
        assert sanitizer.checks >= 4

    def test_dropped_completion_caught(self):
        sanitizer, bus = self._session()
        bus.emit(QueryAdmitted(request_id=0, kind="ppr", walks=8))
        # The session finishes without ever routing request 0 back.
        bus.emit(RunCompleted(total_time=1.0, finished_walks=0))
        violation = one_violation(sanitizer, RULE_REQUEST_CONSERVATION)
        assert "never completed" in violation.message

    def test_double_completion_caught(self):
        sanitizer, bus = self._session()
        bus.emit(QueryAdmitted(request_id=3, kind="metapath", walks=5))
        bus.emit(QueryCompleted(request_id=3, kind="metapath", walks=5))
        # The completion router demultiplexes the same request again.
        bus.emit(QueryCompleted(request_id=3, kind="metapath", walks=5))
        bus.emit(RunCompleted(total_time=1.0, finished_walks=10))
        violation = one_violation(sanitizer, RULE_REQUEST_CONSERVATION)
        assert "completed twice" in violation.message

    def test_orphan_completion_caught(self):
        sanitizer, bus = self._session()
        # Walks routed to a request id that was never admitted.
        bus.emit(QueryCompleted(request_id=7, kind="node2vec", walks=6))
        bus.emit(RunCompleted(total_time=1.0, finished_walks=6))
        violation = one_violation(sanitizer, RULE_REQUEST_CONSERVATION)
        assert "never admitted" in violation.message

    def test_lost_walks_in_batch_caught(self):
        sanitizer, bus = self._session()
        bus.emit(QueryAdmitted(request_id=0, kind="ppr", walks=8))
        # The coalesced batch routed back fewer walks than requested.
        bus.emit(QueryCompleted(request_id=0, kind="ppr", walks=5))
        bus.emit(RunCompleted(total_time=1.0, finished_walks=5))
        violation = one_violation(sanitizer, RULE_REQUEST_CONSERVATION)
        assert "lost" in violation.message

    def test_readmitted_request_id_caught(self):
        sanitizer, bus = self._session()
        bus.emit(QueryAdmitted(request_id=2, kind="uniform", walks=4))
        # The admission controller re-issues a live request id.
        bus.emit(QueryAdmitted(request_id=2, kind="uniform", walks=4))
        bus.emit(QueryCompleted(request_id=2, kind="uniform", walks=4))
        bus.emit(RunCompleted(total_time=1.0, finished_walks=4))
        violation = one_violation(sanitizer, RULE_REQUEST_CONSERVATION)
        assert "admitted twice" in violation.message
