"""Edge-case tests accumulated across modules."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import generators
from repro.graph.analysis import walk_pressure_profile
from repro.graph.partition import partition_by_range, partition_into
from repro.gpu.memory import BlockPool


class TestLRUPool:
    def test_lookup_refreshes_recency(self):
        pool = BlockPool(3, track_recency=True)
        for key in ("a", "b", "c"):
            pool.insert(key, key)
        pool.lookup("a")  # refresh a: b becomes LRU
        assert pool.lru_victim() == "b"

    def test_without_tracking_stays_fifo(self):
        pool = BlockPool(3, track_recency=False)
        for key in ("a", "b", "c"):
            pool.insert(key, key)
        pool.lookup("a")
        assert pool.fifo_victim() == "a"

    def test_miss_does_not_reorder(self):
        pool = BlockPool(2, track_recency=True)
        pool.insert("a", 1)
        pool.insert("b", 2)
        pool.lookup("zzz")
        assert pool.lru_victim() == "a"


class TestHubPressure:
    def test_star_hub_partition_dominates(self):
        """The hub's partition carries almost all stationary walk mass —
        the degenerate case where selective scheduling matters most."""
        graph = generators.star(400)
        pg = partition_by_range(graph, 512)  # hub gets its own partition
        pressure = walk_pressure_profile(pg)
        hub_partition = pg.find_partition(0)
        assert pressure[hub_partition] > 0.4

    def test_ring_pressure_uniform(self):
        graph = generators.ring(64)
        pg = partition_by_range(graph, 256)
        pressure = walk_pressure_profile(pg)
        assert pressure.max() < 2.5 / pg.num_partitions


@given(requested=st.integers(1, 24), seed=st.integers(0, 4))
@settings(max_examples=25, deadline=None)
def test_partition_into_property(requested, seed):
    """partition_into lands near the request and always tiles the graph."""
    graph = generators.rmat(scale=8, edge_factor=4, seed=seed)
    pg = partition_into(graph, requested)
    assert 1 <= pg.num_partitions
    assert pg.partitions[-1].stop == graph.num_vertices
    # Within a generous band of the request (greedy growth quantizes).
    assert pg.num_partitions <= 3 * requested + 1


class TestRejectionRoundCap:
    def test_pathological_weights_still_terminate(self, rng):
        """One dominant weight among thousands: rejection rounds are capped
        and the sampler still returns a valid neighbor."""
        from repro.algorithms.uniform import UniformSampling
        from repro.baselines.inmemory_cpu import (
            execute_in_memory,
            whole_graph_partition,
        )
        from repro.graph.builders import from_adjacency

        neighbors = list(range(1, 201))
        weights = [1e-9] * 199 + [1.0]
        graph = from_adjacency(
            [neighbors] + [[0]] * 200,
            weights=[weights] + [[1.0]] * 200,
        )
        algo = UniformSampling(
            length=2, weighted=True, sampler="rejection", max_reject_rounds=3
        )
        steps = execute_in_memory(graph, algo, 50, rng)
        assert steps == 100


class TestTinyGraphsThroughEngine:
    def test_smallest_possible_workload(self, tiny_config):
        from repro.algorithms import UniformSampling
        from repro.core.engine import run_walks
        from repro.graph.builders import from_edges

        graph = from_edges([(0, 1), (1, 0)], num_vertices=2)
        stats = run_walks(graph, UniformSampling(length=1), 1, tiny_config)
        assert stats.total_steps == 1
        assert stats.iterations == 1

    def test_walk_pool_exactly_one_batch(self):
        from repro.algorithms import PageRank
        from repro.core.config import EngineConfig
        from repro.core.engine import run_walks

        graph = generators.ring(32)
        config = EngineConfig(
            partition_bytes=256,
            batch_walks=8,
            graph_pool_partitions=2,
            walk_pool_walks=8,  # exactly one batch of headroom
            seed=4,
        )
        stats = run_walks(graph, PageRank(length=5), 64, config)
        assert stats.total_steps == 320
        assert stats.walk_batches_evicted > 0
