"""Unit tests for the CSR graph representation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.builders import from_edges
from repro.graph.csr import (
    CSRGraph,
    EDGE_ENTRY_BYTES,
    VERTEX_ENTRY_BYTES,
    adjacency_lists,
)


def triangle() -> CSRGraph:
    return from_edges(
        [(0, 1), (0, 2), (1, 0), (1, 2), (2, 0), (2, 1)], num_vertices=3
    )


class TestConstruction:
    def test_basic_counts(self):
        g = triangle()
        assert g.num_vertices == 3
        assert g.num_edges == 6

    def test_empty_graph_single_vertex(self):
        g = CSRGraph(np.array([0, 0]), np.array([], dtype=np.int64))
        assert g.num_vertices == 1
        assert g.num_edges == 0
        assert g.degree(0) == 0

    def test_offsets_must_start_at_zero(self):
        with pytest.raises(ValueError, match="offsets\\[0\\]"):
            CSRGraph(np.array([1, 2]), np.array([0]))

    def test_offsets_must_match_edge_count(self):
        with pytest.raises(ValueError, match="offsets\\[-1\\]"):
            CSRGraph(np.array([0, 2]), np.array([0]))

    def test_offsets_must_be_monotone(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            CSRGraph(np.array([0, 2, 1, 3]), np.array([0, 1, 2]))

    def test_targets_range_checked(self):
        with pytest.raises(ValueError, match="out of vertex-id range"):
            CSRGraph(np.array([0, 1]), np.array([5]))

    def test_negative_target_rejected(self):
        with pytest.raises(ValueError, match="out of vertex-id range"):
            CSRGraph(np.array([0, 1]), np.array([-1]))

    def test_empty_offsets_rejected(self):
        with pytest.raises(ValueError, match="at least one entry"):
            CSRGraph(np.array([], dtype=np.int64), np.array([], dtype=np.int64))

    def test_weights_must_align(self):
        with pytest.raises(ValueError, match="one entry per edge"):
            CSRGraph(np.array([0, 1]), np.array([0]), weights=np.array([1.0, 2.0]))

    def test_weights_must_be_positive(self):
        with pytest.raises(ValueError, match="positive"):
            CSRGraph(np.array([0, 1]), np.array([0]), weights=np.array([0.0]))

    def test_2d_arrays_rejected(self):
        with pytest.raises(ValueError, match="1-D"):
            CSRGraph(np.zeros((2, 2)), np.array([0]))


class TestQueries:
    def test_neighbors(self):
        g = triangle()
        assert sorted(g.neighbors(0).tolist()) == [1, 2]
        assert sorted(g.neighbors(2).tolist()) == [0, 1]

    def test_neighbors_out_of_range(self):
        with pytest.raises(IndexError):
            triangle().neighbors(3)
        with pytest.raises(IndexError):
            triangle().neighbors(-1)

    def test_degrees(self):
        g = triangle()
        assert g.degrees().tolist() == [2, 2, 2]
        assert g.degree(1) == 2
        assert g.max_degree == 2

    def test_has_edge(self):
        g = triangle()
        assert g.has_edge(0, 1)
        assert g.has_edge(2, 0)
        assert not g.has_edge(0, 0)

    def test_has_edge_unsorted_neighbors(self):
        g = from_edges([(0, 2), (0, 1)], num_vertices=3, sort_neighbors=False)
        assert g.has_edge(0, 1)
        assert g.has_edge(0, 2)
        assert not g.has_edge(0, 0)

    def test_iter_edges(self):
        g = triangle()
        edges = set(g.iter_edges())
        assert (0, 1) in edges and (2, 1) in edges
        assert len(edges) == 6

    def test_neighbor_weights_requires_weighted(self):
        with pytest.raises(ValueError, match="unweighted"):
            triangle().neighbor_weights(0)

    def test_neighbor_weights(self):
        g = from_edges([(0, 1), (0, 2)], num_vertices=3, weights=[0.5, 1.5])
        assert g.neighbor_weights(0).tolist() == [0.5, 1.5]


class TestSlicing:
    def test_vertex_range_edges(self):
        g = triangle()
        lo, hi = g.vertex_range_edges(1, 3)
        assert (lo, hi) == (2, 6)

    def test_vertex_range_invalid(self):
        with pytest.raises(ValueError):
            triangle().vertex_range_edges(2, 1)
        with pytest.raises(ValueError):
            triangle().vertex_range_edges(0, 9)

    def test_subgraph_arrays_rebased(self):
        g = triangle()
        offsets, targets, weights = g.subgraph_arrays(1, 3)
        assert offsets.tolist() == [0, 2, 4]
        assert weights is None
        # Targets keep global ids.
        assert set(targets.tolist()) <= {0, 1, 2}

    def test_subgraph_arrays_weighted(self):
        g = from_edges([(0, 1), (1, 0)], num_vertices=2, weights=[2.0, 3.0])
        __, targets, weights = g.subgraph_arrays(1, 2)
        assert targets.tolist() == [0]
        assert weights.tolist() == [3.0]


class TestSizes:
    def test_csr_bytes_unweighted(self):
        g = triangle()
        assert g.csr_bytes == VERTEX_ENTRY_BYTES * 4 + EDGE_ENTRY_BYTES * 6

    def test_csr_bytes_weighted(self):
        g = from_edges([(0, 1)], num_vertices=2, weights=[1.0])
        assert g.csr_bytes == VERTEX_ENTRY_BYTES * 3 + EDGE_ENTRY_BYTES * 2


class TestEquality:
    def test_equal_graphs(self):
        assert triangle() == triangle()

    def test_unequal_edges(self):
        g2 = from_edges([(0, 1)], num_vertices=3)
        assert triangle() != g2

    def test_weighted_vs_unweighted(self):
        a = from_edges([(0, 1)], num_vertices=2)
        b = from_edges([(0, 1)], num_vertices=2, weights=[1.0])
        assert a != b

    def test_validate_roundtrip(self):
        triangle().validate()


class TestAdjacencyLists:
    def test_matches_neighbors(self, small_graph):
        lists = adjacency_lists(small_graph)
        assert len(lists) == small_graph.num_vertices
        for v in (0, small_graph.num_vertices // 2):
            assert np.array_equal(lists[v], small_graph.neighbors(v))


@given(
    edges=st.lists(
        st.tuples(st.integers(0, 15), st.integers(0, 15)),
        min_size=1,
        max_size=60,
    )
)
@settings(max_examples=60, deadline=None)
def test_csr_from_edges_preserves_multiset(edges):
    """Property: CSR construction preserves the edge multiset."""
    g = from_edges(edges, num_vertices=16)
    rebuilt = sorted(g.iter_edges())
    assert rebuilt == sorted((int(a), int(b)) for a, b in edges)
    # Offsets are consistent with degrees.
    assert g.offsets[-1] == len(edges)
    assert np.all(np.diff(g.offsets) >= 0)
