"""The strict static-analysis passes: seeded unit-mixing,
stage-aliasing, RNG-discipline, observer-purity, event-protocol,
resource-typestate and client-input-taint defects are each caught
exactly once, waivers and the suppression baseline behave, SARIF
output round-trips through structural validation, and the real source
tree is strict-clean.

Also the unit-consistency regression tests for the two cost paths the
unit audit singled out (satellite of the static-analysis PR):
``PeerLinkSpec.transfer_time`` packetization and
``Calibration.step_cycles_for``.
"""

import json
from pathlib import Path

import pytest

from repro.analysis.static import (
    DEFAULT_BASELINE,
    Baseline,
    RULE_CYCLES_SECONDS,
    RULE_DEVICE_COVERAGE,
    RULE_HANDLER_EMIT,
    RULE_IMPURE_SUBSCRIBER,
    RULE_LEAKED_RESOURCE,
    RULE_NONDET_SEED,
    RULE_RAW_RNG,
    RULE_RETURN_MISMATCH,
    RULE_RETURN_UNTYPED,
    RULE_TAINTED_INDEX,
    RULE_TAINTED_SEED,
    RULE_TYPESTATE_ORDER,
    RULE_UNDECLARED,
    RULE_UNHANDLED_EVENT,
    RULE_UNIT_MIX,
    RULE_UNKEYED_DRAW,
    RULE_UNKNOWN_FIELD,
    RULE_UNPUBLISHED,
    RULE_UNVALIDATED_SIZE,
    RULE_USE_AFTER_CLOSE,
    analyze_paths,
    run_lint,
    validate_sarif,
)
from repro.core.units import seconds_from_cycles
from repro.gpu.calibration import Calibration
from repro.gpu.cluster import NVLINK_P2P, PCIE_P2P, PeerLinkSpec
from repro.gpu.device import RTX3090

SRC = Path(__file__).parent.parent / "src" / "repro"


def strict_findings(tmp_path, source, name="module.py"):
    path = tmp_path / name
    path.write_text(source)
    findings, checked = analyze_paths([path], strict=True)
    assert checked == 1
    return findings


def rules_of(findings):
    return [f.rule for f in findings]


# ---------------------------------------------------------------------------
# Unit-of-measure pass: each seeded defect caught exactly once
# ---------------------------------------------------------------------------


class TestUnitPass:
    def test_mixed_unit_addition_caught_once(self, tmp_path):
        findings = strict_findings(
            tmp_path,
            "def total(nbytes: int, walks: int) -> float:\n"
            "    return nbytes + walks\n",
        )
        assert rules_of(findings) == [RULE_UNIT_MIX]
        assert "B + walk" in findings[0].message

    def test_cycles_plus_seconds_caught_once(self, tmp_path):
        findings = strict_findings(
            tmp_path,
            "def combine(step_cycles: float, busy_seconds: float) -> float:\n"
            "    return step_cycles + busy_seconds\n",
        )
        assert rules_of(findings) == [RULE_CYCLES_SECONDS]
        assert "seconds_from_cycles" in findings[0].message

    def test_blessed_conversion_is_clean(self, tmp_path):
        findings = strict_findings(
            tmp_path,
            "def combine(step_cycles: float, busy_seconds: float,\n"
            "            clock_hz: float) -> float:\n"
            "    return step_cycles / clock_hz + busy_seconds\n",
        )
        assert findings == []

    def test_unit_return_mismatch_caught_once(self, tmp_path):
        findings = strict_findings(
            tmp_path,
            "from repro.core.units import Seconds\n"
            "def launch_cost(delay_cycles: float) -> Seconds:\n"
            "    return delay_cycles\n",
        )
        assert rules_of(findings) == [RULE_RETURN_MISMATCH]
        assert "returns cy" in findings[0].message

    def test_unitless_seconds_function_caught_once(self, tmp_path):
        findings = strict_findings(
            tmp_path,
            "def copy_seconds(n: int) -> float:\n"
            "    return 0.0\n",
        )
        assert rules_of(findings) == [RULE_RETURN_UNTYPED]
        assert "core/units.py" in findings[0].message

    def test_unit_mix_waiver_suppresses(self, tmp_path):
        findings = strict_findings(
            tmp_path,
            "def total(nbytes: int, walks: int) -> float:\n"
            "    return nbytes + walks  # lint: allow-unit-mix\n",
        )
        assert findings == []

    def test_dimension_cancellation_through_locals(self, tmp_path):
        # walks * bytes_per_walk is bytes (counts absorbed); dividing by
        # bandwidth yields seconds, which adds cleanly to a latency.
        findings = strict_findings(
            tmp_path,
            "def xfer(walks: int, bytes_per_walk: int, bandwidth: float,\n"
            "         latency_seconds: float) -> float:\n"
            "    payload = walks * bytes_per_walk\n"
            "    return latency_seconds + payload / bandwidth\n",
        )
        assert findings == []


# ---------------------------------------------------------------------------
# Cross-stage aliasing pass
# ---------------------------------------------------------------------------

_CTX_PREAMBLE = (
    "from dataclasses import dataclass\n"
    "@dataclass\n"
    "class StageContext:\n"
    "    frontier: list\n"
    "    bus: object\n"
)


class TestAliasingPass:
    def test_unpublished_shared_mutation_caught_once(self, tmp_path):
        findings = strict_findings(
            tmp_path,
            _CTX_PREAMBLE
            + "class LoadStage:\n"
            "    def run(self, ctx):\n"
            "        ctx.frontier.append(1)\n"
            "class ComputeStage:\n"
            "    def run(self, ctx):\n"
            "        return len(ctx.frontier)\n",
        )
        assert rules_of(findings) == [RULE_UNPUBLISHED]
        assert "LoadStage.run" in findings[0].message
        assert "'frontier'" in findings[0].message

    def test_publishing_stage_is_clean(self, tmp_path):
        findings = strict_findings(
            tmp_path,
            _CTX_PREAMBLE
            + "class LoadStage:\n"
            "    def run(self, ctx):\n"
            "        ctx.frontier.append(1)\n"
            "        ctx.bus.emit(FrontierGrew())\n"
            "class ComputeStage:\n"
            "    def run(self, ctx):\n"
            "        return len(ctx.frontier)\n",
        )
        assert findings == []

    def test_transitive_publish_through_helper(self, tmp_path):
        findings = strict_findings(
            tmp_path,
            _CTX_PREAMBLE
            + "class LoadStage:\n"
            "    def run(self, ctx):\n"
            "        ctx.frontier.append(1)\n"
            "        self._announce(ctx)\n"
            "    def _announce(self, ctx):\n"
            "        ctx.bus.emit(FrontierGrew())\n"
            "class ComputeStage:\n"
            "    def run(self, ctx):\n"
            "        return len(ctx.frontier)\n",
        )
        assert findings == []

    def test_private_field_needs_no_event(self, tmp_path):
        # Only one actor touches the field: no cross-stage contract.
        findings = strict_findings(
            tmp_path,
            _CTX_PREAMBLE
            + "class LoadStage:\n"
            "    def run(self, ctx):\n"
            "        ctx.frontier.append(1)\n",
        )
        assert findings == []

    def test_undeclared_context_field_caught_once(self, tmp_path):
        findings = strict_findings(
            tmp_path,
            _CTX_PREAMBLE
            + "class TypoStage:\n"
            "    def run(self, ctx):\n"
            "        ctx.fronteir = []\n",
        )
        assert rules_of(findings) == [RULE_UNDECLARED]
        assert "'fronteir'" in findings[0].message

    def test_local_alias_of_field_tracked(self, tmp_path):
        # pool = ctx.frontier; pool.append(...) is still a write.
        findings = strict_findings(
            tmp_path,
            _CTX_PREAMBLE
            + "class LoadStage:\n"
            "    def run(self, ctx):\n"
            "        pool = ctx.frontier\n"
            "        pool.append(1)\n"
            "class ComputeStage:\n"
            "    def run(self, ctx):\n"
            "        return len(ctx.frontier)\n",
        )
        assert rules_of(findings) == [RULE_UNPUBLISHED]


# ---------------------------------------------------------------------------
# Interprocedural RNG-discipline pass
# ---------------------------------------------------------------------------


class TestRngPass:
    def test_raw_rng_through_helper_and_alias_caught_once(self, tmp_path):
        # Aliased numpy.random import + construction hidden in a helper:
        # invisible to the intraprocedural rng-factory rule, caught by
        # call-graph reachability from the Backend-named root.
        findings = strict_findings(
            tmp_path,
            "from numpy import random as nprng\n"
            "def _fresh_rng():\n"
            "    return nprng.default_rng(1234)\n"
            "class ReplayBackend:\n"
            "    def advance(self, batch):\n"
            "        return _fresh_rng()\n",
        )
        assert rules_of(findings) == [RULE_RAW_RNG]
        assert "numpy.random.default_rng" in findings[0].message
        assert "seeded_rng" in findings[0].message

    def test_raw_rng_waiver_suppresses(self, tmp_path):
        findings = strict_findings(
            tmp_path,
            "from numpy import random as nprng\n"
            "def _fresh_rng():\n"
            "    return nprng.default_rng(1234)  # lint: allow-raw-rng\n"
            "class ReplayBackend:\n"
            "    def advance(self, batch):\n"
            "        return _fresh_rng()\n",
        )
        assert findings == []

    def test_unreachable_raw_rng_is_not_flagged(self, tmp_path):
        # No engine/backend root reaches the helper: out of scope.
        findings = strict_findings(
            tmp_path,
            "from numpy import random as nprng\n"
            "def _fresh_rng():\n"
            "    return nprng.default_rng(1234)\n",
        )
        assert findings == []

    def test_time_derived_seed_caught_once(self, tmp_path):
        findings = strict_findings(
            tmp_path,
            "import time\n"
            "from repro.core.prng import seeded_rng\n"
            "class WalkEngine:\n"
            "    def reset(self):\n"
            "        self._rng = seeded_rng(int(time.time()))\n",
        )
        assert rules_of(findings) == [RULE_NONDET_SEED]
        assert "time.time" in findings[0].message

    def test_constant_seeded_factory_is_clean(self, tmp_path):
        findings = strict_findings(
            tmp_path,
            "from repro.core.prng import seeded_rng\n"
            "class WalkEngine:\n"
            "    def reset(self, seed):\n"
            "        self._rng = seeded_rng(seed, stream='reset')\n",
        )
        assert findings == []

    def test_unkeyed_draw_caught_once(self, tmp_path):
        # A backend draw routine missing the step component of the
        # (seed, walk, step, draw) key tuple.
        findings = strict_findings(
            tmp_path,
            "class TabledBackend:\n"
            "    def run(self):\n"
            "        return None\n"
            "def _lane_draw(seed, walk_id, draw):\n"
            "    return 0\n",
        )
        assert rules_of(findings) == [RULE_UNKEYED_DRAW]
        assert "step" in findings[0].message

    def test_fully_keyed_draw_is_clean(self, tmp_path):
        findings = strict_findings(
            tmp_path,
            "class TabledBackend:\n"
            "    def run(self):\n"
            "        return None\n"
            "def _lane_draw(seed, walk_id, step, draw):\n"
            "    return 0\n",
        )
        assert findings == []


# ---------------------------------------------------------------------------
# Observer-purity pass
# ---------------------------------------------------------------------------

_EVENT_PREAMBLE = (
    "from dataclasses import dataclass\n"
    "@dataclass(frozen=True)\n"
    "class EngineEvent:\n"
    "    pass\n"
    "@dataclass(frozen=True)\n"
    "class TickSeen(EngineEvent):\n"
    "    pass\n"
)


class TestEffectsPass:
    def test_impure_subscriber_through_helper_caught_once(self, tmp_path):
        findings = strict_findings(
            tmp_path,
            _EVENT_PREAMBLE
            + "class Autotuner:\n"
            "    def __init__(self, ctx):\n"
            "        self.ctx = ctx\n"
            "    def on_tick_seen(self, event):\n"
            "        self._retune()\n"
            "    def _retune(self):\n"
            "        self.ctx.batch_size = 64\n",
        )
        assert rules_of(findings) == [RULE_IMPURE_SUBSCRIBER]
        assert "Autotuner.on_tick_seen -> Autotuner._retune" in (
            findings[0].message
        )
        assert "'ctx'" in findings[0].message

    def test_impure_write_through_call_argument(self, tmp_path):
        # Protected state passed as an argument: the callee's parameter
        # inherits the protection.
        findings = strict_findings(
            tmp_path,
            _EVENT_PREAMBLE
            + "def _apply(ctx):\n"
            "    ctx.depth = 3\n"
            "class Tuner:\n"
            "    def __init__(self, ctx):\n"
            "        self.ctx = ctx\n"
            "    def on_tick_seen(self, event):\n"
            "        _apply(self.ctx)\n",
        )
        assert rules_of(findings) == [RULE_IMPURE_SUBSCRIBER]

    def test_own_bookkeeping_writes_are_pure(self, tmp_path):
        findings = strict_findings(
            tmp_path,
            _EVENT_PREAMBLE
            + "class Counter:\n"
            "    def __init__(self):\n"
            "        self.ticks = 0\n"
            "        self.log = []\n"
            "    def on_tick_seen(self, event):\n"
            "        self.ticks += 1\n"
            "        self.log.append(event)\n",
        )
        assert findings == []

    def test_handler_emit_through_helper_caught_once(self, tmp_path):
        findings = strict_findings(
            tmp_path,
            _EVENT_PREAMBLE
            + "class Relay:\n"
            "    def __init__(self, bus):\n"
            "        self.bus = bus\n"
            "    def on_tick_seen(self, event):\n"
            "        self._fanout(event)\n"
            "    def _fanout(self, event):\n"
            "        self.bus.emit(event)\n",
        )
        assert rules_of(findings) == [RULE_HANDLER_EMIT]
        assert "Relay.on_tick_seen -> Relay._fanout" in findings[0].message

    def test_non_bus_hook_with_handler_name_is_skipped(self, tmp_path):
        # An annotated direct-call hook sharing the on_<event> naming
        # convention is not a subscriber (cf. backends' on_walks_seeded).
        findings = strict_findings(
            tmp_path,
            _EVENT_PREAMBLE
            + "class Feed:\n"
            "    pass\n"
            "class Sink:\n"
            "    def __init__(self, ctx):\n"
            "        self.ctx = ctx\n"
            "    def on_tick_seen(self, batch: Feed):\n"
            "        self.ctx.depth = 1\n",
        )
        assert findings == []


# ---------------------------------------------------------------------------
# Event-protocol conformance pass
# ---------------------------------------------------------------------------


class TestProtocolPass:
    def test_unhandled_event_caught_once(self, tmp_path):
        findings = strict_findings(
            tmp_path,
            _EVENT_PREAMBLE
            + "@dataclass(frozen=True)\n"
            "class OrphanSignal(EngineEvent):\n"
            "    pass\n"
            "class RelayStage:\n"
            "    def __init__(self, ctx):\n"
            "        self.ctx = ctx\n"
            "    def run(self):\n"
            "        self.ctx.bus.emit(OrphanSignal())\n"
            "class TickWatcher:\n"
            "    def on_tick_seen(self, event):\n"
            "        self.noted = True\n",
        )
        assert rules_of(findings) == [RULE_UNHANDLED_EVENT]
        assert "'OrphanSignal'" in findings[0].message
        assert "on_orphan_signal" in findings[0].message

    def test_subscribe_registration_counts_as_handled(self, tmp_path):
        findings = strict_findings(
            tmp_path,
            _EVENT_PREAMBLE
            + "@dataclass(frozen=True)\n"
            "class OrphanSignal(EngineEvent):\n"
            "    pass\n"
            "class RelayStage:\n"
            "    def __init__(self, ctx):\n"
            "        self.ctx = ctx\n"
            "    def run(self):\n"
            "        self.ctx.bus.subscribe(OrphanSignal, print)\n"
            "        self.ctx.bus.emit(OrphanSignal())\n",
        )
        assert findings == []

    def test_unknown_event_field_caught_once(self, tmp_path):
        findings = strict_findings(
            tmp_path,
            _EVENT_PREAMBLE
            + "@dataclass(frozen=True)\n"
            "class PayloadStaged(EngineEvent):\n"
            "    walks: int = 0\n"
            "class Monitor:\n"
            "    def __init__(self):\n"
            "        self.seen = 0\n"
            "    def on_payload_staged(self, event):\n"
            "        self.seen = event.walk_count\n",
        )
        assert rules_of(findings) == [RULE_UNKNOWN_FIELD]
        assert "'event.walk_count'" in findings[0].message
        assert "'PayloadStaged'" in findings[0].message

    def test_declared_field_reads_are_clean(self, tmp_path):
        findings = strict_findings(
            tmp_path,
            _EVENT_PREAMBLE
            + "@dataclass(frozen=True)\n"
            "class PayloadStaged(EngineEvent):\n"
            "    walks: int = 0\n"
            "class Monitor:\n"
            "    def __init__(self):\n"
            "        self.seen = 0\n"
            "    def on_payload_staged(self, event):\n"
            "        self.seen = event.walks\n",
        )
        assert findings == []

    def test_iteration_event_without_device_caught_once(self, tmp_path):
        findings = strict_findings(
            tmp_path,
            _EVENT_PREAMBLE
            + "@dataclass(frozen=True)\n"
            "class ProbeTick(EngineEvent):\n"
            "    iteration: int = 0\n",
        )
        assert rules_of(findings) == [RULE_DEVICE_COVERAGE]
        assert "'ProbeTick'" in findings[0].message

    def test_iteration_event_with_device_is_clean(self, tmp_path):
        findings = strict_findings(
            tmp_path,
            _EVENT_PREAMBLE
            + "@dataclass(frozen=True)\n"
            "class ProbeTick(EngineEvent):\n"
            "    iteration: int = 0\n"
            "    device: int = 0\n",
        )
        assert findings == []


# ---------------------------------------------------------------------------
# Typestate pass: lifecycle order, use-after-close, resource leaks
# ---------------------------------------------------------------------------

_BACKEND_PREAMBLE = (
    "class ToyBackend:\n"
    "    def __init__(self, name): ...\n"
    "    def bind(self, graph, spec): ...\n"
    "    def on_walks_seeded(self, frontier): ...\n"
    "    def advance(self, state): ...\n"
    "    def close(self): ...\n"
)


class TestTypestatePass:
    def test_advance_before_seed_caught_once(self, tmp_path):
        findings = strict_findings(
            tmp_path,
            _BACKEND_PREAMBLE
            + "def run():\n"
            "    backend = ToyBackend('toy')\n"
            "    backend.advance(None)\n",
        )
        assert rules_of(findings) == [RULE_TYPESTATE_ORDER]
        assert "ExecutionBackend" in findings[0].message
        assert "state {new}" in findings[0].message

    def test_bind_after_close_caught_once(self, tmp_path):
        findings = strict_findings(
            tmp_path,
            _BACKEND_PREAMBLE
            + "def run(graph, spec):\n"
            "    backend = ToyBackend('toy')\n"
            "    backend.bind(graph, spec)\n"
            "    backend.close()\n"
            "    backend.bind(graph, spec)\n",
        )
        assert rules_of(findings) == [RULE_USE_AFTER_CLOSE]
        assert "terminal state 'closed'" in findings[0].message

    def test_conforming_lifecycle_is_clean(self, tmp_path):
        findings = strict_findings(
            tmp_path,
            _BACKEND_PREAMBLE
            + "def run(graph, spec, frontier):\n"
            "    backend = ToyBackend('toy')\n"
            "    backend.bind(graph, spec)\n"
            "    backend.on_walks_seeded(frontier)\n"
            "    backend.advance(None)\n"
            "    backend.advance(None)\n"
            "    backend.close()\n"
            "    backend.close()\n",  # close is idempotent
        )
        assert findings == []

    def test_branch_merge_does_not_false_positive(self, tmp_path):
        # advance is allowed on either path, so the merged state set
        # {seeded, advancing} intersects the allowed set: no finding.
        findings = strict_findings(
            tmp_path,
            _BACKEND_PREAMBLE
            + "def run(graph, spec, frontier, warm):\n"
            "    backend = ToyBackend('toy')\n"
            "    backend.bind(graph, spec)\n"
            "    backend.on_walks_seeded(frontier)\n"
            "    if warm:\n"
            "        backend.advance(None)\n"
            "    backend.advance(None)\n"
            "    backend.close()\n",
        )
        assert findings == []

    def test_typestate_waiver_suppresses(self, tmp_path):
        findings = strict_findings(
            tmp_path,
            _BACKEND_PREAMBLE
            + "def run():\n"
            "    backend = ToyBackend('toy')\n"
            "    backend.advance(None)  # lint: allow-typestate-order\n",
        )
        assert findings == []

    def test_subscribe_after_emit_caught_once(self, tmp_path):
        findings = strict_findings(
            tmp_path,
            "from repro.core.events import EventBus, WalkStarted\n"
            "def wire(handler):\n"
            "    bus = EventBus()\n"
            "    bus.emit(WalkStarted(walk=1))\n"
            "    bus.subscribe(WalkStarted, handler)\n",
        )
        assert rules_of(findings) == [RULE_TYPESTATE_ORDER]
        assert "missed events" in findings[0].message

    def test_subscribe_before_emit_is_clean(self, tmp_path):
        findings = strict_findings(
            tmp_path,
            "from repro.core.events import EventBus, WalkStarted\n"
            "def wire(handler):\n"
            "    bus = EventBus()\n"
            "    bus.subscribe(WalkStarted, handler)\n"
            "    bus.emit(WalkStarted(walk=1))\n",
        )
        assert findings == []


_SHM_PREAMBLE = "from multiprocessing import shared_memory\n"


class TestLeakedResource:
    def test_unguarded_local_caught_once(self, tmp_path):
        findings = strict_findings(
            tmp_path,
            _SHM_PREAMBLE
            + "def leaky(n):\n"
            "    shm = shared_memory.SharedMemory(create=True, size=n)\n"
            "    shm.close()\n"
            "    shm.unlink()\n",
        )
        assert rules_of(findings) == [RULE_LEAKED_RESOURCE]
        assert "try/finally" in findings[0].message

    def test_acquire_then_try_finally_is_clean(self, tmp_path):
        findings = strict_findings(
            tmp_path,
            _SHM_PREAMBLE
            + "def guarded(n, work):\n"
            "    shm = shared_memory.SharedMemory(create=True, size=n)\n"
            "    try:\n"
            "        work(shm)\n"
            "    finally:\n"
            "        shm.close()\n"
            "        shm.unlink()\n",
        )
        assert findings == []

    def test_returned_block_transfers_ownership(self, tmp_path):
        findings = strict_findings(
            tmp_path,
            _SHM_PREAMBLE
            + "def make(n):\n"
            "    shm = shared_memory.SharedMemory(create=True, size=n)\n"
            "    return shm\n",
        )
        assert findings == []

    def test_attach_is_not_an_acquisition(self, tmp_path):
        findings = strict_findings(
            tmp_path,
            _SHM_PREAMBLE
            + "def attach(name):\n"
            "    shm = shared_memory.SharedMemory(name=name)\n"
            "    return shm.buf\n",
        )
        assert findings == []

    def test_fallible_setup_after_acquisition_caught_once(self, tmp_path):
        # The pre-fix MultiprocessBackend.on_walks_seeded shape: blocks
        # registered in a released container, but a later fallible setup
        # step runs outside any try — a partial failure strands them.
        findings = strict_findings(
            tmp_path,
            _SHM_PREAMBLE
            + "class Pool:\n"
            "    def __init__(self):\n"
            "        self._shms = []\n"
            "    def setup(self, n):\n"
            "        shm = shared_memory.SharedMemory(create=True, size=n)\n"
            "        self._shms.append(shm)\n"
            "        self._spawn_workers()\n"
            "    def _spawn_workers(self):\n"
            "        raise RuntimeError('boom')\n"
            "    def close(self):\n"
            "        for shm in self._shms:\n"
            "            shm.close()\n"
            "            shm.unlink()\n",
        )
        assert rules_of(findings) == [RULE_LEAKED_RESOURCE]
        assert "partial failure strands" in findings[0].message

    def test_guarded_fallible_setup_is_clean(self, tmp_path):
        # The post-fix shape: setup wrapped in try/except that releases
        # via self.close().
        findings = strict_findings(
            tmp_path,
            _SHM_PREAMBLE
            + "class Pool:\n"
            "    def __init__(self):\n"
            "        self._shms = []\n"
            "    def setup(self, n):\n"
            "        try:\n"
            "            shm = shared_memory.SharedMemory(\n"
            "                create=True, size=n)\n"
            "            self._shms.append(shm)\n"
            "            self._spawn_workers()\n"
            "        except BaseException:\n"
            "            self.close()\n"
            "            raise\n"
            "    def _spawn_workers(self):\n"
            "        raise RuntimeError('boom')\n"
            "    def close(self):\n"
            "        for shm in self._shms:\n"
            "            shm.close()\n"
            "            shm.unlink()\n",
        )
        assert findings == []

    def test_container_without_cleanup_method_caught_once(self, tmp_path):
        findings = strict_findings(
            tmp_path,
            _SHM_PREAMBLE
            + "class Pool:\n"
            "    def __init__(self):\n"
            "        self._shms = []\n"
            "    def setup(self, n):\n"
            "        shm = shared_memory.SharedMemory(create=True, size=n)\n"
            "        self._shms.append(shm)\n",
        )
        assert rules_of(findings) == [RULE_LEAKED_RESOURCE]
        assert "no cleanup method" in findings[0].message

    def test_leak_waiver_suppresses(self, tmp_path):
        findings = strict_findings(
            tmp_path,
            _SHM_PREAMBLE
            + "def leaky(n):\n"
            "    shm = shared_memory.SharedMemory(create=True, size=n)"
            "  # lint: allow-leaked-resource\n"
            "    return shm.buf\n",
        )
        assert findings == []


# ---------------------------------------------------------------------------
# Taint pass: client-controlled values reaching sized/seeded/index sinks
# ---------------------------------------------------------------------------

_QUERY_PREAMBLE = (
    "from dataclasses import dataclass\n"
    "import numpy as np\n"
    "from repro.core.prng import derive_seed\n"
    "@dataclass(frozen=True)\n"
    "class ToyQuery:\n"
    "    walks: int\n"
    "    length: int\n"
    "    seed: int\n"
    "    def __post_init__(self):\n"
    "        if self.walks < 1:\n"
    "            raise ValueError('walks must be >= 1')\n"
)


class TestTaintPass:
    def test_unvalidated_field_to_alloc_caught_once(self, tmp_path):
        findings = strict_findings(
            tmp_path,
            _QUERY_PREAMBLE
            + "def alloc(query: ToyQuery):\n"
            "    return np.zeros(query.length)\n",
        )
        assert rules_of(findings) == [RULE_UNVALIDATED_SIZE]
        assert "ToyQuery.length" in findings[0].message

    def test_validated_field_is_clean(self, tmp_path):
        findings = strict_findings(
            tmp_path,
            _QUERY_PREAMBLE
            + "def alloc(query: ToyQuery):\n"
            "    return np.zeros(query.walks)\n",
        )
        assert findings == []

    def test_tainted_seed_caught_once(self, tmp_path):
        findings = strict_findings(
            tmp_path,
            _QUERY_PREAMBLE
            + "def reseed(query: ToyQuery):\n"
            "    return derive_seed(query.length, 0, 0)\n",
        )
        assert rules_of(findings) == [RULE_TAINTED_SEED]

    def test_seed_field_is_the_sanctioned_stream_selector(self, tmp_path):
        findings = strict_findings(
            tmp_path,
            _QUERY_PREAMBLE
            + "def reseed(query: ToyQuery):\n"
            "    return derive_seed(query.seed, 0, 0)\n",
        )
        assert findings == []

    def test_tainted_csr_index_caught_once(self, tmp_path):
        findings = strict_findings(
            tmp_path,
            _QUERY_PREAMBLE
            + "def degree(query: ToyQuery, offsets):\n"
            "    return offsets[query.length]\n",
        )
        assert rules_of(findings) == [RULE_TAINTED_INDEX]
        assert "offsets" in findings[0].message

    def test_interprocedural_flow_reports_chain(self, tmp_path):
        findings = strict_findings(
            tmp_path,
            _QUERY_PREAMBLE
            + "def helper(n):\n"
            "    return np.empty(n)\n"
            "def outer(query: ToyQuery):\n"
            "    return helper(query.length)\n",
        )
        assert rules_of(findings) == [RULE_UNVALIDATED_SIZE]
        assert "outer -> helper" in findings[0].message

    def test_raising_guard_sanitizes(self, tmp_path):
        findings = strict_findings(
            tmp_path,
            _QUERY_PREAMBLE
            + "def alloc(query: ToyQuery):\n"
            "    length = query.length\n"
            "    if length > 1024:\n"
            "        raise ValueError('too long')\n"
            "    return np.zeros(length)\n",
        )
        assert findings == []

    def test_validated_helper_sanitizes(self, tmp_path):
        findings = strict_findings(
            tmp_path,
            _QUERY_PREAMBLE
            + "from repro.serve.queries import validated\n"
            "def alloc(query: ToyQuery):\n"
            "    return np.zeros(validated(query.length, 1, 1024))\n",
        )
        assert findings == []

    def test_cli_args_are_a_source(self, tmp_path):
        findings = strict_findings(
            tmp_path,
            "import numpy as np\n"
            "def cmd_run(args):\n"
            "    return np.zeros(args.count)\n",
        )
        assert rules_of(findings) == [RULE_UNVALIDATED_SIZE]
        assert "args.count" in findings[0].message

    def test_guarded_args_are_clean(self, tmp_path):
        findings = strict_findings(
            tmp_path,
            "import numpy as np\n"
            "def cmd_run(args):\n"
            "    if args.count > 100:\n"
            "        raise SystemExit(2)\n"
            "    return np.zeros(args.count)\n",
        )
        assert findings == []

    def test_tainted_range_bound_caught_once(self, tmp_path):
        findings = strict_findings(
            tmp_path,
            _QUERY_PREAMBLE
            + "def steps(query: ToyQuery):\n"
            "    return list(range(query.length))\n",
        )
        assert rules_of(findings) == [RULE_UNVALIDATED_SIZE]

    def test_taint_waiver_suppresses(self, tmp_path):
        findings = strict_findings(
            tmp_path,
            _QUERY_PREAMBLE
            + "def alloc(query: ToyQuery):\n"
            "    return np.zeros(query.length)"
            "  # lint: allow-unvalidated-size\n",
        )
        assert findings == []


# ---------------------------------------------------------------------------
# Baseline + CLI behaviour
# ---------------------------------------------------------------------------

_DEFECT = (
    "def total(nbytes: int, walks: int) -> float:\n"
    "    return nbytes + walks\n"
)


class TestBaseline:
    def test_strict_without_baseline_fails(self, tmp_path, capsys):
        path = tmp_path / "defect.py"
        path.write_text(_DEFECT)
        assert run_lint([str(path)], strict=True) == 1
        assert "unit-mix" in capsys.readouterr().out

    def test_update_then_rerun_suppresses(self, tmp_path, capsys):
        path = tmp_path / "defect.py"
        path.write_text(_DEFECT)
        baseline = tmp_path / "baseline.json"
        assert (
            run_lint(
                [str(path)],
                strict=True,
                baseline_path=str(baseline),
                update_baseline=True,
            )
            == 0
        )
        entries = json.loads(baseline.read_text())["findings"]
        assert len(entries) == 1 and entries[0]["rule"] == RULE_UNIT_MIX
        capsys.readouterr()
        assert (
            run_lint([str(path)], strict=True, baseline_path=str(baseline))
            == 0
        )
        assert "1 baseline-suppressed" in capsys.readouterr().out

    def test_new_finding_not_masked_by_baseline(self, tmp_path, capsys):
        path = tmp_path / "defect.py"
        path.write_text(_DEFECT)
        baseline = tmp_path / "baseline.json"
        run_lint(
            [str(path)],
            strict=True,
            baseline_path=str(baseline),
            update_baseline=True,
        )
        path.write_text(
            _DEFECT
            + "def later(step_cycles: float, busy_seconds: float) -> float:\n"
            "    return step_cycles - busy_seconds\n"
        )
        capsys.readouterr()
        assert (
            run_lint([str(path)], strict=True, baseline_path=str(baseline))
            == 1
        )
        out = capsys.readouterr().out
        assert "cycles-vs-seconds" in out

    def test_json_report_schema(self, tmp_path):
        path = tmp_path / "defect.py"
        path.write_text(_DEFECT)
        report = tmp_path / "report.json"
        run_lint([str(path)], strict=True, json_path=str(report))
        payload = json.loads(report.read_text())
        assert payload["strict"] is True
        assert payload["checked_files"] == 1
        assert payload["passes"] == [
            "house-rules",
            "units",
            "aliasing",
            "rng",
            "effects",
            "protocol",
            "typestate",
            "taint",
        ]
        assert [f["rule"] for f in payload["findings"]] == [RULE_UNIT_MIX]
        assert payload["suppressed"] == []

    def test_missing_path_exit_code(self, tmp_path, capsys):
        assert run_lint([str(tmp_path / "nope.py")], strict=True) == 2
        capsys.readouterr()


class TestBaselineRoundTrip:
    def test_suppression_survives_line_moves(self, tmp_path, capsys):
        # Baseline keys are (path, rule, message): shifting the finding
        # down the file must not resurrect it.
        path = tmp_path / "defect.py"
        path.write_text(_DEFECT)
        baseline = tmp_path / "baseline.json"
        run_lint(
            [str(path)],
            strict=True,
            baseline_path=str(baseline),
            update_baseline=True,
        )
        path.write_text("# a comment pushes everything down\n\n" + _DEFECT)
        capsys.readouterr()
        assert (
            run_lint([str(path)], strict=True, baseline_path=str(baseline))
            == 0
        )
        assert "1 baseline-suppressed" in capsys.readouterr().out

    def test_update_baseline_is_byte_stable(self, tmp_path):
        path = tmp_path / "defect.py"
        path.write_text(
            _DEFECT
            + "def later(step_cycles: float, busy_seconds: float) -> float:\n"
            "    return step_cycles - busy_seconds\n"
        )
        baseline = tmp_path / "baseline.json"
        run_lint(
            [str(path)],
            strict=True,
            baseline_path=str(baseline),
            update_baseline=True,
        )
        first = baseline.read_bytes()
        run_lint(
            [str(path)],
            strict=True,
            baseline_path=str(baseline),
            update_baseline=True,
        )
        assert baseline.read_bytes() == first
        # sorted keys inside every row and across rows
        payload = json.loads(first)
        rows = payload["findings"]
        assert rows == sorted(
            rows, key=lambda r: (r["path"], r["rule"], r["message"])
        )
        assert all(list(r) == sorted(r) for r in rows)

    def test_empty_baseline_file_parses_cleanly(self, tmp_path, capsys):
        path = tmp_path / "defect.py"
        path.write_text(_DEFECT)
        baseline = tmp_path / "baseline.json"
        baseline.write_text("")
        assert Baseline.load(baseline).entries == set()
        assert (
            run_lint([str(path)], strict=True, baseline_path=str(baseline))
            == 1
        )
        capsys.readouterr()


class TestSarifOutput:
    def test_sarif_round_trip_validates(self, tmp_path):
        path = tmp_path / "defect.py"
        path.write_text(_DEFECT)
        sarif = tmp_path / "lint.sarif"
        run_lint([str(path)], strict=True, sarif_path=str(sarif))
        log = json.loads(sarif.read_text())
        assert validate_sarif(log) == []
        assert log["version"] == "2.1.0"
        run = log["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        results = run["results"]
        assert [r["ruleId"] for r in results] == [RULE_UNIT_MIX]
        declared = [r["id"] for r in run["tool"]["driver"]["rules"]]
        assert declared == [RULE_UNIT_MIX]
        location = results[0]["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"].endswith("defect.py")
        assert location["region"]["startLine"] == 2
        assert "suppressions" not in results[0]

    def test_baseline_suppressed_findings_marked(self, tmp_path, capsys):
        path = tmp_path / "defect.py"
        path.write_text(_DEFECT)
        baseline = tmp_path / "baseline.json"
        run_lint(
            [str(path)],
            strict=True,
            baseline_path=str(baseline),
            update_baseline=True,
        )
        sarif = tmp_path / "lint.sarif"
        assert (
            run_lint(
                [str(path)],
                strict=True,
                baseline_path=str(baseline),
                sarif_path=str(sarif),
            )
            == 0
        )
        capsys.readouterr()
        log = json.loads(sarif.read_text())
        assert validate_sarif(log) == []
        results = log["runs"][0]["results"]
        assert len(results) == 1
        assert results[0]["suppressions"][0]["kind"] == "external"

    def test_validator_rejects_structural_damage(self, tmp_path):
        path = tmp_path / "defect.py"
        path.write_text(_DEFECT)
        sarif = tmp_path / "lint.sarif"
        run_lint([str(path)], strict=True, sarif_path=str(sarif))
        log = json.loads(sarif.read_text())

        wrong_version = json.loads(sarif.read_text())
        wrong_version["version"] = "1.0.0"
        assert validate_sarif(wrong_version)

        undeclared = json.loads(sarif.read_text())
        undeclared["runs"][0]["results"][0]["ruleId"] = "not-a-rule"
        assert validate_sarif(undeclared)

        no_line = json.loads(sarif.read_text())
        location = no_line["runs"][0]["results"][0]["locations"][0]
        location["physicalLocation"]["region"]["startLine"] = 0
        assert validate_sarif(no_line)

        assert validate_sarif(log) == []  # the untouched log still passes
        assert validate_sarif([]) and validate_sarif({"runs": []})


class TestRealTreeStrictClean:
    def test_source_tree_has_no_strict_findings(self):
        findings, checked = analyze_paths([SRC], strict=True)
        assert checked > 80
        assert findings == []

    def test_committed_baseline_is_empty(self):
        baseline = Path(__file__).parent.parent / DEFAULT_BASELINE
        assert json.loads(baseline.read_text())["findings"] == []


# ---------------------------------------------------------------------------
# Unit-consistency regression tests (the audited cost paths)
# ---------------------------------------------------------------------------


class TestPeerLinkUnitConsistency:
    def test_sub_packet_payload_pays_a_whole_packet(self):
        spec = PeerLinkSpec(name="test", bandwidth=1e9, packet_bytes=256)
        assert spec.transfer_time(1) == spec.transfer_time(256)
        assert spec.transfer_time(257) > spec.transfer_time(256)

    def test_packetized_cost_is_latency_plus_wire_seconds(self):
        spec = PeerLinkSpec(
            name="test", bandwidth=2e9, latency_seconds=3e-6, packet_bytes=128
        )
        nbytes = 1000  # 8 packets of 128B = 1024 wire bytes
        wire_bytes = 8 * 128
        expected = 3e-6 + wire_bytes / 2e9
        assert spec.transfer_time(nbytes) == pytest.approx(expected)

    def test_bandwidth_term_scales_inversely_with_bandwidth(self):
        # The unit audit's check: (t - latency) must carry B/(B/s) = s,
        # so doubling bandwidth exactly halves it.
        slow = PeerLinkSpec(name="s", bandwidth=10e9, latency_seconds=1e-6)
        fast = PeerLinkSpec(name="f", bandwidth=20e9, latency_seconds=1e-6)
        nbytes = 4096
        slow_wire = slow.transfer_time(nbytes) - slow.latency_seconds
        fast_wire = fast.transfer_time(nbytes) - fast.latency_seconds
        assert slow_wire == pytest.approx(2.0 * fast_wire)

    def test_zero_payload_is_free(self):
        assert NVLINK_P2P.transfer_time(0) == 0.0
        assert PCIE_P2P.transfer_time(0) == 0.0


class TestCalibrationUnitConsistency:
    def test_step_cycles_for_is_cycles_not_seconds(self):
        cal = Calibration()
        for sampler in ("uniform", "alias", "inverse", "rejection"):
            cycles = cal.step_cycles_for(sampler)
            assert cycles >= cal.step_cycles_base
            # Cycle counts sit far above any plausible per-step seconds
            # value; a cycles/seconds confusion would collapse this.
            assert cycles > 1.0

    def test_step_cycles_compose_base_plus_extra(self):
        cal = Calibration()
        assert cal.step_cycles_for("alias") == pytest.approx(
            cal.step_cycles_base + cal.sampler_extra_cycles_alias
        )
        assert cal.step_cycles_for("uniform") == pytest.approx(
            cal.step_cycles_base
        )

    def test_cycles_cross_to_seconds_only_via_clock(self):
        cal = Calibration()
        cycles = cal.step_cycles_for("rejection")
        via_helper = seconds_from_cycles(cycles, RTX3090.clock_hz)
        via_device = RTX3090.cycles_to_seconds(cycles)
        assert via_helper == pytest.approx(via_device)
        assert via_helper == pytest.approx(cycles / RTX3090.clock_hz)
