"""Unit tests for walk state arrays and batches."""

import numpy as np
import pytest

from repro.walks.batch import WalkBatch
from repro.walks.state import WalkArrays, index_bytes_per_walk


class TestWalkArrays:
    def test_fresh(self):
        w = WalkArrays.fresh(np.array([3, 1, 4]), first_id=10)
        assert w.vertices.tolist() == [3, 1, 4]
        assert w.steps.tolist() == [0, 0, 0]
        assert w.ids.tolist() == [10, 11, 12]

    def test_empty(self):
        assert len(WalkArrays.empty()) == 0

    def test_misaligned_rejected(self):
        with pytest.raises(ValueError, match="aligned"):
            WalkArrays(np.array([1, 2]), np.array([0]), np.array([0]))

    def test_concat(self):
        a = WalkArrays.fresh(np.array([1]), first_id=0)
        b = WalkArrays.fresh(np.array([2, 3]), first_id=1)
        c = WalkArrays.concat([a, WalkArrays.empty(), b])
        assert c.vertices.tolist() == [1, 2, 3]
        assert c.ids.tolist() == [0, 1, 2]

    def test_concat_empty(self):
        assert len(WalkArrays.concat([])) == 0

    def test_select_by_mask(self):
        w = WalkArrays.fresh(np.array([5, 6, 7]))
        sel = w.select(np.array([True, False, True]))
        assert sel.vertices.tolist() == [5, 7]
        # Copies: mutating the selection does not touch the original.
        sel.vertices[0] = 99
        assert w.vertices[0] == 5

    def test_slice_copies(self):
        w = WalkArrays.fresh(np.array([5, 6, 7]))
        s = w.slice(1, 3)
        s.vertices[0] = 42
        assert w.vertices[1] == 6

    def test_copy_and_id_set(self):
        w = WalkArrays.fresh(np.array([1, 2]), first_id=7)
        assert w.copy().id_set() == {7, 8}

    def test_index_bytes(self):
        assert index_bytes_per_walk(False) == 8
        assert index_bytes_per_walk(True) == 16


class TestWalkBatch:
    def test_append_until_full(self):
        batch = WalkBatch(capacity=3, partition=0)
        walks = WalkArrays.fresh(np.array([1, 2, 3, 4]))
        written = batch.append(walks)
        assert written == 3
        assert batch.is_full
        assert batch.free_space == 0

    def test_append_with_start(self):
        batch = WalkBatch(capacity=4, partition=0)
        walks = WalkArrays.fresh(np.array([1, 2, 3]))
        assert batch.append(walks, start=2) == 1
        assert batch.vertices[0] == 3

    def test_append_start_beyond_end(self):
        batch = WalkBatch(capacity=4, partition=0)
        with pytest.raises(ValueError):
            batch.append(WalkArrays.fresh(np.array([1])), start=5)

    def test_drain_transfers_ownership(self):
        batch = WalkBatch(capacity=4, partition=2)
        batch.append(WalkArrays.fresh(np.array([7, 8])))
        drained = batch.drain()
        assert drained.vertices.tolist() == [7, 8]
        assert batch.is_empty

    def test_contents_copies(self):
        batch = WalkBatch(capacity=4, partition=0)
        batch.append(WalkArrays.fresh(np.array([7])))
        contents = batch.contents()
        contents.vertices[0] = 99
        assert batch.vertices[0] == 7
        assert batch.size == 1  # contents() does not drain

    def test_nbytes(self):
        batch = WalkBatch(capacity=8, partition=0)
        batch.append(WalkArrays.fresh(np.array([1, 2, 3])))
        assert batch.nbytes(8) == 24
        assert batch.nbytes(16) == 48

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            WalkBatch(capacity=0, partition=0)
        with pytest.raises(ValueError):
            WalkBatch(capacity=4, partition=-1)

    def test_len(self):
        batch = WalkBatch(capacity=4, partition=0)
        assert len(batch) == 0
        batch.append(WalkArrays.fresh(np.array([1])))
        assert len(batch) == 1
