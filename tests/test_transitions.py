"""Transition-sampler layer: registry, golden parity, distributions, cost."""

import numpy as np
import pytest

from repro.algorithms.node2vec import Node2Vec
from repro.algorithms.sampling import PartitionAliasSampler
from repro.algorithms.transitions import (
    SAMPLER_ALIAS,
    SAMPLER_INVERSE,
    SAMPLER_REJECTION,
    SAMPLER_UNIFORM,
    available_samplers,
    build_alias_tables,
    csr_edges_exist,
    make_sampler,
    register_sampler,
)
from repro.algorithms.transitions.secondorder import rows_sorted
from repro.algorithms.uniform import UniformSampling
from repro.baselines.inmemory_cpu import whole_graph_partition
from repro.core.config import EngineConfig
from repro.core.engine import run_walks
from repro.gpu.calibration import DEFAULT_CALIBRATION
from repro.gpu.device import RTX3090
from repro.gpu.kernels import KernelModel
from repro.graph import generators
from repro.graph.builders import from_edges
from repro.graph.csr import CSRGraph
from repro.graph.partition import GraphPartition


def partition_with_weights(offsets, targets, weights):
    """Hand-built partition; CSRGraph itself forbids zero weights, but a
    partition can carry them (e.g. masked edges) — the samplers must
    treat them as unpickable."""
    offsets = np.asarray(offsets, dtype=np.int64)
    return GraphPartition(
        index=0,
        start=0,
        stop=offsets.size - 1,
        offsets=offsets,
        targets=np.asarray(targets, dtype=np.int64),
        weights=np.asarray(weights, dtype=np.float64),
    )


def weighted_graph(seed=3, vertices=400, integer_weights=True):
    """Small weighted graph; integer-valued weights give exact alias parity."""
    g = generators.erdos_renyi(vertices, 6 * vertices, seed=seed)
    rng = np.random.default_rng(seed + 1)
    if integer_weights:
        w = rng.integers(1, 16, size=g.num_edges).astype(np.float64)
    else:
        w = rng.uniform(0.1, 4.0, size=g.num_edges)
    return CSRGraph(g.offsets, g.targets, w, name="weighted-test")


# ----------------------------------------------------------------------
class TestRegistry:
    def test_builtins_registered(self):
        names = available_samplers()
        for name in (
            SAMPLER_UNIFORM,
            SAMPLER_ALIAS,
            SAMPLER_INVERSE,
            SAMPLER_REJECTION,
        ):
            assert name in names

    def test_unknown_sampler_rejected(self):
        with pytest.raises(ValueError, match="unknown sampler"):
            make_sampler("nope")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_sampler(SAMPLER_ALIAS, object)

    def test_config_validates_sampler(self):
        with pytest.raises(ValueError, match="unknown sampler"):
            EngineConfig(sampler="nope")
        assert EngineConfig(sampler=SAMPLER_ALIAS).sampler == SAMPLER_ALIAS


# ----------------------------------------------------------------------
class TestAliasGoldenParity:
    def test_tables_bit_identical_to_loop_build(self):
        g = weighted_graph()
        loop = PartitionAliasSampler(g.offsets, g.weights)
        prob, alias = build_alias_tables(g.offsets, g.weights)
        assert np.array_equal(prob, loop.prob_flat)
        assert np.array_equal(alias, loop.alias_flat)

    def test_sample_bit_identical_to_loop_tables(self):
        g = weighted_graph()
        part = whole_graph_partition(g)
        sampler = make_sampler(SAMPLER_ALIAS)
        vertices = np.random.default_rng(5).integers(
            0, g.num_vertices, size=512
        )
        picks, dead = sampler.sample(part, vertices, np.random.default_rng(9))
        loop = PartitionAliasSampler(g.offsets, g.weights)
        edges = loop.sample_local(vertices, np.random.default_rng(9))
        expected = np.where(edges >= 0, g.targets[np.maximum(edges, 0)],
                            vertices)
        assert np.array_equal(picks, expected)
        assert np.array_equal(dead, edges < 0)

    def test_all_zero_row_rejected(self):
        with pytest.raises(ValueError):
            build_alias_tables(
                np.array([0, 2]), np.array([0.0, 0.0])
            )


# ----------------------------------------------------------------------
def chi_square(counts, probs):
    expected = counts.sum() * probs
    mask = expected > 0
    return float(((counts[mask] - expected[mask]) ** 2 / expected[mask]).sum())


class TestDistributions:
    """Chi-square of each weighted sampler against the true distribution."""

    @pytest.mark.parametrize(
        "name", [SAMPLER_ALIAS, SAMPLER_INVERSE, SAMPLER_REJECTION]
    )
    def test_matches_weights(self, name):
        weights = np.array([1.0, 2.0, 5.0, 0.5, 1.5])
        edges = [(0, t) for t in range(1, 6)]
        edges += [(t, 0) for t in range(1, 6)]
        g = from_edges(
            edges, num_vertices=6,
            weights=list(weights) + [1.0] * 5,
        )
        part = whole_graph_partition(g)
        sampler = make_sampler(name)
        draws = 40_000
        picks, dead = sampler.sample(
            part,
            np.zeros(draws, dtype=np.int64),
            np.random.default_rng(17),
        )
        assert not dead.any()
        counts = np.bincount(picks, minlength=6)[1:]
        probs = weights / weights.sum()
        # df = 4; 18.5 is the p=0.001 cutoff — seeded, so deterministic.
        assert chi_square(counts, probs) < 18.5

    @pytest.mark.parametrize(
        "name", [SAMPLER_ALIAS, SAMPLER_INVERSE, SAMPLER_REJECTION]
    )
    def test_zero_weight_edge_never_picked(self, name):
        # vertex 0 -> {1 (weight 0), 2 (weight 3)}; 1 and 2 point back.
        part = partition_with_weights(
            [0, 2, 3, 4], [1, 2, 0, 0], [0.0, 3.0, 1.0, 1.0]
        )
        sampler = make_sampler(name)
        picks, dead = sampler.sample(
            part,
            np.zeros(2_000, dtype=np.int64),
            np.random.default_rng(23),
        )
        assert not dead.any()
        assert (picks == 2).all()

    @pytest.mark.parametrize(
        "name",
        [SAMPLER_UNIFORM, SAMPLER_ALIAS, SAMPLER_INVERSE, SAMPLER_REJECTION],
    )
    def test_dead_end_stays_put(self, name):
        g = from_edges([(0, 1)], num_vertices=2, weights=[2.0])
        part = whole_graph_partition(g)
        sampler = make_sampler(name)
        picks, dead = sampler.sample(
            part, np.array([1, 1]), np.random.default_rng(1)
        )
        assert dead.all()
        assert picks.tolist() == [1, 1]

    def test_inverse_zero_total_is_dead_end(self):
        # vertex 0's edges all weigh 0 -> no pickable neighbor at all.
        part = partition_with_weights(
            [0, 2, 3, 4], [1, 2, 0, 0], [0.0, 0.0, 1.0, 1.0]
        )
        sampler = make_sampler(SAMPLER_INVERSE)
        picks, dead = sampler.sample(
            part, np.array([0, 1]), np.random.default_rng(2)
        )
        assert dead.tolist() == [True, False]
        assert picks[0] == 0

    def test_weights_required(self):
        g = generators.erdos_renyi(50, 200, seed=1)
        part = whole_graph_partition(g)
        for name in (SAMPLER_ALIAS, SAMPLER_INVERSE, SAMPLER_REJECTION):
            with pytest.raises(ValueError, match="weights"):
                make_sampler(name).sample(
                    part, np.zeros(4, dtype=np.int64), np.random.default_rng(0)
                )


# ----------------------------------------------------------------------
class TestSecondOrder:
    def test_edges_exist_matches_has_edge(self):
        g = generators.rmat(scale=8, edge_factor=5, seed=13)
        assert rows_sorted(g.offsets, g.targets)
        rng = np.random.default_rng(7)
        sources = rng.integers(0, g.num_vertices, size=3_000)
        # Half random queries, half guaranteed hits.
        queries = rng.integers(0, g.num_vertices, size=3_000)
        degs = g.offsets[sources + 1] - g.offsets[sources]
        hit = degs > 0
        first = g.targets[g.offsets[sources[hit]]]
        queries[np.nonzero(hit)[0][::2]] = first[::2]
        got = csr_edges_exist(g.offsets, g.targets, sources, queries)
        expected = np.fromiter(
            (g.has_edge(int(s), int(q)) for s, q in zip(sources, queries)),
            dtype=bool,
            count=sources.size,
        )
        assert np.array_equal(got, expected)

    def test_acceptance_bit_identical_to_loop(self):
        g = generators.rmat(scale=8, edge_factor=5, seed=13)
        algo = Node2Vec(length=10, return_param=2.0, inout_param=0.5)
        rng = np.random.default_rng(31)
        prev = rng.integers(0, g.num_vertices, size=800)
        cand = rng.integers(0, g.num_vertices, size=800)
        prev[::7] = -1  # first-step lanes
        assert np.array_equal(
            algo._acceptance(g, prev, cand),
            algo._acceptance_loop(g, prev, cand),
        )

    def test_step_once_trajectories_match_loop_acceptance(self):
        g = generators.rmat(scale=8, edge_factor=5, seed=13)
        part = whole_graph_partition(g)
        vertices = np.random.default_rng(3).integers(
            0, g.num_vertices, size=300
        )
        steps = np.zeros(300, dtype=np.int64)
        ids = np.arange(300, dtype=np.int64)
        results = []
        for use_loop in (False, True):
            algo = Node2Vec(length=10, return_param=2.0, inout_param=0.5)
            algo.start_vertices(g, 300, np.random.default_rng(0))
            if use_loop:
                algo._acceptance = algo._acceptance_loop
            rng = np.random.default_rng(41)
            v, s = vertices.copy(), steps.copy()
            for _ in range(3):
                v, term = algo.step_once(v, s, ids, part, rng, g)
                s += 1
            results.append(v)
        assert np.array_equal(results[0], results[1])

    def test_prev_table_grows_for_unseen_ids(self):
        g = generators.rmat(scale=6, edge_factor=4, seed=2)
        algo = Node2Vec(length=5)
        algo.start_vertices(g, 10, np.random.default_rng(0))
        table = algo._prev_table(np.array([3, 25], dtype=np.int64))
        assert table.size == 26
        assert table[25] == -1


# ----------------------------------------------------------------------
class TestCounterRNG:
    def test_alias_and_inverse_supported(self):
        g = weighted_graph(vertices=120)
        for name in (SAMPLER_ALIAS, SAMPLER_INVERSE):
            algo = UniformSampling(length=4, weighted=True, sampler=name)
            stats = run_walks(
                g, algo, 30,
                EngineConfig(
                    partition_bytes=4096, batch_walks=16, rng_mode="counter"
                ),
            )
            assert stats.total_steps == 120

    def test_rejection_refused(self):
        g = weighted_graph(vertices=120)
        algo = UniformSampling(
            length=4, weighted=True, sampler=SAMPLER_REJECTION
        )
        with pytest.raises(ValueError, match="subset redraws"):
            run_walks(
                g, algo, 30,
                EngineConfig(partition_bytes=4096, rng_mode="counter"),
            )


# ----------------------------------------------------------------------
class TestFallbackObservability:
    def test_saturation_reaches_run_stats(self):
        g = weighted_graph(vertices=200, integer_weights=False)
        algo = UniformSampling(
            length=6,
            weighted=True,
            sampler=SAMPLER_REJECTION,
            max_reject_rounds=1,
        )
        stats = run_walks(
            g, algo, 150, EngineConfig(partition_bytes=4096, batch_walks=32)
        )
        assert stats.total_steps == 900
        assert stats.sampler_fallbacks > 0

    def test_clean_run_reports_zero(self):
        g = weighted_graph(vertices=200)
        algo = UniformSampling(length=6, weighted=True, sampler=SAMPLER_ALIAS)
        stats = run_walks(
            g, algo, 100, EngineConfig(partition_bytes=4096, batch_walks=32)
        )
        assert stats.sampler_fallbacks == 0


# ----------------------------------------------------------------------
class TestEngineSamplerConfig:
    def test_config_override_applies(self):
        g = weighted_graph(vertices=150)
        algo = UniformSampling(length=4, weighted=True, sampler=SAMPLER_ALIAS)
        run_walks(
            g, algo, 20,
            EngineConfig(partition_bytes=4096, sampler=SAMPLER_INVERSE),
        )
        assert algo.sampler == SAMPLER_INVERSE

    def test_override_rejected_for_fixed_algorithms(self):
        from repro.algorithms.pagerank import PageRank

        g = generators.erdos_renyi(100, 400, seed=1)
        with pytest.raises(ValueError, match="does not support"):
            run_walks(
                g, PageRank(length=4), 10,
                EngineConfig(partition_bytes=4096, sampler=SAMPLER_ALIAS),
            )

    @pytest.mark.parametrize(
        "name", [SAMPLER_ALIAS, SAMPLER_INVERSE, SAMPLER_REJECTION]
    )
    def test_engine_runs_every_sampler(self, name):
        g = weighted_graph(vertices=150)
        algo = UniformSampling(length=5, weighted=True, sampler=name)
        stats = run_walks(
            g, algo, 40, EngineConfig(partition_bytes=4096, batch_walks=16)
        )
        assert stats.total_steps == 200


# ----------------------------------------------------------------------
class TestSamplerCostModel:
    def test_calibration_extra_cycles(self):
        cal = DEFAULT_CALIBRATION
        assert cal.sampler_extra_cycles("uniform") == 0.0
        assert cal.step_cycles_for("uniform") == cal.step_cycles_base
        for name in ("alias", "inverse", "rejection", "second_order"):
            assert cal.step_cycles_for(name) > cal.step_cycles_base
        with pytest.raises(ValueError, match="no cost calibration"):
            cal.sampler_extra_cycles("nope")

    def test_kernel_update_time_charges_sampler(self):
        model = KernelModel(RTX3090, DEFAULT_CALIBRATION)
        base = model.update_time(1_000, 10, 64 * 1024, sampler="uniform")
        assert model.update_time(1_000, 10, 64 * 1024) == base
        assert model.update_time(1_000, 10, 64 * 1024, sampler="alias") > base

    def test_cpu_multiplier(self):
        from repro.baselines.cpumodel import CPUCostModel, XEON_GOLD_5218R

        model = CPUCostModel(XEON_GOLD_5218R)
        assert model.sampler_cost_multiplier("uniform") == 1.0
        assert model.sampler_cost_multiplier("alias") > 1.0
        with pytest.raises(ValueError):
            model.sampler_cost_multiplier("nope")

    def test_reshuffle_serial_seconds_consistent(self):
        model = KernelModel(RTX3090, DEFAULT_CALIBRATION)
        serial = model.reshuffle_serial_seconds(12)
        assert model.reshuffle_time(1, 12) == serial
        lanes = DEFAULT_CALIBRATION.reshuffle_parallel_lanes
        n = 5 * lanes
        assert model.reshuffle_time(n, 12) == n * serial / lanes
