"""Behavioural tests of the straggler phase (§III-E) using engine traces.

The paper's adaptive scheduling exists because of stragglers: late in a
variable-length run only a few walks survive, partitions hold too few walks
to justify full loads, and zero copy takes over.  These tests assert that
the engine actually exhibits that phase structure.
"""

import numpy as np
import pytest

from repro.algorithms import PersonalizedPageRank, UniformSampling
from repro.core.config import COPY_ADAPTIVE
from repro.core.engine import LightTrafficEngine
from repro.core.trace import SERVED_ZERO_COPY, TraceRecorder
from repro.graph import generators


@pytest.fixture(scope="module")
def straggler_graph():
    return generators.rmat(scale=10, edge_factor=6, seed=19, name="strag")


def traced_run(graph, algorithm, config):
    trace = TraceRecorder()
    engine = LightTrafficEngine(graph, algorithm, config, trace=trace)
    stats = engine.run(800)
    return stats, trace


class TestStragglerPhase:
    def test_zero_copy_concentrates_late(self, straggler_graph, tiny_config):
        config = tiny_config.with_options(copy_mode=COPY_ADAPTIVE)
        stats, trace = traced_run(
            straggler_graph, PersonalizedPageRank(stop_prob=0.15), config
        )
        zc_iters = [
            it.iteration
            for it in trace.iterations
            if it.served == SERVED_ZERO_COPY
        ]
        assert zc_iters, "PPR should trigger zero copy"
        # The median zero-copy iteration falls in the run's second half.
        midpoint = stats.iterations / 2
        assert np.median(zc_iters) > midpoint

    def test_walks_per_iteration_decay(self, straggler_graph, tiny_config):
        __, trace = traced_run(
            straggler_graph,
            PersonalizedPageRank(stop_prob=0.15),
            tiny_config,
        )
        walks = [it.walks_total for it in trace.iterations]
        early = np.mean(walks[: max(1, len(walks) // 5)])
        late = np.mean(walks[-max(1, len(walks) // 5) :])
        assert late < early / 2  # geometric termination thins the load

    def test_fixed_length_has_mild_tail(self, straggler_graph, tiny_config):
        """Fixed-length walks finish near-simultaneously: far fewer
        zero-copy iterations than PPR at the same settings."""
        config = tiny_config.with_options(copy_mode=COPY_ADAPTIVE)
        ppr_stats, __ = traced_run(
            straggler_graph, PersonalizedPageRank(stop_prob=0.15), config
        )
        uni_stats, __ = traced_run(
            straggler_graph, UniformSampling(length=7), config
        )
        ppr_zc_frac = ppr_stats.zero_copy_iterations / ppr_stats.iterations
        uni_zc_frac = uni_stats.zero_copy_iterations / max(1, uni_stats.iterations)
        assert ppr_zc_frac > uni_zc_frac
