"""Algorithm semantics tests: uniform sampling, PageRank, PPR, node2vec."""

import numpy as np
import pytest

from repro.algorithms.base import uniform_neighbors
from repro.algorithms.node2vec import Node2Vec
from repro.algorithms.pagerank import PageRank, power_iteration_pagerank
from repro.algorithms.ppr import PersonalizedPageRank
from repro.algorithms.uniform import UniformSampling
from repro.baselines.inmemory_cpu import (
    execute_in_memory,
    whole_graph_partition,
)
from repro.graph import generators
from repro.graph.builders import from_edges
from repro.walks.state import WalkArrays


class TestUniformNeighbors:
    def test_picks_valid_neighbors(self, small_graph, rng):
        part = whole_graph_partition(small_graph)
        vertices = rng.integers(0, small_graph.num_vertices, size=200)
        nxt, dead = uniform_neighbors(part, vertices, rng)
        assert not dead.any()  # preprocessed graphs have no dead ends
        for v, n in zip(vertices[:50], nxt[:50]):
            assert small_graph.has_edge(int(v), int(n))

    def test_dead_end_marked(self, rng):
        g = from_edges([(0, 1)], num_vertices=2)  # vertex 1 is a sink
        part = whole_graph_partition(g)
        nxt, dead = uniform_neighbors(part, np.array([1]), rng)
        assert dead.tolist() == [True]
        assert nxt.tolist() == [1]  # stays put

    def test_roughly_uniform(self, rng):
        g = generators.star(4)
        part = whole_graph_partition(g)
        nxt, __ = uniform_neighbors(part, np.zeros(8000, dtype=np.int64), rng)
        freq = np.bincount(nxt, minlength=5)[1:] / 8000
        assert np.all(np.abs(freq - 0.25) < 0.03)


class TestUniformSampling:
    def test_exact_length(self, small_graph, rng):
        algo = UniformSampling(length=13)
        steps = execute_in_memory(small_graph, algo, 50, rng)
        assert steps == 50 * 13

    def test_paths_are_real_walks(self, small_graph, rng):
        algo = UniformSampling(length=6, record_paths=True)
        execute_in_memory(small_graph, algo, 20, rng)
        assert algo.paths.shape == (20, 7)
        for row in algo.paths:
            assert np.all(row >= 0)
            for a, b in zip(row, row[1:]):
                assert small_graph.has_edge(int(a), int(b))

    def test_starts_cover_vertices(self, rng):
        g = generators.ring(10)
        algo = UniformSampling(length=2)
        starts = algo.start_vertices(g, 20, rng)
        assert starts.tolist() == [v % 10 for v in range(20)]

    def test_weighted_sampling_biases(self, rng):
        # Vertex 0 has two neighbors with weights 9:1.
        g = from_edges(
            [(0, 1), (0, 2), (1, 0), (2, 0)],
            num_vertices=3,
            weights=[9.0, 1.0, 1.0, 1.0],
        )
        algo = UniformSampling(length=1, weighted=True, record_paths=True)
        execute_in_memory(g, algo, 3000, rng)
        firsts = algo.paths[np.arange(3000) % 3 == 0, 1]
        freq1 = np.mean(firsts == 1)
        assert 0.82 < freq1 < 0.97

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            UniformSampling(length=0)

    def test_bytes_per_walk(self):
        assert UniformSampling().bytes_per_walk == 16  # carries walk_id
        assert UniformSampling().expected_total_steps(10) == 800


class TestPageRank:
    def test_fixed_length(self, small_graph, rng):
        algo = PageRank(length=9, restart_prob=0.2)
        steps = execute_in_memory(small_graph, algo, 40, rng)
        assert steps == 40 * 9

    def test_visit_counts_total(self, small_graph, rng):
        algo = PageRank(length=5)
        execute_in_memory(small_graph, algo, 30, rng)
        # Initial visit + one per step.
        assert algo.visit_counts.sum() == 30 * (5 + 1)

    def test_matches_power_iteration(self, medium_graph):
        rng = np.random.default_rng(5)
        algo = PageRank(length=60, restart_prob=0.15)
        execute_in_memory(medium_graph, algo, 4 * medium_graph.num_vertices, rng)
        estimated = algo.pagerank_scores()
        reference = power_iteration_pagerank(medium_graph, damping=0.85)
        # Total-variation distance small, top vertices agree.
        tv = 0.5 * np.abs(estimated - reference).sum()
        assert tv < 0.08
        top_est = set(np.argsort(estimated)[-20:].tolist())
        top_ref = set(np.argsort(reference)[-20:].tolist())
        assert len(top_est & top_ref) >= 14

    def test_scores_before_run(self):
        with pytest.raises(RuntimeError):
            PageRank().pagerank_scores()

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            PageRank(length=0)
        with pytest.raises(ValueError):
            PageRank(restart_prob=1.0)

    def test_restart_probability_observable(self, rng):
        # On a ring, restarts are the only way to move non-adjacently.
        g = generators.ring(50)
        algo = PageRank(length=40, restart_prob=0.5)
        algo_paths = UniformSampling(length=40)  # just for comparison setup
        execute_in_memory(g, algo, 100, rng)
        # With restart 0.5, mass spreads across the ring quickly: many
        # distinct vertices visited.
        assert np.count_nonzero(algo.visit_counts) > 40


class TestPowerIterationReference:
    def test_sums_to_one(self, small_graph):
        ranks = power_iteration_pagerank(small_graph)
        assert ranks.sum() == pytest.approx(1.0)
        assert ranks.min() > 0

    def test_ring_is_uniform(self):
        ranks = power_iteration_pagerank(generators.ring(8))
        assert np.allclose(ranks, 1 / 8, atol=1e-9)

    def test_star_hub_dominates(self):
        ranks = power_iteration_pagerank(generators.star(10))
        assert ranks[0] > 3 * ranks[1]

    def test_empty_graph(self):
        from repro.graph.csr import CSRGraph

        g = CSRGraph(np.array([0]), np.array([], dtype=np.int64))
        assert power_iteration_pagerank(g).size == 0


class TestPersonalizedPageRank:
    def test_starts_at_source(self, small_graph, rng):
        algo = PersonalizedPageRank(source=3)
        starts = algo.start_vertices(small_graph, 10, rng)
        assert np.all(starts == 3)

    def test_default_source_highest_degree(self, small_graph, rng):
        algo = PersonalizedPageRank()
        expected = int(np.argmax(small_graph.degrees()))
        assert algo.resolve_source(small_graph) == expected

    def test_geometric_mean_length(self, small_graph):
        rng = np.random.default_rng(3)
        algo = PersonalizedPageRank(stop_prob=0.2)
        walks = 4000
        steps = execute_in_memory(small_graph, algo, walks, rng)
        # Processed steps per walk are geometric with mean 1/p = 5.
        assert steps / walks == pytest.approx(5.0, rel=0.1)

    def test_mass_concentrates_near_source(self, medium_graph):
        rng = np.random.default_rng(9)
        algo = PersonalizedPageRank(stop_prob=0.15)
        execute_in_memory(medium_graph, algo, 3000, rng)
        scores = algo.ppr_scores()
        source = algo.resolve_source(medium_graph)
        assert scores[source] == scores.max()
        assert scores.sum() == pytest.approx(1.0)

    def test_max_length_bound(self, small_graph, rng):
        algo = PersonalizedPageRank(stop_prob=0.01, max_length=5)
        steps = execute_in_memory(small_graph, algo, 100, rng)
        assert steps <= 100 * 5

    def test_invalid_params(self, small_graph):
        with pytest.raises(ValueError):
            PersonalizedPageRank(stop_prob=0.0)
        with pytest.raises(ValueError):
            PersonalizedPageRank(max_length=0)
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            PersonalizedPageRank(source=10**9).start_vertices(
                small_graph, 1, rng
            )

    def test_variable_length_flag(self):
        assert not PersonalizedPageRank().fixed_length
        assert PersonalizedPageRank().expected_total_steps(150) == pytest.approx(
            1000.0
        )


class TestNode2Vec:
    def test_runs_fixed_length(self, small_graph, rng):
        algo = Node2Vec(length=5, return_param=2.0, inout_param=0.5)
        steps = execute_in_memory(small_graph, algo, 30, rng)
        assert steps == 30 * 5

    def test_low_p_returns_often(self, rng):
        # Strong return bias: many steps revisit the previous vertex.
        g = generators.ring(20)
        algo = Node2Vec(length=12, return_param=0.05, inout_param=1.0)
        paths = UniformSampling(length=12)  # placeholder, not used
        from repro.walks.state import WalkArrays

        starts = algo.start_vertices(g, 60, rng)
        walks = WalkArrays.fresh(starts)
        part = whole_graph_partition(g)
        returns = 0
        total = 0
        prev = walks.vertices.copy()
        prev2 = np.full_like(prev, -1)
        for __ in range(12):
            new_v, __t = algo.step_once(
                walks.vertices, walks.steps, walks.ids, part, rng, g
            )
            returns += int(np.sum(new_v == prev2))
            total += new_v.size
            prev2 = prev.copy()
            prev = new_v.copy()
            walks.vertices[:] = new_v
            walks.steps += 1
        assert returns / total > 0.5  # biased toward returning

    def test_requires_graph(self, small_graph, rng):
        algo = Node2Vec(length=3)
        starts = algo.start_vertices(small_graph, 5, rng)
        part = whole_graph_partition(small_graph)
        with pytest.raises(RuntimeError, match="host-graph access"):
            algo.step_once(
                starts, np.zeros(5, dtype=np.int32),
                np.arange(5), part, rng, None
            )

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            Node2Vec(length=0)
        with pytest.raises(ValueError):
            Node2Vec(return_param=0.0)

    def test_bytes_per_walk(self):
        assert Node2Vec().bytes_per_walk == 24
