"""Serving-session invariants: latency accounting, conservation, replay.

Property-style checks over :class:`~repro.serve.session.ServeSession`
reports:

* percentile summaries are monotone (p50 <= p90 <= p99) and the latency
  identity ``queue + service == total`` holds *exactly* per request;
* request conservation holds under a mid-run device failure (every
  admitted query completes with every requested walk, sanitizer-clean);
* closed- and open-loop sessions replay bit-identically — the loop runs
  on the engine's simulated clock, never wall time.
"""

import numpy as np
import pytest

from repro.core.config import EngineConfig, FailureSchedule
from repro.serve import (
    ARRIVAL_OPEN,
    MAX_QUERY_STEPS,
    EmbeddingQuery,
    MetapathQuery,
    PPRQuery,
    ServeSession,
    UniformQuery,
    default_workload,
    make_vertex_types,
    nearest_rank,
    validated,
)


@pytest.fixture(scope="module")
def serve_graph():
    from repro.graph.generators import rmat

    return rmat(scale=9, edge_factor=6, seed=7, name="serve-props")


@pytest.fixture(scope="module")
def serve_types(serve_graph):
    return make_vertex_types(serve_graph, seed=7)


@pytest.fixture()
def serve_config():
    return EngineConfig(
        partition_bytes=2048,
        batch_walks=32,
        graph_pool_partitions=4,
        walk_pool_walks=256,
        seed=123,
        sanitize=True,
    )


class TestNearestRank:
    def test_known_percentiles(self):
        values = [4.0, 1.0, 3.0, 2.0]
        assert nearest_rank(values, 50) == 2.0
        assert nearest_rank(values, 75) == 3.0
        assert nearest_rank(values, 100) == 4.0
        assert nearest_rank([7.5], 99) == 7.5
        assert nearest_rank([], 50) == 0.0

    def test_monotone_in_percentile(self):
        values = [0.3, 0.1, 0.9, 0.5, 0.7]
        ranks = [nearest_rank(values, p) for p in (10, 50, 90, 99)]
        assert ranks == sorted(ranks)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            nearest_rank([1.0], 0)
        with pytest.raises(ValueError):
            nearest_rank([1.0], 101)


class TestLatencyAccounting:
    @pytest.mark.parametrize("arrival_kwargs", [
        pytest.param({}, id="closed"),
        pytest.param(
            {"arrival": ARRIVAL_OPEN, "arrival_rate": 2000.0}, id="open"
        ),
    ])
    def test_percentiles_monotone_and_identity_exact(
        self, serve_graph, serve_types, serve_config, arrival_kwargs
    ):
        workload = default_workload(serve_graph, queries=10, seed=2)
        report = ServeSession(
            serve_graph,
            serve_config,
            workers=4,
            vertex_types=serve_types,
            **arrival_kwargs,
        ).run(workload)
        latency = report.latency_percentiles()
        for series in latency.values():
            assert series["p50"] <= series["p90"] <= series["p99"]
        for result in report.results:
            # Exact by construction: total is computed as the sum.
            assert result.total_seconds == (
                result.queue_seconds + result.service_seconds
            )
            assert result.queue_seconds >= 0.0
            assert result.service_seconds > 0.0
        assert report.makespan > 0.0
        throughput = report.throughput()
        assert throughput["queries_per_second"] > 0.0

    def test_open_loop_arrivals_follow_schedule(
        self, serve_graph, serve_types, serve_config
    ):
        workload = default_workload(serve_graph, queries=8, seed=4)
        report = ServeSession(
            serve_graph,
            serve_config,
            workers=4,
            arrival=ARRIVAL_OPEN,
            arrival_rate=500.0,
            vertex_types=serve_types,
        ).run(workload)
        arrivals = [r.arrival for r in report.results]
        assert all(a > 0.0 for a in arrivals)
        # Service can never start before arrival.
        for result in report.results:
            start = result.arrival + result.queue_seconds
            assert start >= result.arrival


class TestRequestConservation:
    def test_all_requests_served_under_device_failure(
        self, serve_graph, serve_config
    ):
        config = serve_config.with_options(
            devices=3,
            failure_schedule=FailureSchedule.parse("1@3"),
        )
        queries = [
            PPRQuery(walks=20, sources=(1, 2, 3), max_length=24),
            PPRQuery(walks=20, sources=(9, 10), max_length=24),
        ]
        report = ServeSession(
            serve_graph, config, workers=2, max_batch_walks=64
        ).run(queries)
        assert report.stats.queries_admitted == 2
        assert report.stats.queries_completed == 2
        # Zero lost walks: every requested walk was routed back.
        assert report.walks_served == 40
        for result in report.results:
            assert (result.final_vertices >= 0).all()
        assert report.sanitizer is not None
        assert report.sanitizer["clean"], report.sanitizer
        assert report.engine_sanitizers_clean

    def test_stats_count_admissions_and_completions(
        self, serve_graph, serve_types, serve_config
    ):
        workload = default_workload(serve_graph, queries=9, seed=6)
        report = ServeSession(
            serve_graph, serve_config, workers=3, vertex_types=serve_types
        ).run(workload)
        assert report.stats.queries_admitted == len(workload)
        assert report.stats.queries_completed == len(workload)
        assert report.stats.system == "serve"
        assert {r.request_id for r in report.results} == set(
            range(len(workload))
        )


class TestDeterminism:
    def test_closed_loop_replays_bit_identically(
        self, serve_graph, serve_types, serve_config
    ):
        workload = default_workload(serve_graph, queries=10, seed=8)

        def run_once():
            return ServeSession(
                serve_graph,
                serve_config,
                workers=4,
                vertex_types=serve_types,
            ).run(workload)

        first, second = run_once(), run_once()
        assert first.makespan == second.makespan
        assert first.batches == second.batches
        assert first.coalesced_queries == second.coalesced_queries
        for a, b in zip(first.results, second.results):
            assert a.request_id == b.request_id
            assert a.seed == b.seed
            assert a.total_seconds == b.total_seconds
            np.testing.assert_array_equal(a.final_vertices, b.final_vertices)
            np.testing.assert_array_equal(a.steps_taken, b.steps_taken)

    def test_open_loop_replays_bit_identically(
        self, serve_graph, serve_types, serve_config
    ):
        workload = default_workload(serve_graph, queries=8, seed=8)

        def run_once():
            return ServeSession(
                serve_graph,
                serve_config,
                workers=3,
                arrival=ARRIVAL_OPEN,
                arrival_rate=1500.0,
                vertex_types=serve_types,
            ).run(workload)

        first, second = run_once(), run_once()
        assert first.makespan == second.makespan
        assert [r.arrival for r in first.results] == [
            r.arrival for r in second.results
        ]
        for a, b in zip(first.results, second.results):
            np.testing.assert_array_equal(a.final_vertices, b.final_vertices)


class TestValidation:
    def test_rejects_bad_session_args(self, serve_graph):
        with pytest.raises(ValueError, match="workers"):
            ServeSession(serve_graph, workers=0)
        with pytest.raises(ValueError, match="arrival"):
            ServeSession(serve_graph, arrival="bursty")
        with pytest.raises(ValueError, match="arrival_rate"):
            ServeSession(serve_graph, arrival=ARRIVAL_OPEN)
        with pytest.raises(ValueError, match="max_batch_walks"):
            ServeSession(serve_graph, max_batch_walks=0)

    def test_oversized_query_rejected_at_admission(
        self, serve_graph, serve_config
    ):
        # A query requesting more walks than one coalesced batch can
        # hold could never be scheduled; it must be rejected up front,
        # not spin the coalescer forever.
        session = ServeSession(
            serve_graph, serve_config, workers=2, max_batch_walks=64
        )
        oversized = PPRQuery(walks=65, sources=(1,), max_length=8)
        with pytest.raises(ValueError, match="max_batch_walks"):
            session.run([oversized])

    def test_exactly_full_query_is_admitted(self, serve_graph, serve_config):
        session = ServeSession(
            serve_graph, serve_config, workers=2, max_batch_walks=64
        )
        report = session.run(
            [PPRQuery(walks=64, sources=(1,), max_length=8)]
        )
        assert report.stats.queries_completed == 1
        assert report.walks_served == 64

    def test_step_fields_capped_at_max_query_steps(self):
        beyond = MAX_QUERY_STEPS + 1
        with pytest.raises(ValueError, match="max_length"):
            PPRQuery(walks=4, sources=(1,), max_length=beyond)
        with pytest.raises(ValueError, match="length"):
            UniformQuery(walks=4, length=beyond)
        with pytest.raises(ValueError, match="length"):
            MetapathQuery(walks=4, metapath=(0, 1), length=beyond)
        with pytest.raises(ValueError, match="length"):
            EmbeddingQuery(walks=4, length=beyond)
        # The cap is inclusive: the boundary value itself is accepted.
        assert (
            UniformQuery(walks=4, length=MAX_QUERY_STEPS).length
            == MAX_QUERY_STEPS
        )

    def test_validated_helper_bounds(self):
        assert validated(5, 1, 10) == 5
        with pytest.raises(ValueError, match="steps"):
            validated(11, 1, 10, "steps")
        with pytest.raises(ValueError):
            validated(-1, 0, 10)

    def test_rejects_empty_and_unknown_workloads(self, serve_graph):
        with pytest.raises(ValueError, match="at least one query"):
            ServeSession(serve_graph).run([])
        with pytest.raises(ValueError, match="unknown query kind"):
            default_workload(serve_graph, kinds=("bogus",), queries=2)

    def test_query_validation(self):
        with pytest.raises(ValueError, match="at least one walk"):
            PPRQuery(walks=0, sources=(1,))
        with pytest.raises(ValueError, match="seed set"):
            PPRQuery(walks=4, sources=())
