"""Tests for sampled-path shipping (paper §IV-A assumption, modeled)."""

import pytest

from repro.algorithms import PageRank, UniformSampling
from repro.core.engine import run_walks
from repro.core.stats import CAT_PATH_SHIP


class TestPathShipping:
    def test_off_by_default(self, small_graph, tiny_config):
        stats = run_walks(small_graph, UniformSampling(length=6), 100, tiny_config)
        assert stats.time(CAT_PATH_SHIP) == 0.0

    def test_charged_for_id_carrying_walks(self, small_graph, tiny_config):
        config = tiny_config.with_options(ship_paths=True)
        stats = run_walks(small_graph, UniformSampling(length=6), 100, config)
        assert stats.time(CAT_PATH_SHIP) > 0.0
        # Shipping is counted as transmission.
        assert stats.transmission_time >= stats.time(CAT_PATH_SHIP)

    def test_not_charged_without_walk_id(self, small_graph, tiny_config):
        # PageRank carries no walk_id: nothing to attribute, nothing shipped
        # (the paper stores visit frequencies in GPU memory instead).
        config = tiny_config.with_options(ship_paths=True)
        stats = run_walks(small_graph, PageRank(length=6), 100, config)
        assert stats.time(CAT_PATH_SHIP) == 0.0

    def test_shipping_does_not_change_results(self, small_graph, tiny_config):
        base = run_walks(
            small_graph, UniformSampling(length=6), 100, tiny_config
        )
        shipped = run_walks(
            small_graph,
            UniformSampling(length=6),
            100,
            tiny_config.with_options(ship_paths=True),
        )
        assert base.total_steps == shipped.total_steps
        assert base.iterations == shipped.iterations

    def test_faster_ship_link_cheaper(self, small_graph, tiny_config):
        slow = run_walks(
            small_graph,
            UniformSampling(length=6),
            200,
            tiny_config.with_options(ship_paths=True, ship_interconnect="pcie3"),
        )
        fast = run_walks(
            small_graph,
            UniformSampling(length=6),
            200,
            tiny_config.with_options(
                ship_paths=True, ship_interconnect="nvlink2"
            ),
        )
        assert fast.time(CAT_PATH_SHIP) < slow.time(CAT_PATH_SHIP)
