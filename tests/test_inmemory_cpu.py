"""Unit tests for the shared in-memory CPU execution machinery."""

import numpy as np
import pytest

from repro.algorithms import PageRank, PersonalizedPageRank, UniformSampling
from repro.baselines.inmemory_cpu import (
    InMemoryCPUEngine,
    execute_in_memory,
    whole_graph_partition,
)
from repro.core.stats import CAT_CPU_COMPUTE
from repro.graph import generators
from repro.graph.builders import from_edges


class TestWholeGraphPartition:
    def test_covers_everything(self, small_graph):
        part = whole_graph_partition(small_graph)
        assert part.start == 0
        assert part.stop == small_graph.num_vertices
        assert part.num_edges == small_graph.num_edges
        assert part.nbytes == small_graph.csr_bytes

    def test_neighbors_match(self, small_graph):
        part = whole_graph_partition(small_graph)
        for v in (0, small_graph.num_vertices - 1):
            assert np.array_equal(
                part.local_neighbors(v), small_graph.neighbors(v)
            )

    def test_weighted(self):
        g = from_edges([(0, 1), (1, 0)], num_vertices=2, weights=[1.0, 2.0])
        part = whole_graph_partition(g)
        assert part.weights is not None


class TestExecuteInMemory:
    def test_fixed_length_exact(self, small_graph, rng):
        steps = execute_in_memory(small_graph, UniformSampling(7), 30, rng)
        assert steps == 210

    def test_sink_vertices_terminate(self, rng):
        # Directed chain with a sink: walks stop at the dead end.
        g = from_edges([(0, 1), (1, 2)], num_vertices=3)
        steps = execute_in_memory(g, UniformSampling(10), 3, rng)
        assert steps < 30  # terminated early at the sink

    def test_unfinished_walks_detected(self, small_graph, rng):
        class NeverDone(UniformSampling):
            def step_once(self, vertices, steps, ids, part, rng, graph):
                new_v, __ = super().step_once(
                    vertices, steps, ids, part, rng, graph
                )
                # Claim nobody terminates but also exit the partition loop
                # is impossible on a whole-graph partition -> the engine
                # itself bounds it; use a tiny max instead.
                return new_v, np.zeros(vertices.size, dtype=bool)

        # A never-terminating algorithm would loop forever on the whole
        # graph partition, so we bound it: sanity-check the detection path
        # via PPR with max_length instead.
        algo = PersonalizedPageRank(stop_prob=0.5, max_length=3)
        steps = execute_in_memory(small_graph, algo, 50, rng)
        assert steps <= 150


class TestEngineShell:
    def test_base_class_requires_rate(self, small_graph):
        engine = InMemoryCPUEngine(small_graph, PageRank(4))
        with pytest.raises(NotImplementedError):
            engine.steps_per_second()

    def test_stats_shape(self, small_graph):
        class Fixed(InMemoryCPUEngine):
            system = "fixed"

            def steps_per_second(self):
                return 1e6

        stats = Fixed(small_graph, PageRank(5)).run(20)
        assert stats.system == "fixed"
        assert stats.total_time == pytest.approx(stats.total_steps / 1e6)
        assert stats.breakdown == {CAT_CPU_COMPUTE: stats.total_time}
        assert stats.iterations == 1
