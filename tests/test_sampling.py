"""Unit tests for alias tables and rejection sampling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.sampling import (
    AliasTable,
    PartitionAliasSampler,
    rejection_sample,
)


class TestAliasTable:
    def test_uniform_weights(self, rng):
        table = AliasTable(np.ones(4))
        samples = table.sample(rng, 8000)
        counts = np.bincount(samples, minlength=4)
        assert np.all(np.abs(counts / 8000 - 0.25) < 0.03)

    def test_skewed_weights(self, rng):
        weights = np.array([8.0, 1.0, 1.0])
        table = AliasTable(weights)
        samples = table.sample(rng, 20000)
        freq = np.bincount(samples, minlength=3) / 20000
        expected = weights / weights.sum()
        assert np.all(np.abs(freq - expected) < 0.02)

    def test_single_entry(self, rng):
        table = AliasTable(np.array([3.0]))
        assert np.all(table.sample(rng, 10) == 0)

    def test_zero_weight_entries_never_sampled(self, rng):
        table = AliasTable(np.array([0.0, 1.0, 0.0, 1.0]))
        samples = table.sample(rng, 5000)
        assert set(np.unique(samples)) <= {1, 3}

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            AliasTable(np.array([]))
        with pytest.raises(ValueError):
            AliasTable(np.array([-1.0, 2.0]))
        with pytest.raises(ValueError):
            AliasTable(np.array([0.0, 0.0]))
        with pytest.raises(ValueError):
            AliasTable(np.array([np.inf]))

    def test_negative_count(self, rng):
        with pytest.raises(ValueError):
            AliasTable(np.ones(2)).sample(rng, -1)

    def test_sample_zero(self, rng):
        assert AliasTable(np.ones(2)).sample(rng, 0).size == 0


@given(
    weights=st.lists(
        st.floats(0.01, 100.0, allow_nan=False), min_size=1, max_size=12
    )
)
@settings(max_examples=40, deadline=None)
def test_alias_table_probabilities_consistent(weights):
    """Property: the alias construction preserves total probability mass."""
    table = AliasTable(np.asarray(weights))
    n = len(weights)
    # Reconstruct per-index probability from the (prob, alias) arrays.
    mass = np.zeros(n)
    for slot in range(n):
        mass[slot] += table.prob[slot] / n
        mass[table.alias[slot]] += (1.0 - table.prob[slot]) / n
    expected = np.asarray(weights) / np.sum(weights)
    assert np.allclose(mass, expected, atol=1e-9)


class TestPartitionAliasSampler:
    def test_samples_respect_weights(self, rng):
        offsets = np.array([0, 2, 2, 5])
        weights = np.array([1.0, 9.0, 2.0, 2.0, 2.0])
        sampler = PartitionAliasSampler(offsets, weights)
        picks = sampler.sample_local(np.zeros(5000, dtype=np.int64), rng)
        freq1 = np.mean(picks == 1)
        assert 0.85 < freq1 < 0.95  # weight 9 of 10

    def test_dead_end_vertex(self, rng):
        sampler = PartitionAliasSampler(np.array([0, 0]), np.array([]))
        assert sampler.sample_local(np.array([0]), rng).tolist() == [-1]

    def test_requires_weights(self):
        with pytest.raises(ValueError):
            PartitionAliasSampler(np.array([0, 1]), None)


class TestRejectionSample:
    def test_accept_all(self, rng):
        def propose(k):
            n = 5 if k == -1 else k
            return np.arange(n), np.ones(n)

        assert rejection_sample(rng, propose).tolist() == [0, 1, 2, 3, 4]

    def test_eventually_accepts(self, rng):
        calls = {"n": 0}

        def propose(k):
            n = 8 if k == -1 else k
            calls["n"] += 1
            return np.full(n, calls["n"]), np.full(n, 0.5)

        out = rejection_sample(rng, propose)
        assert out.size == 8
        assert calls["n"] > 1  # some slots re-proposed

    def test_round_cap(self, rng):
        def propose(k):
            n = 4 if k == -1 else k
            return np.zeros(n), np.zeros(n)  # never accept

        out = rejection_sample(rng, propose, max_rounds=3)
        assert out.size == 4  # falls back to the last candidate
