"""Tests for counter-based per-walk randomness (scheduling-independent)."""

import numpy as np
import pytest

from repro.algorithms import (
    Node2Vec,
    PageRank,
    PersonalizedPageRank,
    UniformSampling,
)
from repro.core.config import COPY_EXPLICIT, COPY_ZERO, EngineConfig
from repro.core.engine import run_walks
from repro.core.prng import CounterRNG, derive_seed, seeded_rng, splitmix64
from repro.graph import generators


class TestSplitmix:
    def test_deterministic(self):
        x = np.arange(10, dtype=np.uint64)
        assert np.array_equal(splitmix64(x), splitmix64(x))

    def test_avalanche(self):
        a = splitmix64(np.array([1], dtype=np.uint64))[0]
        b = splitmix64(np.array([2], dtype=np.uint64))[0]
        assert bin(int(a) ^ int(b)).count("1") > 16

    def test_input_unchanged(self):
        x = np.array([7], dtype=np.uint64)
        splitmix64(x)
        assert x[0] == 7


class TestSeededRng:
    def test_identity_with_default_rng(self):
        # The factory's stream-less path must stay bit-identical to the
        # direct construction it replaced (golden parity depends on it).
        ours = seeded_rng(42).random(64)
        theirs = np.random.default_rng(42).random(64)
        assert np.array_equal(ours, theirs)

    def test_none_seed_allowed(self):
        assert seeded_rng().random() is not None

    def test_named_stream_forks(self):
        base = seeded_rng(42).random(16)
        forked = seeded_rng(42, stream="loader").random(16)
        assert not np.array_equal(base, forked)

    def test_streams_independent(self):
        a = seeded_rng(42, stream="loader").random(16)
        b = seeded_rng(42, stream="scheduler").random(16)
        assert not np.array_equal(a, b)

    def test_stream_deterministic(self):
        a = seeded_rng(42, stream="loader").random(16)
        b = seeded_rng(42, stream="loader").random(16)
        assert np.array_equal(a, b)


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(7, "x") == derive_seed(7, "x")

    def test_varies_with_seed_and_stream(self):
        assert derive_seed(7, "x") != derive_seed(8, "x")
        assert derive_seed(7, "x") != derive_seed(7, "y")

    def test_none_seed_is_zero_seed(self):
        assert derive_seed(None, "x") == derive_seed(0, "x")

    def test_fits_uint64(self):
        for seed in (0, 1, 2**63, 2**64 - 1):
            assert 0 <= derive_seed(seed, "s") < 2**64


class TestCounterRNG:
    def make(self, seed=1, n=8):
        rng = CounterRNG(seed)
        rng.set_context(
            np.arange(n, dtype=np.int64), np.zeros(n, dtype=np.int32)
        )
        return rng

    def test_random_range(self):
        values = self.make().random(8)
        assert np.all((values >= 0) & (values < 1))

    def test_draw_counter_advances(self):
        rng = self.make()
        a = rng.random(8)
        b = rng.random(8)
        assert not np.array_equal(a, b)

    def test_context_reset_replays(self):
        rng = self.make()
        a = rng.random(8)
        rng.set_context(
            np.arange(8, dtype=np.int64), np.zeros(8, dtype=np.int32)
        )
        b = rng.random(8)
        assert np.array_equal(a, b)

    def test_per_walk_independence(self):
        """A walk's draw is a function of its id, not its lane position."""
        rng = CounterRNG(3)
        rng.set_context(
            np.array([5, 9], dtype=np.int64), np.zeros(2, dtype=np.int32)
        )
        both = rng.random(2)
        rng.set_context(np.array([9], dtype=np.int64), np.zeros(1, dtype=np.int32))
        alone = rng.random(1)
        assert both[1] == alone[0]

    def test_step_changes_stream(self):
        rng = CounterRNG(3)
        rng.set_context(np.array([1], dtype=np.int64), np.array([0], dtype=np.int32))
        a = rng.random(1)
        rng.set_context(np.array([1], dtype=np.int64), np.array([1], dtype=np.int32))
        b = rng.random(1)
        assert a[0] != b[0]

    def test_size_mismatch_rejected(self):
        with pytest.raises(ValueError, match="context lanes"):
            self.make(n=8).random(4)

    def test_integers_bounds(self):
        rng = self.make(n=1000)
        rng._ids = np.arange(1000, dtype=np.uint64)
        rng._steps = np.zeros(1000, dtype=np.uint64)
        values = rng.integers(0, 7, size=1000)
        assert values.min() >= 0 and values.max() <= 6
        assert len(np.unique(values)) == 7  # all buckets hit

    def test_integers_invalid_span(self):
        with pytest.raises(ValueError):
            self.make().integers(5, 5, size=8)

    def test_no_context_falls_back(self):
        rng = CounterRNG(1)
        assert rng.random(4).shape == (4,)
        assert rng.integers(0, 10, size=4).shape == (4,)

    def test_uniformity_rough(self):
        rng = CounterRNG(11)
        rng.set_context(
            np.arange(20000, dtype=np.int64), np.zeros(20000, dtype=np.int32)
        )
        values = rng.random(20000)
        assert abs(values.mean() - 0.5) < 0.02
        hist, __ = np.histogram(values, bins=10, range=(0, 1))
        assert hist.min() > 1600


class TestSchedulingIndependence:
    """The headline property: trajectories identical under any schedule."""

    GRAPH = generators.rmat(scale=9, edge_factor=5, seed=23, name="ctr")

    def run_counts(self, **options):
        defaults = dict(
            partition_bytes=2048,
            batch_walks=32,
            graph_pool_partitions=4,
            seed=13,
            rng_mode="counter",
        )
        defaults.update(options)
        config = EngineConfig(**defaults)
        algo = PageRank(length=9)
        run_walks(self.GRAPH, algo, 200, config)
        return algo.visit_counts

    def test_identical_across_all_schedules(self):
        reference = self.run_counts()
        for options in (
            dict(preemptive=False),
            dict(selective=False),
            dict(pipeline=False),
            dict(copy_mode=COPY_ZERO),
            dict(copy_mode=COPY_EXPLICIT),
            dict(batch_walks=8),
            dict(graph_pool_partitions=2),
            dict(walk_pool_walks=64),
        ):
            assert np.array_equal(reference, self.run_counts(**options)), options

    def test_sequential_mode_differs_across_schedules(self):
        """Contrast: the default shared stream is order-dependent."""

        def counts(**options):
            config = EngineConfig(
                partition_bytes=2048,
                batch_walks=32,
                graph_pool_partitions=4,
                seed=13,
                **options,
            )
            algo = PageRank(length=9)
            run_walks(self.GRAPH, algo, 200, config)
            return algo.visit_counts

        assert not np.array_equal(
            counts(), counts(preemptive=False)
        )

    def test_all_supported_algorithms_run(self):
        config = EngineConfig(
            partition_bytes=2048,
            batch_walks=32,
            graph_pool_partitions=4,
            rng_mode="counter",
        )
        for algo in (
            UniformSampling(length=5),
            PageRank(length=5),
            PersonalizedPageRank(stop_prob=0.3),
        ):
            stats = run_walks(self.GRAPH, algo, 80, config)
            assert stats.total_steps > 0

    def test_node2vec_rejected(self):
        config = EngineConfig(rng_mode="counter")
        with pytest.raises(ValueError, match="subset redraws"):
            run_walks(self.GRAPH, Node2Vec(length=4), 10, config)

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="rng_mode"):
            EngineConfig(rng_mode="quantum")


def test_rejection_weighted_rejected_in_counter_mode():
    from repro.graph import generators as gen

    graph = gen.with_random_weights(gen.ring(16), seed=1)
    config = EngineConfig(rng_mode="counter", partition_bytes=1024,
                          batch_walks=8, graph_pool_partitions=2)
    algo = UniformSampling(length=3, weighted=True, sampler="rejection")
    with pytest.raises(ValueError, match="subset redraws"):
        run_walks(graph, algo, 10, config)


def test_alias_weighted_supported_in_counter_mode():
    from repro.graph import generators as gen

    graph = gen.with_random_weights(gen.ring(16), seed=1)
    config = EngineConfig(rng_mode="counter", partition_bytes=1024,
                          batch_walks=8, graph_pool_partitions=2)
    algo = UniformSampling(length=3, weighted=True, sampler="alias")
    stats = run_walks(graph, algo, 10, config)
    assert stats.total_steps == 30
