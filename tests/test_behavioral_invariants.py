"""Final behavioural invariants cutting across subsystems."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import PageRank, PersonalizedPageRank, UniformSampling
from repro.baselines import SubwayEngine, UVMConfig, UVMEngine
from repro.core.config import EngineConfig
from repro.core.engine import LightTrafficEngine, run_walks
from repro.graph import generators

GRAPH = generators.rmat(scale=9, edge_factor=5, seed=41, name="inv")


@given(
    seed=st.integers(0, 200),
    batch=st.sampled_from([8, 32, 128]),
    pool=st.integers(2, 8),
)
@settings(max_examples=15, deadline=None)
def test_timeline_never_overlaps_under_random_configs(seed, batch, pool):
    """Property: per-stream ops never overlap, whatever the config."""
    config = EngineConfig(
        partition_bytes=2048,
        batch_walks=batch,
        graph_pool_partitions=pool,
        seed=seed,
        record_ops=True,
    )
    engine = LightTrafficEngine(GRAPH, PageRank(length=6), config)
    engine.run(150)
    engine._timeline.validate()  # raises on overlap


class TestSubwayMonotonicity:
    def test_active_walks_non_increasing(self):
        engine = SubwayEngine(GRAPH, PersonalizedPageRank(stop_prob=0.2))
        engine.run(300)
        active = [r.active_walks for r in engine.records]
        assert all(b <= a for a, b in zip(active, active[1:]))

    def test_fixed_length_constant_until_end(self):
        engine = SubwayEngine(GRAPH, UniformSampling(length=7))
        engine.run(300)
        active = [r.active_walks for r in engine.records]
        assert active == [300] * 7


class TestUVMPageSizeTradeoff:
    def test_larger_pages_fewer_faults_more_bytes(self):
        def run(page):
            engine = UVMEngine(
                GRAPH,
                PageRank(length=6),
                UVMConfig(page_bytes=page, gpu_memory_bytes=GRAPH.csr_bytes * 2),
            )
            engine.run(150)
            return engine.faults

        small_pages = run(512)
        large_pages = run(8192)
        # With a cache that fits the graph, faults ~ distinct pages touched:
        # fewer, larger pages fault less often.
        assert large_pages < small_pages


class TestWalkLengthAccounting:
    def test_every_walk_reaches_exact_length(self, tiny_config):
        algo = UniformSampling(length=11, record_paths=True)
        run_walks(GRAPH, algo, 120, tiny_config)
        # paths fully populated: every walk took exactly `length` steps.
        assert np.all(algo.paths >= 0)

    def test_ppr_steps_bounded_by_max_length(self, tiny_config):
        algo = PersonalizedPageRank(stop_prob=0.05, max_length=7)
        stats = run_walks(GRAPH, algo, 200, tiny_config)
        assert stats.total_steps <= 200 * 7


class TestThroughputOrdering:
    def test_denser_workload_higher_throughput(self):
        """More walks over the same graph amortize transfers (the Fig 18
        mechanism at standard scale)."""
        config = EngineConfig(
            partition_bytes=2048,
            batch_walks=32,
            graph_pool_partitions=3,
            copy_mode="explicit",
            seed=6,
        )
        sparse = run_walks(GRAPH, PageRank(length=8), 50, config)
        dense = run_walks(GRAPH, PageRank(length=8), 2000, config)
        assert dense.throughput > sparse.throughput
