"""Regression: the stage/event-bus engine matches the pre-refactor engine.

``tests/data/engine_parity_golden.json`` holds RunStats captured from the
monolithic ``LightTrafficEngine.run`` *before* it was decomposed into
pipeline stages publishing on an :class:`~repro.core.events.EventBus`.
Every counter and simulated time must stay bit-identical across all
selective/preemptive/copy-mode combinations — the refactor moved
observation out of the loop, it must not move the simulation.
"""

import json
from pathlib import Path

import pytest

from repro.algorithms import PageRank, PersonalizedPageRank
from repro.core.config import EngineConfig
from repro.core.engine import LightTrafficEngine
from repro.graph import generators

GOLDEN_PATH = Path(__file__).parent / "data" / "engine_parity_golden.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text())


@pytest.fixture(scope="module")
def parity_graph():
    # Must match the capture script exactly (same seed, same generator).
    return generators.rmat(scale=10, edge_factor=6, seed=7, name="small")


def _case_id(record):
    return (
        f"{record.get('algorithm', 'pagerank')}-"
        f"sel={record['selective']}-pre={record['preemptive']}-"
        f"{record['copy_mode']}"
    )


def _run_record(record, parity_graph, sanitize=False):
    if record.get("algorithm") == "ppr":
        algorithm = PersonalizedPageRank(stop_prob=0.2)
        config = EngineConfig(
            partition_bytes=2048,
            batch_walks=32,
            graph_pool_partitions=4,
            seed=123,
        )
        num_walks = 200
    else:
        algorithm = PageRank(length=8)
        config = EngineConfig(
            partition_bytes=2048,
            batch_walks=32,
            graph_pool_partitions=4,
            walk_pool_walks=256,
            selective=record["selective"],
            preemptive=record["preemptive"],
            copy_mode=record["copy_mode"],
            seed=123,
        )
        num_walks = 300

    if sanitize:
        config = config.with_options(sanitize=True)
    return LightTrafficEngine(parity_graph, algorithm, config).run(num_walks)


@pytest.mark.parametrize("record", GOLDEN, ids=_case_id)
def test_stats_bit_identical_to_pre_refactor_engine(record, parity_graph):
    stats = _run_record(record, parity_graph)

    assert stats.iterations == record["iterations"]
    assert stats.total_steps == record["total_steps"]
    assert stats.explicit_copies == record["explicit_copies"]
    assert stats.zero_copy_iterations == record["zero_copy_iterations"]
    assert stats.graph_pool_hits == record["graph_pool_hits"]
    assert stats.graph_pool_misses == record["graph_pool_misses"]
    assert stats.walk_batches_loaded == record["walk_batches_loaded"]
    assert stats.walk_batches_evicted == record["walk_batches_evicted"]
    # bit-identical simulated times, not approx: same float operations in
    # the same order
    assert stats.total_time == record["total_time"]
    assert stats.breakdown == record["breakdown"]


@pytest.mark.parametrize("record", GOLDEN, ids=_case_id)
def test_golden_parity_holds_under_sanitizer(record, parity_graph):
    """The sanitizer is pure observation: goldens stay bit-identical."""
    stats = _run_record(record, parity_graph, sanitize=True)

    assert stats.sanitizer is not None
    assert stats.sanitizer["clean"], stats.sanitizer
    assert stats.iterations == record["iterations"]
    assert stats.total_steps == record["total_steps"]
    assert stats.total_time == record["total_time"]
    assert stats.breakdown == record["breakdown"]


@pytest.mark.parametrize("record", GOLDEN, ids=_case_id)
def test_single_shard_cluster_bit_identical(record, parity_graph):
    """``devices=1`` on the sharded engine is the single-device engine.

    The multi-device path (:class:`repro.core.cluster.MultiDeviceEngine`)
    must collapse at one shard to the exact single-device code path — no
    owned-mask filtering in the scheduler, no migration router, no
    channel streams — so every golden stays bit-identical, times
    included.
    """
    from repro.core.cluster import MultiDeviceEngine

    golden_stats = _run_record(record, parity_graph)

    if record.get("algorithm") == "ppr":
        algorithm = PersonalizedPageRank(stop_prob=0.2)
        config = EngineConfig(
            partition_bytes=2048,
            batch_walks=32,
            graph_pool_partitions=4,
            seed=123,
            devices=1,
        )
        num_walks = 200
    else:
        algorithm = PageRank(length=8)
        config = EngineConfig(
            partition_bytes=2048,
            batch_walks=32,
            graph_pool_partitions=4,
            walk_pool_walks=256,
            selective=record["selective"],
            preemptive=record["preemptive"],
            copy_mode=record["copy_mode"],
            seed=123,
            devices=1,
        )
        num_walks = 300
    stats = MultiDeviceEngine(parity_graph, algorithm, config).run(num_walks)

    assert stats.num_devices == 1
    assert stats.walks_migrated == 0
    assert stats.iterations == golden_stats.iterations
    assert stats.total_steps == golden_stats.total_steps
    assert stats.explicit_copies == golden_stats.explicit_copies
    assert stats.zero_copy_iterations == golden_stats.zero_copy_iterations
    assert stats.graph_pool_hits == golden_stats.graph_pool_hits
    assert stats.graph_pool_misses == golden_stats.graph_pool_misses
    assert stats.walk_batches_loaded == golden_stats.walk_batches_loaded
    assert stats.walk_batches_evicted == golden_stats.walk_batches_evicted
    assert stats.total_time == record["total_time"]
    assert stats.breakdown == record["breakdown"]


def test_golden_covers_every_scheduler_combination():
    combos = {
        (r["selective"], r["preemptive"], r["copy_mode"])
        for r in GOLDEN
        if r.get("algorithm") != "ppr"
    }
    assert len(combos) == 12  # 2 x 2 x {adaptive, explicit, zero_copy}
