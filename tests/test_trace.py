"""Tests for engine tracing (per-iteration records)."""

import numpy as np
import pytest

from repro.algorithms import PageRank, PersonalizedPageRank
from repro.core.config import COPY_EXPLICIT, COPY_ZERO
from repro.core.engine import LightTrafficEngine
from repro.core.trace import (
    SERVED_EXPLICIT,
    SERVED_HIT,
    SERVED_ZERO_COPY,
    IterationTrace,
    TraceRecorder,
)


class TestRecorderUnit:
    def test_basic_flow(self):
        trace = TraceRecorder()
        trace.begin_iteration(1, partition=3, served=SERVED_EXPLICIT)
        trace.record_compute(3, walks=10, steps=25, preemptive=False)
        trace.record_compute(5, walks=4, steps=8, preemptive=True)
        trace.record_eviction()
        assert len(trace) == 1
        record = trace.iterations[0]
        assert record.walks_selected == 10
        assert record.walks_preempted == 4
        assert record.walks_total == 14
        assert record.steps == 33
        assert record.preempted_partitions == [5]
        assert record.evicted_batches == 1

    def test_served_counts(self):
        trace = TraceRecorder()
        trace.begin_iteration(1, 0, SERVED_HIT)
        trace.begin_iteration(2, 1, SERVED_EXPLICIT)
        trace.begin_iteration(3, 2, SERVED_HIT)
        counts = trace.served_counts()
        assert counts[SERVED_HIT] == 2
        assert counts[SERVED_EXPLICIT] == 1
        assert counts[SERVED_ZERO_COPY] == 0

    def test_preemption_fraction(self):
        trace = TraceRecorder()
        trace.begin_iteration(1, 0, SERVED_HIT)
        trace.record_compute(0, walks=6, steps=6, preemptive=False)
        trace.record_compute(1, walks=2, steps=2, preemptive=True)
        assert trace.preemption_fraction() == pytest.approx(0.25)

    def test_empty_fraction(self):
        assert TraceRecorder().preemption_fraction() == 0.0

    def test_hooks_require_iteration(self):
        trace = TraceRecorder()
        with pytest.raises(RuntimeError):
            trace.record_compute(0, 1, 1, False)
        with pytest.raises(RuntimeError):
            trace.record_eviction()

    def test_invalid_served(self):
        with pytest.raises(ValueError):
            TraceRecorder().begin_iteration(1, 0, "teleport")


class TestEngineIntegration:
    def test_trace_matches_stats(self, small_graph, tiny_config):
        trace = TraceRecorder()
        engine = LightTrafficEngine(
            small_graph, PageRank(length=8), tiny_config, trace=trace
        )
        stats = engine.run(300)
        assert len(trace) == stats.iterations
        assert sum(it.steps for it in trace.iterations) == stats.total_steps
        counts = trace.served_counts()
        assert counts[SERVED_EXPLICIT] == stats.explicit_copies
        assert counts[SERVED_ZERO_COPY] == stats.zero_copy_iterations
        evictions = sum(it.evicted_batches for it in trace.iterations)
        assert evictions == stats.walk_batches_evicted

    def test_zero_copy_mode_traced(self, small_graph, tiny_config):
        trace = TraceRecorder()
        engine = LightTrafficEngine(
            small_graph,
            PageRank(length=6),
            tiny_config.with_options(copy_mode=COPY_ZERO),
            trace=trace,
        )
        engine.run(100)
        assert all(
            it.served == SERVED_ZERO_COPY for it in trace.iterations
        )

    def test_preemption_visible_when_enabled(self, small_graph, tiny_config):
        def fraction(preemptive):
            trace = TraceRecorder()
            LightTrafficEngine(
                small_graph,
                PageRank(length=10),
                tiny_config.with_options(
                    preemptive=preemptive,
                    copy_mode=COPY_EXPLICIT,
                    batch_walks=16,
                ),
                trace=trace,
            ).run(400)
            return trace.preemption_fraction()

        assert fraction(False) == 0.0
        assert fraction(True) > 0.0

    def test_partition_visit_counts(self, small_graph, tiny_config):
        trace = TraceRecorder()
        engine = LightTrafficEngine(
            small_graph, PersonalizedPageRank(stop_prob=0.3), tiny_config,
            trace=trace,
        )
        stats = engine.run(200)
        counts = trace.partition_visit_counts(stats.num_partitions)
        assert counts.sum() == stats.iterations
