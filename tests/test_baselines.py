"""Unit and integration tests for the comparator systems."""

import numpy as np
import pytest

from repro.algorithms import PageRank, PersonalizedPageRank, UniformSampling
from repro.baselines import (
    CPUCostModel,
    CPUSpec,
    FlashMobEngine,
    MultiRoundEngine,
    NextDoorEngine,
    NextDoorConfig,
    SubwayConfig,
    SubwayEngine,
    SubwayOutOfMemory,
    ThunderRWEngine,
    XEON_GOLD_5218R,
)
from repro.core.config import EngineConfig
from repro.core.engine import run_walks
from repro.core.stats import CAT_GRAPH_LOAD, CAT_SUBGRAPH, CAT_WALK_UPDATE


class TestCPUCostModel:
    def test_thunderrw_degrades_with_size(self):
        model = CPUCostModel(XEON_GOLD_5218R)
        small = model.thunderrw_steps_per_second(1 << 20)
        large = model.thunderrw_steps_per_second(1 << 36)
        assert small > 2 * large

    def test_flashmob_degrades_gently(self):
        model = CPUCostModel(XEON_GOLD_5218R)
        small = model.flashmob_steps_per_second(1 << 20)
        large = model.flashmob_steps_per_second(1 << 36)
        trw = CPUCostModel(XEON_GOLD_5218R)
        assert small > large
        # FlashMob loses less from the same growth than ThunderRW.
        trw_ratio = trw.thunderrw_steps_per_second(
            1 << 20
        ) / trw.thunderrw_steps_per_second(1 << 36)
        fm_ratio = small / large
        assert fm_ratio < trw_ratio

    def test_crossover_thunderrw_fast_when_cached(self):
        model = CPUCostModel(XEON_GOLD_5218R)
        cached = XEON_GOLD_5218R.llc_bytes // 2
        assert model.thunderrw_steps_per_second(
            cached
        ) > model.flashmob_steps_per_second(cached)

    def test_miss_rate_curve(self):
        model = CPUCostModel(XEON_GOLD_5218R)
        assert model.miss_rate(1024) == pytest.approx(0.02)
        assert model.miss_rate(10 ** 12) == pytest.approx(0.98)
        with pytest.raises(ValueError):
            model.miss_rate(0)

    def test_scaled_spec(self):
        scaled = XEON_GOLD_5218R.scaled(1 / 1024)
        assert scaled.llc_bytes == XEON_GOLD_5218R.llc_bytes // 1024
        assert scaled.cores == XEON_GOLD_5218R.cores
        with pytest.raises(ValueError):
            XEON_GOLD_5218R.scaled(0)


class TestCPUEngines:
    def test_thunderrw_runs_all_algorithms(self, small_graph):
        for algo in (UniformSampling(8), PageRank(8), PersonalizedPageRank()):
            stats = ThunderRWEngine(small_graph, algo).run(100)
            assert stats.system == "thunderrw"
            assert stats.total_steps > 0
            assert stats.total_time > 0

    def test_flashmob_rejects_variable_length(self, small_graph):
        with pytest.raises(ValueError, match="fixed-length"):
            FlashMobEngine(small_graph, PersonalizedPageRank())

    def test_flashmob_runs_fixed_length(self, small_graph):
        stats = FlashMobEngine(small_graph, PageRank(8)).run(100)
        assert stats.total_steps == 800

    def test_cpu_time_is_steps_over_rate(self, small_graph):
        engine = ThunderRWEngine(small_graph, UniformSampling(8))
        stats = engine.run(50)
        assert stats.total_time == pytest.approx(
            stats.total_steps / engine.steps_per_second()
        )

    def test_invalid_walk_count(self, small_graph):
        with pytest.raises(ValueError):
            ThunderRWEngine(small_graph, PageRank(4)).run(0)


class TestSubway:
    def test_runs_one_step_per_iteration(self, small_graph):
        engine = SubwayEngine(small_graph, PageRank(length=9))
        stats = engine.run(120)
        assert stats.iterations == 9  # one step per active walk per iter
        assert stats.total_steps == 120 * 9

    def test_records_activity_ratios(self, small_graph):
        engine = SubwayEngine(small_graph, PageRank(length=6))
        engine.run(2 * small_graph.num_vertices)
        assert len(engine.records) == 6
        first = engine.records[0]
        assert 0 < first.active_vertex_fraction <= 1
        assert 0 < first.active_edge_fraction <= 1
        # Walks use only a fraction of the loaded active edges.
        assert first.used_edge_fraction < first.active_edge_fraction

    def test_breakdown_sums_to_total(self, small_graph):
        stats = SubwayEngine(small_graph, PageRank(length=5)).run(100)
        assert stats.total_time == pytest.approx(sum(stats.breakdown.values()))
        assert stats.time(CAT_SUBGRAPH) > 0
        assert stats.time(CAT_GRAPH_LOAD) > 0
        assert stats.time(CAT_WALK_UPDATE) > 0

    def test_chunked_loads_when_subgraph_exceeds_gpu(self, small_graph):
        config = SubwayConfig(gpu_memory_bytes=1024)
        stats = SubwayEngine(small_graph, PageRank(length=3)).run(100)
        chunked = SubwayEngine(small_graph, PageRank(length=3), config).run(100)
        assert chunked.explicit_copies > stats.explicit_copies

    def test_host_oom_model(self, small_graph):
        tight = SubwayConfig(host_memory_bytes=small_graph.csr_bytes)
        with pytest.raises(SubwayOutOfMemory):
            SubwayEngine(small_graph, PageRank(length=3), tight).run(10)

    def test_host_memory_estimate(self, small_graph):
        engine = SubwayEngine(small_graph, PageRank(length=3))
        assert engine.host_memory_estimate() > 2 * small_graph.csr_bytes

    def test_ppr_variable_iterations(self, small_graph):
        engine = SubwayEngine(
            small_graph, PersonalizedPageRank(stop_prob=0.3)
        )
        stats = engine.run(200)
        assert stats.iterations > 3  # geometric tail


class TestNextDoor:
    def test_runs(self, small_graph):
        stats = NextDoorEngine(small_graph, PageRank(length=7)).run(100)
        assert stats.total_steps == 700
        assert stats.explicit_copies == 1  # whole graph loaded once
        assert stats.time(CAT_GRAPH_LOAD) > 0

    def test_rejects_oversized_graph(self, small_graph):
        import dataclasses

        from repro.gpu.device import RTX3090

        tiny_device = dataclasses.replace(RTX3090, mem_bytes=1024)
        with pytest.raises(ValueError, match="fit in GPU memory"):
            NextDoorEngine(
                small_graph,
                PageRank(length=3),
                NextDoorConfig(device=tiny_device),
            )

    def test_invalid_walk_count(self, small_graph):
        with pytest.raises(ValueError):
            NextDoorEngine(small_graph, PageRank(length=3)).run(0)


class TestMultiRound:
    def test_aggregates_all_rounds(self, small_graph, tiny_config):
        engine = MultiRoundEngine(
            small_graph,
            lambda: UniformSampling(length=6),
            tiny_config,
            rounds=4,
        )
        stats = engine.run(400)
        assert stats.system == "multiround"
        assert stats.num_walks == 400
        assert stats.total_steps == 2400
        assert "rounds=4" in stats.notes

    def test_costs_more_than_single_run(self, small_graph, tiny_config):
        single = run_walks(
            small_graph, UniformSampling(length=6), 400, tiny_config
        )
        multi = MultiRoundEngine(
            small_graph, lambda: UniformSampling(length=6), tiny_config, rounds=4
        ).run(400)
        assert multi.total_time > single.total_time

    def test_single_round_equivalent_scale(self, small_graph, tiny_config):
        multi = MultiRoundEngine(
            small_graph, lambda: UniformSampling(length=6), tiny_config, rounds=1
        ).run(100)
        assert multi.total_steps == 600

    def test_invalid(self, small_graph, tiny_config):
        with pytest.raises(ValueError):
            MultiRoundEngine(small_graph, PageRank, tiny_config, rounds=0)
        engine = MultiRoundEngine(
            small_graph, lambda: PageRank(length=3), tiny_config, rounds=8
        )
        with pytest.raises(ValueError):
            engine.run(4)  # fewer walks than rounds
