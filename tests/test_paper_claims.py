"""Fast-scale versions of the paper's headline claims.

The full-scale versions live in `benchmarks/`; these run the same
comparisons on the smallest registry dataset so `pytest tests/` alone
exercises every claim end to end (in seconds, not minutes).
"""

import pytest

from repro.algorithms import PageRank
from repro.baselines import SubwayConfig, SubwayEngine, ThunderRWEngine
from repro.bench.workloads import (
    default_platform,
    load_dataset,
    standard_config,
    standard_walks,
)
from repro.core.config import COPY_ADAPTIVE, COPY_EXPLICIT, COPY_ZERO
from repro.core.engine import LightTrafficEngine
from repro.core.stats import CAT_RESHUFFLE
from repro.gpu.kernels import DIRECT_WRITE, TWO_LEVEL


@pytest.fixture(scope="module")
def platform():
    return default_platform()


@pytest.fixture(scope="module")
def graph():
    return load_dataset("lj-sim")


def lt_run(graph, platform, **overrides):
    config = standard_config(graph, platform, **overrides)
    algo = PageRank(length=20)
    return LightTrafficEngine(graph, algo, config).run(
        standard_walks(graph)
    )


class TestHeadlineClaims:
    def test_lighttraffic_beats_cpu_baseline(self, graph, platform):
        lt = lt_run(graph, platform, interconnect="pcie4")
        cpu = ThunderRWEngine(
            graph, PageRank(length=20), cpu=platform.cpu
        ).run(standard_walks(graph))
        assert lt.total_time < cpu.total_time

    def test_lighttraffic_beats_subway(self, graph, platform):
        lt = lt_run(graph, platform)
        subway = SubwayEngine(
            graph,
            PageRank(length=20),
            SubwayConfig(
                device=platform.device,
                interconnect=platform.pcie3,
                calibration=platform.calibration,
                gpu_memory_bytes=platform.gpu_memory_bytes,
            ),
        ).run(standard_walks(graph))
        assert subway.total_time > 2 * lt.total_time

    def test_two_level_reshuffle_cheaper(self, graph, platform):
        # Force multiple partitions so reshuffle scatter matters.
        two = lt_run(
            graph, platform, partition_bytes=16 * 1024,
            reshuffle_mode=TWO_LEVEL,
        )
        direct = lt_run(
            graph, platform, partition_bytes=16 * 1024,
            reshuffle_mode=DIRECT_WRITE,
        )
        assert two.time(CAT_RESHUFFLE) < direct.time(CAT_RESHUFFLE)

    def test_scheduling_reduces_copies(self, graph, platform):
        # Constrain the pool so eviction pressure exists on the tiny graph.
        base = dict(
            partition_bytes=16 * 1024,
            graph_pool_partitions=8,
            copy_mode=COPY_EXPLICIT,
        )
        naive = lt_run(
            graph, platform, preemptive=False, selective=False, **base
        )
        full = lt_run(graph, platform, preemptive=True, selective=True, **base)
        assert full.explicit_copies < naive.explicit_copies
        assert full.total_time < naive.total_time

    def test_adaptive_never_loses_to_pure_policies(self, graph, platform):
        times = {}
        for mode in (COPY_EXPLICIT, COPY_ZERO, COPY_ADAPTIVE):
            times[mode] = lt_run(
                graph, platform, partition_bytes=16 * 1024, copy_mode=mode
            ).total_time
        assert times[COPY_ADAPTIVE] <= times[COPY_EXPLICIT] * 1.02
        assert times[COPY_ADAPTIVE] <= times[COPY_ZERO] * 1.02

    def test_pcie4_helps(self, graph, platform):
        pcie3 = lt_run(graph, platform, interconnect="pcie3")
        pcie4 = lt_run(graph, platform, interconnect="pcie4")
        assert pcie4.total_time <= pcie3.total_time * 1.001
