"""Unit and property tests for the host and device walk pools.

The central invariant is *walk conservation*: no walk is ever lost or
duplicated by loading, eviction, frontier rollover, or scatter insertion.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.walks.batch import WalkBatch
from repro.walks.pool import DeviceWalkPool, HostWalkPool
from repro.walks.state import WalkArrays


def walks(*vertices, first_id=0):
    return WalkArrays.fresh(np.asarray(vertices, dtype=np.int64), first_id)


class TestHostWalkPool:
    def test_append_and_counts(self):
        pool = HostWalkPool(num_partitions=4, batch_capacity=2)
        pool.append_walks(1, walks(10, 11, 12))
        assert pool.counts[1] == 3
        assert pool.total_walks == 3
        assert pool.has_walks(1)
        assert not pool.has_walks(0)
        assert pool.num_batches(1) == 2
        assert pool.num_batches(0) == 0

    def test_pop_decrements(self):
        pool = HostWalkPool(4, 2)
        pool.append_walks(0, walks(1, 2, 3))
        batch = pool.pop_batch(0)
        assert batch.size == 2
        assert pool.counts[0] == 1

    def test_push_batch(self):
        pool = HostWalkPool(4, 2)
        batch = WalkBatch(capacity=2, partition=2)
        batch.append(walks(5))
        pool.push_batch(batch)
        assert pool.counts[2] == 1

    def test_partitions_with_walks(self):
        pool = HostWalkPool(4, 2)
        pool.append_walks(3, walks(1))
        assert pool.partitions_with_walks().tolist() == [3]

    def test_partition_out_of_range(self):
        pool = HostWalkPool(2, 2)
        with pytest.raises(IndexError):
            pool.append_walks(5, walks(1))

    def test_iter_walks_conservation(self):
        pool = HostWalkPool(4, 2)
        pool.append_walks(0, walks(1, 2, first_id=0))
        pool.append_walks(1, walks(3, first_id=2))
        ids = set()
        for chunk in pool.iter_walks():
            ids |= chunk.id_set()
        assert ids == {0, 1, 2}

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            HostWalkPool(0, 2)


class TestDeviceWalkPool:
    def make(self, partitions=4, capacity=4, walks_cap=100):
        return DeviceWalkPool(partitions, capacity, walks_cap)

    def test_append_and_accounting(self):
        pool = self.make(capacity=4)
        pool.append_walks(0, walks(1, 2, 3, 4, 5))
        assert pool.num_walks(0) == 5
        assert pool.full_batches(0) == 1
        assert pool.frontier_size(0) == 1
        assert pool.has_cached_batches(0)
        assert pool.cached_walks == 5

    def test_pop_all_drains(self):
        pool = self.make()
        pool.append_walks(2, walks(1, 2, 3, first_id=5))
        out = pool.pop_all(2)
        assert out.id_set() == {5, 6, 7}
        assert pool.num_walks(2) == 0
        assert len(pool.pop_all(2)) == 0

    def test_fifo_order(self):
        pool = self.make(capacity=2)
        pool.append_walks(0, walks(1, 2))
        pool.append_walks(0, walks(3, 4))
        first = pool.pop_full_batches(0)
        assert first.vertices.tolist() == [1, 2, 3, 4]

    def test_pop_full_batches_leaves_frontier(self):
        pool = self.make(capacity=2)
        pool.append_walks(0, walks(1, 2, 3))
        out = pool.pop_full_batches(0)
        assert len(out) == 2
        assert pool.frontier_size(0) == 1
        assert not pool.has_cached_batches(0)

    def test_pop_full_batches_requires_full(self):
        pool = self.make(capacity=4)
        pool.append_walks(0, walks(1))
        with pytest.raises(IndexError):
            pool.pop_full_batches(0)

    def test_pop_preemptible_prefers_full(self):
        pool = self.make(capacity=2)
        pool.append_walks(0, walks(1, 2, 3))
        out = pool.pop_preemptible(0)
        assert len(out) == 2  # full batch only, frontier stays
        assert pool.num_walks(0) == 1

    def test_pop_preemptible_falls_back_to_frontier(self):
        pool = self.make(capacity=4)
        pool.append_walks(0, walks(1))
        out = pool.pop_preemptible(0)
        assert len(out) == 1
        assert pool.num_walks(0) == 0

    def test_evict_batch(self):
        pool = self.make(capacity=2, walks_cap=4)
        pool.append_walks(1, walks(1, 2, 3, first_id=0))
        batch = pool.evict_batch(1)
        assert batch.partition == 1
        assert batch.size == 2
        assert pool.num_walks(1) == 1

    def test_evict_empty_raises(self):
        with pytest.raises(IndexError):
            self.make().evict_batch(0)

    def test_overflow_accounting(self):
        pool = self.make(capacity=2, walks_cap=4)
        pool.append_walks(0, walks(1, 2, 3, 4, 5, 6))
        assert pool.overflow == 2
        assert pool.free_capacity() == 0
        pool.evict_batch(0)
        assert pool.overflow == 0

    def test_load_batch(self):
        pool = self.make(capacity=4)
        batch = WalkBatch(capacity=4, partition=3)
        batch.append(walks(9, 8))
        pool.load_batch(batch)
        assert pool.num_walks(3) == 2

    def test_load_empty_batch_noop(self):
        pool = self.make()
        pool.load_batch(WalkBatch(capacity=4, partition=0))
        assert pool.cached_walks == 0

    def test_reserved_bytes_bound(self):
        pool = self.make(partitions=10, capacity=8)
        # (2P + 1) * B * S_w — the paper's §III-B reservation bound.
        assert pool.reserved_bytes(8) == (2 * 10 + 1) * 8 * 8

    def test_buffer_growth_and_compaction(self):
        pool = self.make(capacity=2, walks_cap=10_000)
        # Interleave inserts and pops to force head movement + compaction.
        next_id = 0
        popped = 0
        for round_idx in range(50):
            pool.append_walks(0, walks(*range(3), first_id=next_id))
            next_id += 3
            if round_idx % 2:
                popped += len(pool.pop_full_batches(0))
        assert pool.num_walks(0) == next_id - popped
        pool.append_walks(0, walks(7, first_id=next_id))
        assert pool.num_walks(0) == next_id - popped + 1

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            DeviceWalkPool(0, 2, 10)
        with pytest.raises(ValueError):
            DeviceWalkPool(2, 0, 10)
        with pytest.raises(ValueError):
            DeviceWalkPool(2, 8, 4)

    def test_partition_range_checked(self):
        with pytest.raises(IndexError):
            self.make(partitions=2).append_walks(5, walks(1))


@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["append", "pop_all", "preempt", "evict"]),
            st.integers(0, 3),
            st.integers(1, 7),
        ),
        max_size=60,
    )
)
@settings(max_examples=80, deadline=None)
def test_device_pool_conserves_walks(ops):
    """Property: ids in = ids out + ids still cached, under any op mix."""
    pool = DeviceWalkPool(num_partitions=4, batch_capacity=3, capacity_walks=10_000)
    next_id = 0
    inserted = set()
    removed = set()
    for op, part, count in ops:
        if op == "append":
            w = WalkArrays.fresh(
                np.full(count, part, dtype=np.int64), first_id=next_id
            )
            inserted |= set(range(next_id, next_id + count))
            next_id += count
            pool.append_walks(part, w)
        elif op == "pop_all":
            removed |= pool.pop_all(part).id_set()
        elif op == "preempt":
            if pool.full_batches(part) or pool.num_walks(part):
                removed |= pool.pop_preemptible(part).id_set()
        elif op == "evict":
            if pool.num_walks(part):
                removed |= pool.evict_batch(part).contents().id_set()
        # Global accounting always consistent.
        cached = set()
        for chunk in pool.iter_walks():
            cached |= chunk.id_set()
        assert cached | removed == inserted
        assert not (cached & removed)
        assert pool.cached_walks == len(cached)


class TestFrontierAccounting:
    def test_frontier_size_tracks_modulo(self):
        pool = DeviceWalkPool(2, batch_capacity=4, capacity_walks=100)
        pool.append_walks(0, walks(1, 2, 3, 4, 5, 6))
        assert pool.full_batches(0) == 1
        assert pool.frontier_size(0) == 2
        pool.pop_full_batches(0)
        assert pool.full_batches(0) == 0
        assert pool.frontier_size(0) == 2
