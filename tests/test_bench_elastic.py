"""The `repro bench elastic` heterogeneity/failure benchmark harness."""

import json

from repro.bench import elastic as bench
from repro.cli import main


class TestRunBench:
    def test_quick_run_structure(self):
        results = bench.run_bench(scale=9, edge_factor=5, quick=True)
        config = results["config"]
        assert config["quick"] is True
        assert config["devices"] == 4
        assert config["capability_skew"] == [2.0, 1.0, 1.0, 0.5]
        runs = results["runs"]
        assert set(runs) == {
            "hetero_aware", "hetero_uniform", "baseline", "failure",
        }
        for run in runs.values():
            assert run["total_time"] > 0
            assert run["sanitizer_clean"]
            # Zero lost walks, exactly: fixed-length workload.
            assert run["total_steps"] == run["expected_steps"]
        checks = results["checks"]
        assert checks["conservation_ok"]
        assert checks["no_lost_walks"]
        assert checks["recovery_ok"]
        # quick mode reports the ratios but does not enforce the gates.
        assert checks["perf_enforced"] is False
        assert checks["all_ok"]

    def test_failure_run_recovers_walks(self):
        results = bench.run_bench(scale=9, edge_factor=5, quick=True)
        failure = results["runs"]["failure"]
        assert failure["device_failures"] == 1
        assert failure["walks_recovered"] > 0
        baseline = results["runs"]["baseline"]
        assert baseline["device_failures"] == 0
        assert results["failure_slowdown"] > 0

    def test_summary_mentions_ratios_and_checks(self):
        results = bench.run_bench(scale=9, edge_factor=5, quick=True)
        text = bench.format_summary(results)
        assert "elastic cluster benchmark" in text
        assert "hetero speedup" in text
        assert "failure slowdown" in text
        assert "conservation_ok=True" in text


class TestCLI:
    def test_bench_elastic_writes_json(self, tmp_path):
        out = tmp_path / "BENCH_elastic.json"
        code = main(
            [
                "bench", "elastic", "--quick",
                "--scale", "9", "--edge-factor", "5",
                "--out", str(out),
            ]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["checks"]["all_ok"]
        assert payload["config"]["quick"] is True

    def test_bench_elastic_stdout_only(self, capsys):
        code = main(
            [
                "bench", "elastic", "--quick",
                "--scale", "9", "--edge-factor", "5", "--out", "-",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "elastic cluster benchmark" in out
