"""Unit and property tests for the device memory block pools."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.memory import BlockPool, PoolFullError


class TestBlockPool:
    def test_insert_and_lookup(self):
        pool = BlockPool(2)
        pool.insert("a", 1)
        assert pool.lookup("a") == 1
        assert pool.lookup("b") is None
        assert pool.hits == 1 and pool.misses == 1

    def test_peek_does_not_count(self):
        pool = BlockPool(2)
        pool.insert("a", 1)
        assert pool.peek("a") == 1
        assert pool.peek("b") is None
        assert pool.hits == 0 and pool.misses == 0

    def test_full_raises(self):
        pool = BlockPool(1)
        pool.insert("a", 1)
        with pytest.raises(PoolFullError):
            pool.insert("b", 2)

    def test_duplicate_key_rejected(self):
        pool = BlockPool(2)
        pool.insert("a", 1)
        with pytest.raises(KeyError):
            pool.insert("a", 2)

    def test_evict(self):
        pool = BlockPool(1)
        pool.insert("a", 1)
        assert pool.evict("a") == 1
        assert "a" not in pool
        pool.insert("b", 2)  # space freed

    def test_evict_missing(self):
        with pytest.raises(KeyError):
            BlockPool(1).evict("a")

    def test_fifo_victim_order(self):
        pool = BlockPool(3)
        for key in ("x", "y", "z"):
            pool.insert(key, key)
        assert pool.fifo_victim() == "x"
        pool.evict("x")
        assert pool.fifo_victim() == "y"

    def test_fifo_victim_empty(self):
        with pytest.raises(KeyError):
            BlockPool(1).fifo_victim()

    def test_hit_rate(self):
        pool = BlockPool(2)
        pool.insert("a", 1)
        pool.lookup("a")
        pool.lookup("a")
        pool.lookup("b")
        assert pool.hit_rate == pytest.approx(2 / 3)
        pool.reset_counters()
        assert pool.hit_rate == 0.0

    def test_capacity_zero(self):
        pool = BlockPool(0)
        with pytest.raises(PoolFullError):
            pool.insert("a", 1)

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            BlockPool(-1)

    def test_keys_and_len(self):
        pool = BlockPool(3)
        pool.insert(1, "a")
        pool.insert(2, "b")
        assert pool.keys() == [1, 2]
        assert len(pool) == 2
        assert pool.free_blocks == 1
        assert not pool.is_full


@given(
    capacity=st.integers(1, 8),
    ops=st.lists(
        st.tuples(st.sampled_from(["insert", "evict", "lookup"]),
                  st.integers(0, 12)),
        max_size=80,
    ),
)
@settings(max_examples=80, deadline=None)
def test_pool_never_exceeds_capacity(capacity, ops):
    """Property: occupancy stays within [0, capacity] under any op sequence."""
    pool = BlockPool(capacity)
    shadow = {}
    for op, key in ops:
        if op == "insert":
            if key in shadow:
                with pytest.raises(KeyError):
                    pool.insert(key, key)
            elif len(shadow) >= capacity:
                with pytest.raises(PoolFullError):
                    pool.insert(key, key)
            else:
                pool.insert(key, key)
                shadow[key] = key
        elif op == "evict":
            if key in shadow:
                assert pool.evict(key) == key
                del shadow[key]
            else:
                with pytest.raises(KeyError):
                    pool.evict(key)
        else:
            assert pool.lookup(key) == shadow.get(key)
        assert len(pool) == len(shadow) <= capacity
        assert set(pool.keys()) == set(shadow)
