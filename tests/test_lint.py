"""``repro lint`` AST rules: each fires on bad code, waivers suppress,
and the real source tree is clean."""

from pathlib import Path

import pytest

from repro.analysis import lint_paths, run_lint
from repro.analysis.lint import (
    RULE_BACKEND_SIM_TIME,
    RULE_FAILURE_CONSERVATION,
    RULE_FLOAT_EQ,
    RULE_FROZEN_EVENT,
    RULE_HANDLER_COVERAGE,
    RULE_RNG,
)

SRC = Path(__file__).parent.parent / "src" / "repro"


def lint_source(tmp_path, source, name="module.py"):
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    return lint_paths([path])


def rules_of(violations):
    return [v.rule for v in violations]


class TestRngFactoryRule:
    def test_direct_default_rng_flagged(self, tmp_path):
        violations = lint_source(
            tmp_path,
            "import numpy as np\nrng = np.random.default_rng(3)\n",
        )
        assert rules_of(violations) == [RULE_RNG]
        assert "seeded_rng" in violations[0].message

    def test_numpy_random_module_calls_flagged(self, tmp_path):
        violations = lint_source(
            tmp_path,
            "import numpy\nx = numpy.random.rand(4)\n",
        )
        assert rules_of(violations) == [RULE_RNG]

    def test_stdlib_random_import_flagged(self, tmp_path):
        assert rules_of(lint_source(tmp_path, "import random\n")) == [
            RULE_RNG
        ]
        assert rules_of(
            lint_source(tmp_path, "from random import choice\n")
        ) == [RULE_RNG]

    def test_numpy_random_import_from_flagged(self, tmp_path):
        violations = lint_source(
            tmp_path, "from numpy.random import default_rng\n"
        )
        assert rules_of(violations) == [RULE_RNG]

    def test_factory_module_is_exempt(self, tmp_path):
        violations = lint_source(
            tmp_path,
            "import numpy as np\nrng = np.random.default_rng(3)\n",
            name="core/prng.py",
        )
        assert violations == []

    def test_seeded_rng_calls_pass(self, tmp_path):
        violations = lint_source(
            tmp_path,
            "from repro.core.prng import seeded_rng\n"
            "rng = seeded_rng(3)\n",
        )
        assert violations == []


class TestFloatTimestampRule:
    def test_eq_on_timestamp_flagged(self, tmp_path):
        violations = lint_source(
            tmp_path,
            "def f(stream, t):\n"
            "    return stream.busy_until == t\n",
        )
        assert rules_of(violations) == [RULE_FLOAT_EQ]
        assert "times_close" in violations[0].message

    def test_noteq_on_time_suffix_flagged(self, tmp_path):
        violations = lint_source(
            tmp_path,
            "def f(ready_time, other):\n"
            "    return ready_time != other\n",
        )
        assert rules_of(violations) == [RULE_FLOAT_EQ]

    def test_ordering_comparisons_pass(self, tmp_path):
        violations = lint_source(
            tmp_path,
            "def f(stream, t):\n"
            "    return stream.busy_until < t or stream.busy_until >= t\n",
        )
        assert violations == []

    def test_unrelated_names_pass(self, tmp_path):
        violations = lint_source(
            tmp_path,
            "def f(count, other):\n    return count == other\n",
        )
        assert violations == []


class TestFrozenEventRule:
    def test_unfrozen_dataclass_in_events_module_flagged(self, tmp_path):
        violations = lint_source(
            tmp_path,
            "from dataclasses import dataclass\n"
            "@dataclass\nclass Thing:\n    x: int = 0\n",
            name="core/events.py",
        )
        assert RULE_FROZEN_EVENT in rules_of(violations)

    def test_unfrozen_engine_event_subclass_flagged(self, tmp_path):
        violations = lint_source(
            tmp_path,
            "from dataclasses import dataclass\n"
            "from repro.core.events import EngineEvent\n"
            "@dataclass\nclass Custom(EngineEvent):\n    x: int = 0\n",
        )
        assert rules_of(violations) == [RULE_FROZEN_EVENT]

    def test_frozen_dataclass_passes(self, tmp_path):
        violations = lint_source(
            tmp_path,
            "from dataclasses import dataclass\n"
            "@dataclass(frozen=True)\nclass Thing:\n    x: int = 0\n",
            name="core/events.py",
        )
        assert RULE_FROZEN_EVENT not in rules_of(violations)


class TestHandlerCoverageRule:
    EVENTS = (
        "from dataclasses import dataclass\n"
        "@dataclass(frozen=True)\nclass EngineEvent:\n    pass\n"
        "@dataclass(frozen=True)\nclass ThingHappened(EngineEvent):\n"
        "    x: int = 0\n"
    )

    def test_unhandled_event_flagged(self, tmp_path):
        (tmp_path / "core").mkdir()
        (tmp_path / "core" / "events.py").write_text(self.EVENTS)
        violations = lint_paths([tmp_path])
        assert RULE_HANDLER_COVERAGE in rules_of(violations)
        assert "on_thing_happened" in violations[-1].message

    def test_handler_anywhere_in_tree_satisfies(self, tmp_path):
        (tmp_path / "core").mkdir()
        (tmp_path / "core" / "events.py").write_text(self.EVENTS)
        (tmp_path / "observer.py").write_text(
            "class Obs:\n"
            "    def on_thing_happened(self, event):\n        pass\n"
        )
        assert lint_paths([tmp_path]) == []


class TestWaivers:
    def test_waiver_suppresses_rule_on_line(self, tmp_path):
        violations = lint_source(
            tmp_path,
            "import numpy as np\n"
            "rng = np.random.default_rng(3)  # lint: allow-rng-factory\n",
        )
        assert violations == []

    def test_waiver_is_rule_specific(self, tmp_path):
        violations = lint_source(
            tmp_path,
            "import numpy as np\n"
            "rng = np.random.default_rng(3)  # lint: allow-frozen-event\n",
        )
        assert rules_of(violations) == [RULE_RNG]


class TestCliAndTree:
    def test_source_tree_is_clean(self):
        assert lint_paths([SRC]) == []

    def test_syntax_error_reported(self, tmp_path):
        violations = lint_source(tmp_path, "def broken(:\n")
        assert rules_of(violations) == ["syntax"]

    def test_run_lint_exit_codes(self, tmp_path, capsys):
        good = tmp_path / "good.py"
        good.write_text("x = 1\n")
        assert run_lint([str(good)]) == 0
        assert "clean" in capsys.readouterr().out
        bad = tmp_path / "bad.py"
        bad.write_text("import random\n")
        assert run_lint([str(bad)]) == 1
        out = capsys.readouterr()
        assert RULE_RNG in out.out
        assert run_lint([str(tmp_path / "missing.py")]) == 2

    def test_violation_str_is_clickable(self, tmp_path):
        violations = lint_source(tmp_path, "import random\n")
        text = str(violations[0])
        assert text.startswith(f"{tmp_path.as_posix()}/module.py:1:")
        assert RULE_RNG in text


class TestDeviceFailureConservationRule:
    EMITTER = (
        "def drain(self):\n"
        "    self.bus.emit(DeviceFailed(device=1, iteration=4))\n"
    )

    def test_emitter_without_conservation_check_flagged(self, tmp_path):
        violations = lint_source(tmp_path, self.EMITTER)
        assert rules_of(violations) == [RULE_FAILURE_CONSERVATION]
        assert "drain" in violations[0].message
        assert "conservation" in violations[0].message

    def test_bare_handler_flagged(self, tmp_path):
        violations = lint_source(
            tmp_path,
            "def on_device_failed(self, event):\n"
            "    self.failures += 1\n",
        )
        assert rules_of(violations) == [RULE_FAILURE_CONSERVATION]

    def test_conservation_call_satisfies(self, tmp_path):
        violations = lint_source(
            tmp_path,
            "def drain(self):\n"
            "    self.bus.emit(DeviceFailed(device=1, iteration=4))\n"
            "    self._assert_cluster_conservation()\n",
        )
        assert violations == []

    def test_conservation_named_function_exempt(self, tmp_path):
        violations = lint_source(
            tmp_path,
            "def check_conservation(self):\n"
            "    audit(DeviceFailed(device=1, iteration=4))\n",
        )
        assert violations == []

    def test_waiver_on_def_line_suppresses(self, tmp_path):
        violations = lint_source(
            tmp_path,
            "def on_device_failed(  "
            "# lint: allow-device-failure-conservation\n"
            "    self, event):\n"
            "    self.failures += 1\n",
        )
        assert violations == []

    def test_unrelated_events_pass(self, tmp_path):
        violations = lint_source(
            tmp_path,
            "def drain(self):\n"
            "    self.bus.emit(IterationStarted(iteration=4, partition=0))\n",
        )
        assert violations == []


class TestNoSimulatedTimeInBackendsRule:
    def test_seeded_defect_caught_exactly_once(self, tmp_path):
        violations = lint_source(
            tmp_path,
            "from repro.gpu.timeline import Timeline\n",
            name="backends/defect.py",
        )
        assert rules_of(violations) == [RULE_BACKEND_SIM_TIME]
        assert "wall-clock" in violations[0].message

    def test_plain_import_and_device_module_flagged(self, tmp_path):
        violations = lint_source(
            tmp_path,
            "import repro.gpu.timeline\nimport repro.gpu.device\n",
            name="backends/defect.py",
        )
        assert rules_of(violations) == [RULE_BACKEND_SIM_TIME] * 2

    def test_from_gpu_package_form_flagged(self, tmp_path):
        violations = lint_source(
            tmp_path,
            "from repro.gpu import device\n",
            name="backends/defect.py",
        )
        assert rules_of(violations) == [RULE_BACKEND_SIM_TIME]

    def test_other_gpu_imports_allowed_in_backends(self, tmp_path):
        violations = lint_source(
            tmp_path,
            "from repro.gpu.calibration import Calibration\n"
            "from repro.gpu import cluster\n",
            name="backends/clean.py",
        )
        assert violations == []

    def test_rule_scoped_to_backends_package(self, tmp_path):
        violations = lint_source(
            tmp_path,
            "from repro.gpu.timeline import Timeline\n",
            name="core/engine_helper.py",
        )
        assert violations == []

    def test_waiver_suppresses(self, tmp_path):
        violations = lint_source(
            tmp_path,
            "from repro.gpu.timeline import Timeline"
            "  # lint: allow-no-simulated-time-in-backends\n",
            name="backends/waived.py",
        )
        assert violations == []
