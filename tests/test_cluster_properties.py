"""Property-based tests for the multi-device sharded engine.

Seeded RMAT graphs × device counts 1-4 × all four transition samplers.
Three engine-level properties must hold for every combination:

* **global walk conservation** — every seeded walk finishes exactly once,
  regardless of how many shard boundaries it crosses;
* **per-device stream-time monotonicity** — each shard's compute / load /
  evict streams and every P2P channel stream schedule ops in
  non-decreasing time with non-negative durations;
* **update accounting** — each walk enters a kernel once when seeded and
  once per reshuffle-or-migration thereafter, so
  ``sum(Reshuffled.walks) + sum(WalksMigrated.walks)
  == sum(KernelDispatched.walks) - num_walks``, and every migrated walk
  is delivered (``WalksMigrated`` totals match ``WalksDelivered`` and the
  per-channel counters).

Plus determinism (same seed, same stats) and the owned-mask scheduler
tie-break regressions for the device-local decisions.
"""

import numpy as np
import pytest

from repro.algorithms import UniformSampling
from repro.core.cluster import MultiDeviceEngine, run_sharded
from repro.core.config import EngineConfig
from repro.core.events import EventBus
from repro.core.scheduler import Scheduler
from repro.graph import generators
from repro.gpu.memory import BlockPool
from repro.walks.pool import DeviceWalkPool, HostWalkPool
from repro.walks.state import WalkArrays

SAMPLERS = ("uniform", "alias", "inverse", "rejection")
DEVICE_COUNTS = (1, 2, 3, 4)


class EventCounter:
    """Tallies the walk totals of the accounting identity."""

    def __init__(self):
        self.kernel_walks = 0
        self.reshuffled_walks = 0
        self.migrated_walks = 0
        self.delivered_walks = 0
        self.devices_seen = set()

    def on_kernel_dispatched(self, event):
        self.kernel_walks += event.walks
        self.devices_seen.add(event.device)

    def on_reshuffled(self, event):
        self.reshuffled_walks += event.walks

    def on_walks_migrated(self, event):
        self.migrated_walks += event.walks

    def on_walks_delivered(self, event):
        self.delivered_walks += event.walks


def cluster_config(seed, devices, **overrides):
    base = dict(
        partition_bytes=2048,
        batch_walks=32,
        graph_pool_partitions=4,
        walk_pool_walks=256,
        seed=seed,
        devices=devices,
        sanitize=True,
        record_ops=True,
    )
    base.update(overrides)
    return EngineConfig(**base)


def run_cluster(graph, seed, devices, sampler, walks=400, length=6):
    algo = UniformSampling(length=length, weighted=True, sampler=sampler)
    bus = EventBus()
    counter = EventCounter()
    bus.attach(counter)
    engine = MultiDeviceEngine(
        graph, algo, cluster_config(seed, devices), bus=bus
    )
    stats = engine.run(walks)
    return engine, stats, counter


@pytest.fixture(scope="module")
def property_graph():
    return generators.rmat(scale=9, edge_factor=6, seed=3, name="prop")


@pytest.mark.parametrize("sampler", SAMPLERS)
@pytest.mark.parametrize("devices", DEVICE_COUNTS)
def test_cluster_properties(property_graph, devices, sampler):
    walks = 400
    engine, stats, counter = run_cluster(
        property_graph, seed=11, devices=devices, sampler=sampler,
        walks=walks,
    )

    # Global walk conservation (the engine raises on violation; the
    # sanitizer re-proves it at every iteration boundary).
    assert stats.num_walks == walks
    assert stats.num_devices == devices
    assert stats.sanitizer is not None
    assert stats.sanitizer["clean"], stats.sanitizer

    # Per-device stream-time monotonicity, shard timelines and channels.
    assert len(engine._timelines) == devices
    for timeline in engine._timelines:
        timeline.validate()
        for stream in timeline.streams:
            _assert_monotonic(stream)
    for stream in engine._cluster.all_streams():
        _assert_monotonic(stream)

    # Update accounting: reshuffled + migrated == kernel entries - seeds.
    assert (
        counter.reshuffled_walks + counter.migrated_walks
        == counter.kernel_walks - walks
    )
    assert counter.migrated_walks == counter.delivered_walks
    assert counter.migrated_walks == stats.walks_migrated
    for chan in engine._cluster.channels.values():
        assert chan.sent_walks == chan.delivered_walks

    if devices == 1:
        assert stats.walks_migrated == 0
        assert not engine._cluster.channels
        assert counter.devices_seen == {0}
    else:
        assert counter.devices_seen == set(range(devices))
        assert stats.device_times is not None
        assert set(stats.device_times) == {
            str(d) for d in range(devices)
        }


def _assert_monotonic(stream):
    ops = stream.ops
    for op in ops:
        assert op.end >= op.start
    for prev, cur in zip(ops, ops[1:]):
        assert cur.start >= prev.end


@pytest.mark.parametrize("devices", [2, 4])
def test_same_seed_same_stats(property_graph, devices):
    __, first, __c = run_cluster(
        property_graph, seed=29, devices=devices, sampler="alias"
    )
    __, second, __c2 = run_cluster(
        property_graph, seed=29, devices=devices, sampler="alias"
    )
    assert first.total_steps == second.total_steps
    assert first.iterations == second.iterations
    assert first.walks_migrated == second.walks_migrated
    assert first.total_time == second.total_time
    assert first.breakdown == second.breakdown
    assert first.device_times == second.device_times


def test_run_sharded_convenience(property_graph):
    stats = run_sharded(
        property_graph,
        UniformSampling(length=4),
        200,
        config=cluster_config(5, 1, record_ops=False),
        devices=2,
    )
    assert stats.num_devices == 2
    assert stats.sanitizer is not None
    assert stats.sanitizer["clean"], stats.sanitizer


class TestOwnedSchedulerTieBreaks:
    """Device-local scheduling decisions: deterministic, shard-confined.

    Regression guards for :class:`repro.core.scheduler.Scheduler` with an
    ``owned`` mask: foreign partitions (whose walk totals are device-local
    zeros) must never win a min-walks decision, and ties must break toward
    the lowest owned partition index in every policy.
    """

    def pools(self, num_partitions=6, batch=8):
        host = HostWalkPool(num_partitions, batch)
        device = DeviceWalkPool(num_partitions, batch, 64)
        return host, device

    def owned(self, *parts, n=6):
        mask = np.zeros(n, dtype=bool)
        mask[list(parts)] = True
        return mask

    def test_select_partition_tie_breaks_low_owned(self):
        host, device = self.pools()
        sched = Scheduler(6, True, False, owned=self.owned(2, 4))
        host.append_walks(2, WalkArrays.fresh([1, 1], first_id=0))
        host.append_walks(4, WalkArrays.fresh([1, 1], first_id=2))
        # Equal totals: the lowest owned index wins (np.argmax first-max).
        assert sched.select_partition(host, device) == 2

    def test_select_partition_ignores_foreign_walks(self):
        host, device = self.pools()
        sched = Scheduler(6, True, False, owned=self.owned(2, 4))
        # Partition 0 (foreign) holds the most walks but is not ours.
        host.append_walks(0, WalkArrays.fresh([1] * 5, first_id=0))
        host.append_walks(4, WalkArrays.fresh([1], first_id=5))
        assert sched.select_partition(host, device) == 4

    def test_select_partition_empty_shard_returns_none(self):
        host, device = self.pools()
        sched = Scheduler(6, True, False, owned=self.owned(2, 4))
        host.append_walks(0, WalkArrays.fresh([1], first_id=0))
        assert sched.select_partition(host, device) is None

    def test_round_robin_skips_foreign(self):
        host, device = self.pools()
        sched = Scheduler(6, False, False, owned=self.owned(1, 3))
        host.append_walks(1, WalkArrays.fresh([1], first_id=0))
        host.append_walks(3, WalkArrays.fresh([1], first_id=1))
        assert sched.select_partition(host, device) == 1
        assert sched.select_partition(host, device) == 3
        assert sched.select_partition(host, device) == 1

    def test_graph_victim_never_foreign(self):
        host, device = self.pools()
        sched = Scheduler(
            6, True, False,
            eviction_policy=Scheduler.EVICT_MIN_WALKS,
            owned=self.owned(2, 4),
        )
        pool = BlockPool(3, name="gp")
        # Foreign partition 0 is cached with zero local walks — min-walks
        # would always pick it without the owned guard, evicting another
        # shard's resident graph data from our accounting.
        pool.insert(0, "x")
        pool.insert(2, "x")
        pool.insert(4, "x")
        host.append_walks(2, WalkArrays.fresh([1], first_id=0))
        host.append_walks(4, WalkArrays.fresh([1, 1], first_id=1))
        assert sched.graph_victim(pool, host, device) == 2

    def test_graph_victim_tie_breaks_low_index(self):
        host, device = self.pools()
        sched = Scheduler(
            6, True, False,
            eviction_policy=Scheduler.EVICT_MIN_WALKS,
            owned=self.owned(2, 4),
        )
        pool = BlockPool(2, name="gp")
        pool.insert(4, "x")
        pool.insert(2, "x")
        # Equal walk totals: lowest partition id wins, not insertion order.
        assert sched.graph_victim(pool, host, device) == 2

    def test_walk_evict_never_foreign(self):
        host, device = self.pools()
        sched = Scheduler(6, True, False, owned=self.owned(2, 4))
        pool = BlockPool(2, name="gp")
        device.append_walks(0, WalkArrays.fresh([1], first_id=0))
        device.append_walks(4, WalkArrays.fresh([1, 1], first_id=1))
        assert sched.walk_evict_partition(pool, device) == 4

    def test_walk_evict_tie_breaks_low_index(self):
        host, device = self.pools()
        sched = Scheduler(6, True, False, owned=self.owned(2, 4))
        pool = BlockPool(2, name="gp")
        device.append_walks(2, WalkArrays.fresh([1], first_id=0))
        device.append_walks(4, WalkArrays.fresh([1], first_id=1))
        assert sched.walk_evict_partition(pool, device) == 2

    def test_preemptive_pick_skips_foreign(self):
        host, device = self.pools()
        sched = Scheduler(6, True, True, owned=self.owned(2, 4))
        pool = BlockPool(3, name="gp")
        pool.insert(0, "x")  # foreign, full batch buffered
        pool.insert(4, "x")
        device.append_walks(0, WalkArrays.fresh([1] * 8, first_id=0))
        device.append_walks(4, WalkArrays.fresh([1] * 8, first_id=8))
        assert sched.pick_preemptive_partition(pool, host, device) == 4

    def test_owned_mask_validation(self):
        with pytest.raises(ValueError, match="cover every partition"):
            Scheduler(6, True, False, owned=np.ones(3, dtype=bool))
        with pytest.raises(ValueError, match="selects no partition"):
            Scheduler(6, True, False, owned=np.zeros(6, dtype=bool))
