"""Smoke tests for the example scripts.

Every example must at least compile; the two fastest also execute end to
end (the dataset-driven ones run in the benchmark suite's time budget, not
here).
"""

import pathlib
import py_compile
import runpy
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


@pytest.mark.parametrize(
    "name",
    sorted(p.name for p in EXAMPLES.glob("*.py")),
)
def test_example_compiles(name):
    py_compile.compile(str(EXAMPLES / name), doraise=True)


def run_example(name, monkeypatch, capsys):
    monkeypatch.setattr(sys, "argv", [name])
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


def test_quickstart_executes(monkeypatch, capsys):
    out = run_example("quickstart.py", monkeypatch, capsys)
    assert "top-5 PageRank vertices" in out
    assert "pool hit rate" in out


def test_pagerank_ranking_executes(monkeypatch, capsys):
    out = run_example("pagerank_ranking.py", monkeypatch, capsys)
    assert "total-variation distance" in out
    assert "top-10 overlap" in out
