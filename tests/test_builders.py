"""Unit tests for edge-list preprocessing and CSR builders."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.builders import from_adjacency, from_edges, preprocess_edges


class TestPreprocessEdges:
    def test_undirect_adds_reverse_edges(self):
        edges, n, __ = preprocess_edges([(0, 1)], undirected=True)
        assert n == 2
        assert sorted(map(tuple, edges.tolist())) == [(0, 1), (1, 0)]

    def test_self_loops_removed(self):
        edges, n, __ = preprocess_edges([(0, 0), (0, 1)])
        assert all(a != b for a, b in edges.tolist())

    def test_duplicates_removed(self):
        edges, __, __2 = preprocess_edges([(0, 1), (0, 1), (1, 0)])
        assert len(edges) == 2  # one per direction

    def test_zero_degree_vertices_dropped(self):
        # Vertex 5 never appears; ids are compacted to 0..1.
        edges, n, id_map = preprocess_edges([(3, 7)])
        assert n == 2
        assert id_map.tolist() == [3, 7]
        assert edges.max() == 1

    def test_compact_ids_disabled(self):
        edges, n, id_map = preprocess_edges([(3, 7)], compact_ids=False)
        assert n == 8
        assert id_map.tolist() == list(range(8))

    def test_empty_input(self):
        edges, n, id_map = preprocess_edges([])
        assert n == 0 and edges.shape == (0, 2) and id_map.size == 0

    def test_only_self_loops(self):
        edges, n, __ = preprocess_edges([(1, 1), (2, 2)])
        assert n == 0 and len(edges) == 0

    def test_negative_ids_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            preprocess_edges([(-1, 0)])

    def test_directed_mode_keeps_direction(self):
        edges, __, __2 = preprocess_edges([(0, 1)], undirected=False)
        assert list(map(tuple, edges.tolist())) == [(0, 1)]


class TestFromEdges:
    def test_infers_num_vertices(self):
        g = from_edges([(0, 4)])
        assert g.num_vertices == 5

    def test_explicit_num_vertices(self):
        g = from_edges([(0, 1)], num_vertices=10)
        assert g.num_vertices == 10
        assert g.degree(9) == 0

    def test_endpoint_beyond_num_vertices(self):
        with pytest.raises(ValueError, match="exceeds num_vertices"):
            from_edges([(0, 5)], num_vertices=3)

    def test_neighbors_sorted_by_default(self):
        g = from_edges([(0, 3), (0, 1), (0, 2)])
        assert g.neighbors(0).tolist() == [1, 2, 3]

    def test_weights_follow_reordering(self):
        g = from_edges(
            [(0, 3), (0, 1)], num_vertices=4, weights=[3.0, 1.0]
        )
        assert g.neighbors(0).tolist() == [1, 3]
        assert g.neighbor_weights(0).tolist() == [1.0, 3.0]

    def test_weights_misaligned(self):
        with pytest.raises(ValueError, match="align"):
            from_edges([(0, 1)], weights=[1.0, 2.0])

    def test_malformed_edge_shape(self):
        with pytest.raises(ValueError, match="\\(n, 2\\)"):
            from_edges([(0, 1, 2)])

    def test_empty_edges(self):
        g = from_edges([], num_vertices=3)
        assert g.num_edges == 0
        assert g.num_vertices == 3

    def test_stable_unsorted_mode(self):
        g = from_edges([(1, 5), (0, 9), (1, 2)], num_vertices=10,
                       sort_neighbors=False)
        assert g.neighbors(1).tolist() == [5, 2]


class TestFromAdjacency:
    def test_basic(self):
        g = from_adjacency([[1, 2], [0], []])
        assert g.num_vertices == 3
        assert g.neighbors(0).tolist() == [1, 2]
        assert g.degree(2) == 0

    def test_weighted(self):
        g = from_adjacency([[1], [0]], weights=[[2.0], [3.0]])
        assert g.neighbor_weights(1).tolist() == [3.0]

    def test_weights_misaligned_rows(self):
        with pytest.raises(ValueError, match="misaligned"):
            from_adjacency([[1], [0]], weights=[[2.0, 1.0], [3.0]])

    def test_weights_wrong_length(self):
        with pytest.raises(ValueError, match="align"):
            from_adjacency([[1], [0]], weights=[[2.0]])


@given(
    edges=st.lists(
        st.tuples(st.integers(0, 20), st.integers(0, 20)),
        min_size=0,
        max_size=80,
    )
)
@settings(max_examples=60, deadline=None)
def test_preprocess_produces_simple_symmetric_graph(edges):
    """Property: preprocessing yields a loop-free symmetric simple graph."""
    cleaned, n, id_map = preprocess_edges(edges)
    assert id_map.size == n
    pairs = set(map(tuple, cleaned.tolist()))
    assert len(pairs) == len(cleaned)  # no duplicates
    for a, b in pairs:
        assert a != b  # no self loops
        assert (b, a) in pairs  # symmetric
        assert 0 <= a < n and 0 <= b < n  # compact ids
