"""Cross-module integration tests.

These exercise full stacks: engine vs in-memory reference semantics,
persistence round trips through the engine, multi-system agreement on
algorithmic outputs, and the public package API.
"""

import numpy as np
import pytest

import repro
from repro import (
    EngineConfig,
    PageRank,
    PersonalizedPageRank,
    UniformSampling,
    generators,
    run_walks,
)
from repro.baselines import (
    FlashMobEngine,
    NextDoorEngine,
    SubwayEngine,
    ThunderRWEngine,
)
from repro.graph.io import load_csr, save_csr


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_readme_quickstart_runs(self):
        graph = generators.rmat(scale=9, edge_factor=6, seed=1, name="demo")
        config = EngineConfig(
            partition_bytes=8 * 1024,
            batch_walks=64,
            graph_pool_partitions=4,
            walk_pool_walks=1024,
        )
        algo = PageRank(length=10, restart_prob=0.15)
        stats = run_walks(graph, algo, 2 * graph.num_vertices, config)
        assert "lighttraffic" in stats.summary()
        assert algo.pagerank_scores().shape == (graph.num_vertices,)


class TestCrossSystemAgreement:
    """All engines share walk semantics: distributions must agree."""

    def test_pagerank_engines_agree(self, medium_graph):
        def scores_from(engine_factory):
            algo = PageRank(length=40)
            engine_factory(algo).run(2 * medium_graph.num_vertices)
            return algo.pagerank_scores()

        config = EngineConfig(
            partition_bytes=16 * 1024,
            batch_walks=128,
            graph_pool_partitions=6,
            seed=17,
        )
        lt = scores_from(
            lambda a: type(
                "W", (), {"run": lambda self, n: run_walks(medium_graph, a, n, config)}
            )()
        )
        subway = scores_from(lambda a: SubwayEngine(medium_graph, a))
        cpu = scores_from(lambda a: ThunderRWEngine(medium_graph, a))
        # Total-variation distances between estimates are small.
        assert 0.5 * np.abs(lt - subway).sum() < 0.08
        assert 0.5 * np.abs(lt - cpu).sum() < 0.08

    def test_step_counts_identical_for_fixed_length(self, small_graph):
        walks, length = 150, 12
        config = EngineConfig(
            partition_bytes=4096, batch_walks=32, graph_pool_partitions=4
        )
        results = [
            run_walks(small_graph, UniformSampling(length), walks, config),
            SubwayEngine(small_graph, UniformSampling(length)).run(walks),
            NextDoorEngine(small_graph, UniformSampling(length)).run(walks),
            FlashMobEngine(small_graph, UniformSampling(length)).run(walks),
        ]
        assert {r.total_steps for r in results} == {walks * length}


class TestPersistenceThroughEngine:
    def test_saved_graph_runs_identically(self, tmp_path, small_graph):
        path = tmp_path / "g.npz"
        save_csr(small_graph, path)
        reloaded = load_csr(path)
        config = EngineConfig(
            partition_bytes=4096, batch_walks=32, graph_pool_partitions=4, seed=3
        )
        a = run_walks(small_graph, PageRank(length=8), 100, config)
        b = run_walks(reloaded, PageRank(length=8), 100, config)
        assert a.total_steps == b.total_steps
        assert a.total_time == b.total_time


class TestEngineOnSpecialTopologies:
    def test_ring(self, tiny_config):
        g = generators.ring(64)
        stats = run_walks(g, UniformSampling(length=5), 128, tiny_config)
        assert stats.total_steps == 640

    def test_complete_graph(self, tiny_config):
        g = generators.complete(32)
        stats = run_walks(g, PageRank(length=5), 64, tiny_config)
        assert stats.total_steps == 320

    def test_weighted_graph(self, tiny_config):
        g = generators.with_random_weights(
            generators.rmat(scale=9, edge_factor=5, seed=4), seed=5
        )
        algo = UniformSampling(length=5, weighted=True)
        stats = run_walks(g, algo, 100, tiny_config)
        assert stats.total_steps == 500

    def test_two_vertex_graph(self, tiny_config):
        from repro.graph.builders import from_edges

        g = from_edges([(0, 1), (1, 0)], num_vertices=2)
        stats = run_walks(g, UniformSampling(length=4), 10, tiny_config)
        assert stats.total_steps == 40

    def test_hub_concentrated_ppr(self, tiny_config):
        # All walks start at the star hub: one partition holds everything,
        # the case §II-B calls out for walk-index management.
        g = generators.star(500)
        algo = PersonalizedPageRank(source=0, stop_prob=0.3)
        stats = run_walks(g, algo, 1000, tiny_config)
        assert stats.total_steps > 0
        assert algo.ppr_scores()[0] == algo.ppr_scores().max()


class TestReshuffleModesEndToEnd:
    def test_same_semantics_different_time(self, small_graph, tiny_config):
        from repro.gpu.kernels import DIRECT_WRITE, TWO_LEVEL

        runs = {}
        for mode in (TWO_LEVEL, DIRECT_WRITE):
            algo = PageRank(length=10)
            stats = run_walks(
                small_graph,
                algo,
                200,
                tiny_config.with_options(reshuffle_mode=mode),
            )
            runs[mode] = (stats, algo.visit_counts.copy())
        # Identical trajectories (same seed, same dispatch order)...
        assert np.array_equal(runs[TWO_LEVEL][1], runs[DIRECT_WRITE][1])
        assert (
            runs[TWO_LEVEL][0].total_steps == runs[DIRECT_WRITE][0].total_steps
        )
        # ...but the direct-write variant pays more reshuffle time.
        from repro.core.stats import CAT_RESHUFFLE

        assert runs[DIRECT_WRITE][0].time(CAT_RESHUFFLE) > runs[TWO_LEVEL][
            0
        ].time(CAT_RESHUFFLE)


class TestInterconnectScaling:
    def test_faster_links_never_slower(self, small_graph, tiny_config):
        times = {}
        for link in ("pcie3", "pcie4", "nvlink2"):
            stats = run_walks(
                small_graph,
                PageRank(length=10),
                300,
                tiny_config.with_options(interconnect=link, copy_mode="explicit"),
            )
            times[link] = stats.total_time
        assert times["pcie4"] <= times["pcie3"] * 1.001
        assert times["nvlink2"] <= times["pcie4"] * 1.001
