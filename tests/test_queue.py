"""Unit tests for the per-partition circular batch queue."""

import numpy as np
import pytest

from repro.walks.batch import WalkBatch
from repro.walks.queue import BatchQueue
from repro.walks.state import WalkArrays


def walks(*vertices, first_id=0):
    return WalkArrays.fresh(np.asarray(vertices, dtype=np.int64), first_id)


class TestAppend:
    def test_frontier_rollover(self):
        q = BatchQueue(partition=0, batch_capacity=2)
        q.append_walks(walks(1, 2, 3))
        assert q.num_batches == 2
        assert q.num_walks == 3
        assert q.frontier.size == 1  # tail batch holds the overflow

    def test_append_fills_existing_frontier(self):
        q = BatchQueue(partition=0, batch_capacity=4)
        q.append_walks(walks(1))
        q.append_walks(walks(2, 3))
        assert q.num_batches == 1
        assert q.frontier.size == 3

    def test_empty_queue_state(self):
        q = BatchQueue(partition=0, batch_capacity=2)
        assert q.is_empty
        assert q.frontier is None
        assert q.num_walks == 0


class TestPop:
    def test_fifo_order(self):
        q = BatchQueue(partition=0, batch_capacity=2)
        q.append_walks(walks(1, 2, 3, 4))
        first = q.pop_batch()
        assert first.vertices[: first.size].tolist() == [1, 2]
        second = q.pop_batch()
        assert second.vertices[: second.size].tolist() == [3, 4]

    def test_pop_skips_empty(self):
        q = BatchQueue(partition=0, batch_capacity=2)
        q.append_walks(walks(1))
        q.pop_batch()
        with pytest.raises(IndexError):
            q.pop_batch()

    def test_pop_all(self):
        q = BatchQueue(partition=0, batch_capacity=2)
        q.append_walks(walks(1, 2, 3))
        batches = q.pop_all()
        assert sum(b.size for b in batches) == 3
        assert q.num_batches == 0


class TestPushBatch:
    def test_push_to_head(self):
        q = BatchQueue(partition=3, batch_capacity=2)
        q.append_walks(walks(9))
        incoming = WalkBatch(capacity=2, partition=3)
        incoming.append(walks(1, 2))
        q.push_batch(incoming)
        # Head pops the pushed batch first (it was computed earlier).
        assert q.pop_batch().vertices[:2].tolist() == [1, 2]

    def test_partition_mismatch(self):
        q = BatchQueue(partition=3, batch_capacity=2)
        wrong = WalkBatch(capacity=2, partition=4)
        with pytest.raises(ValueError, match="belongs to partition"):
            q.push_batch(wrong)


class TestCompact:
    def test_drops_empty_non_frontier(self):
        q = BatchQueue(partition=0, batch_capacity=2)
        q.append_walks(walks(1, 2, 3))
        q.pop_batch()  # leaves a drained... actually removes it
        q.append_walks(walks(4, 5, 6, 7))
        # Manually empty a middle batch to exercise compaction.
        q.batches()[0].size = 0
        q.compact()
        assert all(
            not b.is_empty or b is q.frontier for b in q.batches()
        )

    def test_compact_empty_queue(self):
        q = BatchQueue(partition=0, batch_capacity=2)
        q.compact()
        assert q.num_batches == 0


class TestValidation:
    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            BatchQueue(partition=0, batch_capacity=0)
