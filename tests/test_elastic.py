"""Elastic cluster features: heterogeneous specs, topologies, failure
injection, rebalancing — and bit-identity of the homogeneous path
against the pre-refactor multi-device goldens."""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.algorithms import UniformSampling
from repro.core.config import DeviceFailure, EngineConfig, FailureSchedule
from repro.core.engine import LightTrafficEngine
from repro.graph import generators
from repro.gpu.cluster import (
    AllPairsTopology,
    ClusterDeviceSpec,
    DeviceCluster,
    RingTopology,
    SwitchTopology,
    topology_by_name,
)

GOLDEN = Path(__file__).parent / "data" / "cluster_golden.json"


@pytest.fixture(scope="module")
def elastic_graph():
    return generators.rmat(scale=9, edge_factor=6, seed=3, name="prop")


def make_config(devices=3, **overrides):
    kwargs = dict(
        partition_bytes=2048,
        batch_walks=32,
        graph_pool_partitions=4,
        walk_pool_walks=256,
        seed=11,
        devices=devices,
        sanitize=True,
    )
    kwargs.update(overrides)
    return EngineConfig(**kwargs)


def run_engine(graph, config, walks=300, length=6, **algo_kwargs):
    algorithm = UniformSampling(length=length, **algo_kwargs)
    return LightTrafficEngine(graph, algorithm, config).run(walks)


def skewed_specs(scales):
    return tuple(
        ClusterDeviceSpec(name=f"gpu{i}", compute_scale=s, link_scale=s)
        for i, s in enumerate(scales)
    )


class TestGoldenParity:
    """The homogeneous no-failure engine is bit-identical to the goldens
    captured before the elastic refactor."""

    def test_multi_device_runs_match_goldens(self, elastic_graph):
        goldens = json.loads(GOLDEN.read_text())
        assert [g["devices"] for g in goldens] == [2, 3, 4]
        for golden in goldens:
            config = make_config(devices=golden["devices"])
            stats = run_engine(
                elastic_graph, config, walks=400,
                weighted=True, sampler="alias",
            )
            assert stats.algorithm == golden["algorithm"]
            assert stats.iterations == golden["iterations"]
            assert stats.total_steps == golden["total_steps"]
            assert stats.walks_migrated == golden["walks_migrated"]
            assert stats.explicit_copies == golden["explicit_copies"]
            assert (
                stats.zero_copy_iterations == golden["zero_copy_iterations"]
            )
            assert stats.graph_pool_hits == golden["graph_pool_hits"]
            assert stats.graph_pool_misses == golden["graph_pool_misses"]
            assert (
                stats.walk_batches_loaded == golden["walk_batches_loaded"]
            )
            assert (
                stats.walk_batches_evicted == golden["walk_batches_evicted"]
            )
            # Bit-identity, not closeness: the homogeneous path must not
            # drift under the heterogeneity/elasticity machinery.
            assert stats.total_time == golden["total_time"]
            assert stats.breakdown == golden["breakdown"]
            device_times = {
                str(dev): t for dev, t in (stats.device_times or {}).items()
            }
            assert device_times == golden["device_times"]

    def test_uniform_specs_match_specless_run(self, elastic_graph):
        """Explicit all-ones specs take the historical homogeneous path."""
        base = run_engine(elastic_graph, make_config())
        specced = run_engine(
            elastic_graph,
            make_config(device_specs=skewed_specs((1.0, 1.0, 1.0))),
        )
        assert specced.total_time == base.total_time
        assert specced.iterations == base.iterations
        assert specced.walks_migrated == base.walks_migrated


class TestFailureRecovery:
    def test_single_failure_completes_with_zero_lost_walks(
        self, elastic_graph
    ):
        config = make_config(
            failure_schedule=FailureSchedule.single(1, 10)
        )
        stats = run_engine(elastic_graph, config)
        assert stats.device_failures == 1
        assert stats.walks_recovered > 0
        # Fixed-length walks make conservation exact.
        assert stats.total_steps == 300 * 6
        assert stats.sanitizer is not None and stats.sanitizer["clean"]

    def test_failure_under_ring_topology(self, elastic_graph):
        config = make_config(
            topology="ring", failure_schedule=FailureSchedule.single(2, 8)
        )
        stats = run_engine(elastic_graph, config)
        assert stats.device_failures == 1
        assert stats.total_steps == 300 * 6
        assert stats.sanitizer is not None and stats.sanitizer["clean"]

    def test_multiple_failures(self, elastic_graph):
        schedule = FailureSchedule(
            failures=(DeviceFailure(0, 6), DeviceFailure(2, 20))
        )
        config = make_config(devices=4, failure_schedule=schedule)
        stats = run_engine(elastic_graph, config)
        assert stats.device_failures == 2
        assert stats.total_steps == 300 * 6
        assert stats.sanitizer is not None and stats.sanitizer["clean"]

    def test_failure_results_unchanged_by_sanitizer(self, elastic_graph):
        on = run_engine(
            elastic_graph,
            make_config(failure_schedule=FailureSchedule.single(1, 10)),
        )
        off = run_engine(
            elastic_graph,
            make_config(
                failure_schedule=FailureSchedule.single(1, 10),
                sanitize=False,
            ),
        )
        assert off.total_time == on.total_time
        assert off.total_steps == on.total_steps
        assert off.walks_recovered == on.walks_recovered


class TestElasticRebalance:
    def test_skewed_cluster_triggers_rebalance(self, elastic_graph):
        # Uniform assignment over skewed devices builds pending-walk
        # skew; the controller must hand partitions off.
        config = make_config(
            device_specs=skewed_specs((2.0, 1.0, 0.5)),
            heterogeneous_assignment=False,
            rebalance_threshold=1.2,
            rebalance_cooldown=4,
        )
        stats = run_engine(elastic_graph, config)
        assert stats.rebalances > 0
        assert stats.walks_rebalanced > 0
        assert stats.total_steps == 300 * 6
        assert stats.sanitizer is not None and stats.sanitizer["clean"]

    def test_homogeneous_cluster_does_not_thrash(self, elastic_graph):
        config = make_config(rebalance_threshold=10.0)
        stats = run_engine(elastic_graph, config)
        assert stats.rebalances == 0
        assert stats.total_steps == 300 * 6


class TestHeterogeneousAssignment:
    def test_aware_assignment_differs_from_uniform(self, elastic_graph):
        specs = skewed_specs((2.0, 1.0, 0.5))
        aware = run_engine(
            elastic_graph,
            make_config(device_specs=specs, heterogeneous_assignment=True),
        )
        uniform = run_engine(
            elastic_graph,
            make_config(device_specs=specs, heterogeneous_assignment=False),
        )
        # Both conserve walks; the weighted split actually moves bytes.
        assert aware.total_steps == uniform.total_steps == 300 * 6
        assert aware.total_time != uniform.total_time


class TestTopologyRuns:
    @pytest.mark.parametrize("topology", ["ring", "switch"])
    def test_topology_run_conserves_walks(self, elastic_graph, topology):
        stats = run_engine(elastic_graph, make_config(topology=topology))
        assert stats.total_steps == 300 * 6
        assert stats.walks_migrated > 0
        assert stats.sanitizer is not None and stats.sanitizer["clean"]


class TestTopologyRouting:
    def test_all_pairs_is_direct(self):
        topo = AllPairsTopology()
        alive = np.ones(4, dtype=bool)
        assert topo.route(0, 3, alive) == ((0, 3),)
        assert topo.extra_nodes == 0

    def test_ring_prefers_shorter_arc(self):
        topo = RingTopology(5)
        alive = np.ones(5, dtype=bool)
        assert topo.route(0, 1, alive) == ((0, 1),)
        # 0 -> 4 is one counter-clockwise hop, not four clockwise.
        assert topo.route(0, 4, alive) == ((0, 4),)
        assert topo.route(0, 2, alive) == ((0, 1), (1, 2))

    def test_ring_tie_breaks_clockwise(self):
        topo = RingTopology(4)
        alive = np.ones(4, dtype=bool)
        assert topo.route(0, 2, alive) == ((0, 1), (1, 2))

    def test_ring_routes_around_failed_device(self):
        topo = RingTopology(4)
        alive = np.array([True, False, True, True])
        # The short arc 0->1->2 relays through dead device 1.
        assert topo.route(0, 2, alive) == ((0, 3), (3, 2))

    def test_ring_disconnection_raises(self):
        topo = RingTopology(5)
        alive = np.array([True, False, True, False, True])
        with pytest.raises(RuntimeError, match="both arcs"):
            topo.route(0, 2, alive)

    def test_ring_needs_two_devices(self):
        with pytest.raises(ValueError):
            RingTopology(1)

    def test_switch_routes_via_virtual_node(self):
        topo = SwitchTopology(4)
        alive = np.ones(4, dtype=bool)
        assert topo.switch_node == 4
        assert topo.route(1, 3, alive) == ((1, 4), (4, 3))

    def test_topology_by_name(self):
        assert isinstance(topology_by_name("all-pairs", 4), AllPairsTopology)
        assert isinstance(topology_by_name("ring", 4), RingTopology)
        assert isinstance(topology_by_name("switch", 4), SwitchTopology)
        with pytest.raises(KeyError):
            topology_by_name("torus", 4)


class TestClusterChannels:
    def test_link_scale_scales_bandwidth_and_latency(self):
        sizes = np.full(8, 1024, dtype=np.int64)
        specs = (
            ClusterDeviceSpec(name="fast"),
            ClusterDeviceSpec(name="slow", link_scale=0.5),
        )
        cluster = DeviceCluster(sizes, 2, specs=specs)
        chan = cluster.channel(0, 1)
        base = cluster.link
        # The half-rate endpoint gates the channel: half the bandwidth
        # and double the per-message setup latency.
        assert chan.spec.bandwidth == base.bandwidth * 0.5
        assert chan.spec.latency_seconds == base.latency_seconds / 0.5
        cluster_uniform = DeviceCluster(sizes, 2)
        assert cluster_uniform.channel(0, 1).spec is cluster_uniform.link

    def test_switch_channels_use_virtual_node(self):
        sizes = np.full(8, 1024, dtype=np.int64)
        cluster = DeviceCluster(
            sizes, 3, topology=topology_by_name("switch", 3)
        )
        hops = cluster.route(0, 2)
        assert [(c.src, c.dst) for c in hops] == [(0, 3), (3, 2)]

    def test_fail_device_guards(self):
        sizes = np.full(8, 1024, dtype=np.int64)
        cluster = DeviceCluster(sizes, 2)
        cluster.fail_device(1)
        with pytest.raises(ValueError):
            cluster.fail_device(1)
        with pytest.raises(RuntimeError, match="last alive"):
            cluster.fail_device(0)
        with pytest.raises(ValueError, match="failed device"):
            cluster.set_owners(np.array([0]), np.array([1]))


class TestClusterDeviceSpec:
    def test_parse_full_spec(self):
        spec = ClusterDeviceSpec.parse("a100:compute=2,memory=0.5,link=1.5")
        assert spec.name == "a100"
        assert spec.compute_scale == 2.0
        assert spec.memory_scale == 0.5
        assert spec.link_scale == 1.5

    def test_parse_shorthands_and_bare_kv(self):
        spec = ClusterDeviceSpec.parse("c=2,m=3,l=4")
        assert spec.name == "gpu"
        assert (spec.compute_scale, spec.memory_scale, spec.link_scale) == (
            2.0, 3.0, 4.0,
        )

    def test_parse_bare_name_is_uniform(self):
        spec = ClusterDeviceSpec.parse("v100")
        assert spec.name == "v100"
        assert spec.is_uniform

    def test_parse_rejects_unknown_key(self):
        with pytest.raises(ValueError, match="bad device-spec item"):
            ClusterDeviceSpec.parse("gpu:speed=2")

    def test_positive_scales_enforced(self):
        with pytest.raises(ValueError, match="must be positive"):
            ClusterDeviceSpec(compute_scale=0.0)

    def test_assignment_weight_is_bottleneck(self):
        spec = ClusterDeviceSpec(
            compute_scale=2.0, memory_scale=0.5, link_scale=1.0
        )
        assert spec.assignment_weight == 0.5
        assert ClusterDeviceSpec().assignment_weight == 1.0


class TestFailureSchedule:
    def test_parse_single_and_multi(self):
        schedule = FailureSchedule.parse("1@40")
        assert schedule.failures == (DeviceFailure(1, 40),)
        schedule = FailureSchedule.parse("1@40,2@90")
        assert [f.device for f in schedule.failures] == [1, 2]
        assert [f.at_iteration for f in schedule.failures] == [40, 90]

    def test_parse_rejects_malformed(self):
        with pytest.raises(ValueError, match="DEVICE@ITERATION"):
            FailureSchedule.parse("1-40")

    def test_duplicate_device_rejected(self):
        with pytest.raises(ValueError, match="scheduled to fail twice"):
            FailureSchedule(
                failures=(DeviceFailure(1, 5), DeviceFailure(1, 9))
            )

    def test_single_constructor(self):
        schedule = FailureSchedule.single(3, 17)
        assert schedule.failures == (DeviceFailure(3, 17),)
