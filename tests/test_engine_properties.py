"""Property-based tests of the engine over randomized configurations.

The engine must complete every walk, conserve counts, and keep its timeline
consistent for *any* combination of pool sizes, batch sizes, partition
sizes, scheduling toggles, and copy modes.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import PageRank, PersonalizedPageRank, UniformSampling
from repro.core.config import (
    COPY_ADAPTIVE,
    COPY_EXPLICIT,
    COPY_ZERO,
    EngineConfig,
)
from repro.core.engine import run_walks
from repro.graph import generators

GRAPH = generators.rmat(scale=9, edge_factor=5, seed=77, name="prop")


config_strategy = st.fixed_dictionaries(
    {
        "partition_bytes": st.sampled_from([1024, 2048, 4096, 16384]),
        "batch_walks": st.sampled_from([8, 32, 128]),
        "graph_pool_partitions": st.integers(1, 12),
        "walk_pool_walks": st.sampled_from([None, 64, 512]),
        "pipeline": st.booleans(),
        "preemptive": st.booleans(),
        "selective": st.booleans(),
        "copy_mode": st.sampled_from(
            [COPY_ADAPTIVE, COPY_EXPLICIT, COPY_ZERO]
        ),
        "seed": st.integers(0, 10_000),
    }
)


@given(options=config_strategy, num_walks=st.integers(1, 300))
@settings(max_examples=40, deadline=None)
def test_uniform_always_completes_exactly(options, num_walks):
    """Property: fixed-length walks take exactly walks*length steps."""
    walk_pool = options["walk_pool_walks"]
    if walk_pool is not None:
        walk_pool = max(walk_pool, options["batch_walks"])
        options = dict(options, walk_pool_walks=walk_pool)
    config = EngineConfig(**options)
    stats = run_walks(GRAPH, UniformSampling(length=6), num_walks, config)
    assert stats.total_steps == num_walks * 6
    assert stats.total_time > 0
    assert stats.iterations >= 1
    # Timeline sanity: makespan within [max category, sum of categories].
    assert stats.total_time <= sum(stats.breakdown.values()) + 1e-12
    assert stats.total_time >= max(stats.breakdown.values()) - 1e-12


@given(options=config_strategy)
@settings(max_examples=25, deadline=None)
def test_ppr_conserves_visits(options):
    """Property: PPR visit counts equal processed moves + starts."""
    walk_pool = options["walk_pool_walks"]
    if walk_pool is not None:
        walk_pool = max(walk_pool, options["batch_walks"])
        options = dict(options, walk_pool_walks=walk_pool)
    config = EngineConfig(**options)
    algo = PersonalizedPageRank(stop_prob=0.25)
    num_walks = 120
    stats = run_walks(GRAPH, algo, num_walks, config)
    moves = int(algo.visit_counts.sum()) - num_walks  # minus start visits
    assert 0 <= moves <= stats.total_steps
    assert stats.total_steps >= num_walks  # every walk processed >= 1 step


@given(
    seed=st.integers(0, 1000),
    copy_mode=st.sampled_from([COPY_ADAPTIVE, COPY_EXPLICIT, COPY_ZERO]),
)
@settings(max_examples=15, deadline=None)
def test_copy_mode_changes_time_not_results(seed, copy_mode):
    """Property: copy mode affects only the schedule, never trajectories.

    Preemption is disabled because it changes the *order* batches are
    processed (and therefore RNG stream consumption); with a fixed order,
    how the graph reaches the GPU cannot change where walks go.
    """
    base = EngineConfig(
        partition_bytes=2048,
        batch_walks=32,
        graph_pool_partitions=4,
        preemptive=False,
        seed=seed,
    )
    reference_algo = PageRank(length=8)
    run_walks(GRAPH, reference_algo, 150, base.with_options(copy_mode=COPY_EXPLICIT))
    algo = PageRank(length=8)
    run_walks(GRAPH, algo, 150, base.with_options(copy_mode=copy_mode))
    assert np.array_equal(algo.visit_counts, reference_algo.visit_counts)
