"""Tests for the §IV-D analytical model, including model-vs-engine checks."""

import pytest

from repro.core.theory import (
    IterationModel,
    throughput_ceiling,
    transfer_bound_throughput,
    walk_density,
    zero_copy_density_threshold,
)
from repro.gpu.calibration import Calibration


class TestFormulas:
    def test_density(self):
        # 1000 walks x 8 B in a 64 KiB partition.
        assert walk_density(1000, 64 * 1024, 8) == pytest.approx(0.1220703125)

    def test_throughput_matches_paper_formula(self):
        # B = 12 GB/s, S_w = 8 B, D = 1 -> (1.5e9) / 2.
        assert transfer_bound_throughput(12e9, 8, 1.0) == pytest.approx(0.75e9)

    def test_throughput_monotone_in_density(self):
        values = [
            transfer_bound_throughput(12e9, 8, d)
            for d in (0.01, 0.1, 1.0, 10.0)
        ]
        assert values == sorted(values)

    def test_ceiling_is_limit(self):
        ceiling = throughput_ceiling(12e9, 8)
        nearly = transfer_bound_throughput(12e9, 8, 1e9)
        assert nearly == pytest.approx(ceiling, rel=1e-6)
        assert transfer_bound_throughput(12e9, 8, 0) == 0.0

    def test_zero_copy_threshold(self):
        cal = Calibration()
        raw = zero_copy_density_threshold(8, cal, effective=False)
        assert raw == pytest.approx(8 / 256)
        effective = zero_copy_density_threshold(8, cal, effective=True)
        assert effective == pytest.approx(raw / cal.zero_copy_cost_factor)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            walk_density(10, 0)
        with pytest.raises(ValueError):
            transfer_bound_throughput(0, 8, 1)


class TestIterationModel:
    def test_steps_per_visit(self):
        model = IterationModel(num_partitions=100, walk_length=80)
        assert model.steps_per_visit == pytest.approx(100 / 99)
        assert model.visits_per_walk == pytest.approx(80 * 0.99)

    def test_single_partition(self):
        model = IterationModel(num_partitions=1, walk_length=80)
        assert model.steps_per_visit == 80.0
        assert model.visits_per_walk == pytest.approx(1.0)

    def test_expected_iterations(self):
        model = IterationModel(num_partitions=50, walk_length=10)
        expected = model.expected_iterations(1000, walks_per_iteration=20)
        assert expected == pytest.approx(1000 * model.visits_per_walk / 20)

    def test_invalid(self):
        with pytest.raises(ValueError):
            IterationModel(0, 10)
        with pytest.raises(ValueError):
            IterationModel(10, 10).expected_iterations(10, 0)


class TestModelVsEngine:
    def test_visits_per_walk_predicts_engine_steps(self, small_graph):
        """The engine's measured steps-per-kernel-visit matches the
        1/(1 - 1/P) prediction for uniform walks."""
        from repro.algorithms import UniformSampling
        from repro.core.config import EngineConfig
        from repro.core.engine import LightTrafficEngine
        from repro.core.trace import TraceRecorder

        config = EngineConfig(
            partition_bytes=2048,
            batch_walks=32,
            graph_pool_partitions=4,
            seed=2,
        )
        trace = TraceRecorder()
        engine = LightTrafficEngine(
            small_graph, UniformSampling(length=20), config, trace=trace
        )
        stats = engine.run(400)
        model = IterationModel(stats.num_partitions, walk_length=20)
        visits = sum(it.walks_total for it in trace.iterations)
        measured_steps_per_visit = stats.total_steps / visits
        # Degree correlations across a range partition make the true stay
        # probability a bit higher than 1/P; allow a loose band.
        assert measured_steps_per_visit == pytest.approx(
            model.steps_per_visit, rel=0.5
        )
