"""Shared test fixtures: small deterministic graphs and engine configs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import EngineConfig
from repro.graph import generators
from repro.graph.builders import from_edges
from repro.graph.csr import CSRGraph


@pytest.fixture(scope="session")
def small_graph() -> CSRGraph:
    """~1k-vertex power-law graph shared by engine-level tests."""
    return generators.rmat(scale=10, edge_factor=6, seed=7, name="small")


@pytest.fixture(scope="session")
def medium_graph() -> CSRGraph:
    """~4k-vertex graph for distribution-accuracy tests."""
    return generators.rmat(scale=12, edge_factor=8, seed=11, name="medium")


@pytest.fixture()
def line_graph() -> CSRGraph:
    """0-1-2-3-4 path graph (undirected)."""
    edges = [(0, 1), (1, 2), (2, 3), (3, 4)]
    both = edges + [(b, a) for a, b in edges]
    return from_edges(both, num_vertices=5, name="line")


@pytest.fixture()
def tiny_config() -> EngineConfig:
    """Engine config with small pools/batches for unit-scale runs."""
    return EngineConfig(
        partition_bytes=2048,
        batch_walks=32,
        graph_pool_partitions=4,
        seed=123,
    )


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(2024)
