"""Shared test fixtures: small deterministic graphs and engine configs.

Running the suite with ``pytest --sanitize`` forces every
:class:`~repro.core.engine.LightTrafficEngine` run under the runtime
sanitizer (:mod:`repro.analysis`) and fails the test on any invariant
violation — the engine-level tests then double as an invariant sweep.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import EngineConfig
from repro.graph import generators
from repro.graph.builders import from_edges
from repro.graph.csr import CSRGraph


def pytest_addoption(parser):
    parser.addoption(
        "--sanitize",
        action="store_true",
        default=False,
        help="run every LightTrafficEngine under the runtime sanitizer "
             "and fail tests on any invariant violation",
    )


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "no_sanitize: opt a test out of --sanitize instrumentation "
        "(fault-injection tests deliberately trigger violations)",
    )


@pytest.fixture(autouse=True)
def _sanitize_engine_runs(request, monkeypatch):
    """Under ``--sanitize``: every engine run is invariant-checked live."""
    if not request.config.getoption("--sanitize"):
        return
    if request.node.get_closest_marker("no_sanitize"):
        return
    from repro.analysis import format_summary
    from repro.core.engine import LightTrafficEngine

    original_init = LightTrafficEngine.__init__
    original_run = LightTrafficEngine.run

    def sanitizing_init(self, graph, algorithm, config=None, *args, **kwargs):
        cfg = config if config is not None else EngineConfig()
        original_init(
            self, graph, algorithm, cfg.with_options(sanitize=True),
            *args, **kwargs,
        )

    def checked_run(self, num_walks):
        stats = original_run(self, num_walks)
        if stats.sanitizer is not None and not stats.sanitizer["clean"]:
            pytest.fail(
                "--sanitize: " + format_summary(stats.sanitizer),
                pytrace=False,
            )
        return stats

    monkeypatch.setattr(LightTrafficEngine, "__init__", sanitizing_init)
    monkeypatch.setattr(LightTrafficEngine, "run", checked_run)


@pytest.fixture(scope="session")
def small_graph() -> CSRGraph:
    """~1k-vertex power-law graph shared by engine-level tests."""
    return generators.rmat(scale=10, edge_factor=6, seed=7, name="small")


@pytest.fixture(scope="session")
def medium_graph() -> CSRGraph:
    """~4k-vertex graph for distribution-accuracy tests."""
    return generators.rmat(scale=12, edge_factor=8, seed=11, name="medium")


@pytest.fixture()
def line_graph() -> CSRGraph:
    """0-1-2-3-4 path graph (undirected)."""
    edges = [(0, 1), (1, 2), (2, 3), (3, 4)]
    both = edges + [(b, a) for a, b in edges]
    return from_edges(both, num_vertices=5, name="line")


@pytest.fixture()
def tiny_config() -> EngineConfig:
    """Engine config with small pools/batches for unit-scale runs."""
    return EngineConfig(
        partition_bytes=2048,
        batch_walks=32,
        graph_pool_partitions=4,
        seed=123,
    )


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(2024)
