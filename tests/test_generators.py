"""Unit tests for synthetic graph generators."""

import numpy as np
import pytest

from repro.graph import generators
from repro.graph.generators import (
    barabasi_albert,
    complete,
    degree_histogram,
    erdos_renyi,
    ring,
    rmat,
    star,
    with_random_weights,
)


class TestRMAT:
    def test_deterministic_with_seed(self):
        a = rmat(scale=8, edge_factor=4, seed=1)
        b = rmat(scale=8, edge_factor=4, seed=1)
        assert a == b

    def test_different_seeds_differ(self):
        a = rmat(scale=8, edge_factor=4, seed=1)
        b = rmat(scale=8, edge_factor=4, seed=2)
        assert a != b

    def test_preprocessed_properties(self):
        g = rmat(scale=9, edge_factor=4, seed=3)
        degrees = g.degrees()
        assert degrees.min() >= 1  # zero-degree vertices removed
        # Undirected: total degree is even and edges are symmetric.
        assert g.num_edges % 2 == 0
        for v in range(0, g.num_vertices, max(1, g.num_vertices // 7)):
            for t in g.neighbors(v)[:3]:
                assert g.has_edge(int(t), v)

    def test_skew_produces_heavy_tail(self):
        g = rmat(scale=11, edge_factor=8, seed=5)
        degrees = g.degrees()
        assert degrees.max() > 8 * degrees.mean()

    def test_invalid_scale(self):
        with pytest.raises(ValueError, match="scale"):
            rmat(scale=0, edge_factor=4)

    def test_invalid_quadrants(self):
        with pytest.raises(ValueError, match="quadrant"):
            rmat(scale=4, edge_factor=2, a=0.5, b=0.3, c=0.2)

    def test_directed_mode(self):
        g = rmat(scale=8, edge_factor=4, seed=1, undirected=False)
        assert g.num_edges > 0


class TestErdosRenyi:
    def test_size(self):
        g = erdos_renyi(100, 400, seed=1)
        assert 0 < g.num_vertices <= 100
        assert g.num_edges > 0

    def test_invalid(self):
        with pytest.raises(ValueError):
            erdos_renyi(0, 10)


class TestBarabasiAlbert:
    def test_size_and_connectivity(self):
        g = barabasi_albert(60, attach=3, seed=1)
        assert g.num_vertices == 60
        assert g.degrees().min() >= 1

    def test_hub_emerges(self):
        g = barabasi_albert(120, attach=2, seed=2)
        assert g.max_degree > 4 * g.degrees().mean()

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            barabasi_albert(5, attach=0)
        with pytest.raises(ValueError):
            barabasi_albert(3, attach=3)


class TestDeterministicTopologies:
    def test_star(self):
        g = star(5)
        assert g.num_vertices == 6
        assert g.degree(0) == 5
        assert all(g.degree(v) == 1 for v in range(1, 6))

    def test_star_invalid(self):
        with pytest.raises(ValueError):
            star(0)

    def test_ring(self):
        g = ring(6)
        assert g.num_vertices == 6
        assert g.degrees().tolist() == [2] * 6
        assert g.has_edge(0, 5) and g.has_edge(0, 1)

    def test_ring_too_small(self):
        with pytest.raises(ValueError):
            ring(2)

    def test_complete(self):
        g = complete(4)
        assert g.num_edges == 12
        assert g.degrees().tolist() == [3] * 4

    def test_complete_too_small(self):
        with pytest.raises(ValueError):
            complete(1)


class TestWeightsAndHistogram:
    def test_with_random_weights(self):
        g = with_random_weights(ring(5), seed=3, low=0.5, high=2.0)
        assert g.is_weighted
        assert g.weights.min() >= 0.5
        assert g.weights.max() < 2.0

    def test_with_random_weights_invalid_range(self):
        with pytest.raises(ValueError):
            with_random_weights(ring(5), low=0.0, high=1.0)
        with pytest.raises(ValueError):
            with_random_weights(ring(5), low=2.0, high=1.0)

    def test_degree_histogram(self, small_graph):
        hist, edges = degree_histogram(small_graph)
        assert hist.sum() <= small_graph.num_vertices
        assert len(edges) == len(hist) + 1

    def test_degree_histogram_empty(self):
        g = generators.rmat(scale=4, edge_factor=1, seed=1)
        hist, edges = degree_histogram(g, bins=4)
        assert hist.sum() >= 0
