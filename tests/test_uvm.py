"""Tests for the unified-virtual-memory baseline."""

import dataclasses

import numpy as np
import pytest

from repro.algorithms import PageRank, UniformSampling
from repro.baselines import UVMConfig, UVMEngine
from repro.core.stats import CAT_GRAPH_LOAD, CAT_WALK_UPDATE
from repro.gpu.device import RTX3090


class TestSemantics:
    def test_exact_step_count(self, small_graph):
        stats = UVMEngine(small_graph, UniformSampling(length=6)).run(100)
        assert stats.total_steps == 600
        assert stats.iterations == 6

    def test_visit_counts_populated(self, small_graph):
        algo = PageRank(length=5)
        UVMEngine(small_graph, algo).run(80)
        assert algo.visit_counts.sum() == 80 * 6  # starts + steps

    def test_invalid_walks(self, small_graph):
        with pytest.raises(ValueError):
            UVMEngine(small_graph, PageRank(3)).run(0)

    def test_invalid_page_size(self, small_graph):
        with pytest.raises(ValueError):
            UVMEngine(small_graph, PageRank(3), UVMConfig(page_bytes=0))


class TestPageCache:
    def test_fitting_graph_faults_once(self, small_graph):
        # Cache larger than the graph: every page faults exactly once.
        config = UVMConfig(
            page_bytes=1024,
            gpu_memory_bytes=4 * small_graph.csr_bytes,
        )
        engine = UVMEngine(small_graph, PageRank(length=10), config)
        engine.run(400)
        total_pages = -(-small_graph.csr_bytes // 1024)
        assert engine.faults <= total_pages + 1
        assert engine.fault_rate < 0.2

    def test_tiny_cache_thrashes(self, small_graph):
        config = UVMConfig(page_bytes=1024, gpu_memory_bytes=4 * 1024)
        engine = UVMEngine(small_graph, PageRank(length=10), config)
        engine.run(400)
        assert engine.fault_rate > 0.5

    def test_more_memory_never_more_faults(self, small_graph):
        def faults(budget):
            engine = UVMEngine(
                small_graph,
                PageRank(length=8),
                UVMConfig(page_bytes=2048, gpu_memory_bytes=budget, seed=3),
            )
            engine.run(200)
            return engine.faults

        small = faults(8 * 2048)
        large = faults(small_graph.csr_bytes * 2)
        assert large <= small

    def test_breakdown_composition(self, small_graph):
        stats = UVMEngine(small_graph, PageRank(length=4)).run(50)
        assert stats.total_time == pytest.approx(
            stats.time(CAT_GRAPH_LOAD) + stats.time(CAT_WALK_UPDATE)
        )
        assert "faults=" in stats.notes

    def test_fault_rate_empty(self, small_graph):
        engine = UVMEngine(small_graph, PageRank(length=4))
        assert engine.fault_rate == 0.0
