"""Tests for the metapath-walk extension (heterogeneous graphs)."""

import numpy as np
import pytest

from repro.algorithms.metapath import MetapathWalk, random_vertex_types
from repro.baselines.inmemory_cpu import execute_in_memory
from repro.core.engine import run_walks
from repro.graph import generators


@pytest.fixture()
def typed_graph():
    graph = generators.rmat(scale=10, edge_factor=8, seed=13, name="hetero")
    types = random_vertex_types(graph.num_vertices, num_types=3, seed=4)
    return graph, types


class TestMetapathSemantics:
    def test_starts_have_start_type(self, typed_graph, rng):
        graph, types = typed_graph
        algo = MetapathWalk(types, metapath=[0, 1, 2], length=6)
        starts = algo.start_vertices(graph, 50, rng)
        assert np.all(types[starts] == 0)

    def test_steps_follow_pattern(self, typed_graph):
        graph, types = typed_graph
        rng = np.random.default_rng(8)
        algo = MetapathWalk(types, metapath=[0, 1, 2], length=9)
        from repro.baselines.inmemory_cpu import whole_graph_partition
        from repro.walks.state import WalkArrays

        starts = algo.start_vertices(graph, 40, rng)
        walks = WalkArrays.fresh(starts)
        part = whole_graph_partition(graph)
        alive = np.ones(40, dtype=bool)
        for step in range(9):
            idx = np.nonzero(alive)[0]
            if idx.size == 0:
                break
            new_v, term = algo.step_once(
                walks.vertices[idx], walks.steps[idx], walks.ids[idx],
                part, rng, graph,
            )
            moved = ~term | (walks.steps[idx] + 1 >= 9)
            wanted = (step + 1) % 3
            # Every walk that actually moved landed on the required type.
            actually_moved = new_v != walks.vertices[idx]
            assert np.all(types[new_v[actually_moved]] == wanted)
            walks.vertices[idx] = new_v
            walks.steps[idx] += 1
            alive[idx] = ~term

    def test_runs_through_engine(self, typed_graph, tiny_config):
        graph, types = typed_graph
        algo = MetapathWalk(types, metapath=[0, 1], length=8)
        stats = run_walks(graph, algo, 100, tiny_config)
        assert 0 < stats.total_steps <= 800

    def test_early_termination_counted(self, typed_graph, rng):
        graph, types = typed_graph
        # Type 9 never exists: every walk terminates on its first step.
        algo = MetapathWalk(types, metapath=[0, 9], length=5)
        steps = execute_in_memory(graph, algo, 30, rng)
        assert steps == 30
        assert algo.early_terminations == 30


class TestValidation:
    def test_bad_metapath(self, typed_graph):
        __, types = typed_graph
        with pytest.raises(ValueError, match="two types"):
            MetapathWalk(types, metapath=[0])
        with pytest.raises(ValueError, match="length"):
            MetapathWalk(types, metapath=[0, 1], length=0)

    def test_types_must_cover_graph(self, typed_graph, rng):
        graph, __ = typed_graph
        algo = MetapathWalk(np.zeros(3), metapath=[0, 0])
        with pytest.raises(ValueError, match="cover"):
            algo.start_vertices(graph, 5, rng)

    def test_missing_start_type(self, typed_graph, rng):
        graph, types = typed_graph
        algo = MetapathWalk(types, metapath=[7, 0])
        with pytest.raises(ValueError, match="start type"):
            algo.start_vertices(graph, 5, rng)

    def test_random_vertex_types_validation(self):
        with pytest.raises(ValueError):
            random_vertex_types(10, 0)
        types = random_vertex_types(100, 4, seed=1)
        assert set(np.unique(types)) <= {0, 1, 2, 3}

    def test_bytes_per_walk(self, typed_graph):
        __, types = typed_graph
        assert MetapathWalk(types, metapath=[0, 1]).bytes_per_walk == 16
