"""Per-device metrics serialization and the Prometheus text exporter."""

import pytest

from repro.algorithms import UniformSampling
from repro.core.config import EngineConfig, FailureSchedule
from repro.core.engine import LightTrafficEngine
from repro.core.metrics import (
    DeviceMetrics,
    MetricsCollector,
    prometheus_text,
)
from repro.graph import generators


@pytest.fixture(scope="module")
def metrics_graph():
    return generators.rmat(scale=8, edge_factor=5, seed=4, name="metrics")


def run_with_metrics(graph, collector, **overrides):
    kwargs = dict(
        partition_bytes=2048,
        batch_walks=32,
        graph_pool_partitions=4,
        walk_pool_walks=256,
        seed=11,
        devices=3,
    )
    kwargs.update(overrides)
    config = EngineConfig(**kwargs)
    engine = LightTrafficEngine(
        graph, UniformSampling(length=5), config, metrics=collector
    )
    return engine.run(200)


class TestDeviceMetricsRoundTrip:
    def test_as_dict_from_dict_inverse(self):
        metrics = DeviceMetrics(
            iterations=7,
            walks_computed=120,
            steps=600,
            walks_migrated_out=40,
            walks_migrated_in=35,
            migrate_seconds=0.125,
            walks_recovered=12,
            failed_at_iteration=19,
            pending_samples=[(1, 80), (2, 64), (5, 0)],
        )
        assert DeviceMetrics.from_dict(metrics.as_dict()) == metrics

    def test_alive_device_round_trips_none_failure(self):
        metrics = DeviceMetrics(iterations=3)
        restored = DeviceMetrics.from_dict(metrics.as_dict())
        assert restored.failed_at_iteration is None
        assert restored == metrics

    def test_json_safe_through_real_json(self):
        import json

        metrics = DeviceMetrics(
            iterations=2, pending_samples=[(4, 9)], failed_at_iteration=None
        )
        payload = json.loads(json.dumps(metrics.as_dict()))
        assert DeviceMetrics.from_dict(payload) == metrics

    def test_engine_run_populates_device_series(self, metrics_graph):
        collector = MetricsCollector()
        run_with_metrics(metrics_graph, collector)
        assert set(collector.devices) == {0, 1, 2}
        for metrics in collector.devices.values():
            assert metrics.iterations > 0
            assert metrics.pending_samples
            iterations = [it for it, _ in metrics.pending_samples]
            assert iterations == sorted(iterations)
            round_tripped = DeviceMetrics.from_dict(metrics.as_dict())
            assert round_tripped == metrics


class TestPrometheusText:
    def snapshot(self, graph, **overrides):
        collector = MetricsCollector()
        run_with_metrics(graph, collector, **overrides)
        return collector.snapshot()

    def test_families_have_help_and_type(self, metrics_graph):
        text = prometheus_text(self.snapshot(metrics_graph))
        for family in (
            "repro_iterations_total",
            "repro_runs_completed_total",
            "repro_rebalances_total",
            "repro_total_time_seconds",
            "repro_device_pending_walks",
        ):
            assert f"# HELP {family} " in text
            assert f"# TYPE {family} " in text

    def test_counters_use_total_suffix(self, metrics_graph):
        text = prometheus_text(self.snapshot(metrics_graph))
        for line in text.splitlines():
            if not line.startswith("# TYPE"):
                continue
            _, _, family, kind = line.split(" ")
            if kind == "counter":
                assert family.endswith("_total"), family

    def test_label_escaping(self):
        text = prometheus_text(
            MetricsCollector().snapshot(),
            extra_labels={"graph": 'we"ird\\name\nhere'},
        )
        assert 'graph="we\\"ird\\\\name\\nhere"' in text

    def test_extra_labels_on_every_sample(self, metrics_graph):
        text = prometheus_text(
            self.snapshot(metrics_graph), extra_labels={"system": "lt"}
        )
        samples = [
            line for line in text.splitlines() if not line.startswith("#")
        ]
        assert samples
        assert all('system="lt"' in line for line in samples)

    def test_counter_monotonic_across_runs(self, metrics_graph):
        collector = MetricsCollector()
        run_with_metrics(metrics_graph, collector)
        first = collector.snapshot()
        run_with_metrics(metrics_graph, collector)
        second = collector.snapshot()

        def counters(snapshot):
            text = prometheus_text(snapshot)
            out = {}
            kinds = {}
            for line in text.splitlines():
                if line.startswith("# TYPE"):
                    _, _, family, kind = line.split(" ")
                    kinds[family] = kind
                elif not line.startswith("#"):
                    name_labels, _, rest = line.partition(" ")
                    family = name_labels.partition("{")[0]
                    if kinds.get(family) == "counter":
                        out[name_labels] = float(rest.split(" ")[0])
            return out

        before, after = counters(first), counters(second)
        assert before and set(before) <= set(after)
        for series, value in before.items():
            assert after[series] >= value, series

    def test_pending_series_has_iteration_timestamps(self, metrics_graph):
        text = prometheus_text(self.snapshot(metrics_graph))
        series = [
            line
            for line in text.splitlines()
            if line.startswith("repro_device_pending_walks{")
        ]
        assert series
        per_device = {}
        for line in series:
            # "<name>{...} <value> <timestamp>"
            parts = line.rsplit(" ", 2)
            assert len(parts) == 3, line
            timestamp = int(parts[2])
            device = line.partition('device="')[2].partition('"')[0]
            per_device.setdefault(device, []).append(timestamp)
        for timestamps in per_device.values():
            assert timestamps == sorted(timestamps)

    def test_devices_ordered_numerically(self, metrics_graph):
        snapshot = self.snapshot(metrics_graph)
        # A two-digit device id distinguishes numeric ordering from
        # lexicographic ("10" sorts before "2" as a string).
        devices = dict(snapshot["devices"])
        devices["10"] = DeviceMetrics(iterations=1).as_dict()
        snapshot = dict(snapshot, devices=devices)
        text = prometheus_text(snapshot)
        order = [
            line.partition('device="')[2].partition('"')[0]
            for line in text.splitlines()
            if line.startswith("repro_device_iterations_total{")
        ]
        assert order == ["0", "1", "2", "10"]

    def test_failed_device_exported_as_gauge(self, metrics_graph):
        snapshot = self.snapshot(
            metrics_graph, failure_schedule=FailureSchedule.single(1, 6)
        )
        text = prometheus_text(snapshot)
        failed = {
            line.partition('device="')[2].partition('"')[0]:
                line.rsplit(" ", 1)[1]
            for line in text.splitlines()
            if line.startswith("repro_device_failed{")
        }
        assert failed["1"] == "1"
        assert failed["0"] == "0"
        recovered = [
            line
            for line in text.splitlines()
            if line.startswith("repro_device_walks_recovered_total{")
        ]
        assert any(not line.endswith(" 0") for line in recovered)
