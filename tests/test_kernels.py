"""Unit tests for the kernel cost models."""

import pytest

from repro.gpu.calibration import Calibration
from repro.gpu.device import RTX3090
from repro.gpu.kernels import DIRECT_WRITE, TWO_LEVEL, KernelModel


@pytest.fixture()
def model():
    return KernelModel(RTX3090)


class TestLocality:
    def test_factor_bounds(self, model):
        cal = model.calibration
        low = model.locality_factor(1)
        high = model.locality_factor(10 ** 12)
        assert low == pytest.approx(1.0, abs=0.01)
        assert high == pytest.approx(
            1.0 + cal.step_cycles_locality / cal.step_cycles_base
        )

    def test_factor_monotone(self, model):
        sizes = [1 << 10, 1 << 16, 1 << 22, 1 << 28]
        factors = [model.locality_factor(s) for s in sizes]
        assert factors == sorted(factors)

    def test_steps_per_second_decreases_with_size(self, model):
        assert model.steps_per_second(1 << 10) > model.steps_per_second(1 << 30)


class TestUpdateTime:
    def test_zero_steps(self, model):
        assert model.update_time(0, 0, 1 << 20) == 0.0

    def test_throughput_bound_dominates_wide_batches(self, model):
        # Many walks, one step each: time ~ steps / rate.
        t = model.update_time(10_000_000, 1, 1 << 20)
        assert t == pytest.approx(
            10_000_000 / model.steps_per_second(1 << 20)
        )

    def test_latency_bound_dominates_long_serial_chains(self, model):
        t = model.update_time(1_000, 1_000, 1 << 20)
        expected = model.device.cycles_to_seconds(
            1_000 * model.step_cycles(1 << 20)
        )
        assert t == pytest.approx(expected)

    def test_sim_scale_shrinks_latency_bound_only(self):
        scaled = KernelModel(RTX3090, Calibration(sim_scale=0.01))
        full = KernelModel(RTX3090)
        # Latency-bound case shrinks ~100x.
        assert scaled.update_time(100, 100, 1 << 20) == pytest.approx(
            full.update_time(100, 100, 1 << 20) * 0.01
        )
        # Throughput-bound case unchanged.
        assert scaled.update_time(10**7, 1, 1 << 20) == pytest.approx(
            full.update_time(10**7, 1, 1 << 20)
        )

    def test_negative_rejected(self, model):
        with pytest.raises(ValueError):
            model.update_time(-1, 0, 1024)


class TestReshuffle:
    def test_two_level_beats_direct_at_many_partitions(self, model):
        for partitions in (64, 128, 256, 512):
            direct = model.reshuffle_time(10_000, partitions, DIRECT_WRITE)
            two = model.reshuffle_time(10_000, partitions, TWO_LEVEL)
            assert two < direct

    def test_reduction_grows_with_partitions(self, model):
        def reduction(p):
            direct = model.reshuffle_time(10_000, p, DIRECT_WRITE)
            two = model.reshuffle_time(10_000, p, TWO_LEVEL)
            return 1 - two / direct

        assert reduction(256) > reduction(8)
        # Fig 12: up to ~73% reduction.
        assert reduction(256) > 0.6

    def test_zero_walks(self, model):
        assert model.reshuffle_time(0, 16) == 0.0

    def test_unknown_mode(self, model):
        with pytest.raises(ValueError, match="unknown reshuffle mode"):
            model.reshuffle_time(10, 4, "bogus")

    def test_invalid_args(self, model):
        with pytest.raises(ValueError):
            model.reshuffle_time(-1, 4)
        with pytest.raises(ValueError):
            model.reshuffle_time(1, 0)

    def test_parallel_scaling_saturates(self, model):
        lanes = model.calibration.reshuffle_parallel_lanes
        below = model.reshuffle_time(lanes // 2, 16)
        above = model.reshuffle_time(lanes * 4, 16)
        # Beyond the lane count, time grows linearly with walks.
        assert above == pytest.approx(
            model.reshuffle_time(lanes * 2, 16) * 2
        )
        assert below > 0


class TestKernelCost:
    def test_composition(self, model):
        cost = model.kernel_cost(
            total_steps=1000,
            longest_run=10,
            num_walks=500,
            num_partitions=32,
            partition_bytes=1 << 20,
        )
        assert cost.total_seconds == pytest.approx(
            cost.update_seconds + cost.reshuffle_seconds + cost.other_seconds
        )
        assert cost.other_seconds == pytest.approx(
            model.calibration.scaled_kernel_launch_seconds
        )


class TestVertexCentric:
    def test_imbalance_dominates(self, model):
        balanced = model.vertex_centric_time(10_000, max_walks_per_vertex=1)
        skewed = model.vertex_centric_time(10_000, max_walks_per_vertex=5_000)
        assert skewed > balanced

    def test_zero_steps(self, model):
        assert model.vertex_centric_time(0, 0) == 0.0

    def test_throughput_bound(self, model):
        cal = model.calibration
        t = model.vertex_centric_time(10**7, max_walks_per_vertex=1)
        expected = model.device.cycles_to_seconds(
            10**7 * cal.subway_step_cycles / cal.subway_lane_count
        )
        assert t == pytest.approx(expected)
