"""Unit tests for the benchmark reporting helpers."""

import pytest

from repro.bench.reporting import (
    format_cell,
    format_rate,
    format_seconds,
    print_table,
    render_table,
    rows_from_dicts,
)


class TestFormatters:
    def test_format_seconds_ranges(self):
        assert format_seconds(0) == "0"
        assert format_seconds(5e-7) == "0.5us"
        assert format_seconds(2.5e-3) == "2.50ms"
        assert format_seconds(1.5) == "1.500s"

    def test_format_rate_ranges(self):
        assert format_rate(5e3) == "5.0K"
        assert format_rate(2.5e6) == "2.5M"
        assert format_rate(3e9) == "3.00G"

    def test_format_cell(self):
        assert format_cell(1.23456) == "1.23"
        assert format_cell(42) == "42"
        assert format_cell("x") == "x"


class TestRenderTable:
    def test_alignment(self):
        text = render_table("T", ["a", "long header"], [[1, 2], [333, 4]])
        lines = text.splitlines()
        assert lines[0] == "== T =="
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1  # all rows aligned

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError, match="row width"):
            render_table("T", ["a", "b"], [[1]])

    def test_empty_rows(self):
        text = render_table("T", ["a"], [])
        assert "a" in text

    def test_print_table(self, capsys):
        print_table("T", ["col"], [["val"]])
        out = capsys.readouterr().out
        assert "== T ==" in out
        assert "val" in out


class TestRowsFromDicts:
    def test_projection(self):
        rows = rows_from_dicts(
            [{"a": 1, "b": 2}, {"a": 3}], keys=["a", "b"]
        )
        assert rows == [[1, 2], [3, ""]]
