"""Unit tests for adaptive zero-copy scheduling (§III-E)."""

import pytest

from repro.core.adaptive import AdaptivePolicy
from repro.core.config import COPY_ADAPTIVE, COPY_EXPLICIT, COPY_ZERO
from repro.gpu.calibration import Calibration


class TestThresholdRule:
    def test_alpha_w_below_partition_uses_zero_copy(self):
        policy = AdaptivePolicy(COPY_ADAPTIVE)
        # effective alpha = 256 * 6: 10 walks -> ~15 KiB << 64 KiB partition.
        assert policy.should_zero_copy(64 * 1024, 10)

    def test_alpha_w_above_partition_uses_explicit(self):
        policy = AdaptivePolicy(COPY_ADAPTIVE)
        assert not policy.should_zero_copy(64 * 1024, 10_000)

    def test_boundary(self):
        policy = AdaptivePolicy(COPY_ADAPTIVE)
        partition = int(policy.effective_alpha) * 100
        assert not policy.should_zero_copy(partition, 100)  # strict <
        assert policy.should_zero_copy(partition, 99)

    def test_zero_walks(self):
        assert AdaptivePolicy(COPY_ADAPTIVE).should_zero_copy(1024, 0)


class TestForcedModes:
    def test_explicit_never_zero_copies(self):
        policy = AdaptivePolicy(COPY_EXPLICIT)
        assert not policy.should_zero_copy(1 << 20, 0)
        assert not policy.should_zero_copy(1 << 20, 1)

    def test_zero_always_zero_copies(self):
        policy = AdaptivePolicy(COPY_ZERO)
        assert policy.should_zero_copy(1 << 10, 10**9)


class TestMisc:
    def test_traffic_estimate(self):
        policy = AdaptivePolicy(COPY_ADAPTIVE)
        assert policy.zero_copy_traffic(10) == 2560

    def test_density_threshold_matches_paper(self):
        # §IV-D: zero copy engages when D < S_w / alpha (effective alpha).
        policy = AdaptivePolicy(COPY_ADAPTIVE)
        assert policy.density_threshold(8) == pytest.approx(
            8 / policy.effective_alpha
        )
        assert policy.density_threshold(16) == pytest.approx(
            16 / policy.effective_alpha
        )

    def test_custom_alpha(self):
        policy = AdaptivePolicy(
            COPY_ADAPTIVE,
            Calibration(zero_copy_alpha_bytes=512.0, zero_copy_cost_factor=1.0),
        )
        assert policy.alpha == 512.0
        assert policy.effective_alpha == 512.0
        assert not policy.should_zero_copy(512 * 10, 10)

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            AdaptivePolicy("sometimes")

    def test_invalid_args(self):
        policy = AdaptivePolicy(COPY_ADAPTIVE)
        with pytest.raises(ValueError):
            policy.should_zero_copy(0, 1)
        with pytest.raises(ValueError):
            policy.should_zero_copy(1024, -1)
