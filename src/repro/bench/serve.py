"""Sustained-load serving benchmark (``repro bench serve``).

The walk-serving front-end (:mod:`repro.serve`) makes two claims this
benchmark holds to account on a fixed RMAT workload:

* **latency under load** — a mixed query stream served closed-loop
  (each of ``workers`` clients submits its next query at completion)
  and open-loop (a seeded Poisson arrival process pushed past the
  closed-loop service rate) reports p50/p90/p99 queue/service/total
  latency and simulated throughput, for at least two client-worker
  counts each;
* **coalescing is free** — the *parity gate*: every coalescible request
  of the gate run is re-executed standalone with its derived seed and
  must match the served result bit-for-bit (final vertices and step
  counts), so batching never changes what a client receives.

Both loops run under the runtime sanitizer: the session bus audits
request conservation (``request-conservation``) while every per-batch
engine run keeps its own full substrate sanitizer.  Results are written
as ``BENCH_serve.json`` so CI archives the latency envelope per commit.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

import numpy as np

from repro.bench.harness import bench_engine_config
from repro.core.config import EngineConfig
from repro.graph.csr import CSRGraph
from repro.graph.generators import rmat
from repro.serve import (
    ARRIVAL_CLOSED,
    ARRIVAL_OPEN,
    QUERY_KINDS,
    ServeReport,
    ServeSession,
    default_workload,
    make_vertex_types,
    run_standalone,
)

#: Client-worker counts every arrival mode is measured at.
WORKER_COUNTS = (2, 8)

#: Open-loop overload factor: the Poisson arrival rate is this multiple
#: of the same worker count's measured closed-loop completion rate, so
#: the open-loop run queues by construction.
OPEN_OVERLOAD = 1.5


def _bench_config(seed: int, quick: bool) -> EngineConfig:
    """Shared engine config for every per-batch engine run."""
    return bench_engine_config(seed, quick)


def _run_entry(
    report: ServeReport,
    workers: int,
    arrival: str,
    arrival_rate: Optional[float],
) -> Dict[str, object]:
    entry: Dict[str, object] = {
        "workers": workers,
        "arrival": arrival,
        "arrival_rate": arrival_rate,
    }
    entry.update(report.summary_dict())
    return entry


def _latency_monotonic(entry: Dict[str, object]) -> bool:
    latency: Dict[str, Dict[str, float]] = entry["latency"]  # type: ignore[assignment]
    for series in latency.values():
        if not (series["p50"] <= series["p90"] <= series["p99"]):
            return False
    return True


def _parity_gate(
    report: ServeReport,
    graph: CSRGraph,
    config: EngineConfig,
    vertex_types: np.ndarray,
) -> Dict[str, object]:
    """Re-run every coalescible request standalone; require bit-parity."""
    checked = 0
    mismatched: List[int] = []
    for result in report.results:
        if not result.query.coalescible:
            continue
        checked += 1
        solo = run_standalone(
            graph,
            result.query,
            result.seed,
            config,
            vertex_types=vertex_types,
        )
        if not (
            np.array_equal(result.final_vertices, solo.final_vertices)
            and np.array_equal(result.steps_taken, solo.steps_taken)
        ):
            mismatched.append(result.request_id)
    return {
        "requests_checked": checked,
        "mismatched_requests": mismatched,
        "ok": checked > 0 and not mismatched,
    }


def run_bench(
    scale: int = 10,
    edge_factor: int = 8,
    queries: Optional[int] = None,
    seed: int = 7,
    quick: bool = False,
) -> Dict[str, object]:
    """Run the serving benchmark; returns the results payload."""
    if quick:
        scale = min(scale, 8)
    graph = rmat(scale=scale, edge_factor=edge_factor, seed=seed)
    if queries is None:
        queries = 12 if quick else 32
    config = _bench_config(seed, quick)
    vertex_types = make_vertex_types(graph, seed)
    workload = default_workload(
        graph, kinds=QUERY_KINDS, queries=queries, seed=seed
    )

    runs: Dict[str, Dict[str, object]] = {}
    gate_report: Optional[ServeReport] = None
    for workers in WORKER_COUNTS:
        closed = ServeSession(
            graph,
            config,
            workers=workers,
            arrival=ARRIVAL_CLOSED,
            vertex_types=vertex_types,
        ).run(workload)
        if gate_report is None:
            gate_report = closed
        runs[f"closed-w{workers}"] = _run_entry(
            closed, workers, ARRIVAL_CLOSED, None
        )
        closed_rate = closed.throughput()["queries_per_second"]
        rate = max(closed_rate * OPEN_OVERLOAD, 1.0)
        open_loop = ServeSession(
            graph,
            config,
            workers=workers,
            arrival=ARRIVAL_OPEN,
            arrival_rate=rate,
            vertex_types=vertex_types,
        ).run(workload)
        runs[f"open-w{workers}"] = _run_entry(
            open_loop, workers, ARRIVAL_OPEN, rate
        )

    assert gate_report is not None
    parity = _parity_gate(gate_report, graph, config, vertex_types)

    conservation_ok = all(
        entry["sanitizer_clean"]
        and entry["queries_admitted"] == len(workload)
        and entry["queries_completed"] == len(workload)
        for entry in runs.values()
    )
    engines_ok = all(
        entry["engine_sanitizers_clean"] for entry in runs.values()
    )
    latency_ok = all(_latency_monotonic(entry) for entry in runs.values())
    coalesced_ok = any(
        bool(entry["coalesced_queries"]) for entry in runs.values()
    )

    results: Dict[str, object] = {
        "config": {
            "scale": scale,
            "edge_factor": edge_factor,
            "vertices": graph.num_vertices,
            "edges": graph.num_edges,
            "queries": len(workload),
            "kinds": list(QUERY_KINDS),
            "worker_counts": list(WORKER_COUNTS),
            "open_overload": OPEN_OVERLOAD,
            "max_batch_walks": 512,
            "seed": seed,
            "quick": quick,
        },
        "runs": runs,
        "parity": parity,
        "checks": {
            "parity_ok": parity["ok"],
            "conservation_ok": conservation_ok,
            "engines_ok": engines_ok,
            "latency_monotonic": latency_ok,
            "coalescing_exercised": coalesced_ok,
            # the latency numbers themselves are workload-relative;
            # only the structural gates are enforced, at every scale.
            "perf_enforced": not quick,
            "all_ok": (
                parity["ok"]
                and conservation_ok
                and engines_ok
                and latency_ok
                and coalesced_ok
            ),
        },
    }
    return results


def write_results(results: Dict[str, object], path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")


def format_summary(results: Dict[str, object]) -> str:
    """Human-readable digest of one benchmark run."""
    config = results["config"]
    checks = results["checks"]
    parity = results["parity"]
    runs: Dict[str, Dict[str, object]] = results["runs"]  # type: ignore[assignment]
    lines = [
        "walk-serving benchmark "
        f"(rmat scale {config['scale']}, {config['vertices']} vertices, "
        f"{config['edges']} edges, {config['queries']} queries, "
        f"workers {config['worker_counts']})"
    ]
    for name in sorted(runs):
        run = runs[name]
        latency: Dict[str, Dict[str, float]] = run["latency"]  # type: ignore[assignment]
        throughput: Dict[str, float] = run["throughput"]  # type: ignore[assignment]
        total = latency["total_seconds"]
        lines.append(
            f"  {name:10s}: p50={total['p50'] * 1e3:7.3f} ms "
            f"p90={total['p90'] * 1e3:7.3f} ms "
            f"p99={total['p99'] * 1e3:7.3f} ms "
            f"qps={throughput['queries_per_second']:9.1f} "
            f"batches={run['batches']:3d} "
            f"coalesced={run['coalesced_queries']:3d} "
            f"sanitizer={'clean' if run['sanitizer_clean'] else 'DIRTY'}"
        )
    mismatched: List[int] = parity["mismatched_requests"]  # type: ignore[index]
    lines.append(
        f"  parity gate: {parity['requests_checked']} requests re-run "
        f"standalone, mismatched={len(mismatched)} "
        f"ok={parity['ok']}"
    )
    lines.append(
        f"  checks: parity_ok={checks['parity_ok']} "
        f"conservation_ok={checks['conservation_ok']} "
        f"latency_monotonic={checks['latency_monotonic']} "
        f"coalescing_exercised={checks['coalescing_exercised']} "
        f"all_ok={checks['all_ok']}"
    )
    return "\n".join(lines)
