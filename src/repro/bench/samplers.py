"""Transition-sampler microbenchmark (``repro bench samplers``).

The vectorized sampling layer in :mod:`repro.algorithms.transitions`
replaced two Python loops on the hot path: the per-vertex Vose alias-table
construction (:class:`~repro.algorithms.sampling.PartitionAliasSampler`)
and node2vec's per-candidate ``graph.has_edge`` acceptance test
(:meth:`~repro.algorithms.node2vec.Node2Vec._acceptance_loop`).  Both loop
implementations are retained precisely so this benchmark can keep holding
the vectorized paths to account:

* **speed** — alias construction and node2vec batch stepping must beat the
  loop references by ``REQUIRED_SPEEDUP`` on the standard 10k-vertex
  weighted graph (checked in full mode; ``--quick`` sizes are too small
  for stable ratios and only report);
* **parity** — the vectorized alias build must produce bit-identical
  tables (the bench graph uses integer-valued weights, where the
  flattened cumulative-sum totals are exact), the vectorized acceptance
  bit-identical probabilities, and every weighted sampler an empirical
  next-hop distribution within ``tv_threshold`` total-variation distance
  of the true weight distribution.

Results are written as ``BENCH_samplers.json`` so CI can archive the
numbers per commit and a regression shows up as a diff, not an anecdote.
"""

from __future__ import annotations

import json
import time
from typing import Callable, Dict, Optional, Sequence

import numpy as np

from repro.algorithms.node2vec import Node2Vec
from repro.core.prng import seeded_rng
from repro.algorithms.sampling import PartitionAliasSampler
from repro.algorithms.transitions import (
    SAMPLER_ALIAS,
    SAMPLER_INVERSE,
    SAMPLER_REJECTION,
    SAMPLER_UNIFORM,
    build_alias_tables,
    make_sampler,
)
from repro.graph.csr import CSRGraph
from repro.graph.generators import erdos_renyi
from repro.graph.partition import GraphPartition

#: Speedup floor enforced (full mode) for the two loop-vs-vector pairs.
REQUIRED_SPEEDUP = 5.0

#: Samplers whose sampling throughput + distribution are measured.
SAMPLERS = (SAMPLER_UNIFORM, SAMPLER_ALIAS, SAMPLER_INVERSE, SAMPLER_REJECTION)


def _best_of(fn: Callable[[], object], repeats: int) -> float:
    """Wall-clock seconds of ``fn``, best of ``repeats`` (noise floor)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def make_bench_graph(
    vertices: int = 10_000, edge_factor: int = 8, seed: int = 7
) -> CSRGraph:
    """The benchmark workload: a weighted Erdos-Renyi graph.

    Weights are integer-valued floats in [1, 32): per-vertex weight sums
    are then exact in both the loop and the vectorized alias build, so
    table parity can be asserted bitwise instead of approximately.
    """
    graph = erdos_renyi(vertices, edge_factor * vertices, seed=seed)
    rng = seeded_rng(seed + 1)
    weights = rng.integers(1, 32, size=graph.num_edges).astype(np.float64)
    return CSRGraph(
        graph.offsets, graph.targets, weights, name=f"bench-er-{vertices}"
    )


def _whole_partition(graph: CSRGraph) -> GraphPartition:
    return GraphPartition(
        index=0,
        start=0,
        stop=graph.num_vertices,
        offsets=graph.offsets,
        targets=graph.targets,
        weights=graph.weights,
    )


# ----------------------------------------------------------------------
def bench_alias_build(graph: CSRGraph, repeats: int) -> Dict[str, object]:
    """Loop Vose (per-vertex AliasTable) vs the lock-step vectorized build."""
    offsets, weights = graph.offsets, graph.weights
    loop_s = _best_of(lambda: PartitionAliasSampler(offsets, weights), repeats)
    vec_s = _best_of(lambda: build_alias_tables(offsets, weights), repeats)
    loop_tables = PartitionAliasSampler(offsets, weights)
    prob, alias = build_alias_tables(offsets, weights)
    match = bool(
        np.array_equal(prob, loop_tables.prob_flat)
        and np.array_equal(alias, loop_tables.alias_flat)
    )
    return {
        "loop_seconds": loop_s,
        "vectorized_seconds": vec_s,
        "speedup": loop_s / vec_s if vec_s > 0 else float("inf"),
        "tables_bit_identical": match,
    }


def bench_node2vec_step(
    graph: CSRGraph, batch: int, repeats: int
) -> Dict[str, object]:
    """One node2vec batch step: has_edge-loop acceptance vs binary search."""
    partition = _whole_partition(graph)
    rng = seeded_rng(11)
    vertices = rng.integers(0, graph.num_vertices, size=batch)
    steps = np.ones(batch, dtype=np.int64)
    ids = np.arange(batch, dtype=np.int64)

    def run(use_loop: bool) -> Callable[[], object]:
        algo = Node2Vec(length=80, return_param=2.0, inout_param=0.5)
        algo.start_vertices(graph, batch, seeded_rng(0))
        if use_loop:
            algo._acceptance = algo._acceptance_loop
        # A mid-walk step (prev populated) exercises the full acceptance
        # classification, not the unbiased first hop.  Same prev table for
        # both variants so they face identical rejection work.
        algo._prev[:] = seeded_rng(13).integers(
            0, graph.num_vertices, size=batch
        )

        def step() -> object:
            return algo.step_once(
                vertices, steps, ids, partition, seeded_rng(5), graph
            )

        return step

    loop_s = _best_of(run(use_loop=True), repeats)
    vec_s = _best_of(run(use_loop=False), repeats)

    # Parity: identical acceptance probabilities on one candidate batch.
    algo = Node2Vec(length=80, return_param=2.0, inout_param=0.5)
    prev = rng.integers(0, graph.num_vertices, size=batch)
    cand = rng.integers(0, graph.num_vertices, size=batch)
    prev[:: max(1, batch // 16)] = -1  # include unbiased first-step lanes
    match = bool(
        np.array_equal(
            algo._acceptance(graph, prev, cand),
            algo._acceptance_loop(graph, prev, cand),
        )
    )
    return {
        "batch": batch,
        "loop_seconds": loop_s,
        "vectorized_seconds": vec_s,
        "speedup": loop_s / vec_s if vec_s > 0 else float("inf"),
        "acceptance_bit_identical": match,
    }


def bench_sampling_throughput(
    graph: CSRGraph, batch_sizes: Sequence[int], repeats: int
) -> Dict[str, Dict[str, float]]:
    """Steps/second of each registered first-order sampler per batch size."""
    partition = _whole_partition(graph)
    out: Dict[str, Dict[str, float]] = {}
    for name in SAMPLERS:
        sampler = make_sampler(name)
        sampler.prepare(partition)
        per_batch: Dict[str, float] = {}
        for batch in batch_sizes:
            rng = seeded_rng(17)
            vertices = rng.integers(0, graph.num_vertices, size=batch)
            seconds = _best_of(
                lambda: sampler.sample(partition, vertices, rng), repeats
            )
            per_batch[str(batch)] = batch / seconds if seconds > 0 else 0.0
        out[name] = per_batch
    return out


def _tv_distance(counts: np.ndarray, expected_prob: np.ndarray) -> float:
    total = counts.sum()
    if total == 0:
        return 1.0
    return float(0.5 * np.abs(counts / total - expected_prob).sum())


def bench_distribution_parity(
    graph: CSRGraph, draws: int, tv_threshold: float
) -> Dict[str, Dict[str, object]]:
    """Empirical next-hop distribution of each weighted sampler vs truth.

    Samples ``draws`` transitions from the highest-degree vertex and
    compares the per-edge pick frequencies with the normalized weights.
    """
    partition = _whole_partition(graph)
    degrees = np.diff(graph.offsets)
    v = int(np.argmax(degrees))
    lo, hi = int(graph.offsets[v]), int(graph.offsets[v + 1])
    weights = graph.weights[lo:hi]
    expected = weights / weights.sum()
    neighbors = graph.targets[lo:hi]
    out: Dict[str, Dict[str, object]] = {}
    for name in SAMPLERS:
        if name == SAMPLER_UNIFORM:
            continue  # uniform intentionally ignores weights
        sampler = make_sampler(name)
        sampler.prepare(partition)
        rng = seeded_rng(23)
        vertices = np.full(draws, v, dtype=np.int64)
        picks, dead = sampler.sample(partition, vertices, rng)
        # Multi-edges to the same neighbor are indistinguishable in the
        # picked vertex, so compare at unique-neighbor granularity.
        uniq, inverse = np.unique(neighbors, return_inverse=True)
        expected_by_nbr = np.zeros(uniq.size, dtype=np.float64)
        np.add.at(expected_by_nbr, inverse, expected)
        counts = np.bincount(
            np.searchsorted(uniq, picks), minlength=uniq.size
        )
        tv = _tv_distance(counts, expected_by_nbr)
        out[name] = {
            "vertex": v,
            "degree": int(weights.size),
            "draws": int(draws),
            "dead_ends": int(dead.sum()),
            "tv_distance": tv,
            "tv_threshold": tv_threshold,
            "ok": bool(tv <= tv_threshold and not dead.any()),
        }
    return out


# ----------------------------------------------------------------------
def run_bench(
    vertices: int = 10_000,
    edge_factor: int = 8,
    seed: int = 7,
    quick: bool = False,
) -> Dict[str, object]:
    """Run the full sampler microbenchmark; returns the results payload."""
    if quick:
        repeats, step_batch = 2, 2_000
        batch_sizes = (1_000, 8_000)
        draws, tv_threshold = 20_000, 0.08
    else:
        repeats, step_batch = 5, 16_000
        batch_sizes = (1_000, 8_000, 64_000)
        draws, tv_threshold = 200_000, 0.03
    graph = make_bench_graph(vertices, edge_factor, seed)
    alias = bench_alias_build(graph, repeats)
    node2vec = bench_node2vec_step(graph, step_batch, repeats)
    results: Dict[str, object] = {
        "config": {
            "vertices": graph.num_vertices,
            "edges": graph.num_edges,
            "edge_factor": edge_factor,
            "seed": seed,
            "quick": quick,
            "required_speedup": REQUIRED_SPEEDUP,
        },
        "alias_build": alias,
        "node2vec_step": node2vec,
        "sampling_steps_per_second": bench_sampling_throughput(
            graph, batch_sizes, repeats
        ),
        "distribution_parity": bench_distribution_parity(
            graph, draws, tv_threshold
        ),
    }
    parity_ok = bool(
        alias["tables_bit_identical"]
        and node2vec["acceptance_bit_identical"]
        and all(
            entry["ok"] for entry in results["distribution_parity"].values()
        )
    )
    speedup_ok = bool(
        alias["speedup"] >= REQUIRED_SPEEDUP
        and node2vec["speedup"] >= REQUIRED_SPEEDUP
    )
    results["checks"] = {
        "parity_ok": parity_ok,
        "speedup_ok": speedup_ok,
        # quick mode uses sizes too small for stable timing ratios; the
        # speedup gate is only meaningful at full scale.
        "speedup_enforced": not quick,
        "all_ok": parity_ok and (speedup_ok or quick),
    }
    return results


def write_results(results: Dict[str, object], path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")


def format_summary(results: Dict[str, object]) -> str:
    """Human-readable digest of one benchmark run."""
    alias = results["alias_build"]
    n2v = results["node2vec_step"]
    checks = results["checks"]
    lines = [
        "sampler microbenchmark "
        f"({results['config']['vertices']} vertices, "
        f"{results['config']['edges']} edges)",
        f"  alias build   : {alias['loop_seconds'] * 1e3:8.2f} ms loop "
        f"-> {alias['vectorized_seconds'] * 1e3:8.2f} ms vectorized "
        f"({alias['speedup']:.1f}x)",
        f"  node2vec step : {n2v['loop_seconds'] * 1e3:8.2f} ms loop "
        f"-> {n2v['vectorized_seconds'] * 1e3:8.2f} ms vectorized "
        f"({n2v['speedup']:.1f}x)",
    ]
    for name, per_batch in sorted(
        results["sampling_steps_per_second"].items()
    ):
        rates = ", ".join(
            f"{batch}: {rate:.3g}/s" for batch, rate in sorted(
                per_batch.items(), key=lambda kv: int(kv[0])
            )
        )
        lines.append(f"  {name:13s} : {rates}")
    for name, entry in sorted(results["distribution_parity"].items()):
        lines.append(
            f"  parity {name:10s}: tv={entry['tv_distance']:.4f} "
            f"(<= {entry['tv_threshold']}) "
            f"{'ok' if entry['ok'] else 'FAIL'}"
        )
    lines.append(
        f"  checks: parity_ok={checks['parity_ok']} "
        f"speedup_ok={checks['speedup_ok']} "
        f"(enforced={checks['speedup_enforced']})"
    )
    return "\n".join(lines)
