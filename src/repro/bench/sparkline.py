"""Unicode sparklines for benchmark series.

The figure-style benches print per-iteration or per-density series; a
sparkline under the table makes the curve's shape visible in plain
terminal output (no plotting dependencies).
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

_BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: Optional[int] = None) -> str:
    """Render a sequence as a one-line block-character sparkline.

    ``width`` downsamples long series by bucket-averaging.  Non-finite
    values render as spaces.
    """
    data = [float(v) for v in values]
    if not data:
        return ""
    if width is not None:
        if width < 1:
            raise ValueError("width must be >= 1")
        if len(data) > width:
            bucket = len(data) / width
            data = [
                _mean(data[int(i * bucket) : max(int((i + 1) * bucket), int(i * bucket) + 1)])
                for i in range(width)
            ]
    finite = [v for v in data if math.isfinite(v)]
    if not finite:
        return " " * len(data)
    low, high = min(finite), max(finite)
    span = high - low
    chars = []
    for v in data:
        if not math.isfinite(v):
            chars.append(" ")
        elif span == 0:
            chars.append(_BLOCKS[3])
        else:
            idx = int((v - low) / span * (len(_BLOCKS) - 1))
            chars.append(_BLOCKS[idx])
    return "".join(chars)


def _mean(chunk: Sequence[float]) -> float:
    finite = [v for v in chunk if math.isfinite(v)]
    return sum(finite) / len(finite) if finite else float("nan")


def series_line(label: str, values: Sequence[float], width: int = 48) -> str:
    """``label  ▁▃▆█...  [min .. max]`` for bench output."""
    finite = [float(v) for v in values if math.isfinite(float(v))]
    if not finite:
        return f"{label}: (empty)"
    return (
        f"{label}: {sparkline(values, width=width)}  "
        f"[{min(finite):.3g} .. {max(finite):.3g}]"
    )
