"""Multi-device sharding scaling benchmark (``repro bench devices``).

The sharded engine (:mod:`repro.core.cluster`) claims that splitting the
range-partitioned graph across N simulated devices — each with its own
timeline, graph pool and walk pool, exchanging walks over P2P channels —
shortens the simulated makespan: shards compute concurrently and only
cross-partition walk migration serializes on the peer links.

This benchmark holds that claim to account on a fixed RMAT workload:

* **scaling** — the same seeded run at 1, 2 and 4 devices; the 4-device
  simulated makespan must beat single-device by ``REQUIRED_SPEEDUP``
  (checked in full mode; ``--quick`` workloads are too small for stable
  ratios and only report);
* **conservation** — every run executes under the runtime sanitizer
  (:class:`~repro.analysis.Sanitizer`) and must finish clean: no walk
  lost, duplicated, or left in flight on a peer channel, and identical
  per-device invariants to the single-device engine.

Results are written as ``BENCH_devices.json`` so CI can archive the
numbers per commit and a scaling regression shows up as a diff, not an
anecdote.
"""

from __future__ import annotations

import json
from typing import Dict, Optional

from repro.algorithms import PageRank
from repro.bench.harness import bench_engine_config
from repro.core.engine import LightTrafficEngine
from repro.graph.generators import rmat

#: Simulated-speedup floor enforced (full mode) at DEVICE_COUNTS[-1].
REQUIRED_SPEEDUP = 1.5

#: Shard counts measured, ascending; the first must be 1 (the baseline).
DEVICE_COUNTS = (1, 2, 4)


def run_bench(
    scale: int = 12,
    edge_factor: int = 8,
    walks: Optional[int] = None,
    seed: int = 7,
    quick: bool = False,
) -> Dict[str, object]:
    """Run the device-scaling benchmark; returns the results payload."""
    if quick:
        scale = min(scale, 10)
    graph = rmat(scale=scale, edge_factor=edge_factor, seed=seed)
    if walks is None:
        walks = 600 if quick else 2 * graph.num_vertices
    length = 8 if quick else 16
    runs: Dict[str, Dict[str, object]] = {}
    base_time: Optional[float] = None
    conservation_ok = True
    for devices in DEVICE_COUNTS:
        config = bench_engine_config(seed, quick, devices=devices)
        stats = LightTrafficEngine(
            graph, PageRank(length=length), config
        ).run(walks)
        sanitizer = stats.sanitizer or {}
        clean = bool(sanitizer.get("clean", False))
        conservation_ok = conservation_ok and clean
        if devices == 1:
            base_time = stats.total_time
        assert base_time is not None
        runs[str(devices)] = {
            "devices": devices,
            "total_time": stats.total_time,
            "speedup": (
                base_time / stats.total_time
                if stats.total_time > 0
                else float("inf")
            ),
            "iterations": stats.iterations,
            "walks_migrated": stats.walks_migrated,
            "device_times": stats.device_times or {},
            "sanitizer_clean": clean,
            "sanitizer_checks": sanitizer.get("checks", 0),
        }
    top = runs[str(DEVICE_COUNTS[-1])]
    speedup_ok = bool(top["speedup"] >= REQUIRED_SPEEDUP)
    results: Dict[str, object] = {
        "config": {
            "scale": scale,
            "edge_factor": edge_factor,
            "vertices": graph.num_vertices,
            "edges": graph.num_edges,
            "walks": walks,
            "walk_length": length,
            "seed": seed,
            "quick": quick,
            "device_counts": list(DEVICE_COUNTS),
            "required_speedup": REQUIRED_SPEEDUP,
        },
        "runs": runs,
        "checks": {
            "conservation_ok": conservation_ok,
            "speedup_ok": speedup_ok,
            # quick mode shrinks the workload below where shard overlap
            # amortizes; the speedup gate is only meaningful at full scale.
            "speedup_enforced": not quick,
            "all_ok": conservation_ok and (speedup_ok or quick),
        },
    }
    return results


def write_results(results: Dict[str, object], path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")


def format_summary(results: Dict[str, object]) -> str:
    """Human-readable digest of one benchmark run."""
    config = results["config"]
    checks = results["checks"]
    lines = [
        "multi-device scaling benchmark "
        f"(rmat scale {config['scale']}, {config['vertices']} vertices, "
        f"{config['edges']} edges, {config['walks']} walks)"
    ]
    for key, run in sorted(
        results["runs"].items(), key=lambda kv: int(kv[0])
    ):
        lines.append(
            f"  {run['devices']} device(s): "
            f"t={run['total_time'] * 1e3:8.3f} ms "
            f"speedup={run['speedup']:.2f}x "
            f"migrated={run['walks_migrated']:6d} "
            f"sanitizer={'clean' if run['sanitizer_clean'] else 'DIRTY'}"
        )
    lines.append(
        f"  checks: conservation_ok={checks['conservation_ok']} "
        f"speedup_ok={checks['speedup_ok']} "
        f"(>= {config['required_speedup']}x at "
        f"{config['device_counts'][-1]} devices, "
        f"enforced={checks['speedup_enforced']})"
    )
    return "\n".join(lines)
