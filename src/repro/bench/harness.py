"""Experiment runners — one function per paper table/figure.

Each runner returns a list of structured row dicts; the thin
``benchmarks/bench_*.py`` wrappers time them with pytest-benchmark and print
the paper-style tables.  All runners honor ``REPRO_SCALE``.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.algorithms import PageRank, PersonalizedPageRank, UniformSampling
from repro.algorithms.base import RandomWalkAlgorithm
from repro.baselines import (
    FlashMobEngine,
    MultiRoundEngine,
    NextDoorEngine,
    NextDoorConfig,
    SubwayConfig,
    SubwayEngine,
    ThunderRWEngine,
    UVMConfig,
    UVMEngine,
)
from repro.bench.workloads import (
    DATASETS,
    RESTART_PROB,
    WALK_LENGTH,
    SimPlatform,
    default_platform,
    load_dataset,
    standard_config,
    standard_walks,
)
from repro.core.config import (
    COPY_ADAPTIVE,
    COPY_EXPLICIT,
    COPY_ZERO,
    EngineConfig,
)
from repro.core.engine import LightTrafficEngine
from repro.core.events import EventBus
from repro.core.metrics import MetricsCollector
from repro.core.stats import (
    CAT_GRAPH_LOAD,
    CAT_KERNEL_OTHER,
    CAT_RESHUFFLE,
    CAT_SUBGRAPH,
    CAT_WALK_EVICT,
    CAT_WALK_LOAD,
    CAT_WALK_UPDATE,
    CAT_ZERO_COPY,
    RunStats,
)
from repro.gpu.kernels import DIRECT_WRITE, TWO_LEVEL
from repro.graph.partition import partition_by_range
from repro.core.theory import transfer_bound_throughput
from repro.walks.state import index_bytes_per_walk

ALGORITHM_FACTORIES: Dict[str, Callable[[], RandomWalkAlgorithm]] = {
    "uniform": lambda: UniformSampling(length=WALK_LENGTH),
    "pagerank": lambda: PageRank(length=WALK_LENGTH, restart_prob=RESTART_PROB),
    "ppr": lambda: PersonalizedPageRank(stop_prob=RESTART_PROB),
}


def make_algorithm(name: str) -> RandomWalkAlgorithm:
    try:
        return ALGORITHM_FACTORIES[name]()
    except KeyError:
        raise KeyError(f"unknown algorithm {name!r}") from None


def bench_engine_config(
    seed: int, quick: bool, *, devices: int = 1, **overrides: object
) -> EngineConfig:
    """Shared engine config for the ``repro bench`` suites.

    Partitions are kept small relative to the benchmark graphs so every
    shard owns several (migration, failure reassignment and weighted
    splits all need partitions to move) and pools are sized below the
    workload so the eviction and preemptive paths stay exercised.
    Suite-specific knobs (elastic specs, execution backend, ...) come in
    as ``overrides`` and may also replace any of the defaults.
    """
    config: Dict[str, object] = dict(
        partition_bytes=2048 if quick else 4096,
        batch_walks=64 if quick else 256,
        graph_pool_partitions=4,
        walk_pool_walks=512 if quick else 4096,
        seed=seed,
        devices=devices,
        sanitize=True,
    )
    config.update(overrides)
    return EngineConfig(**config)  # type: ignore[arg-type]


# ----------------------------------------------------------------------
# Table II — dataset statistics
# ----------------------------------------------------------------------
def table2_dataset_stats() -> List[dict]:
    """Synthetic twins side by side with the paper's Table II."""
    rows = []
    for name, spec in DATASETS.items():
        graph = load_dataset(name)
        rows.append(
            {
                "dataset": name,
                "paper": spec.paper_name,
                "V": graph.num_vertices,
                "E": graph.num_edges,
                "csr_mb": graph.csr_bytes / 1e6,
                "d_max": graph.max_degree,
                "paper_V": spec.paper_vertices,
                "paper_E": spec.paper_edges,
                "paper_csr_gb": spec.paper_csr_gb,
                "scale": spec.paper_vertices / graph.num_vertices,
            }
        )
    return rows


# ----------------------------------------------------------------------
# Fig 3 — active vertex/edge ratios under the Subway baseline
# ----------------------------------------------------------------------
def fig3_active_ratio(
    datasets: Sequence[str] = ("fs-sim", "uk-sim"),
    sample_every: int = 8,
    platform: Optional[SimPlatform] = None,
) -> List[dict]:
    platform = platform or default_platform()
    rows = []
    for name in datasets:
        graph = load_dataset(name)
        engine = SubwayEngine(
            graph,
            make_algorithm("pagerank"),
            SubwayConfig(
                device=platform.device,
                interconnect=platform.pcie3,
                calibration=platform.calibration,
                gpu_memory_bytes=platform.gpu_memory_bytes,
            ),
        )
        engine.run(standard_walks(graph))
        for record in engine.records:
            if record.iteration % sample_every not in (0, 1):
                continue
            rows.append(
                {
                    "dataset": name,
                    "iteration": record.iteration,
                    "active_vertex_pct": 100 * record.active_vertex_fraction,
                    "active_edge_pct": 100 * record.active_edge_fraction,
                    "used_edge_pct": 100 * record.used_edge_fraction,
                }
            )
    return rows


# ----------------------------------------------------------------------
# Table I — Subway time breakdown
# ----------------------------------------------------------------------
def table1_subway_breakdown(
    datasets: Sequence[str] = ("uk-sim", "fs-sim"),
    platform: Optional[SimPlatform] = None,
) -> List[dict]:
    platform = platform or default_platform()
    rows = []
    for name in datasets:
        graph = load_dataset(name)
        engine = SubwayEngine(
            graph,
            make_algorithm("pagerank"),
            SubwayConfig(
                device=platform.device,
                interconnect=platform.pcie3,
                calibration=platform.calibration,
                gpu_memory_bytes=platform.gpu_memory_bytes,
            ),
        )
        stats = engine.run(standard_walks(graph))
        total = stats.total_time
        rows.append(
            {
                "dataset": name,
                "computation_pct": 100 * stats.time(CAT_WALK_UPDATE) / total,
                "transmission_pct": 100 * stats.time(CAT_GRAPH_LOAD) / total,
                "subgraph_pct": 100 * stats.time(CAT_SUBGRAPH) / total,
            }
        )
    return rows


# ----------------------------------------------------------------------
# Fig 9 — comparison with CPU systems (+ LightTraffic on PCIe3/PCIe4)
# ----------------------------------------------------------------------
def fig9_cpu_comparison(
    datasets: Optional[Sequence[str]] = None,
    algorithms: Sequence[str] = ("uniform", "pagerank", "ppr"),
    platform: Optional[SimPlatform] = None,
) -> List[dict]:
    platform = platform or default_platform()
    datasets = list(datasets or DATASETS)
    rows = []
    for name in datasets:
        graph = load_dataset(name)
        walks = standard_walks(graph)
        for algo_name in algorithms:
            runs: Dict[str, Optional[RunStats]] = {}
            runs["thunderrw"] = ThunderRWEngine(
                graph, make_algorithm(algo_name), cpu=platform.cpu
            ).run(walks)
            if make_algorithm(algo_name).fixed_length:
                runs["flashmob"] = FlashMobEngine(
                    graph, make_algorithm(algo_name), cpu=platform.cpu
                ).run(walks)
            else:
                runs["flashmob"] = None  # FlashMob: fixed-length only (§IV-B)
            for link, label in (("pcie3", "lt-pcie3"), ("pcie4", "lt-pcie4")):
                config = standard_config(graph, platform, interconnect=link)
                runs[label] = LightTrafficEngine(
                    graph, make_algorithm(algo_name), config
                ).run(walks)
            for system, stats in runs.items():
                rows.append(
                    {
                        "dataset": name,
                        "algorithm": algo_name,
                        "system": system,
                        "throughput": stats.throughput if stats else float("nan"),
                        "total_time": stats.total_time if stats else float("nan"),
                        "available": stats is not None,
                    }
                )
    return rows


def fig9_speedups(rows: List[dict]) -> List[dict]:
    """LT(PCIe4) speedup over each CPU system, per dataset x algorithm."""
    by_key: Dict[tuple, Dict[str, dict]] = {}
    for row in rows:
        by_key.setdefault((row["dataset"], row["algorithm"]), {})[
            row["system"]
        ] = row
    out = []
    for (dataset, algo), group in by_key.items():
        lt = group.get("lt-pcie4")
        for cpu_system in ("flashmob", "thunderrw"):
            base = group.get(cpu_system)
            if lt is None or base is None or not base["available"]:
                continue
            out.append(
                {
                    "dataset": dataset,
                    "algorithm": algo,
                    "vs": cpu_system,
                    "speedup": base["total_time"] / lt["total_time"],
                }
            )
    return out


# ----------------------------------------------------------------------
# Fig 10 — comparison with Subway
# ----------------------------------------------------------------------
def fig10_subway_comparison(
    datasets: Sequence[str] = ("fs-sim", "uk-sim"),
    algorithms: Sequence[str] = ("pagerank", "ppr"),
    platform: Optional[SimPlatform] = None,
) -> List[dict]:
    platform = platform or default_platform()
    rows = []
    for name in datasets:
        graph = load_dataset(name)
        walks = standard_walks(graph)
        for algo_name in algorithms:
            subway = SubwayEngine(
                graph,
                make_algorithm(algo_name),
                SubwayConfig(
                    device=platform.device,
                    interconnect=platform.pcie3,
                    calibration=platform.calibration,
                    gpu_memory_bytes=platform.gpu_memory_bytes,
                ),
            ).run(walks)
            lt = LightTrafficEngine(
                graph,
                make_algorithm(algo_name),
                standard_config(graph, platform, interconnect="pcie3"),
            ).run(walks)
            rows.append(
                {
                    "dataset": name,
                    "algorithm": algo_name,
                    "total_speedup": subway.total_time / lt.total_time,
                    "compute_speedup": (
                        subway.compute_time / max(lt.compute_time, 1e-12)
                    ),
                    "transmission_speedup": (
                        subway.transmission_time
                        / max(lt.transmission_time, 1e-12)
                    ),
                }
            )
    return rows


# ----------------------------------------------------------------------
# Fig 11 — comparison with NextDoor (in-GPU-memory)
# ----------------------------------------------------------------------
def fig11_nextdoor(
    datasets: Sequence[str] = ("lj-sim", "or-sim", "tw-sim"),
    algorithms: Sequence[str] = ("uniform", "pagerank"),
    platform: Optional[SimPlatform] = None,
) -> List[dict]:
    platform = platform or default_platform()
    rows = []
    for name in datasets:
        graph = load_dataset(name)
        walks = standard_walks(graph)
        for algo_name in algorithms:
            nextdoor = NextDoorEngine(
                graph,
                make_algorithm(algo_name),
                NextDoorConfig(
                    device=platform.device,
                    interconnect=platform.pcie3,
                    calibration=platform.calibration,
                ),
            ).run(walks)
            lt = LightTrafficEngine(
                graph,
                make_algorithm(algo_name),
                standard_config(graph, platform, interconnect="pcie3"),
            ).run(walks)
            rows.append(
                {
                    "dataset": name,
                    "algorithm": algo_name,
                    "lt_throughput": lt.throughput,
                    "nextdoor_throughput": nextdoor.throughput,
                    "speedup": nextdoor.total_time / lt.total_time,
                }
            )
    return rows


# ----------------------------------------------------------------------
# Fig 12 — reshuffle: two-level caching vs direct write
# ----------------------------------------------------------------------
def fig12_reshuffle(
    partition_kib: Sequence[int] = (32, 64, 128, 256),
    dataset: str = "uk-sim",
    platform: Optional[SimPlatform] = None,
) -> List[dict]:
    platform = platform or default_platform()
    graph = load_dataset(dataset)
    walks = standard_walks(graph)
    rows = []
    for kib in partition_kib:
        per_mode = {}
        for mode in (DIRECT_WRITE, TWO_LEVEL):
            config = standard_config(
                graph,
                platform,
                partition_bytes=kib * 1024,
                reshuffle_mode=mode,
            )
            stats = LightTrafficEngine(
                graph, make_algorithm("pagerank"), config
            ).run(walks)
            per_mode[mode] = stats
        rows.append(
            {
                "partition_kib": kib,
                "direct_reshuffle_time": per_mode[DIRECT_WRITE].time(
                    CAT_RESHUFFLE
                ),
                "two_level_reshuffle_time": per_mode[TWO_LEVEL].time(
                    CAT_RESHUFFLE
                ),
                "reduction_pct": 100
                * (
                    1
                    - per_mode[TWO_LEVEL].time(CAT_RESHUFFLE)
                    / max(per_mode[DIRECT_WRITE].time(CAT_RESHUFFLE), 1e-12)
                ),
            }
        )
    return rows


# ----------------------------------------------------------------------
# Fig 13 / Table III — pipeline & scheduling ablation
# ----------------------------------------------------------------------
SCHEDULER_VARIANTS = {
    "baseline": dict(preemptive=False, selective=False),
    "ps": dict(preemptive=True, selective=False),
    "ss": dict(preemptive=False, selective=True),
    "ps+ss": dict(preemptive=True, selective=True),
}


def fig13_pipeline(
    pool_partitions: Sequence[int] = (25, 50, 75, 100),
    dataset: str = "uk-sim",
    platform: Optional[SimPlatform] = None,
) -> List[dict]:
    platform = platform or default_platform()
    graph = load_dataset(dataset)
    walks = standard_walks(graph)
    rows = []
    for m_g in pool_partitions:
        for variant, toggles in SCHEDULER_VARIANTS.items():
            config = standard_config(
                graph,
                platform,
                graph_pool_partitions=m_g,
                copy_mode=COPY_EXPLICIT,
                **toggles,
            )
            stats = LightTrafficEngine(
                graph, make_algorithm("pagerank"), config
            ).run(walks)
            rows.append(
                {
                    "cached_partitions": m_g,
                    "variant": variant,
                    "total_time": stats.total_time,
                    "iterations": stats.iterations,
                    "explicit_copies": stats.explicit_copies,
                    "hit_rate_pct": 100 * stats.graph_pool_hit_rate,
                }
            )
    return rows


def table3_scheduling(
    pool_partitions: int = 100,
    dataset: str = "uk-sim",
    platform: Optional[SimPlatform] = None,
) -> List[dict]:
    rows = fig13_pipeline((pool_partitions,), dataset, platform)
    return [
        {
            "variant": row["variant"],
            "iterations": row["iterations"],
            "explicit_copies": row["explicit_copies"],
            "hit_rate_pct": row["hit_rate_pct"],
        }
        for row in rows
    ]


# ----------------------------------------------------------------------
# Fig 14 — adaptive scheduling with zero copy
# ----------------------------------------------------------------------
def fig14_adaptive(
    datasets: Sequence[str] = ("uk-sim", "yh-sim", "cw-sim"),
    algorithms: Sequence[str] = ("pagerank", "ppr"),
    platform: Optional[SimPlatform] = None,
) -> List[dict]:
    platform = platform or default_platform()
    rows = []
    for name in datasets:
        graph = load_dataset(name)
        walks = standard_walks(graph)
        for algo_name in algorithms:
            times = {}
            for mode in (COPY_EXPLICIT, COPY_ZERO, COPY_ADAPTIVE):
                config = standard_config(graph, platform, copy_mode=mode)
                stats = LightTrafficEngine(
                    graph, make_algorithm(algo_name), config
                ).run(walks)
                times[mode] = stats.total_time
            rows.append(
                {
                    "dataset": name,
                    "algorithm": algo_name,
                    "zero_copy_speedup": times[COPY_EXPLICIT] / times[COPY_ZERO],
                    "adaptive_speedup": (
                        times[COPY_EXPLICIT] / times[COPY_ADAPTIVE]
                    ),
                }
            )
    return rows


# ----------------------------------------------------------------------
# Fig 15 — memory pool size sweep (per-op breakdown)
# ----------------------------------------------------------------------
def fig15_memory_size(
    walk_pool_sizes: Sequence[int] = (24_000, 49_000, 98_000, 195_000),
    pool_partitions: Sequence[int] = (25, 50, 100),
    dataset: str = "uk-sim",
    platform: Optional[SimPlatform] = None,
) -> List[dict]:
    platform = platform or default_platform()
    graph = load_dataset(dataset)
    # The paper uses 800M total walks and walk length 10 here.
    num_walks = 195_000 if graph.num_vertices * 8 > 195_000 else 4 * graph.num_vertices
    algorithm_factory = lambda: PageRank(length=10)  # noqa: E731
    rows = []
    for m_g in pool_partitions:
        for m_w in walk_pool_sizes:
            config = standard_config(
                graph,
                platform,
                graph_pool_partitions=m_g,
                walk_pool_walks=m_w,
            )
            stats = LightTrafficEngine(graph, algorithm_factory(), config).run(
                num_walks
            )
            rows.append(
                {
                    "cached_partitions": m_g,
                    "cached_walks": m_w,
                    "graph_load": stats.time(CAT_GRAPH_LOAD),
                    "walk_load": stats.time(CAT_WALK_LOAD),
                    "zero_copy": stats.time(CAT_ZERO_COPY),
                    "walk_evict": stats.time(CAT_WALK_EVICT),
                    "computing": stats.compute_time,
                    "total_time": stats.total_time,
                }
            )
    return rows


# ----------------------------------------------------------------------
# Fig 16 — multi-round baseline slowdown
# ----------------------------------------------------------------------
def fig16_multiround(
    pool_partitions: Sequence[int] = (25, 50, 100),
    rounds_cases: Sequence[int] = (8, 4, 2),
    dataset: str = "uk-sim",
    platform: Optional[SimPlatform] = None,
) -> List[dict]:
    platform = platform or default_platform()
    graph = load_dataset(dataset)
    num_walks = 195_000  # scaled twin of the paper's 800M walks
    algorithm_factory = lambda: PageRank(length=10)  # noqa: E731
    rows = []
    for m_g in pool_partitions:
        for rounds in rounds_cases:
            m_w = math.ceil(num_walks / rounds)
            lt_config = standard_config(
                graph, platform, graph_pool_partitions=m_g, walk_pool_walks=m_w
            )
            lt = LightTrafficEngine(graph, algorithm_factory(), lt_config).run(
                num_walks
            )
            mr = MultiRoundEngine(
                graph,
                algorithm_factory,
                lt_config,
                rounds=rounds,
            ).run(num_walks)
            rows.append(
                {
                    "cached_partitions": m_g,
                    "rounds": rounds,
                    "walks_per_round": m_w,
                    "multiround_time": mr.total_time,
                    "lighttraffic_time": lt.total_time,
                    "slowdown": mr.total_time / lt.total_time,
                }
            )
    return rows


# ----------------------------------------------------------------------
# Fig 17 — walk computing time vs partition size
# ----------------------------------------------------------------------
def fig17_partition_size(
    partition_kib: Sequence[int] = (32, 64, 128, 256),
    dataset: str = "uk-sim",
    platform: Optional[SimPlatform] = None,
) -> List[dict]:
    platform = platform or default_platform()
    graph = load_dataset(dataset)
    walks = standard_walks(graph)
    rows = []
    for kib in partition_kib:
        config = standard_config(
            graph, platform, partition_bytes=kib * 1024
        )
        stats = LightTrafficEngine(
            graph, make_algorithm("pagerank"), config
        ).run(walks)
        rows.append(
            {
                "partition_kib": kib,
                "num_partitions": stats.num_partitions,
                "walk_updating": stats.time(CAT_WALK_UPDATE),
                "walk_reshuffling": stats.time(CAT_RESHUFFLE),
                "others": stats.time(CAT_KERNEL_OTHER),
                "computing_total": stats.compute_time,
            }
        )
    return rows


# ----------------------------------------------------------------------
# Fig 18 — scalability vs walk density
# ----------------------------------------------------------------------
def fig18_scalability(
    densities: Sequence[float] = (1.0 / 64, 1.0 / 16, 1.0 / 4, 1.0, 4.0),
    datasets: Sequence[str] = ("tw-sim", "cw-sim"),
    walk_length: int = 8,
    platform: Optional[SimPlatform] = None,
) -> List[dict]:
    """Throughput vs walk density under a tight memory constraint.

    The paper restricts both pools to 1 GB; scaled here to 1 GB * 2/4096 =
    512 KiB each.  Theory (§IV-D): throughput = (B / S_w) / (1 + 1/D).
    """
    platform = platform or default_platform()
    pool_bytes = max(4 * platform.partition_bytes, int(512 * 1024))
    s_w = index_bytes_per_walk(False)
    bandwidth = platform.pcie3.bandwidth
    rows = []
    for name in datasets:
        graph = load_dataset(name)
        partitioned = partition_by_range(graph, platform.partition_bytes)
        num_partitions = partitioned.num_partitions
        for density in densities:
            walks_per_partition = density * platform.partition_bytes / s_w
            num_walks = int(walks_per_partition * num_partitions)
            num_walks = max(num_walks, 1024)
            if num_walks > 6_000_000:
                continue  # keep the sweep tractable at full scale
            config = standard_config(
                graph,
                platform,
                graph_pool_partitions=max(2, pool_bytes // platform.partition_bytes),
                walk_pool_walks=max(2048, pool_bytes // s_w),
            )
            stats = LightTrafficEngine(
                graph, PageRank(length=walk_length), config
            ).run(num_walks)
            theory = transfer_bound_throughput(bandwidth, s_w, density)
            rows.append(
                {
                    "dataset": name,
                    "density": density,
                    "num_walks": num_walks,
                    "throughput": stats.throughput,
                    "theory_throughput": theory,
                }
            )
    return rows


# ----------------------------------------------------------------------
# Metrics observatory — every system observed through one event bus
# ----------------------------------------------------------------------
def metrics_observatory(
    dataset: str = "lj-sim",
    algorithm: str = "pagerank",
    platform: Optional[SimPlatform] = None,
) -> List[dict]:
    """Run each system with a :class:`MetricsCollector` on a shared-schema bus.

    One observation layer covers every engine: the partition-based
    LightTraffic engine, the Subway and UVM baselines, and the multi-round
    variant all publish the same event vocabulary, so a single collector
    yields comparable serve-mode/preemption/eviction columns per system.
    """
    platform = platform or default_platform()
    graph = load_dataset(dataset)
    walks = standard_walks(graph)

    def build(system: str) -> "Tuple[Any, MetricsCollector]":
        bus = EventBus()
        metrics = MetricsCollector()
        if system == "lighttraffic":
            engine = LightTrafficEngine(
                graph,
                make_algorithm(algorithm),
                standard_config(graph, platform),
                bus=bus,
                metrics=metrics,
            )
        elif system == "subway":
            engine = SubwayEngine(
                graph,
                make_algorithm(algorithm),
                SubwayConfig(
                    device=platform.device,
                    interconnect=platform.pcie3,
                    calibration=platform.calibration,
                    gpu_memory_bytes=platform.gpu_memory_bytes,
                ),
                bus=bus,
                metrics=metrics,
            )
        elif system == "uvm":
            engine = UVMEngine(
                graph,
                make_algorithm(algorithm),
                UVMConfig(
                    device=platform.device,
                    interconnect=platform.pcie3,
                    calibration=platform.calibration,
                    gpu_memory_bytes=platform.gpu_memory_bytes,
                ),
                bus=bus,
                metrics=metrics,
            )
        else:  # multiround
            engine = MultiRoundEngine(
                graph,
                ALGORITHM_FACTORIES[algorithm],
                standard_config(graph, platform),
                rounds=2,
                bus=bus,
                metrics=metrics,
            )
        return engine, metrics

    rows = []
    for system in ("lighttraffic", "subway", "uvm", "multiround"):
        engine, metrics = build(system)
        stats = engine.run(walks)
        modes = metrics.serve_mode_totals()
        rows.append(
            {
                "dataset": dataset,
                "algorithm": algorithm,
                "system": system,
                "total_time": stats.total_time,
                "throughput": stats.throughput,
                "iterations": metrics.iterations,
                "served_hit": modes["hit"],
                "served_explicit": modes["explicit"],
                "served_zero_copy": modes["zero_copy"],
                "preemption_pct": 100 * metrics.preemption_fraction,
                "batches_evicted": sum(
                    p.batches_evicted for p in metrics.partitions.values()
                ),
            }
        )
    return rows
