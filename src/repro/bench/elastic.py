"""Elastic-cluster benchmark (``repro bench elastic``).

The elastic refactor of the sharded engine (:mod:`repro.core.cluster`)
makes two claims this benchmark holds to account on a fixed RMAT
workload, both under the runtime sanitizer:

* **heterogeneity** — on a skewed 4-device cluster (per-device compute
  and peer-link capability 2x/1x/1x/0.5x), the byte-balanced assignment
  *weighted by bottleneck capability* must beat the
  homogeneous-assumption (uniform) assignment: uniform gives the 0.5x
  straggler a full share of the graph and the makespan stretches behind
  its half-rate links;
* **failure recovery** — a mid-run single-device failure (injected via
  :class:`~repro.core.config.FailureSchedule`) must complete with zero
  lost walks and bounded slowdown: every pending walk of the dead shard
  is recovered onto survivors, the fixed-length walk workload still
  executes exactly ``walks x length`` steps, and the makespan stays
  within ``MAX_FAILURE_SLOWDOWN`` of the no-failure baseline.

Results are written as ``BENCH_elastic.json`` so CI can archive the
numbers per commit and a recovery or skew regression shows up as a
diff, not an anecdote.
"""

from __future__ import annotations

import json
from typing import Dict, Optional, Tuple

from repro.algorithms import UniformSampling
from repro.bench.harness import bench_engine_config
from repro.core.config import EngineConfig, FailureSchedule
from repro.core.engine import LightTrafficEngine
from repro.core.stats import RunStats
from repro.gpu.cluster import ClusterDeviceSpec
from repro.graph.generators import rmat

#: Device count of every benchmark cluster.
NUM_DEVICES = 4

#: Skewed per-device capability for the heterogeneity scenario: device 0
#: is a double-rate part, device 3 a half-rate one — compute and peer
#: link scale together, as with a real mixed-generation GPU pool.
CAPABILITY_SKEW = (2.0, 1.0, 1.0, 0.5)

#: Makespan floor (full mode): aware assignment vs uniform assignment.
REQUIRED_HETERO_SPEEDUP = 1.05

#: Makespan ceiling (full mode): failure run vs no-failure baseline.
#: Losing one of four shards costs ~4/3 ideal; the bound leaves room
#: for the recovery handoff and the survivors' colder pools.
MAX_FAILURE_SLOWDOWN = 2.5


def _skewed_specs() -> Tuple[ClusterDeviceSpec, ...]:
    return tuple(
        ClusterDeviceSpec(
            name=f"gpu{idx}", compute_scale=rate, link_scale=rate
        )
        for idx, rate in enumerate(CAPABILITY_SKEW)
    )


def _bench_config(seed: int, quick: bool, **overrides: object) -> EngineConfig:
    """Shared engine config; scenarios vary only the elastic knobs."""
    return bench_engine_config(
        seed, quick, devices=NUM_DEVICES, **overrides
    )


def _run_entry(
    stats: RunStats, walks: int, length: int
) -> Dict[str, object]:
    sanitizer = stats.sanitizer or {}
    return {
        "total_time": stats.total_time,
        "iterations": stats.iterations,
        "total_steps": stats.total_steps,
        "expected_steps": walks * length,
        "walks_migrated": stats.walks_migrated,
        "device_failures": stats.device_failures,
        "walks_recovered": stats.walks_recovered,
        "rebalances": stats.rebalances,
        "walks_rebalanced": stats.walks_rebalanced,
        "device_times": stats.device_times or {},
        "sanitizer_clean": bool(sanitizer.get("clean", False)),
        "sanitizer_checks": sanitizer.get("checks", 0),
    }


def run_bench(
    scale: int = 12,
    edge_factor: int = 8,
    walks: Optional[int] = None,
    seed: int = 7,
    quick: bool = False,
) -> Dict[str, object]:
    """Run the elastic-cluster benchmark; returns the results payload."""
    if quick:
        scale = min(scale, 10)
    graph = rmat(scale=scale, edge_factor=edge_factor, seed=seed)
    if walks is None:
        walks = 600 if quick else 2 * graph.num_vertices
    length = 8 if quick else 16

    def run(config: EngineConfig) -> RunStats:
        algorithm = UniformSampling(length=length)
        return LightTrafficEngine(graph, algorithm, config).run(walks)

    # -- scenario A: skewed specs, aware vs uniform assignment ---------
    aware = run(
        _bench_config(
            seed, quick,
            device_specs=_skewed_specs(),
            heterogeneous_assignment=True,
        )
    )
    uniform = run(
        _bench_config(
            seed, quick,
            device_specs=_skewed_specs(),
            heterogeneous_assignment=False,
        )
    )
    hetero_speedup = (
        uniform.total_time / aware.total_time
        if aware.total_time > 0
        else float("inf")
    )

    # -- scenario B: homogeneous baseline vs mid-run device failure ----
    baseline = run(_bench_config(seed, quick))
    fail_at = max(2, baseline.iterations // 3)
    failure = run(
        _bench_config(
            seed, quick,
            failure_schedule=FailureSchedule.single(1, fail_at),
        )
    )
    slowdown = (
        failure.total_time / baseline.total_time
        if baseline.total_time > 0
        else float("inf")
    )

    runs = {
        "hetero_aware": _run_entry(aware, walks, length),
        "hetero_uniform": _run_entry(uniform, walks, length),
        "baseline": _run_entry(baseline, walks, length),
        "failure": _run_entry(failure, walks, length),
    }
    conservation_ok = all(
        entry["sanitizer_clean"] for entry in runs.values()
    )
    # Fixed-length walks make zero-lost-walks exact: a lost (or
    # duplicated) walk shifts the step total off walks * length.
    no_lost_walks = all(
        entry["total_steps"] == entry["expected_steps"]
        for entry in runs.values()
    )
    recovery_ok = (
        failure.device_failures == 1 and failure.walks_recovered > 0
    )
    hetero_ok = hetero_speedup >= REQUIRED_HETERO_SPEEDUP
    slowdown_ok = slowdown <= MAX_FAILURE_SLOWDOWN

    results: Dict[str, object] = {
        "config": {
            "scale": scale,
            "edge_factor": edge_factor,
            "vertices": graph.num_vertices,
            "edges": graph.num_edges,
            "walks": walks,
            "walk_length": length,
            "seed": seed,
            "quick": quick,
            "devices": NUM_DEVICES,
            "capability_skew": list(CAPABILITY_SKEW),
            "fail_device": 1,
            "fail_at_iteration": fail_at,
            "required_hetero_speedup": REQUIRED_HETERO_SPEEDUP,
            "max_failure_slowdown": MAX_FAILURE_SLOWDOWN,
        },
        "runs": runs,
        "hetero_speedup": hetero_speedup,
        "failure_slowdown": slowdown,
        "checks": {
            "conservation_ok": conservation_ok,
            "no_lost_walks": no_lost_walks,
            "recovery_ok": recovery_ok,
            "hetero_ok": hetero_ok,
            "slowdown_ok": slowdown_ok,
            # quick workloads are too small for stable makespan ratios;
            # the perf gates are only meaningful at full scale.
            "perf_enforced": not quick,
            "all_ok": (
                conservation_ok
                and no_lost_walks
                and recovery_ok
                and ((hetero_ok and slowdown_ok) or quick)
            ),
        },
    }
    return results


def write_results(results: Dict[str, object], path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")


def format_summary(results: Dict[str, object]) -> str:
    """Human-readable digest of one benchmark run."""
    config = results["config"]
    checks = results["checks"]
    runs = results["runs"]
    lines = [
        "elastic cluster benchmark "
        f"(rmat scale {config['scale']}, {config['vertices']} vertices, "
        f"{config['edges']} edges, {config['walks']} walks, "
        f"{config['devices']} devices)"
    ]
    for name in ("hetero_aware", "hetero_uniform", "baseline", "failure"):
        run = runs[name]
        lines.append(
            f"  {name:14s}: t={run['total_time'] * 1e3:8.3f} ms "
            f"steps={run['total_steps']:7d}/{run['expected_steps']:<7d} "
            f"migrated={run['walks_migrated']:6d} "
            f"recovered={run['walks_recovered']:5d} "
            f"sanitizer={'clean' if run['sanitizer_clean'] else 'DIRTY'}"
        )
    lines.append(
        f"  hetero speedup (uniform/aware): "
        f"{results['hetero_speedup']:.2f}x "
        f"(>= {config['required_hetero_speedup']}x, "
        f"enforced={checks['perf_enforced']})"
    )
    lines.append(
        f"  failure slowdown (failure/baseline): "
        f"{results['failure_slowdown']:.2f}x "
        f"(<= {config['max_failure_slowdown']}x, "
        f"enforced={checks['perf_enforced']})"
    )
    lines.append(
        f"  checks: conservation_ok={checks['conservation_ok']} "
        f"no_lost_walks={checks['no_lost_walks']} "
        f"recovery_ok={checks['recovery_ok']} "
        f"all_ok={checks['all_ok']}"
    )
    return "\n".join(lines)
