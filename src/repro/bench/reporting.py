"""Fixed-width table and series printers for benchmark output.

Every bench prints the same rows the paper's tables/figures report, so the
output of ``pytest benchmarks/ --benchmark-only -s`` reads side by side with
the paper.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Sequence, Union

Cell = Union[str, int, float]


def format_seconds(seconds: float) -> str:
    """Human-scale duration (simulated seconds)."""
    if seconds <= 0:
        return "0"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds:.3f}s"


def format_rate(steps_per_second: float) -> str:
    """Throughput in M/G steps per second."""
    if steps_per_second >= 1e9:
        return f"{steps_per_second / 1e9:.2f}G"
    if steps_per_second >= 1e6:
        return f"{steps_per_second / 1e6:.1f}M"
    return f"{steps_per_second / 1e3:.1f}K"


def format_cell(value: Cell) -> str:
    if isinstance(value, float):
        return f"{value:.3g}"
    return str(value)


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
) -> str:
    """Render an aligned ASCII table."""
    str_rows: List[List[str]] = [
        [format_cell(c) for c in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = [f"== {title} =="]
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def print_table(
    title: str, headers: Sequence[str], rows: Iterable[Sequence[Cell]]
) -> None:
    print()
    print(render_table(title, headers, rows))


def rows_from_dicts(
    dicts: Iterable[Mapping[str, Cell]], keys: Sequence[str]
) -> List[List[Cell]]:
    """Project a list of dict rows onto ordered columns."""
    return [[d.get(k, "") for k in keys] for d in dicts]
