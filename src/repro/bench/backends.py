"""Execution-backend benchmark (``repro bench backends``).

The backend refactor (:mod:`repro.backends`) put the two kernel inner
loops — walk-update stepping and reshuffle grouping — behind the
:class:`~repro.backends.ExecutionBackend` protocol, with real
implementations (``numba`` JIT, ``multiprocess`` shared-memory
precompute) next to the historical ``simulated`` NumPy interpreter
path.  This benchmark holds that refactor to account on one seeded
RMAT workload:

* **identity** — every available backend must reproduce the simulated
  run bit-identically: same total steps, same iteration count, same
  simulated makespan, same migrations, sanitizer-clean;
* **speed** — the best real backend's measured walk-update wall-clock
  (including its one-off setup: worker forks, trajectory precompute,
  JIT warm-up) must beat the simulated interpreter's measured
  walk-update wall-clock by ``REQUIRED_SPEEDUP`` (checked in full
  mode; ``--quick`` workloads are too small for stable ratios and only
  report);
* **cross-validation** — for every backend, the analytic
  :class:`~repro.gpu.kernels.KernelModel` prediction for each recorded
  kernel invocation is fitted to the measured per-kernel wall-clock
  with a single least-squares scale (:func:`~repro.gpu.kernels.
  fit_time_scale`) and the residual per-kernel relative errors are
  reported — the model is judged by shape, not absolute magnitude.

Results are written as ``BENCH_backends.json`` so CI can archive the
numbers per commit and a backend regression shows up as a diff, not an
anecdote.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.algorithms import UniformSampling
from repro.backends.numba_kernels import NUMBA_AVAILABLE
from repro.bench.harness import bench_engine_config
from repro.core.engine import LightTrafficEngine
from repro.core.stats import RunStats
from repro.gpu.kernels import KernelModel, fit_time_scale, relative_errors

#: Wall-clock floor enforced (full mode): best real backend's overall
#: walk-update time (setup included) vs the simulated interpreter's.
REQUIRED_SPEEDUP = 3.0

#: Backends measured, baseline first (identity is judged against it).
BACKENDS = ("simulated", "multiprocess", "numba")

#: Run facts that must match the simulated baseline exactly.
IDENTITY_FIELDS = ("total_steps", "iterations", "total_time", "walks_migrated")


def _model_fit(stats: RunStats, model: KernelModel) -> Dict[str, object]:
    """Fit the analytic per-kernel predictions to the measured times."""
    measured = stats.measured or {}
    kernels = measured.get("kernels") or []
    predicted: List[float] = []
    observed: List[float] = []
    for record in kernels:
        predicted.append(
            float(
                model.update_time(
                    int(record["total_steps"]),
                    int(record["longest_run"]),
                    int(record["partition_nbytes"]),
                    str(record["sampler"]),
                )
            )
        )
        observed.append(float(record["seconds"]))
    scale = fit_time_scale(predicted, observed)
    errors = relative_errors(predicted, observed, scale)
    if not errors:
        return {"kernels": len(kernels), "time_scale": scale}
    return {
        "kernels": len(kernels),
        "time_scale": scale,
        "mean_relative_error": sum(errors) / len(errors),
        "max_relative_error": max(errors),
    }


def _run_entry(stats: RunStats, model: KernelModel) -> Dict[str, object]:
    sanitizer = stats.sanitizer or {}
    measured = dict(stats.measured or {})
    measured.pop("kernels", None)  # per-kernel detail folds into model_fit
    return {
        "available": True,
        "total_steps": stats.total_steps,
        "iterations": stats.iterations,
        "total_time": stats.total_time,
        "walks_migrated": stats.walks_migrated,
        "sanitizer_clean": bool(sanitizer.get("clean", False)),
        "measured": measured,
        "model_fit": _model_fit(stats, model),
    }


def _measured_total(entry: Dict[str, object]) -> float:
    measured: Dict[str, float] = entry["measured"]  # type: ignore[assignment]
    return float(measured["walk_update_seconds"]) + float(
        measured["setup_seconds"]
    )


def run_bench(
    scale: int = 13,
    edge_factor: int = 8,
    walks: Optional[int] = None,
    seed: int = 7,
    quick: bool = False,
) -> Dict[str, object]:
    """Run the execution-backend benchmark; returns the results payload."""
    from repro.graph.generators import rmat

    if quick:
        scale = min(scale, 10)
    graph = rmat(scale=scale, edge_factor=edge_factor, seed=seed)
    if walks is None:
        walks = 600 if quick else 2 * graph.num_vertices
    length = 8 if quick else 32
    runs: Dict[str, Dict[str, object]] = {}
    repeats = 1 if quick else 3
    for name in BACKENDS:
        if name == "numba" and not NUMBA_AVAILABLE:
            runs[name] = {
                "available": False,
                "reason": "the optional numba package is not installed",
            }
            continue
        # The counter RNG on every backend (the simulated baseline too)
        # keeps all trajectories — hence all run facts — comparable.
        # Full mode uses larger batches than the other suites: this
        # bench compares kernel throughput, and tiny batches would
        # measure per-call dispatch overhead instead; the walk pool
        # stays below the workload so eviction is still exercised.
        config = bench_engine_config(
            seed,
            quick,
            backend=name,
            rng_mode="counter",
            batch_walks=64 if quick else 4096,
            walk_pool_walks=512 if quick else 8192,
        )
        model = KernelModel(config.device, config.calibration)
        best: Optional[Dict[str, object]] = None
        for _ in range(repeats):
            # Run facts are deterministic across repeats; only the
            # measured wall-clock varies, so keep the noise floor.
            stats = LightTrafficEngine(
                graph, UniformSampling(length=length), config
            ).run(walks)
            entry = _run_entry(stats, model)
            if best is None or _measured_total(entry) < _measured_total(best):
                best = entry
        assert best is not None
        runs[name] = best

    base = runs["simulated"]
    base_measured: Dict[str, float] = base["measured"]  # type: ignore[assignment]
    sim_update = float(base_measured["walk_update_seconds"])
    identity_ok = True
    sanitizer_ok = bool(base["sanitizer_clean"])
    best_overall = 0.0
    for name, entry in runs.items():
        if name == "simulated" or not entry.get("available"):
            continue
        identity_ok = identity_ok and all(
            entry[field] == base[field] for field in IDENTITY_FIELDS
        )
        sanitizer_ok = sanitizer_ok and bool(entry["sanitizer_clean"])
        entry_measured: Dict[str, float] = entry["measured"]  # type: ignore[assignment]
        update = float(entry_measured["walk_update_seconds"])
        setup = float(entry_measured["setup_seconds"])
        entry["kernel_speedup"] = (
            sim_update / update if update > 0 else float("inf")
        )
        overall = (
            sim_update / (update + setup)
            if update + setup > 0
            else float("inf")
        )
        entry["overall_speedup"] = overall
        best_overall = max(best_overall, overall)

    speedup_ok = best_overall >= REQUIRED_SPEEDUP
    results: Dict[str, object] = {
        "config": {
            "scale": scale,
            "edge_factor": edge_factor,
            "vertices": graph.num_vertices,
            "edges": graph.num_edges,
            "walks": walks,
            "length": length,
            "seed": seed,
            "quick": quick,
            "required_speedup": REQUIRED_SPEEDUP,
        },
        "runs": runs,
        "checks": {
            "identity_ok": identity_ok,
            "sanitizer_ok": sanitizer_ok,
            "speedup_ok": speedup_ok,
            # quick mode uses workloads too small for stable timing
            # ratios; the speedup gate is only meaningful at full scale.
            "speedup_enforced": not quick,
            "all_ok": identity_ok
            and sanitizer_ok
            and (speedup_ok or quick),
        },
    }
    return results


def write_results(results: Dict[str, object], path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")


def format_summary(results: Dict[str, object]) -> str:
    """Human-readable digest of one benchmark run."""
    config = results["config"]
    checks = results["checks"]
    lines = [
        "execution-backend benchmark "
        f"({config['vertices']} vertices, {config['edges']} edges, "
        f"{config['walks']} walks x {config['length']} steps)",
    ]
    runs: Dict[str, Dict[str, object]] = results["runs"]  # type: ignore[assignment]
    for name in BACKENDS:
        entry = runs[name]
        if not entry.get("available"):
            lines.append(f"  {name:13s}: unavailable ({entry['reason']})")
            continue
        measured: Dict[str, float] = entry["measured"]  # type: ignore[assignment]
        update_ms = float(measured["walk_update_seconds"]) * 1e3
        setup_ms = float(measured["setup_seconds"]) * 1e3
        line = (
            f"  {name:13s}: update {update_ms:8.2f} ms"
            f" + setup {setup_ms:7.2f} ms"
            f" over {measured['num_kernels']} kernels"
        )
        if "overall_speedup" in entry:
            line += (
                f" -> {entry['overall_speedup']:.2f}x overall"
                f" ({entry['kernel_speedup']:.2f}x kernel)"
            )
        fit = entry["model_fit"]
        if "mean_relative_error" in fit:  # type: ignore[operator]
            line += (
                f", model err mean={fit['mean_relative_error']:.2f}"  # type: ignore[index]
                f" max={fit['max_relative_error']:.2f}"  # type: ignore[index]
            )
        lines.append(line)
    lines.append(
        f"  checks: identity_ok={checks['identity_ok']} "
        f"sanitizer_ok={checks['sanitizer_ok']} "
        f"speedup_ok={checks['speedup_ok']} "
        f"(enforced={checks['speedup_enforced']})"
    )
    return "\n".join(lines)
