"""Benchmark harness: dataset registry, experiment runners, reporting.

One module per concern:

* :mod:`repro.bench.workloads` — the scaled synthetic twins of the paper's
  Table II datasets, the scaled hardware models, and the standard workload
  (2|V| walks, l=80, p=0.15).
* :mod:`repro.bench.harness` — functions that run each experiment and
  return structured rows (these are what `benchmarks/bench_*.py` call).
* :mod:`repro.bench.reporting` — fixed-width table / series printers.
"""

from repro.bench.workloads import (
    DATASETS,
    DatasetSpec,
    SimPlatform,
    default_platform,
    load_dataset,
    standard_config,
    standard_walks,
)

__all__ = [
    "DATASETS",
    "DatasetSpec",
    "SimPlatform",
    "default_platform",
    "load_dataset",
    "standard_config",
    "standard_walks",
]
