"""Scaled datasets, scaled hardware, and standard workloads.

**Dataset scaling.**  The paper's graphs (Table II) are up to 15.6 B edges;
this reproduction uses synthetic R-MAT twins at roughly **1/4096 of paper
scale**, preserving each graph's average degree and skew.  Everything the
experiments measure is a ratio (compute:transfer, hit rates, iteration
counts, walk density), and those ratios are preserved when datasets *and*
the size-like hardware parameters (GPU memory, caches, fixed latencies)
are scaled together — which :class:`SimPlatform` does.

Byte accounting note: this codebase uses 8-byte CSR entries where the
paper's sizes imply 4-byte entries, so size-like parameters are scaled by
``2 * SIM_SCALE`` to keep graph-bytes : memory-bytes ratios faithful.

Set the environment variable ``REPRO_SCALE`` (e.g. ``0.5`` or ``0.25``) to
shrink the datasets further for quick runs; all benches honor it.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, replace
from typing import Any, Dict, Optional

import numpy as np

from repro.baselines.cpumodel import CPUSpec, XEON_GOLD_5218R
from repro.core.config import EngineConfig
from repro.gpu.calibration import Calibration
from repro.gpu.device import DeviceSpec, RTX3090
from repro.gpu.pcie import NVLINK2, PCIE3, PCIE4, PCIeSpec
from repro.graph import generators
from repro.graph.builders import from_edges, preprocess_edges
from repro.graph.csr import CSRGraph

#: One global simulation scale (fraction of paper size).
SIM_SCALE = 1.0 / 4096.0
#: 8-byte entries here vs the paper's 4-byte entries (see module docstring).
BYTE_WIDTH_FACTOR = 2.0
#: Caches (GPU L2, CPU LLC) scale with an extra 3x on top of the byte-width
#: factor: the smallest synthetic twins are ~3x oversized relative to
#: 1/4096 (they would otherwise be degenerate), so cache : working-set
#: ratios stay faithful with this factor.
CACHE_SCALE_FACTOR = 3.0 * BYTE_WIDTH_FACTOR

#: The paper's standard workload (§IV-A).
WALK_LENGTH = 80
RESTART_PROB = 0.15
WALKS_PER_VERTEX = 2


def user_scale() -> float:
    """Extra user-requested shrink factor from ``REPRO_SCALE``."""
    raw = os.environ.get("REPRO_SCALE", "1.0")
    try:
        value = float(raw)
    except ValueError:
        raise ValueError(f"REPRO_SCALE must be a float, got {raw!r}") from None
    if not 0 < value <= 1:
        raise ValueError("REPRO_SCALE must be in (0, 1]")
    return value


# ----------------------------------------------------------------------
# Datasets
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DatasetSpec:
    """A synthetic twin of one paper dataset.

    ``paper_vertices`` / ``paper_edges`` / ``paper_csr_gb`` record the real
    dataset's Table II statistics for side-by-side reporting.
    """

    name: str
    rmat_scale: int
    edge_factor: float
    skew_a: float
    seed: int
    paper_name: str
    paper_vertices: float
    paper_edges: float
    paper_csr_gb: float
    fits_gpu_memory: bool
    #: add one hub adjacent to every vertex (YH's d_max = |V| quirk).
    global_hub: bool = False


DATASETS: Dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in (
        DatasetSpec("lj-sim", 12, 9.0, 0.57, 101, "LiveJournal", 4.85e6, 85.7e6, 0.364, True),
        DatasetSpec("or-sim", 12, 30.0, 0.57, 102, "Orkut", 3.07e6, 234.4e6, 0.917, True),
        DatasetSpec("tw-sim", 13, 18.0, 0.60, 103, "Twitter", 41.7e6, 1.468e9, 5.78, True),
        DatasetSpec("fs-sim", 14, 25.0, 0.57, 104, "FriendSter", 68.35e6, 3.62e9, 14.0, True),
        DatasetSpec("uk-sim", 15, 35.0, 0.59, 105, "UK-Union", 131.57e6, 9.33e9, 35.7, False),
        DatasetSpec("yh-sim", 16, 16.0, 0.57, 106, "Yahoo", 653.91e6, 12.95e9, 53.1, False, True),
        DatasetSpec("cw-sim", 17, 12.0, 0.59, 107, "ClueWeb09", 1.68e9, 15.62e9, 70.8, False),
    )
}

_CACHE: Dict[str, CSRGraph] = {}


def _disk_cache_path(name: str, rmat_scale: int) -> str:
    root = os.environ.get(
        "REPRO_CACHE_DIR",
        os.path.join(os.path.expanduser("~"), ".cache", "repro-lighttraffic"),
    )
    os.makedirs(root, exist_ok=True)
    return os.path.join(root, f"{name}-s{rmat_scale}.npz")


def load_dataset(name: str) -> CSRGraph:
    """Build (and memoize, in process and on disk) one synthetic dataset."""
    if name not in DATASETS:
        raise KeyError(f"unknown dataset {name!r}; choose from {sorted(DATASETS)}")
    cached = _CACHE.get(name)
    if cached is not None:
        return cached
    spec = DATASETS[name]
    shrink = user_scale()
    # REPRO_SCALE halves the vertex count per factor-of-2 shrink.
    scale = max(8, spec.rmat_scale + int(round(math.log2(shrink))))
    path = _disk_cache_path(name, scale)
    if os.path.exists(path):
        from repro.graph.io import load_csr

        graph = load_csr(path)
    else:
        graph = generators.rmat(
            scale=scale,
            edge_factor=spec.edge_factor,
            a=spec.skew_a,
            b=(1.0 - spec.skew_a) / 3,
            c=(1.0 - spec.skew_a) / 3,
            seed=spec.seed,
            name=spec.name,
        )
        if spec.global_hub:
            graph = _add_global_hub(graph, spec.name)
        from repro.graph.io import save_csr

        save_csr(graph, path)
    _CACHE[name] = graph
    return graph


def _add_global_hub(graph: CSRGraph, name: str) -> CSRGraph:
    """Attach vertex 0 to every other vertex (YH's |V|-degree hub)."""
    others = np.arange(1, graph.num_vertices, dtype=np.int64)
    degrees = np.diff(graph.offsets)
    sources = np.repeat(np.arange(graph.num_vertices, dtype=np.int64), degrees)
    edges = np.concatenate(
        [
            np.stack([sources, graph.targets], axis=1),
            np.stack([np.zeros_like(others), others], axis=1),
        ]
    )
    cleaned, n, __ = preprocess_edges(edges, undirected=True)
    return from_edges(cleaned, num_vertices=n, name=name)


def standard_walks(graph: CSRGraph) -> int:
    """The paper's standard walk count: 2|V|."""
    return WALKS_PER_VERTEX * graph.num_vertices


# ----------------------------------------------------------------------
# Hardware at simulation scale
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SimPlatform:
    """One coherent scaled platform: GPU, CPU, interconnects, calibration."""

    device: DeviceSpec
    cpu: CPUSpec
    pcie3: PCIeSpec
    pcie4: PCIeSpec
    nvlink2: PCIeSpec
    calibration: Calibration
    #: scaled GPU memory budget available to the two pools.
    gpu_memory_bytes: int
    #: scaled graph-partition size (the paper's 128 MB default).
    partition_bytes: int

    def interconnect(self, name: str) -> PCIeSpec:
        try:
            return {"pcie3": self.pcie3, "pcie4": self.pcie4, "nvlink2": self.nvlink2}[name]
        except KeyError:
            raise KeyError(f"unknown interconnect {name!r}") from None


def default_platform(
    device: DeviceSpec = RTX3090, sim_scale: float = SIM_SCALE
) -> SimPlatform:
    """The scaled platform used by all benchmarks."""
    size_scale = sim_scale * BYTE_WIDTH_FACTOR
    # GPU memory uses a slightly smaller factor than the caches: the paper's
    # 24 GB sits between FS (fits) and UK (does not); with 8-byte entries the
    # same boundary falls at ~24 GB * sim_scale * 1.1 for the scaled twins.
    scaled_device = replace(
        device,
        mem_bytes=max(1 << 16, int(device.mem_bytes * sim_scale * 1.1)),
        l2_bytes=max(1 << 10, int(device.l2_bytes * sim_scale * CACHE_SCALE_FACTOR)),
        shared_mem_per_sm=device.shared_mem_per_sm,
    )
    calibration = Calibration(sim_scale=sim_scale)
    scale_latency = lambda spec: replace(  # noqa: E731 - tiny local helper
        spec, latency_seconds=spec.latency_seconds * sim_scale
    )
    return SimPlatform(
        device=scaled_device,
        cpu=XEON_GOLD_5218R.scaled(sim_scale * CACHE_SCALE_FACTOR),
        pcie3=scale_latency(PCIE3),
        pcie4=scale_latency(PCIE4),
        nvlink2=scale_latency(NVLINK2),
        calibration=calibration,
        gpu_memory_bytes=scaled_device.mem_bytes,
        partition_bytes=max(4096, int(128 * (1 << 20) * size_scale)),
    )


# ----------------------------------------------------------------------
# Standard engine configuration
# ----------------------------------------------------------------------
def standard_config(
    graph: CSRGraph,
    platform: Optional[SimPlatform] = None,
    interconnect: str = "pcie3",
    num_walks: Optional[int] = None,
    graph_pool_fraction: float = 0.6,
    **overrides: Any,
) -> EngineConfig:
    """The default LightTraffic configuration for one dataset.

    The scaled GPU memory is split between the graph pool
    (``graph_pool_fraction``) and the walk pool; the batch size is chosen
    so a typical partition's walks fill a few batches (the paper's 16x-core
    batch would hold more walks than the entire scaled workload).
    """
    platform = platform or default_platform()
    if num_walks is None:
        num_walks = standard_walks(graph)
    partition_bytes = overrides.pop("partition_bytes", platform.partition_bytes)
    num_partitions = max(1, math.ceil(graph.csr_bytes / partition_bytes))
    # Split the scaled GPU memory between the pools: the walk pool gets
    # what the walk index actually needs (capped at 1 - graph_pool_fraction
    # of memory, which forces walk eviction on cw-sim exactly as the paper's
    # CW walk index overflows 24 GB), and the graph pool gets the rest.
    bytes_per_walk_record = 16  # (walk_id, vertex) state per walk
    walk_bytes_wanted = bytes_per_walk_record * num_walks  # S_w upper bound
    walk_bytes = min(
        walk_bytes_wanted,
        int(platform.gpu_memory_bytes * (1.0 - graph_pool_fraction)),
    )
    walk_budget = max(4096, walk_bytes // 8)
    if graph.csr_bytes <= 0.85 * platform.gpu_memory_bytes:
        # The whole graph fits in GPU memory (paper: FS and smaller) — cache
        # every partition so each is loaded exactly once.
        pool_blocks = num_partitions
    else:
        pool_blocks = int(
            (platform.gpu_memory_bytes - walk_bytes) / partition_bytes
        )
    pool_blocks = max(2, min(pool_blocks, max(2, num_partitions)))
    # Batches must be a fraction of a partition's typical walk population or
    # frontiers never complete and preemptive scheduling starves (§III-D);
    # the paper's defaults give batch ~ (walks per partition) / 5.
    batch = int(np.clip(num_walks // max(1, num_partitions) // 2, 64, 8192))
    defaults = dict(
        partition_bytes=partition_bytes,
        batch_walks=batch,
        graph_pool_partitions=pool_blocks,
        walk_pool_walks=max(walk_budget, 4 * batch),
        interconnect=platform.interconnect(interconnect),
        device=platform.device,
        calibration=platform.calibration,
        seed=42,
    )
    defaults.update(overrides)
    return EngineConfig(**defaults)
