"""Numba backend: JIT-compiled per-lane step loops, ThunderRW-style.

The kernels advance each walker *lane* with a scalar loop instead of the
vectorized all-lanes rounds of the NumPy path, interleaving lanes within
fixed-size blocks (ThunderRW's step interleaving: sweep the block
round-robin, one transition per live lane per pass, so independent
lanes' memory fetches overlap) and ``prange``-ing over blocks.  This is
only legal because the counter RNG derives every draw from ``(seed,
walk_id, step, draw_index)`` — the scalar :func:`_splitmix64` below
replicates :func:`repro.core.prng.splitmix64` bit-for-bit, so per-lane
execution produces exactly the trajectories the vectorized engine
produces.

When numba is missing the module still imports: ``_jit`` degrades to a
pass-through and the kernels remain valid (slow) pure Python, which is
how the conformance tests exercise this code path without the
dependency.  Constructing :class:`NumbaBackend` itself requires numba
(:class:`~repro.backends.base.BackendUnavailable` otherwise); the CLI
turns that into an exit-2 hint.
"""

from __future__ import annotations

import time
from typing import Any, Optional

import numpy as np

from repro.algorithms.base import BatchRunResult
from repro.algorithms.transitions import (
    SAMPLER_ALIAS,
    SAMPLER_UNIFORM,
    make_sampler,
)
from repro.algorithms.transitions.base import TransitionSampler
from repro.backends.base import (
    BackendUnavailable,
    ExecutionBackend,
    require_lockstep_algorithm,
)
from repro.backends.registry import BACKEND_NUMBA, register_backend
from repro.core.config import EngineConfig
from repro.graph.csr import CSRGraph
from repro.graph.partition import GraphPartition, PartitionedGraph
from repro.walks.state import WalkArrays

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit, prange

    NUMBA_AVAILABLE = True
except ImportError:
    njit, prange = None, None
    NUMBA_AVAILABLE = False

#: ``range`` in pure-Python mode; numba recognizes ``prange`` by identity.
_prange: Any = prange if NUMBA_AVAILABLE else range


def _jit(parallel: bool = False) -> Any:
    """``numba.njit`` when available, identity decorator otherwise."""
    if NUMBA_AVAILABLE:
        return njit(cache=True, parallel=parallel)

    def passthrough(fn: Any) -> Any:
        return fn

    return passthrough


#: splitmix64 constants — must match :mod:`repro.core.prng` exactly.
_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)
_STEP_TAG = np.uint64(0x632BE59BD9B4E019)
_SH30 = np.uint64(30)
_SH27 = np.uint64(27)
_SH31 = np.uint64(31)
_SH11 = np.uint64(11)
_INV53 = 2.0 ** -53


def _splitmix64_py(x: np.uint64) -> np.uint64:
    x = x + _GAMMA
    x = x ^ (x >> _SH30)
    x = x * _MIX1
    x = x ^ (x >> _SH27)
    x = x * _MIX2
    x = x ^ (x >> _SH31)
    return x


_splitmix64: Any = _jit()(_splitmix64_py)


def _lane_draw_py(
    seed: np.uint64, walk_id: np.uint64, step: np.uint64, draw: np.uint64
) -> float:
    """One lane's uniform [0, 1) — :meth:`CounterRNG.random`, scalar."""
    key = (
        seed
        + _splitmix64(walk_id)
        + _splitmix64(step + _STEP_TAG)
        + draw * _GAMMA
    )
    return np.float64(_splitmix64(key) >> _SH11) * _INV53


_lane_draw: Any = _jit()(_lane_draw_py)


def _bisect_right_py(prefix: np.ndarray, value: float) -> int:
    """Scalar ``np.searchsorted(prefix, value, side="right")``."""
    lo = 0
    hi = prefix.shape[0]
    while lo < hi:
        mid = (lo + hi) >> 1
        if value < prefix[mid]:
            hi = mid
        else:
            lo = mid + 1
    return lo


_bisect_right: Any = _jit()(_bisect_right_py)


def _advance_uniform_py(
    vertices: np.ndarray,
    steps: np.ndarray,
    ids: np.ndarray,
    alive: np.ndarray,
    offsets: np.ndarray,
    targets: np.ndarray,
    p_start: int,
    p_stop: int,
    length: int,
    seed: np.uint64,
    lane_block: int,
) -> None:
    n = vertices.shape[0]
    num_blocks = (n + lane_block - 1) // lane_block
    for b in _prange(num_blocks):
        lo = b * lane_block
        hi = lo + lane_block
        if hi > n:
            hi = n
        done = np.zeros(hi - lo, dtype=np.uint8)
        remaining = hi - lo
        while remaining > 0:
            for i in range(lo, hi):
                if done[i - lo] != 0:
                    continue
                v = vertices[i]
                s = steps[i]
                e0 = offsets[v - p_start]
                deg = offsets[v - p_start + 1] - e0
                if deg == 0:
                    steps[i] = s + 1
                    alive[i] = False
                    done[i - lo] = 1
                    remaining -= 1
                    continue
                u = _lane_draw(
                    seed, np.uint64(ids[i]), np.uint64(s), np.uint64(0)
                )
                pick = np.int64(u * deg)
                if pick > deg - 1:
                    pick = deg - 1
                nv = targets[e0 + pick]
                vertices[i] = nv
                steps[i] = s + 1
                if s + 1 >= length:
                    alive[i] = False
                    done[i - lo] = 1
                    remaining -= 1
                elif nv < p_start or nv >= p_stop:
                    done[i - lo] = 1
                    remaining -= 1


_advance_uniform: Any = _jit(parallel=True)(_advance_uniform_py)


def _advance_alias_py(
    vertices: np.ndarray,
    steps: np.ndarray,
    ids: np.ndarray,
    alive: np.ndarray,
    offsets: np.ndarray,
    targets: np.ndarray,
    prob_flat: np.ndarray,
    alias_flat: np.ndarray,
    p_start: int,
    p_stop: int,
    length: int,
    seed: np.uint64,
    lane_block: int,
) -> None:
    n = vertices.shape[0]
    num_blocks = (n + lane_block - 1) // lane_block
    for b in _prange(num_blocks):
        lo = b * lane_block
        hi = lo + lane_block
        if hi > n:
            hi = n
        done = np.zeros(hi - lo, dtype=np.uint8)
        remaining = hi - lo
        while remaining > 0:
            for i in range(lo, hi):
                if done[i - lo] != 0:
                    continue
                v = vertices[i]
                s = steps[i]
                e0 = offsets[v - p_start]
                deg = offsets[v - p_start + 1] - e0
                if deg == 0:
                    steps[i] = s + 1
                    alive[i] = False
                    done[i - lo] = 1
                    remaining -= 1
                    continue
                u0 = _lane_draw(
                    seed, np.uint64(ids[i]), np.uint64(s), np.uint64(0)
                )
                u1 = _lane_draw(
                    seed, np.uint64(ids[i]), np.uint64(s), np.uint64(1)
                )
                slot = np.int64(u0 * deg)
                if slot > deg - 1:
                    slot = deg - 1
                edge = e0 + slot
                if u1 < prob_flat[edge]:
                    picked = slot
                else:
                    picked = alias_flat[edge]
                nv = targets[e0 + picked]
                vertices[i] = nv
                steps[i] = s + 1
                if s + 1 >= length:
                    alive[i] = False
                    done[i - lo] = 1
                    remaining -= 1
                elif nv < p_start or nv >= p_stop:
                    done[i - lo] = 1
                    remaining -= 1


_advance_alias: Any = _jit(parallel=True)(_advance_alias_py)


def _advance_inverse_py(
    vertices: np.ndarray,
    steps: np.ndarray,
    ids: np.ndarray,
    alive: np.ndarray,
    offsets: np.ndarray,
    targets: np.ndarray,
    prefix: np.ndarray,
    p_start: int,
    p_stop: int,
    length: int,
    seed: np.uint64,
    lane_block: int,
) -> None:
    n = vertices.shape[0]
    num_blocks = (n + lane_block - 1) // lane_block
    for b in _prange(num_blocks):
        lo = b * lane_block
        hi = lo + lane_block
        if hi > n:
            hi = n
        done = np.zeros(hi - lo, dtype=np.uint8)
        remaining = hi - lo
        while remaining > 0:
            for i in range(lo, hi):
                if done[i - lo] != 0:
                    continue
                v = vertices[i]
                s = steps[i]
                e0 = offsets[v - p_start]
                e1 = offsets[v - p_start + 1]
                total = prefix[e1] - prefix[e0]
                if total <= 0:
                    # Zero degree or all-zero weights: a dead end.
                    steps[i] = s + 1
                    alive[i] = False
                    done[i - lo] = 1
                    remaining -= 1
                    continue
                u = _lane_draw(
                    seed, np.uint64(ids[i]), np.uint64(s), np.uint64(0)
                )
                target = prefix[e0] + u * total
                edge = _bisect_right(prefix, target) - 1
                if edge < e0:
                    edge = e0
                hi_edge = e1 - 1
                if hi_edge < 0:
                    hi_edge = 0
                if edge > hi_edge:
                    edge = hi_edge
                nv = targets[edge]
                vertices[i] = nv
                steps[i] = s + 1
                if s + 1 >= length:
                    alive[i] = False
                    done[i - lo] = 1
                    remaining -= 1
                elif nv < p_start or nv >= p_stop:
                    done[i - lo] = 1
                    remaining -= 1


_advance_inverse: Any = _jit(parallel=True)(_advance_inverse_py)


def _group_order_py(keys: np.ndarray, num_partitions: int) -> np.ndarray:
    """Stable counting sort == ``np.argsort(keys, kind="stable")``."""
    n = keys.shape[0]
    counts = np.zeros(num_partitions + 1, dtype=np.int64)
    for i in range(n):
        counts[keys[i] + 1] += 1
    for p in range(num_partitions):
        counts[p + 1] += counts[p]
    order = np.empty(n, dtype=np.int64)
    for i in range(n):
        k = keys[i]
        order[counts[k]] = i
        counts[k] += 1
    return order


_group_order: Any = _jit()(_group_order_py)


class NumbaBackend(ExecutionBackend):
    """JIT-compiled lane-interleaved step loops (requires numba)."""

    name = BACKEND_NUMBA

    def __init__(self, lane_block: int = 256) -> None:
        if not NUMBA_AVAILABLE:
            raise BackendUnavailable(
                "the 'numba' backend needs the optional numba package; "
                "install numba or use --backend multiprocess"
            )
        super().__init__()
        if lane_block < 1:
            raise ValueError("lane_block must be >= 1")
        self._lane_block = lane_block
        self._length = 0
        self._seed = np.uint64(0)
        self._weighted = False
        self._sampler_name = SAMPLER_UNIFORM
        self._impl: Optional[TransitionSampler] = None

    def bind(
        self,
        graph: CSRGraph,
        pgraph: PartitionedGraph,
        algorithm: Any,
        config: EngineConfig,
    ) -> None:
        require_lockstep_algorithm(self.name, algorithm, config)
        super().bind(graph, pgraph, algorithm, config)
        self._length = int(algorithm.length)
        self._seed = np.uint64(int(config.seed or 0) & 0xFFFFFFFFFFFFFFFF)
        self._sampler_name = str(algorithm.sampler)
        self._weighted = (
            bool(algorithm.weighted)
            and self._sampler_name != SAMPLER_UNIFORM
        )
        if self._weighted:
            # A backend-owned sampler instance: the table builds are
            # deterministic, so its prepared state is bit-identical to
            # the engine-side sampler's.
            self._impl = make_sampler(self._sampler_name)

    def advance(
        self,
        partition: GraphPartition,
        walks: WalkArrays,
        rng: np.random.Generator,
        graph: Optional[CSRGraph],
    ) -> BatchRunResult:
        n = len(walks)
        if n == 0:
            return BatchRunResult(0, 0, np.zeros(0, dtype=bool))
        started = time.perf_counter()
        alive = np.ones(n, dtype=bool)
        before = walks.steps.astype(np.int64, copy=True)
        use_weighted = self._weighted and partition.weights is not None
        # errstate: the pure-Python fallback wraps uint64 scalars exactly
        # like the jitted code but numpy warns on scalar overflow.
        with np.errstate(over="ignore"):
            if not use_weighted:
                _advance_uniform(
                    walks.vertices, walks.steps, walks.ids, alive,
                    partition.offsets, partition.targets,
                    partition.start, partition.stop,
                    self._length, self._seed, self._lane_block,
                )
            elif self._sampler_name == SAMPLER_ALIAS:
                assert self._impl is not None
                prob_flat, alias_flat = self._impl.prepared_state(partition)
                _advance_alias(
                    walks.vertices, walks.steps, walks.ids, alive,
                    partition.offsets, partition.targets,
                    prob_flat, alias_flat,
                    partition.start, partition.stop,
                    self._length, self._seed, self._lane_block,
                )
            else:
                assert self._impl is not None
                prefix = self._impl.prepared_state(partition)
                _advance_inverse(
                    walks.vertices, walks.steps, walks.ids, alive,
                    partition.offsets, partition.targets, prefix,
                    partition.start, partition.stop,
                    self._length, self._seed, self._lane_block,
                )
        deltas = walks.steps - before
        result = BatchRunResult(
            int(deltas.sum()), int(deltas.max()), alive
        )
        self._record_kernel(
            partition, n, result, time.perf_counter() - started
        )
        return result

    def group_order(self, partition_ids: np.ndarray) -> np.ndarray:
        started = time.perf_counter()
        num = self.pgraph.num_partitions if self.pgraph is not None else 0
        keys = np.ascontiguousarray(partition_ids, dtype=np.int64)
        if keys.size == 0 or num == 0 or int(keys.min()) < 0 or int(
            keys.max()
        ) >= num:
            # Out-of-range ids: fall back so the reshuffler raises its
            # usual range error on the sorted view.
            order = np.argsort(partition_ids, kind="stable")
        else:
            order = _group_order(keys, num)
        self.measured.group_seconds += time.perf_counter() - started
        return order


register_backend(BACKEND_NUMBA, NumbaBackend)
