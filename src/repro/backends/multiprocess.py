"""Multiprocess backend: shared-memory workers precompute trajectories.

One worker per device shard (``EngineConfig.devices``) forks off the
coordinator with the CSR arrays and the walk/trajectory tables living in
``multiprocessing.shared_memory`` blocks, and precomputes the *entire*
trajectory of its contiguous walk-id range — legal because the counter
RNG keys every draw by ``(seed, walk_id, step, draw_index)``, so a
walk's path is independent of the engine's batching schedule.  The
engine's subsequent ``advance`` calls then reduce to table lookups: an
exit table maps ``(step, walk_id)`` to the step at which that walk next
leaves its current partition (or terminates), which reproduces
``advance_in_partition``'s in-place updates and
:class:`~repro.algorithms.base.BatchRunResult` exactly.

The fork start method shares the mappings with zero copies and no
name-reattachment (only the parent ever registers/unlinks the blocks);
where ``fork`` is unavailable, or with a single worker, the precompute
runs in-process — same arrays, same results.  Everything here is
standard library + numpy: this backend stays dependency-free.
"""

from __future__ import annotations

import multiprocessing
import time
from multiprocessing import shared_memory
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.algorithms.base import BatchRunResult, uniform_neighbors
from repro.algorithms.transitions import SAMPLER_UNIFORM, make_sampler
from repro.algorithms.transitions.base import TransitionSampler
from repro.backends.base import ExecutionBackend, require_lockstep_algorithm
from repro.backends.registry import BACKEND_MULTIPROCESS, register_backend
from repro.core.config import EngineConfig
from repro.core.prng import CounterRNG
from repro.graph.csr import CSRGraph
from repro.graph.partition import GraphPartition, PartitionedGraph
from repro.walks.state import WalkArrays

#: Refuse trajectory tables past this size; the workload must be batched
#: upstream instead (the bench graphs are far below it).
_MAX_SHARED_BYTES = 4 << 30


class MultiprocessBackend(ExecutionBackend):
    """Shared-memory trajectory precompute with one worker per shard."""

    name = BACKEND_MULTIPROCESS

    def __init__(self) -> None:
        super().__init__()
        self._length = 0
        self._steps_cap = 1
        self._seed = 0
        self._weighted = False
        self._sampler_name = SAMPLER_UNIFORM
        self._workers = 1
        self._shms: List[shared_memory.SharedMemory] = []
        self._offsets: Optional[np.ndarray] = None
        self._targets: Optional[np.ndarray] = None
        self._weights: Optional[np.ndarray] = None
        self._starts: Optional[np.ndarray] = None
        self._p_bounds: Optional[np.ndarray] = None
        self._part_lut: Optional[np.ndarray] = None
        self._path: Optional[np.ndarray] = None
        self._term: Optional[np.ndarray] = None
        self._exit: Optional[np.ndarray] = None
        self._partition_cache: Dict[int, GraphPartition] = {}

    # ------------------------------------------------------------------
    def bind(
        self,
        graph: CSRGraph,
        pgraph: PartitionedGraph,
        algorithm: Any,
        config: EngineConfig,
    ) -> None:
        require_lockstep_algorithm(self.name, algorithm, config)
        super().bind(graph, pgraph, algorithm, config)
        self._length = int(algorithm.length)
        self._steps_cap = max(self._length, 1)
        self._seed = int(config.seed or 0)
        self._sampler_name = str(algorithm.sampler)
        self._weighted = (
            bool(algorithm.weighted)
            and graph.weights is not None
            and self._sampler_name != SAMPLER_UNIFORM
        )
        self._workers = max(1, int(getattr(config, "devices", 1) or 1))

    # ------------------------------------------------------------------
    def on_walks_seeded(self, walks: WalkArrays) -> None:
        started = time.perf_counter()
        assert self.graph is not None and self.pgraph is not None
        n = len(walks)
        if n == 0:
            self.measured.setup_seconds += time.perf_counter() - started
            return
        if not np.array_equal(walks.ids, np.arange(n, dtype=np.int64)):
            raise ValueError(
                "multiprocess backend requires contiguous walk ids 0..N-1 "
                "(seed all walks before splitting into shards)"
            )
        graph = self.graph
        rows = self._steps_cap + 1
        need = rows * n * 8 + n * 4 + rows * n * 8 + n * 8
        need += graph.offsets.nbytes + graph.targets.nbytes
        if graph.weights is not None:
            need += graph.weights.nbytes
        if need > _MAX_SHARED_BYTES:
            raise ValueError(
                f"multiprocess backend would need {need} shared bytes for "
                f"{n} walks x {rows} steps; shrink the workload"
            )
        # Exception path: any failure after the first SharedMemory block
        # exists must release every block already registered, or the
        # mappings outlive the process (`leaked-resource` lint rule).
        try:
            self._offsets = self._shared_copy(graph.offsets)
            self._targets = self._shared_copy(graph.targets)
            self._weights = (
                None
                if graph.weights is None
                else self._shared_copy(graph.weights)
            )
            self._starts = self._shared_copy(walks.vertices.astype(np.int64))
            bounds = [p.start for p in self.pgraph.partitions]
            bounds.append(graph.num_vertices)
            self._p_bounds = np.asarray(bounds, dtype=np.int64)
            # Direct vertex -> partition table: O(1) lookups beat binary
            # search over the (steps x walks) path table by a wide margin.
            self._part_lut = np.searchsorted(
                self._p_bounds[:-1],
                np.arange(graph.num_vertices, dtype=np.int64),
                side="right",
            )
            self._path = self._shared_array((rows, n), np.int64)
            self._term = self._shared_array((n,), np.int32)
            self._run_workers(n)
            self._build_exit_table()
        except BaseException:
            self.close()
            raise
        self.measured.setup_seconds += time.perf_counter() - started

    def _shared_array(
        self, shape: Tuple[int, ...], dtype: type
    ) -> np.ndarray:
        nbytes = int(np.prod(shape)) * np.dtype(dtype).itemsize
        shm = shared_memory.SharedMemory(create=True, size=max(nbytes, 1))
        self._shms.append(shm)
        out: np.ndarray = np.ndarray(shape, dtype=dtype, buffer=shm.buf)
        return out

    def _shared_copy(self, array: np.ndarray) -> np.ndarray:
        out = self._shared_array(array.shape, array.dtype.type)
        out[:] = array
        return out

    # ------------------------------------------------------------------
    def _run_workers(self, n: int) -> None:
        edges = np.linspace(0, n, self._workers + 1).astype(np.int64)
        ranges = [
            (int(edges[w]), int(edges[w + 1]))
            for w in range(self._workers)
            if edges[w + 1] > edges[w]
        ]
        can_fork = "fork" in multiprocessing.get_all_start_methods()
        if len(ranges) <= 1 or not can_fork:
            for lo, hi in ranges:
                self._precompute_range(lo, hi)
            return
        mp = multiprocessing.get_context("fork")
        procs = [
            mp.Process(target=self._precompute_range, args=r) for r in ranges
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join()
        failures = [proc.exitcode for proc in procs if proc.exitcode != 0]
        if failures:
            raise RuntimeError(
                f"multiprocess backend workers failed (exit codes {failures})"
            )

    def _precompute_range(self, lo: int, hi: int) -> None:
        """Walk ids ``[lo, hi)`` to termination, writing path/term tables.

        Runs in a forked worker (or in-process): reads and writes only the
        shared-memory arrays, lock-free because id ranges are disjoint.
        """
        assert self._path is not None and self._term is not None
        assert self._starts is not None and self._offsets is not None
        assert self._targets is not None and self._p_bounds is not None
        path, term = self._path, self._term
        rng = CounterRNG(self._seed)
        impl: Optional[TransitionSampler] = (
            make_sampler(self._sampler_name) if self._weighted else None
        )
        whole: Optional[GraphPartition] = None
        if impl is None:
            whole = GraphPartition(
                index=0,
                start=0,
                stop=int(self._offsets.size - 1),
                offsets=self._offsets,
                targets=self._targets,
                weights=None,
            )
        active = np.arange(lo, hi, dtype=np.int64)
        path[0, lo:hi] = self._starts[lo:hi]
        for s in range(self._steps_cap):
            if active.size == 0:
                break
            v = path[s, active]
            steps = np.full(active.size, s, dtype=np.int64)
            if whole is not None:
                # Unweighted fast path: integer-only sampling over the whole
                # graph is index-for-index what per-partition stepping does.
                rng.set_context(active, steps)
                nv, dead = uniform_neighbors(whole, v, rng)
            else:
                assert impl is not None
                nv = np.empty_like(v)
                dead = np.empty(v.size, dtype=bool)
                assert self._part_lut is not None
                part_of = self._part_lut[v] - 1
                for p in np.unique(part_of):
                    sel = part_of == p
                    rng.set_context(active[sel], steps[sel])
                    nv_p, dead_p = impl.sample(
                        self._partition(int(p)), v[sel], rng
                    )
                    nv[sel] = nv_p
                    dead[sel] = dead_p
            terminated = dead | (steps + 1 >= self._length)
            path[s + 1, active] = nv
            term[active[terminated]] = s + 1
            active = active[~terminated]
        if active.size:  # pragma: no cover - every walk terminates by cap
            term[active] = self._steps_cap

    def _partition(self, index: int) -> GraphPartition:
        """Rebuild partition ``index`` over the shared CSR arrays.

        The rebased slices equal the engine-side partition's arrays, and
        sampler table builds are deterministic, so prepared state is
        bit-identical to the simulated path's.
        """
        part = self._partition_cache.get(index)
        if part is None:
            assert self._p_bounds is not None and self._offsets is not None
            assert self._targets is not None
            start = int(self._p_bounds[index])
            stop = int(self._p_bounds[index + 1])
            e0 = int(self._offsets[start])
            e1 = int(self._offsets[stop])
            part = GraphPartition(
                index=index,
                start=start,
                stop=stop,
                offsets=self._offsets[start : stop + 1] - e0,
                targets=self._targets[e0:e1],
                weights=(
                    None if self._weights is None else self._weights[e0:e1]
                ),
            )
            self._partition_cache[index] = part
        return part

    def _build_exit_table(self) -> None:
        """``exit[t, id]`` = step at which walk ``id``, currently at step
        ``t``, next leaves the partition it occupies at step ``t`` (or
        terminates) — a backward recurrence over the path table."""
        assert self._path is not None and self._term is not None
        assert self._p_bounds is not None
        rows, n = self._path.shape
        assert self._part_lut is not None
        part = self._part_lut[self._path]
        term = self._term.astype(np.int64)
        ex = np.empty((rows, n), dtype=np.int64)
        ex[rows - 1] = rows - 1
        for t in range(rows - 2, -1, -1):
            stepping = term > t
            leaves = (part[t + 1] != part[t]) | (term == t + 1)
            ex[t] = np.where(stepping & leaves, t + 1, ex[t + 1])
            ex[t][~stepping] = t
        self._exit = ex

    # ------------------------------------------------------------------
    def advance(
        self,
        partition: GraphPartition,
        walks: WalkArrays,
        rng: np.random.Generator,
        graph: Optional[CSRGraph],
    ) -> BatchRunResult:
        n = len(walks)
        if n == 0:
            return BatchRunResult(0, 0, np.zeros(0, dtype=bool))
        assert self._exit is not None, "on_walks_seeded() must run first"
        assert self._path is not None and self._term is not None
        started = time.perf_counter()
        ids = walks.ids
        ns = self._exit[walks.steps, ids]
        delta = ns - walks.steps
        walks.vertices[:] = self._path[ns, ids]
        walks.steps[:] = ns  # in-place downcast; steps stay < 2**31
        active = ns < self._term[ids]
        result = BatchRunResult(int(delta.sum()), int(delta.max()), active)
        self._record_kernel(partition, n, result, time.perf_counter() - started)
        return result

    # ------------------------------------------------------------------
    def close(self) -> None:
        super().close()
        # Numpy views must be dropped before the mappings can close.
        self._partition_cache.clear()
        self._offsets = None
        self._targets = None
        self._weights = None
        self._starts = None
        self._path = None
        self._term = None
        self._exit = None
        shms, self._shms = self._shms, []
        for shm in shms:
            try:
                shm.close()
                shm.unlink()
            except (FileNotFoundError, BufferError):  # pragma: no cover
                pass


register_backend(BACKEND_MULTIPROCESS, MultiprocessBackend)
