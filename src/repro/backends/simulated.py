"""The default backend: today's vectorized NumPy path, bit-identical.

Delegates straight to
:meth:`~repro.algorithms.base.RandomWalkAlgorithm.advance_in_partition`
and the stable argsort the reshuffler always used — the refactor moves
the call site, not the computation, so every golden stays bit-identical.
The only addition is observation: each delegated kernel is wrapped in
``time.perf_counter`` so the NumPy interpreter's real wall-clock is
recorded per kernel, giving ``repro bench backends`` its baseline.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from repro.algorithms.base import BatchRunResult
from repro.backends.base import ExecutionBackend
from repro.backends.registry import BACKEND_SIMULATED, register_backend
from repro.graph.csr import CSRGraph
from repro.graph.partition import GraphPartition
from repro.walks.state import WalkArrays


class SimulatedBackend(ExecutionBackend):
    """NumPy interpreter execution (the historical inline path)."""

    name = BACKEND_SIMULATED

    def advance(
        self,
        partition: GraphPartition,
        walks: WalkArrays,
        rng: np.random.Generator,
        graph: Optional[CSRGraph],
    ) -> BatchRunResult:
        assert self.algorithm is not None, "bind() must run before advance()"
        lanes = len(walks)
        started = time.perf_counter()
        result = self.algorithm.advance_in_partition(
            partition, walks, rng, graph
        )
        self._record_kernel(
            partition, lanes, result, time.perf_counter() - started
        )
        return result


register_backend(BACKEND_SIMULATED, SimulatedBackend)
