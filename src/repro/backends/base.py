"""The execution-backend protocol: *running* a kernel vs *costing* it.

Historically the compute stage had one call site doing both: the
vectorized NumPy step loop executed the walk semantics **and** its
:class:`~repro.algorithms.base.BatchRunResult` fed the analytic
:class:`~repro.gpu.kernels.KernelModel`.  An :class:`ExecutionBackend`
severs that assumption: the engine asks the backend to advance a batch
(and to group walks for reshuffle), while the simulated cost model keeps
charging simulated seconds from the returned step counts exactly as
before.  Backends additionally accumulate *measured* wall-clock per
kernel (:class:`MeasuredTimings`), so a run reports simulated seconds
and real seconds side by side and ``repro bench backends``
cross-validates the two.

House rule ``no-simulated-time-in-backends``: modules in this package
must never import :mod:`repro.gpu.timeline` or :mod:`repro.gpu.device`
— the measured path may not consume simulated clocks.

Real backends (numba, multiprocess) replay the engine bit-identically
because the counter RNG (:class:`~repro.core.prng.CounterRNG`) derives
every draw from ``(seed, walk_id, step, draw_index)`` alone: any
execution order — scalar per-lane loops, interleaved blocks, or
whole-trajectory precompute — produces the same trajectories.  They
therefore require ``rng_mode="counter"`` and a lock-step algorithm
(:func:`require_lockstep_algorithm`).
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.algorithms.base import BatchRunResult, RandomWalkAlgorithm
from repro.core.config import EngineConfig
from repro.graph.csr import CSRGraph
from repro.graph.partition import GraphPartition, PartitionedGraph
from repro.walks.state import WalkArrays


class BackendUnavailable(RuntimeError):
    """A registered backend cannot run here (missing optional dependency)."""


@dataclass(frozen=True)
class KernelRecord:
    """Measured wall-clock of one walk-updating kernel invocation.

    Mirrors the inputs of :meth:`repro.gpu.kernels.KernelModel.update_time`
    so a bench can compute the analytic prediction for exactly this
    invocation and compare it with ``seconds``.
    """

    partition: int
    lanes: int
    total_steps: int
    longest_run: int
    partition_nbytes: int
    sampler: str
    seconds: float

    def as_dict(self) -> Dict[str, object]:
        return {
            "partition": self.partition,
            "lanes": self.lanes,
            "total_steps": self.total_steps,
            "longest_run": self.longest_run,
            "partition_nbytes": self.partition_nbytes,
            "sampler": self.sampler,
            "seconds": self.seconds,
        }


@dataclass
class MeasuredTimings:
    """Accumulated real wall-clock of one backend over one run.

    ``setup_seconds`` is one-off preparation (worker forks, trajectory
    precompute, JIT warm-up); ``walk_update_seconds`` sums the per-kernel
    records; ``group_seconds`` is reshuffle grouping.  All values are
    measured with ``time.perf_counter`` — never simulated time.
    """

    setup_seconds: float = 0.0
    walk_update_seconds: float = 0.0
    group_seconds: float = 0.0
    kernels: List[KernelRecord] = field(default_factory=list)

    def as_dict(self) -> Dict[str, object]:
        return {
            "setup_seconds": self.setup_seconds,
            "walk_update_seconds": self.walk_update_seconds,
            "group_seconds": self.group_seconds,
            "num_kernels": len(self.kernels),
            "kernels": [record.as_dict() for record in self.kernels],
        }


def require_lockstep_algorithm(
    name: str, algorithm: RandomWalkAlgorithm, config: EngineConfig
) -> None:
    """Gate real backends to replayable workloads.

    A backend may re-order execution freely only when (a) randomness is
    schedule-independent (counter RNG) and (b) the algorithm is the stock
    lock-step :class:`~repro.algorithms.uniform.UniformSampling` step with
    no per-step observers or path recording — anything else must run on
    the ``simulated`` backend.
    """
    from repro.algorithms.uniform import UniformSampling

    reasons: List[str] = []
    if config.rng_mode != "counter":
        reasons.append("rng_mode must be 'counter' (schedule-independent draws)")
    if type(algorithm).step_once is not UniformSampling.step_once:
        reasons.append(
            f"algorithm {algorithm.name!r} overrides step_once; only the "
            "stock uniform-sampling step is replayable"
        )
    if type(algorithm).observe is not RandomWalkAlgorithm.observe:
        reasons.append("algorithm defines a per-step observe() hook")
    if getattr(algorithm, "record_paths", False) or getattr(
        algorithm, "paths", None
    ) is not None:
        reasons.append("path recording is not supported off the simulated path")
    if getattr(algorithm, "uses_subset_draws", False):
        reasons.append("sampler redraws data-dependent lane subsets")
    if reasons:
        detail = "; ".join(reasons)
        raise ValueError(
            f"backend {name!r} cannot execute this workload: {detail}"
        )


class ExecutionBackend(abc.ABC):
    """Executes the two kernel inner loops the engine used to inline.

    Lifecycle (a typestate contract, checked statically by
    ``repro lint --strict`` rule ``typestate-order``): ``bind`` (once,
    before the run) -> ``on_walks_seeded`` (once, with the freshly
    seeded walk arrays) -> many ``advance`` / ``group_order`` calls from
    the stages -> ``close``.  ``close`` is terminal and idempotent: a
    closed backend may still report ``timings()``, but re-``bind``-ing
    it raises (rule ``use-after-close``).  Implementations
    must mutate ``walks`` in place exactly like
    :meth:`~repro.algorithms.base.RandomWalkAlgorithm.advance_in_partition`
    and return an identical :class:`BatchRunResult` — the simulated cost
    model consumes those numbers unchanged, which is what keeps
    simulated timings bit-identical across backends.
    """

    name: str = "abstract"

    def __init__(self) -> None:
        self.measured = MeasuredTimings()
        self.graph: Optional[CSRGraph] = None
        self.pgraph: Optional[PartitionedGraph] = None
        self.algorithm: Optional[RandomWalkAlgorithm] = None
        self.config: Optional[EngineConfig] = None
        self.closed = False
        self._sampler_key = "uniform"

    # ------------------------------------------------------------------
    def bind(
        self,
        graph: CSRGraph,
        pgraph: PartitionedGraph,
        algorithm: RandomWalkAlgorithm,
        config: EngineConfig,
    ) -> None:
        """Attach the run's graph/algorithm/config (before any kernel)."""
        if self.closed:
            raise RuntimeError(
                f"backend {self.name!r} was closed; construct a fresh one"
            )
        self.graph = graph
        self.pgraph = pgraph
        self.algorithm = algorithm
        self.config = config
        self._sampler_key = getattr(algorithm, "transition_sampler", "uniform")

    def on_walks_seeded(self, walks: WalkArrays) -> None:
        """Hook called once with the full freshly seeded walk arrays."""

    @abc.abstractmethod
    def advance(
        self,
        partition: GraphPartition,
        walks: WalkArrays,
        rng: np.random.Generator,
        graph: Optional[CSRGraph],
    ) -> BatchRunResult:
        """Run one batch against one partition (the walk-updating kernel)."""

    def group_order(self, partition_ids: np.ndarray) -> np.ndarray:
        """Stable order grouping walks by partition (the reshuffle kernel).

        Must equal ``np.argsort(partition_ids, kind="stable")``.
        """
        started = time.perf_counter()
        order = np.argsort(partition_ids, kind="stable")
        self.measured.group_seconds += time.perf_counter() - started
        return order

    def timings(self) -> MeasuredTimings:
        return self.measured

    def close(self) -> None:
        """Release backend resources (workers, shared memory); idempotent."""
        self.closed = True

    # ------------------------------------------------------------------
    def _record_kernel(
        self,
        partition: GraphPartition,
        lanes: int,
        result: BatchRunResult,
        elapsed: float,
    ) -> None:
        self.measured.walk_update_seconds += elapsed
        self.measured.kernels.append(
            KernelRecord(
                partition=partition.index,
                lanes=lanes,
                total_steps=result.total_steps,
                longest_run=result.longest_run,
                partition_nbytes=partition.nbytes,
                sampler=self._sampler_key,
                seconds=elapsed,
            )
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} name={self.name!r}>"
