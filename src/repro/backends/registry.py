"""Backend registry: name -> factory, mirroring the sampler registry.

:class:`~repro.core.config.EngineConfig`, the CLI and the benches all
select execution backends by these names.  ``simulated`` is always
available and stays the default; ``multiprocess`` is dependency-free;
``numba`` registers unconditionally but its factory raises
:class:`~repro.backends.base.BackendUnavailable` when numba is not
installed, so callers can distinguish "unknown backend" (ValueError)
from "known but not runnable here".
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.backends.base import ExecutionBackend

BACKEND_SIMULATED = "simulated"
BACKEND_NUMBA = "numba"
BACKEND_MULTIPROCESS = "multiprocess"

_REGISTRY: Dict[str, Callable[[], ExecutionBackend]] = {}


def register_backend(
    name: str, factory: Callable[[], ExecutionBackend]
) -> None:
    """Register an execution-backend factory under ``name``."""
    if not name or not isinstance(name, str):
        raise ValueError("backend name must be a non-empty string")
    if name in _REGISTRY:
        raise ValueError(f"backend {name!r} is already registered")
    _REGISTRY[name] = factory


def available_backends() -> Tuple[str, ...]:
    """Registered backend names, sorted (regardless of runnability)."""
    _ensure_builtins()
    return tuple(sorted(_REGISTRY))


def make_backend(name: str) -> ExecutionBackend:
    """Instantiate the backend registered under ``name``.

    Raises ``ValueError`` for unknown names and
    :class:`~repro.backends.base.BackendUnavailable` when the backend is
    known but its optional dependency is missing.
    """
    _ensure_builtins()
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; available: "
            f"{', '.join(available_backends())}"
        ) from None
    return factory()


def _ensure_builtins() -> None:
    """Import the built-in backends (registered on module import)."""
    if BACKEND_SIMULATED not in _REGISTRY:
        # Deferred to avoid a registry <-> implementation import cycle.
        from repro.backends import (  # noqa: F401
            multiprocess,
            numba_kernels,
            simulated,
        )
