"""Pluggable execution backends for the walk kernels.

The engine *costs* kernels with the simulated device model and
*executes* them through an :class:`ExecutionBackend`: ``simulated``
(the vectorized NumPy path, default), ``numba`` (JIT per-lane loops,
optional dependency) and ``multiprocess`` (shared-memory trajectory
precompute).  See :mod:`repro.backends.base` for the protocol and the
replayability gate that keeps all three bit-identical.
"""

from repro.backends.base import (
    BackendUnavailable,
    ExecutionBackend,
    KernelRecord,
    MeasuredTimings,
    require_lockstep_algorithm,
)
from repro.backends.registry import (
    BACKEND_MULTIPROCESS,
    BACKEND_NUMBA,
    BACKEND_SIMULATED,
    available_backends,
    make_backend,
    register_backend,
)

__all__ = [
    "BACKEND_MULTIPROCESS",
    "BACKEND_NUMBA",
    "BACKEND_SIMULATED",
    "BackendUnavailable",
    "ExecutionBackend",
    "KernelRecord",
    "MeasuredTimings",
    "available_backends",
    "make_backend",
    "register_backend",
    "require_lockstep_algorithm",
]
