"""Unified-virtual-memory (UVM) baseline (related work, §V).

Several systems the paper discusses (Grus; Gera et al.) process
out-of-GPU-memory graphs by ``cudaMallocManaged``-ing the CSR and letting
the driver page it in on demand.  That removes all partitioning logic, but
every cold access pays a page fault: the driver stalls the faulting warps,
migrates a whole page over PCIe, and evicts another page when device
memory is full.  For random walks — whose accesses are sparse and
non-repeating — fault-driven migration moves far more bytes than the walks
consume and the fault latency cannot be hidden, which is why
partition-based engines (and LightTraffic's batched explicit transfers)
win.

The model executes real walk semantics one step per iteration (all walks
in GPU memory, as these systems assume) while tracking the *actual* set of
pages each step touches (the offsets page and the edges page of every
visited vertex) through an LRU-ish FIFO page cache of the device's
capacity.  Faults charge migration time on the load stream and stall the
kernel.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.algorithms.base import RandomWalkAlgorithm
from repro.baselines.inmemory_cpu import whole_graph_partition
from repro.core.events import (
    SERVED_EXPLICIT,
    EventBus,
    GraphServed,
    IterationStarted,
    KernelDispatched,
    RunCompleted,
    WalkFinished,
)
from repro.core.metrics import MetricsCollector
from repro.core.prng import seeded_rng
from repro.core.stats import (
    CAT_GRAPH_LOAD,
    CAT_WALK_UPDATE,
    RunStats,
    StatsCollector,
)
from repro.gpu.calibration import Calibration, DEFAULT_CALIBRATION
from repro.gpu.device import DeviceSpec, RTX3090
from repro.gpu.kernels import KernelModel
from repro.gpu.pcie import PCIeSpec, interconnect_by_name
from repro.graph.csr import CSRGraph, VERTEX_ENTRY_BYTES
from repro.walks.state import WalkArrays


@dataclass(frozen=True)
class UVMConfig:
    """Knobs of the UVM baseline."""

    device: DeviceSpec = RTX3090
    interconnect: Union[str, PCIeSpec] = "pcie3"
    calibration: Calibration = DEFAULT_CALIBRATION
    #: driver page size (UVM migrates 64 KiB "page groups" by default).
    page_bytes: int = 64 * 1024
    #: driver-side latency per fault (fault handling + TLB shootdown).
    fault_latency_seconds: float = 20e-6
    #: device bytes available as the managed-memory page cache.
    gpu_memory_bytes: Optional[int] = None
    seed: Optional[int] = 42
    max_iterations: int = 100_000


class UVMEngine:
    """Fault-driven managed-memory random walk baseline."""

    system = "uvm"

    def __init__(
        self,
        graph: CSRGraph,
        algorithm: RandomWalkAlgorithm,
        config: UVMConfig = UVMConfig(),
        bus: Optional[EventBus] = None,
        metrics: Optional[MetricsCollector] = None,
    ) -> None:
        if config.page_bytes < 1:
            raise ValueError("page_bytes must be positive")
        self.graph = graph
        self.algorithm = algorithm
        self.config = config
        self.bus = bus
        self.metrics = metrics
        self.kernel_model = KernelModel(config.device, config.calibration)
        if isinstance(config.interconnect, PCIeSpec):
            self.pcie = config.interconnect
        else:
            self.pcie = interconnect_by_name(config.interconnect)
        self.faults = 0
        self.page_hits = 0

    # ------------------------------------------------------------------
    def _touched_pages(self, vertices: np.ndarray) -> np.ndarray:
        """Unique page ids read when stepping from these vertices."""
        page = self.config.page_bytes
        offset_bytes = vertices * VERTEX_ENTRY_BYTES
        offset_pages = offset_bytes // page
        vertex_region = VERTEX_ENTRY_BYTES * (self.graph.num_vertices + 1)
        edge_bytes = vertex_region + self.graph.offsets[vertices] * 8
        edge_pages = edge_bytes // page
        return np.unique(np.concatenate([offset_pages, edge_pages]))

    # ------------------------------------------------------------------
    def run(self, num_walks: int) -> RunStats:
        if num_walks < 1:
            raise ValueError("num_walks must be >= 1")
        cfg = self.config
        cal = cfg.calibration
        rng = seeded_rng(cfg.seed)
        graph = self.graph
        partition = whole_graph_partition(graph)
        capacity_bytes = cfg.gpu_memory_bytes or cfg.device.mem_bytes
        cache_pages = max(1, capacity_bytes // cfg.page_bytes)
        resident: "OrderedDict[int, None]" = OrderedDict()

        starts = self.algorithm.start_vertices(graph, num_walks, rng)
        walks = WalkArrays.fresh(starts)
        self.algorithm.on_start(walks, graph)
        alive = np.ones(num_walks, dtype=bool)

        stats = RunStats(
            system=self.system,
            algorithm=self.algorithm.name,
            graph=graph.name or "graph",
            num_walks=num_walks,
        )
        bus = self.bus if self.bus is not None else EventBus()
        observers = [bus.attach(StatsCollector(stats, metrics=self.metrics))]
        if self.metrics is not None:
            observers.append(bus.attach(self.metrics))
        migration_time = 0.0
        compute_time = 0.0
        steps_rate = self.kernel_model.steps_per_second(graph.csr_bytes)
        page_copy = self.pcie.explicit_copy_time(cfg.page_bytes)
        fault_cost = cfg.fault_latency_seconds * cal.sim_scale + page_copy
        self.faults = 0
        self.page_hits = 0
        iteration = 0

        try:
            while alive.any():
                iteration += 1
                if iteration > cfg.max_iterations:
                    raise RuntimeError("UVM baseline exceeded max_iterations")
                idx = np.nonzero(alive)[0]
                # UVM is unpartitioned — events carry partition 0 (the
                # managed allocation); each page fault is one explicit
                # page-group migration.
                bus.emit(IterationStarted(iteration, 0, int(idx.size)))

                # --- fault accounting for this step's accesses -----------
                pages = self._touched_pages(walks.vertices[idx])
                iteration_faults = 0
                for pid in pages.tolist():
                    if pid in resident:
                        resident.move_to_end(pid)
                        self.page_hits += 1
                    else:
                        iteration_faults += 1
                        if len(resident) >= cache_pages:
                            resident.popitem(last=False)
                        resident[pid] = None
                        bus.emit(
                            GraphServed(
                                iteration=iteration,
                                partition=0,
                                mode=SERVED_EXPLICIT,
                                copy_seconds=fault_cost,
                            )
                        )
                self.faults += iteration_faults
                migration_time += iteration_faults * fault_cost

                # --- one real walk step ----------------------------------
                new_v, terminated = self.algorithm.step_once(
                    walks.vertices[idx],
                    walks.steps[idx],
                    walks.ids[idx],
                    partition,
                    rng,
                    graph,
                )
                walks.vertices[idx] = new_v
                walks.steps[idx] += 1
                self.algorithm.observe(new_v, walks.ids[idx], terminated)
                alive[idx] = ~terminated
                kernel_time = (
                    cal.scaled_kernel_launch_seconds + idx.size / steps_rate
                )
                compute_time += kernel_time
                bus.emit(
                    KernelDispatched(
                        partition=0,
                        walks=int(idx.size),
                        steps=int(idx.size),
                        seconds=kernel_time,
                    )
                )
                finished_now = int(terminated.sum())
                if finished_now:
                    bus.emit(WalkFinished(partition=0, count=finished_now))

            # Faulting warps stall: migrations serialize with compute; the
            # page cache plays the graph pool's role in hit accounting.
            bus.emit(
                RunCompleted(
                    total_time=migration_time + compute_time,
                    breakdown={
                        CAT_GRAPH_LOAD: migration_time,
                        CAT_WALK_UPDATE: compute_time,
                    },
                    graph_pool_hits=self.page_hits,
                    graph_pool_misses=self.faults,
                    finished_walks=num_walks,
                )
            )
        finally:
            for observer in observers:
                bus.detach(observer)
        stats.notes = f"faults={self.faults} hits={self.page_hits}"
        return stats

    @property
    def fault_rate(self) -> float:
        """Fraction of page touches that faulted."""
        touches = self.faults + self.page_hits
        return self.faults / touches if touches else 0.0
