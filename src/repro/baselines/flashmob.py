"""FlashMob-like in-memory CPU random walk engine.

FlashMob (Yang et al., SOSP 2021) makes random walk memory accesses
*cache-efficient*: walkers are sorted/bucketed by their current vertex each
step, so graph accesses become near-sequential and LLC-friendly, at the
price of a per-step shuffle.  Its throughput therefore degrades only mildly
with graph size (extra shuffle passes), but it supports only fixed-length
walks — the paper notes PPR results are unavailable for FlashMob (§IV-B),
and this implementation enforces the same restriction.
"""

from __future__ import annotations

from repro.algorithms.base import RandomWalkAlgorithm
from repro.baselines.inmemory_cpu import InMemoryCPUEngine


class FlashMobEngine(InMemoryCPUEngine):
    """Sort-based cache-efficient engine (fixed-length walks only)."""

    system = "flashmob"

    def _check_supported(self, algorithm: RandomWalkAlgorithm) -> None:
        if not algorithm.fixed_length:
            raise ValueError(
                "FlashMob supports only fixed-length random walks "
                f"({algorithm.name} has variable length)"
            )

    def steps_per_second(self) -> float:
        return self.model.flashmob_steps_per_second(self.graph.csr_bytes)
