"""ThunderRW-like in-memory CPU random walk engine.

ThunderRW (Sun et al., VLDB 2021) hides the latency of irregular memory
accesses with a *step-centric* model: each core keeps a ring of in-flight
walks and interleaves their steps, overlapping the memory stalls of one
walk with the compute of another.  That makes it fast when the graph is
cache-resident and latency-hiding suffices, but on graphs far larger than
the LLC its random accesses become bandwidth-bound — the regime where the
paper reports LightTraffic's largest speedups (up to 12.8x, §IV-B).
"""

from __future__ import annotations

from repro.baselines.inmemory_cpu import InMemoryCPUEngine


class ThunderRWEngine(InMemoryCPUEngine):
    """Step-interleaved in-memory engine (supports all walk types)."""

    system = "thunderrw"

    def steps_per_second(self) -> float:
        return self.model.thunderrw_steps_per_second(self.graph.csr_bytes)
