"""Shared machinery for the in-memory CPU baselines.

Both CPU engines operate on the full CSR graph in DRAM, so their walk
semantics are a single whole-graph kernel invocation (walks never "leave"
the partition).  Timing comes from the per-system step-rate curves in
:mod:`repro.baselines.cpumodel`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.algorithms.base import RandomWalkAlgorithm
from repro.baselines.cpumodel import CPUCostModel, CPUSpec, XEON_GOLD_5218R
from repro.core.prng import seeded_rng
from repro.core.stats import CAT_CPU_COMPUTE, RunStats
from repro.graph.csr import CSRGraph
from repro.graph.partition import GraphPartition
from repro.walks.state import WalkArrays


def whole_graph_partition(graph: CSRGraph) -> GraphPartition:
    """A single pseudo-partition spanning the entire graph."""
    return GraphPartition(
        index=0,
        start=0,
        stop=graph.num_vertices,
        offsets=graph.offsets,
        targets=graph.targets,
        weights=graph.weights,
    )


def execute_in_memory(
    graph: CSRGraph,
    algorithm: RandomWalkAlgorithm,
    num_walks: int,
    rng: np.random.Generator,
) -> int:
    """Run all walks to completion against the full graph; returns steps."""
    starts = algorithm.start_vertices(graph, num_walks, rng)
    walks = WalkArrays.fresh(starts)
    algorithm.on_start(walks, graph)
    partition = whole_graph_partition(graph)
    result = algorithm.advance_in_partition(partition, walks, rng, graph)
    if result.active.any():
        raise RuntimeError("in-memory execution left unfinished walks")
    return result.total_steps


class InMemoryCPUEngine:
    """Base class: full-graph semantics + a per-system step-rate model."""

    system = "cpu"

    def __init__(
        self,
        graph: CSRGraph,
        algorithm: RandomWalkAlgorithm,
        cpu: CPUSpec = XEON_GOLD_5218R,
        seed: Optional[int] = 42,
    ) -> None:
        self.graph = graph
        self.algorithm = algorithm
        self.cpu = cpu
        self.model = CPUCostModel(cpu)
        self.seed = seed
        self._check_supported(algorithm)

    # ------------------------------------------------------------------
    def _check_supported(self, algorithm: RandomWalkAlgorithm) -> None:
        """Subclasses may reject algorithm classes (FlashMob: fixed only)."""

    def steps_per_second(self) -> float:
        raise NotImplementedError

    # ------------------------------------------------------------------
    def run(self, num_walks: int) -> RunStats:
        if num_walks < 1:
            raise ValueError("num_walks must be >= 1")
        rng = seeded_rng(self.seed)
        total_steps = execute_in_memory(
            self.graph, self.algorithm, num_walks, rng
        )
        sampler = getattr(self.algorithm, "transition_sampler", "uniform")
        rate = self.steps_per_second() / self.model.sampler_cost_multiplier(
            sampler
        )
        total_time = total_steps / rate
        return RunStats(
            system=self.system,
            algorithm=self.algorithm.name,
            graph=self.graph.name or "graph",
            num_walks=num_walks,
            total_steps=total_steps,
            iterations=1,
            total_time=total_time,
            breakdown={CAT_CPU_COMPUTE: total_time},
        )
