"""Subway-like out-of-GPU-memory baseline (§II-B, Fig 3, Table I, Fig 10).

Subway (Sabet et al., EuroSys 2020) keeps the graph in host memory and, in
every iteration, (1) *generates the active subgraph* on the CPU — the CSR
restricted to vertices with at least one resident walk, (2) *transfers* it
to the GPU (in chunks if it exceeds GPU memory), and (3) runs a
*vertex-centric* kernel in which one thread advances all walks co-located
at its vertex by one step.  The paper attributes Subway's poor random walk
performance to exactly these three costs:

* most loaded active edges are never used (a walk consumes one edge/step),
* subgraph generation is expensive when most vertices are active,
* vertex-centric execution is load-imbalanced (hub vertices serialize).

This implementation executes real walk semantics one step per iteration
and records per-iteration activity ratios (Fig 3) plus the three-way time
breakdown (Table I).  ``host_memory_bytes`` models the paper's observation
that Subway runs out of host memory on YH/CW due to subgraph buffers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Union

import numpy as np

from repro.algorithms.base import RandomWalkAlgorithm
from repro.baselines.inmemory_cpu import whole_graph_partition
from repro.core.events import (
    SERVED_EXPLICIT,
    EventBus,
    GraphServed,
    IterationStarted,
    KernelDispatched,
    RunCompleted,
    WalkFinished,
)
from repro.core.metrics import MetricsCollector
from repro.core.prng import seeded_rng
from repro.core.stats import (
    CAT_GRAPH_LOAD,
    CAT_SUBGRAPH,
    CAT_WALK_UPDATE,
    RunStats,
    StatsCollector,
)
from repro.gpu.calibration import Calibration, DEFAULT_CALIBRATION
from repro.gpu.device import DeviceSpec, RTX3090
from repro.gpu.kernels import KernelModel
from repro.gpu.pcie import PCIeSpec, interconnect_by_name
from repro.graph.csr import CSRGraph, EDGE_ENTRY_BYTES, VERTEX_ENTRY_BYTES
from repro.walks.state import WalkArrays


class SubwayOutOfMemory(RuntimeError):
    """Host memory exhausted while generating active subgraphs (§IV-B)."""


@dataclass(frozen=True)
class SubwayConfig:
    """Knobs of the Subway baseline."""

    device: DeviceSpec = RTX3090
    interconnect: Union[str, PCIeSpec] = "pcie3"
    calibration: Calibration = DEFAULT_CALIBRATION
    #: GPU bytes available for the active subgraph (chunked loads beyond it).
    gpu_memory_bytes: Optional[int] = None
    #: host bytes available; ``None`` disables the OOM model.
    host_memory_bytes: Optional[int] = None
    seed: Optional[int] = 42
    max_iterations: int = 100_000


@dataclass(frozen=True)
class IterationRecord:
    """Per-iteration activity ratios (the Fig 3 series)."""

    iteration: int
    active_walks: int
    active_vertex_fraction: float
    active_edge_fraction: float
    used_edge_fraction: float


class SubwayEngine:
    """The Subway-style baseline engine."""

    system = "subway"

    def __init__(
        self,
        graph: CSRGraph,
        algorithm: RandomWalkAlgorithm,
        config: SubwayConfig = SubwayConfig(),
        bus: Optional[EventBus] = None,
        metrics: Optional[MetricsCollector] = None,
    ) -> None:
        self.graph = graph
        self.algorithm = algorithm
        self.config = config
        self.bus = bus
        self.metrics = metrics
        self.kernel_model = KernelModel(config.device, config.calibration)
        if isinstance(config.interconnect, PCIeSpec):
            self.pcie = config.interconnect
        else:
            self.pcie = interconnect_by_name(config.interconnect)
        self.records: List[IterationRecord] = []

    # ------------------------------------------------------------------
    def host_memory_estimate(self) -> int:
        """Peak host bytes: graph + subgraph buffers + activity bitmaps.

        Subway double-buffers the compacted subgraph next to the original
        CSR; in the worst iteration nearly every vertex is active, so the
        subgraph is almost as large as the graph itself.
        """
        graph_bytes = self.graph.csr_bytes
        bitmap_bytes = 2 * 8 * self.graph.num_vertices
        return 2 * graph_bytes + bitmap_bytes

    def _check_host_memory(self) -> None:
        budget = self.config.host_memory_bytes
        if budget is not None and self.host_memory_estimate() > budget:
            raise SubwayOutOfMemory(
                f"active-subgraph buffers need ~{self.host_memory_estimate()}"
                f" bytes, budget is {budget}"
            )

    # ------------------------------------------------------------------
    def run(self, num_walks: int) -> RunStats:
        if num_walks < 1:
            raise ValueError("num_walks must be >= 1")
        self._check_host_memory()
        cfg = self.config
        rng = seeded_rng(cfg.seed)
        graph = self.graph
        degrees = graph.degrees()
        partition = whole_graph_partition(graph)
        gpu_budget = cfg.gpu_memory_bytes or cfg.device.mem_bytes

        starts = self.algorithm.start_vertices(graph, num_walks, rng)
        walks = WalkArrays.fresh(starts)
        self.algorithm.on_start(walks, graph)
        alive = np.ones(num_walks, dtype=bool)

        stats = RunStats(
            system=self.system,
            algorithm=self.algorithm.name,
            graph=graph.name or "graph",
            num_walks=num_walks,
        )
        bus = self.bus if self.bus is not None else EventBus()
        observers = [bus.attach(StatsCollector(stats, metrics=self.metrics))]
        if self.metrics is not None:
            observers.append(bus.attach(self.metrics))
        breakdown = {CAT_SUBGRAPH: 0.0, CAT_GRAPH_LOAD: 0.0, CAT_WALK_UPDATE: 0.0}
        self.records = []
        cal = cfg.calibration
        iteration = 0

        try:
            while alive.any():
                iteration += 1
                if iteration > cfg.max_iterations:
                    raise RuntimeError(
                        "Subway baseline exceeded max_iterations"
                    )
                idx = np.nonzero(alive)[0]
                vertices = walks.vertices[idx]
                # Subway is unpartitioned — events carry partition 0 (the
                # whole-graph active subgraph).
                bus.emit(IterationStarted(iteration, 0, int(idx.size)))

                # --- (1) active subgraph generation on the CPU ----------
                active_vertices, per_vertex = np.unique(
                    vertices, return_counts=True
                )
                active_edges = int(degrees[active_vertices].sum())
                scan_cost = (
                    (active_vertices.size + active_edges)
                    * cal.subway_subgraph_cycles_per_edge
                    / cal.cpu_clock_hz
                )
                breakdown[CAT_SUBGRAPH] += scan_cost

                # --- (2) transfer (chunked when exceeding GPU memory) ---
                subgraph_bytes = (
                    VERTEX_ENTRY_BYTES * (active_vertices.size + 1)
                    + EDGE_ENTRY_BYTES * active_edges
                )
                chunks = max(1, math.ceil(subgraph_bytes / gpu_budget))
                for c in range(chunks):
                    chunk_bytes = subgraph_bytes // chunks
                    copy_t = (
                        self.pcie.explicit_copy_time(chunk_bytes)
                        + cal.scaled_memcpy_call_seconds
                    )
                    breakdown[CAT_GRAPH_LOAD] += copy_t
                    bus.emit(
                        GraphServed(
                            iteration=iteration,
                            partition=0,
                            mode=SERVED_EXPLICIT,
                            copy_seconds=copy_t,
                        )
                    )

                # --- (3) vertex-centric kernel: one step per walk -------
                new_v, terminated = self.algorithm.step_once(
                    vertices, walks.steps[idx], walks.ids[idx], partition,
                    rng, graph,
                )
                walks.vertices[idx] = new_v
                walks.steps[idx] += 1
                self.algorithm.observe(new_v, walks.ids[idx], terminated)
                alive[idx] = ~terminated
                steps_this_iter = int(idx.size)
                max_group = int(per_vertex.max())
                kernel_time = self.kernel_model.vertex_centric_time(
                    steps_this_iter, max_group
                )
                kernel_time += cal.scaled_kernel_launch_seconds * chunks
                breakdown[CAT_WALK_UPDATE] += kernel_time
                bus.emit(
                    KernelDispatched(
                        partition=0,
                        walks=steps_this_iter,
                        steps=steps_this_iter,
                        seconds=kernel_time,
                    )
                )
                finished_now = int(terminated.sum())
                if finished_now:
                    bus.emit(WalkFinished(partition=0, count=finished_now))

                self.records.append(
                    IterationRecord(
                        iteration=iteration,
                        active_walks=steps_this_iter,
                        active_vertex_fraction=(
                            active_vertices.size / graph.num_vertices
                        ),
                        active_edge_fraction=(
                            active_edges / graph.num_edges
                            if graph.num_edges else 0.0
                        ),
                        used_edge_fraction=(
                            steps_this_iter / active_edges
                            if active_edges else 0.0
                        ),
                    )
                )

            # Subway's phases are effectively serial (Table I ~100%).
            bus.emit(
                RunCompleted(
                    total_time=sum(breakdown.values()),
                    breakdown=breakdown,
                    finished_walks=num_walks,
                )
            )
        finally:
            for observer in observers:
                bus.detach(observer)
        return stats
