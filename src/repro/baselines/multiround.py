"""Multi-round baseline: split walks into GPU-memory-sized sets (§II-B, Fig 16).

The intuitive alternative to an out-of-memory walk index: divide all walks
into ``rounds`` sets, each small enough to keep entirely in GPU memory, and
run the sets sequentially with the partition-based engine.  Every round
re-streams the graph partitions, so total graph traffic grows roughly
linearly with the number of rounds — the effect Fig 16 measures (up to
~3.5x slowdown at 25 cached partitions).

Aggregation rides the event bus: every round's engine emits onto one
shared :class:`~repro.core.events.EventBus`, and a single
:class:`~repro.core.stats.StatsCollector` subscription accumulates the
cross-round totals (each round contributes one ``RunCompleted``).
"""

from __future__ import annotations

import math
from typing import Callable, Optional

from repro.algorithms.base import RandomWalkAlgorithm
from repro.core.config import EngineConfig
from repro.core.engine import LightTrafficEngine
from repro.core.events import EventBus
from repro.core.metrics import MetricsCollector
from repro.core.stats import RunStats, StatsCollector
from repro.graph.csr import CSRGraph
from repro.graph.partition import PartitionedGraph


class MultiRoundEngine:
    """Sequential rounds of the partition-based engine, one walk set each."""

    system = "multiround"

    def __init__(
        self,
        graph: CSRGraph,
        algorithm_factory: Callable[[], RandomWalkAlgorithm],
        config: EngineConfig = EngineConfig(),
        rounds: int = 2,
        partitioned: Optional[PartitionedGraph] = None,
        bus: Optional[EventBus] = None,
        metrics: Optional[MetricsCollector] = None,
    ) -> None:
        if rounds < 1:
            raise ValueError("rounds must be >= 1")
        self.graph = graph
        self.algorithm_factory = algorithm_factory
        self.rounds = rounds
        # Within a round all walks fit in GPU memory: no walk-pool cap.
        self.config = config.with_options(walk_pool_walks=None)
        self.partitioned = partitioned
        self.bus = bus
        self.metrics = metrics

    # ------------------------------------------------------------------
    def run(self, num_walks: int) -> RunStats:
        if num_walks < self.rounds:
            raise ValueError("need at least one walk per round")
        per_round = math.ceil(num_walks / self.rounds)
        remaining = num_walks
        aggregate = RunStats(
            system=self.system,
            algorithm=self.algorithm_factory().name,
            graph=self.graph.name or "graph",
            num_walks=num_walks,
        )
        bus = self.bus if self.bus is not None else EventBus()
        observers = [
            bus.attach(StatsCollector(aggregate, metrics=self.metrics))
        ]
        if self.metrics is not None:
            observers.append(bus.attach(self.metrics))
        round_summaries = []
        try:
            for round_index in range(self.rounds):
                walks_this_round = min(per_round, remaining)
                remaining -= walks_this_round
                engine = LightTrafficEngine(
                    self.graph,
                    self.algorithm_factory(),
                    self.config.with_options(
                        seed=(self.config.seed or 0) + round_index
                    ),
                    partitioned=self.partitioned,
                    bus=bus,
                )
                round_stats = engine.run(walks_this_round)
                aggregate.num_partitions = round_stats.num_partitions
                if round_stats.sanitizer is not None:
                    round_summaries.append(round_stats.sanitizer)
        finally:
            for observer in observers:
                bus.detach(observer)
        if round_summaries:
            # Each round ran its own sanitized engine; the aggregate rolls
            # the per-round findings up so --sanitize gates on all rounds.
            aggregate.sanitizer = {
                "checks": sum(s["checks"] for s in round_summaries),
                "violation_count": sum(
                    s["violation_count"] for s in round_summaries
                ),
                "violations": [
                    v for s in round_summaries for v in s["violations"]
                ],
                "by_rule": {
                    rule: sum(
                        s["by_rule"].get(rule, 0) for s in round_summaries
                    )
                    for s in round_summaries
                    for rule in s["by_rule"]
                },
                "clean": all(s["clean"] for s in round_summaries),
                "rounds": len(round_summaries),
            }
        aggregate.notes = f"rounds={self.rounds}"
        return aggregate
