"""Multi-round baseline: split walks into GPU-memory-sized sets (§II-B, Fig 16).

The intuitive alternative to an out-of-memory walk index: divide all walks
into ``rounds`` sets, each small enough to keep entirely in GPU memory, and
run the sets sequentially with the partition-based engine.  Every round
re-streams the graph partitions, so total graph traffic grows roughly
linearly with the number of rounds — the effect Fig 16 measures (up to
~3.5x slowdown at 25 cached partitions).
"""

from __future__ import annotations

import math
from typing import Callable

from repro.algorithms.base import RandomWalkAlgorithm
from repro.core.config import EngineConfig
from repro.core.engine import LightTrafficEngine
from repro.core.stats import RunStats
from repro.graph.csr import CSRGraph
from repro.graph.partition import PartitionedGraph


class MultiRoundEngine:
    """Sequential rounds of the partition-based engine, one walk set each."""

    system = "multiround"

    def __init__(
        self,
        graph: CSRGraph,
        algorithm_factory: Callable[[], RandomWalkAlgorithm],
        config: EngineConfig = EngineConfig(),
        rounds: int = 2,
        partitioned: PartitionedGraph = None,
    ) -> None:
        if rounds < 1:
            raise ValueError("rounds must be >= 1")
        self.graph = graph
        self.algorithm_factory = algorithm_factory
        self.rounds = rounds
        # Within a round all walks fit in GPU memory: no walk-pool cap.
        self.config = config.with_options(walk_pool_walks=None)
        self.partitioned = partitioned

    # ------------------------------------------------------------------
    def run(self, num_walks: int) -> RunStats:
        if num_walks < self.rounds:
            raise ValueError("need at least one walk per round")
        per_round = math.ceil(num_walks / self.rounds)
        aggregate = None
        remaining = num_walks
        sample_algorithm = self.algorithm_factory()
        for round_index in range(self.rounds):
            walks_this_round = min(per_round, remaining)
            remaining -= walks_this_round
            algorithm = self.algorithm_factory()
            engine = LightTrafficEngine(
                self.graph,
                algorithm,
                self.config.with_options(
                    seed=(self.config.seed or 0) + round_index
                ),
                partitioned=self.partitioned,
            )
            stats = engine.run(walks_this_round)
            if aggregate is None:
                aggregate = stats
            else:
                aggregate.total_steps += stats.total_steps
                aggregate.iterations += stats.iterations
                aggregate.explicit_copies += stats.explicit_copies
                aggregate.zero_copy_iterations += stats.zero_copy_iterations
                aggregate.graph_pool_hits += stats.graph_pool_hits
                aggregate.graph_pool_misses += stats.graph_pool_misses
                aggregate.walk_batches_loaded += stats.walk_batches_loaded
                aggregate.walk_batches_evicted += stats.walk_batches_evicted
                aggregate.total_time += stats.total_time
                for key, value in stats.breakdown.items():
                    aggregate.breakdown[key] = (
                        aggregate.breakdown.get(key, 0.0) + value
                    )
        aggregate.system = self.system
        aggregate.algorithm = sample_algorithm.name
        aggregate.num_walks = num_walks
        aggregate.notes = f"rounds={self.rounds}"
        return aggregate
