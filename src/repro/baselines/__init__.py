"""Comparator systems re-implemented for the paper's evaluation (§IV).

* :mod:`repro.baselines.thunderrw` — ThunderRW-like in-memory CPU engine
  (step-interleaved random access hiding DRAM latency).
* :mod:`repro.baselines.flashmob` — FlashMob-like sort-based cache-efficient
  CPU engine (fixed-length walks only, as in the paper).
* :mod:`repro.baselines.subway` — Subway-like out-of-GPU-memory baseline
  (dynamic active subgraph + vertex-centric kernel).
* :mod:`repro.baselines.nextdoor` — NextDoor-like in-GPU-memory baseline.
* :mod:`repro.baselines.multiround` — the multi-round alternative of §II-B
  (split walks into GPU-memory-sized sets, run sequentially).
* :mod:`repro.baselines.uvm` — unified-virtual-memory fault-driven
  processing (the related-work approach LightTraffic's explicit transfers
  outperform, §V).

All baselines execute the *same* walk semantics as the LightTraffic engine
(shared algorithm kernels) and report the same :class:`~repro.core.stats.RunStats`;
their timing comes from analytic cost models documented per module.
"""

from repro.baselines.cpumodel import CPUSpec, CPUCostModel, XEON_GOLD_5218R
from repro.baselines.thunderrw import ThunderRWEngine
from repro.baselines.flashmob import FlashMobEngine
from repro.baselines.subway import SubwayEngine, SubwayConfig, SubwayOutOfMemory
from repro.baselines.nextdoor import NextDoorEngine, NextDoorConfig
from repro.baselines.multiround import MultiRoundEngine
from repro.baselines.uvm import UVMEngine, UVMConfig

__all__ = [
    "CPUSpec",
    "CPUCostModel",
    "XEON_GOLD_5218R",
    "ThunderRWEngine",
    "FlashMobEngine",
    "SubwayEngine",
    "SubwayConfig",
    "SubwayOutOfMemory",
    "NextDoorEngine",
    "NextDoorConfig",
    "MultiRoundEngine",
    "UVMEngine",
    "UVMConfig",
]
