"""NextDoor-like in-GPU-memory baseline (Fig 11).

NextDoor (Jangda et al., EuroSys 2021) accelerates graph sampling on GPUs
with transit-parallel scheduling and caching, but assumes the graph *and*
all sampler state fit in GPU memory.  The model here: one up-front transfer
of the whole graph, then one kernel per walk step over all active walks,
with a per-step scheduling/caching overhead factor relative to
LightTraffic's multi-step batch kernel.  The paper finds LightTraffic
slightly faster even in-memory, thanks to the pipelined initial load and
two-level reshuffling (§IV-B).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.algorithms.base import RandomWalkAlgorithm
from repro.baselines.inmemory_cpu import whole_graph_partition
from repro.core.prng import seeded_rng
from repro.core.stats import CAT_GRAPH_LOAD, CAT_WALK_UPDATE, RunStats
from repro.gpu.calibration import Calibration, DEFAULT_CALIBRATION
from repro.gpu.device import DeviceSpec, RTX3090
from repro.gpu.kernels import KernelModel
from repro.gpu.pcie import PCIeSpec, interconnect_by_name
from repro.graph.csr import CSRGraph
from repro.walks.state import WalkArrays


@dataclass(frozen=True)
class NextDoorConfig:
    """Knobs of the NextDoor baseline."""

    device: DeviceSpec = RTX3090
    interconnect: Union[str, PCIeSpec] = "pcie3"
    calibration: Calibration = DEFAULT_CALIBRATION
    seed: Optional[int] = 42
    max_iterations: int = 100_000


class NextDoorEngine:
    """In-GPU-memory per-step sampler baseline."""

    system = "nextdoor"

    def __init__(
        self,
        graph: CSRGraph,
        algorithm: RandomWalkAlgorithm,
        config: NextDoorConfig = NextDoorConfig(),
    ) -> None:
        if graph.csr_bytes > config.device.mem_bytes:
            raise ValueError(
                "NextDoor requires the graph to fit in GPU memory "
                f"({graph.csr_bytes} > {config.device.mem_bytes} bytes)"
            )
        self.graph = graph
        self.algorithm = algorithm
        self.config = config
        self.kernel_model = KernelModel(config.device, config.calibration)
        if isinstance(config.interconnect, PCIeSpec):
            self.pcie = config.interconnect
        else:
            self.pcie = interconnect_by_name(config.interconnect)

    # ------------------------------------------------------------------
    def run(self, num_walks: int) -> RunStats:
        if num_walks < 1:
            raise ValueError("num_walks must be >= 1")
        cfg = self.config
        cal = cfg.calibration
        rng = seeded_rng(cfg.seed)
        graph = self.graph
        partition = whole_graph_partition(graph)

        starts = self.algorithm.start_vertices(graph, num_walks, rng)
        walks = WalkArrays.fresh(starts)
        self.algorithm.on_start(walks, graph)
        alive = np.ones(num_walks, dtype=bool)

        stats = RunStats(
            system=self.system,
            algorithm=self.algorithm.name,
            graph=graph.name or "graph",
            num_walks=num_walks,
        )
        load_time = (
            self.pcie.explicit_copy_time(graph.csr_bytes)
            + cal.scaled_memcpy_call_seconds
        )
        stats.explicit_copies = 1
        compute_time = 0.0
        steps_rate = self.kernel_model.steps_per_second(
            graph.csr_bytes,
            getattr(self.algorithm, "transition_sampler", "uniform"),
        )

        while alive.any():
            stats.iterations += 1
            if stats.iterations > cfg.max_iterations:
                raise RuntimeError("NextDoor baseline exceeded max_iterations")
            idx = np.nonzero(alive)[0]
            new_v, terminated = self.algorithm.step_once(
                walks.vertices[idx],
                walks.steps[idx],
                walks.ids[idx],
                partition,
                rng,
                graph,
            )
            walks.vertices[idx] = new_v
            walks.steps[idx] += 1
            self.algorithm.observe(new_v, walks.ids[idx], terminated)
            alive[idx] = ~terminated
            stats.total_steps += int(idx.size)
            compute_time += (
                cal.scaled_kernel_launch_seconds
                + cal.nextdoor_overhead_factor * idx.size / steps_rate
            )

        stats.breakdown = {
            CAT_GRAPH_LOAD: load_time,
            CAT_WALK_UPDATE: compute_time,
        }
        stats.total_time = load_time + compute_time
        return stats
