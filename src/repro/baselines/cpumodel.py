"""CPU memory-hierarchy cost model shared by the CPU baselines.

The paper's CPU comparators differ in exactly one dimension that matters at
scale: *how they pay for memory access*.

* ThunderRW interleaves multiple walk steps per core so DRAM latency is
  partially hidden, but each step still issues random accesses; on graphs
  far larger than the LLC its throughput collapses to the random-access
  bandwidth of the memory system.
* FlashMob sorts walker groups so accesses become near-sequential; it pays a
  per-step shuffle cost instead, and degrades only mildly (extra shuffle
  passes) as the graph grows.

Both effects are modeled with a last-level-cache miss curve plus a
bandwidth ceiling.  LLC size must be scaled together with the datasets
(see :class:`repro.gpu.calibration.Calibration.sim_scale`); the benchmark
workloads pass the scaled spec.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.units import StepsPerSecond


@dataclass(frozen=True)
class CPUSpec:
    """The modeled CPU platform (paper testbed: 2x Xeon Gold 5218R)."""

    name: str
    cores: int = 40
    clock_hz: float = 2.1e9
    llc_bytes: int = 55 * (1 << 20)
    llc_latency_seconds: float = 20e-9
    dram_latency_seconds: float = 95e-9
    dram_bandwidth: float = 120e9

    def scaled(self, sim_scale: float) -> "CPUSpec":
        """LLC scaled to match scaled-down datasets (DESIGN.md §2)."""
        if not 0 < sim_scale <= 1:
            raise ValueError("sim_scale must be in (0, 1]")
        return replace(
            self, llc_bytes=max(4096, int(self.llc_bytes * sim_scale))
        )


#: The paper's CPU testbed.
XEON_GOLD_5218R = CPUSpec(name="2x-xeon-gold-5218r")


class CPUCostModel:
    """Per-step cost curves for the two CPU processing models.

    Both engines degrade as the graph outgrows the LLC, but differently:

    * ThunderRW issues truly random accesses; beyond the latency that step
      interleaving hides, every level of the memory system (LLC -> DRAM row
      buffers -> TLB reach) loses efficiency as the working set grows, which
      empirically looks like a superlinear-in-log2 per-step cost.  It is the
      fastest system on cache-friendly graphs and the slowest on huge ones
      (the two ends of the paper's 1.4x-12.8x LightTraffic speedup range).
    * FlashMob pays a per-step shuffle that grows with the number of sort
      passes (log of the working-set : cache ratio) but keeps its accesses
      sequential, so it degrades far more gently.
    """

    #: ThunderRW: fixed per-step work (RNG, offset arithmetic, state update).
    TRW_WORK_SECONDS = 20e-9
    #: ThunderRW: quadratic-in-log2 memory-system degradation coefficient.
    TRW_DEGRADE_SECONDS = 6.0e-9

    #: FlashMob: fixed per-step work.
    FM_WORK_SECONDS = 20e-9
    #: FlashMob: per-step shuffle/sort cost when the working set fits LLC.
    FM_SHUFFLE_SECONDS = 20e-9
    #: FlashMob: shuffle grows with extra passes as the graph outgrows LLC.
    FM_SHUFFLE_GROWTH = 1.0
    #: FlashMob: sequential bytes per step (sorted access).
    FM_SEQ_BYTES = 24.0
    #: FlashMob: fraction of DRAM bandwidth achieved sequentially.
    FM_SEQ_EFFICIENCY = 0.6

    #: Per-step cost multipliers of the transition-sampling methods on the
    #: CPU (ThunderRW's Table: alias pays a second cache line, ITS a
    #: binary search, rejection its expected proposal rounds).  Uniform is
    #: the 1.0 baseline so default-path costs are untouched.
    SAMPLER_MULTIPLIERS = {
        "uniform": 1.0,
        "alias": 1.15,
        "inverse": 1.5,
        "rejection": 2.2,
        "second_order": 2.5,
    }

    def __init__(self, spec: CPUSpec) -> None:
        self.spec = spec

    # ------------------------------------------------------------------
    def sampler_cost_multiplier(self, sampler: str = "uniform") -> float:
        """Per-step slowdown of one transition-sampling method."""
        multiplier = self.SAMPLER_MULTIPLIERS.get(sampler)
        if multiplier is None:
            raise ValueError(f"no CPU cost entry for sampler {sampler!r}")
        return multiplier

    # ------------------------------------------------------------------
    def miss_rate(self, graph_bytes: int) -> float:
        """LLC miss probability of a uniform random access into the graph."""
        if graph_bytes <= 0:
            raise ValueError("graph_bytes must be positive")
        if graph_bytes <= self.spec.llc_bytes:
            return 0.02
        return min(0.98, 1.0 - self.spec.llc_bytes / graph_bytes)

    def _llc_ratio_bits(self, graph_bytes: int) -> float:
        import math

        return math.log2(max(1.0, graph_bytes / self.spec.llc_bytes))

    # ------------------------------------------------------------------
    def thunderrw_steps_per_second(self, graph_bytes: int) -> StepsPerSecond:
        """Machine-wide sustainable step rate of the interleaved engine."""
        bits = self._llc_ratio_bits(graph_bytes)
        per_step = self.TRW_WORK_SECONDS + self.TRW_DEGRADE_SECONDS * bits * bits
        return StepsPerSecond(self.spec.cores / per_step)

    # ------------------------------------------------------------------
    def flashmob_steps_per_second(self, graph_bytes: int) -> StepsPerSecond:
        """Machine-wide sustainable step rate of the sort-based engine."""
        spec = self.spec
        shuffle = self.FM_SHUFFLE_SECONDS * (
            1.0 + self.FM_SHUFFLE_GROWTH * self._llc_ratio_bits(graph_bytes)
        )
        per_step = self.FM_WORK_SECONDS + shuffle
        compute_bound = spec.cores / per_step
        bandwidth_bound = (
            spec.dram_bandwidth * self.FM_SEQ_EFFICIENCY / self.FM_SEQ_BYTES
        )
        return StepsPerSecond(min(compute_bound, bandwidth_bound))
