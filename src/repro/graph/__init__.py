"""Graph substrate: CSR storage, builders, generators, partitioning, IO.

This package provides the in-CPU-memory graph representation that the
LightTraffic engine and every baseline operate on.  The layout mirrors the
paper's Figure 5: a CSR vertex array (``offsets``) and edge array
(``targets``), plus an optional weight array for weighted random walks.
"""

from repro.graph.csr import CSRGraph
from repro.graph.builders import (
    from_edges,
    from_adjacency,
    preprocess_edges,
)
from repro.graph.generators import (
    rmat,
    erdos_renyi,
    barabasi_albert,
    star,
    ring,
    complete,
)
from repro.graph.partition import PartitionedGraph, GraphPartition, partition_by_range
from repro.graph.io import (
    save_edge_list,
    load_edge_list,
    save_csr,
    load_csr,
)

__all__ = [
    "CSRGraph",
    "from_edges",
    "from_adjacency",
    "preprocess_edges",
    "rmat",
    "erdos_renyi",
    "barabasi_albert",
    "star",
    "ring",
    "complete",
    "PartitionedGraph",
    "GraphPartition",
    "partition_by_range",
    "save_edge_list",
    "load_edge_list",
    "save_csr",
    "load_csr",
]
