"""Range-based graph partitioning (paper §III-B, Figure 5).

LightTraffic statically divides vertices ``0..|V|-1`` into disjoint
contiguous intervals; an edge belongs to the partition of its source vertex.
Intervals are grown greedily until adding the next vertex would push the
partition's CSR size past the configured block size, which gives three
properties the engine relies on:

* a partition's bytes are one contiguous CSR slice (single ``memcpy``),
* every partition fits in one graph-pool block (the block size), and
* ``vertex -> partition`` lookup is a binary search over interval starts.

A vertex whose edges alone exceed the block size gets a partition of its own
(the paper notes such vertices could be split further; we keep them whole and
let the memory pool allocate an oversized block, mirroring the YH caveat in
§IV-D).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.units import Bytes
from repro.graph.csr import CSRGraph, EDGE_ENTRY_BYTES, VERTEX_ENTRY_BYTES


@dataclass(frozen=True)
class GraphPartition:
    """One contiguous vertex interval of a partitioned graph.

    Attributes
    ----------
    index:
        partition id in ``[0, P)``.
    start, stop:
        vertex interval ``[start, stop)``.
    offsets:
        local CSR offsets rebased to 0, length ``stop - start + 1``.
    targets:
        edge array slice; targets keep global vertex ids.
    weights:
        optional weight slice aligned with ``targets``.
    """

    index: int
    start: int
    stop: int
    offsets: np.ndarray
    targets: np.ndarray
    weights: Optional[np.ndarray] = None

    @property
    def num_vertices(self) -> int:
        return self.stop - self.start

    @property
    def num_edges(self) -> int:
        return int(self.targets.size)

    @property
    def nbytes(self) -> int:
        """CSR bytes of this partition (paper's ``S_p``)."""
        size = VERTEX_ENTRY_BYTES * (self.num_vertices + 1)
        size += EDGE_ENTRY_BYTES * self.num_edges
        if self.weights is not None:
            size += EDGE_ENTRY_BYTES * self.num_edges
        return size

    def contains(self, vertex: int) -> bool:
        return self.start <= vertex < self.stop

    def local_neighbors(self, vertex: int) -> np.ndarray:
        """Neighbors of a (global-id) vertex served from this partition."""
        if not self.contains(vertex):
            raise IndexError(
                f"vertex {vertex} not in partition [{self.start}, {self.stop})"
            )
        local = vertex - self.start
        return self.targets[self.offsets[local] : self.offsets[local + 1]]


class PartitionedGraph:
    """A CSR graph plus its static range partitioning."""

    def __init__(
        self, graph: CSRGraph, partitions: List[GraphPartition]
    ) -> None:
        if not partitions:
            raise ValueError("need at least one partition")
        self.graph = graph
        self.partitions = partitions
        self._starts = np.asarray([p.start for p in partitions], dtype=np.int64)
        self._validate()

    def _validate(self) -> None:
        prev_stop = 0
        for i, part in enumerate(self.partitions):
            if part.index != i:
                raise ValueError("partition indices must be 0..P-1 in order")
            if part.start != prev_stop:
                raise ValueError("partitions must tile the vertex range")
            if part.stop <= part.start:
                raise ValueError("partitions must be non-empty")
            prev_stop = part.stop
        if prev_stop != self.graph.num_vertices:
            raise ValueError("partitions must cover all vertices")

    @property
    def num_partitions(self) -> int:
        return len(self.partitions)

    @property
    def max_partition_bytes(self) -> Bytes:
        return Bytes(max(p.nbytes for p in self.partitions))

    def find_partition(self, vertex: int) -> int:
        """Partition index of ``vertex`` via binary search (paper §III-B)."""
        if not 0 <= vertex < self.graph.num_vertices:
            raise IndexError(f"vertex {vertex} out of range")
        return int(np.searchsorted(self._starts, vertex, side="right") - 1)

    def find_partitions(self, vertices: np.ndarray) -> np.ndarray:
        """Vectorized ``find_partition`` for an array of vertex ids."""
        return np.searchsorted(self._starts, vertices, side="right") - 1

    def partition_of(self, vertex: int) -> GraphPartition:
        return self.partitions[self.find_partition(vertex)]

    def partition_sizes(self) -> np.ndarray:
        """Per-partition CSR bytes."""
        return np.asarray([p.nbytes for p in self.partitions], dtype=np.int64)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<PartitionedGraph P={self.num_partitions} "
            f"|V|={self.graph.num_vertices} |E|={self.graph.num_edges}>"
        )


def partition_by_range(graph: CSRGraph, block_bytes: int) -> PartitionedGraph:
    """Greedy range partitioning targeting ``block_bytes`` per partition.

    Vertices are appended to the current partition while the partition's CSR
    size stays within ``block_bytes``; a single vertex whose own edges exceed
    the budget still forms a (oversized) singleton partition so that the
    partitioning is always total.
    """
    if block_bytes <= 0:
        raise ValueError("block_bytes must be positive")
    if graph.num_vertices == 0:
        raise ValueError("cannot partition an empty graph")

    weight_per_edge = EDGE_ENTRY_BYTES * (2 if graph.is_weighted else 1)
    boundaries = [0]
    start = 0
    while start < graph.num_vertices:
        # Find the largest stop such that the CSR slice fits in block_bytes:
        # bytes(start, stop) = 8*(stop-start+1) + weight_per_edge*(off[stop]-off[start]).
        edge_budget_base = graph.offsets[start]

        def fits(stop: int) -> bool:
            nbytes = VERTEX_ENTRY_BYTES * (stop - start + 1)
            nbytes += weight_per_edge * int(graph.offsets[stop] - edge_budget_base)
            return nbytes <= block_bytes

        if not fits(start + 1):
            stop = start + 1  # oversized singleton
        else:
            # Binary search for the largest stop that still fits, keeping the
            # partitioning O(P log |V|).
            lo, hi = start + 1, graph.num_vertices
            while lo < hi:
                mid = (lo + hi + 1) // 2
                if fits(mid):
                    lo = mid
                else:
                    hi = mid - 1
            stop = lo
        boundaries.append(stop)
        start = stop

    partitions: List[GraphPartition] = []
    for i in range(len(boundaries) - 1):
        p_start, p_stop = boundaries[i], boundaries[i + 1]
        offsets, targets, weights = graph.subgraph_arrays(p_start, p_stop)
        partitions.append(
            GraphPartition(
                index=i,
                start=p_start,
                stop=p_stop,
                offsets=offsets,
                targets=targets,
                weights=weights,
            )
        )
    return PartitionedGraph(graph, partitions)


def partition_into(graph: CSRGraph, num_partitions: int) -> PartitionedGraph:
    """Partition so that *approximately* ``num_partitions`` result.

    Convenience used by benchmarks that sweep partition counts rather than
    byte sizes.  Binary-searches the block size; exact counts are not always
    achievable (greedy growth quantizes at vertex granularity), so the result
    has the closest achievable count ``<= 2x`` the request.
    """
    if num_partitions < 1:
        raise ValueError("num_partitions must be >= 1")
    total = graph.csr_bytes
    block = max(total // num_partitions, VERTEX_ENTRY_BYTES * 2)
    best = partition_by_range(graph, block)
    lo, hi = block // 4 + 1, total
    for _ in range(40):
        if best.num_partitions == num_partitions:
            break
        if best.num_partitions > num_partitions:
            lo = block + 1
        else:
            hi = block - 1
        if lo > hi:
            break
        block = (lo + hi) // 2
        candidate = partition_by_range(graph, block)
        if abs(candidate.num_partitions - num_partitions) <= abs(
            best.num_partitions - num_partitions
        ):
            best = candidate
    return best
