"""Graph analysis utilities.

Small, vectorized analyses used by the dataset registry (Table II style
statistics), the tests (structural sanity of generated graphs), and users
sizing engine configurations for their own graphs:

* degree statistics and power-law tail estimation,
* connected components (frontier BFS over CSR),
* reachable-set / effective-diameter probes via BFS,
* a partition "walk pressure" profile (how unevenly the stationary walk
  mass lands across range partitions — the skew selective scheduling
  exploits).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.core.prng import seeded_rng
from repro.graph.csr import CSRGraph
from repro.graph.partition import PartitionedGraph


@dataclass(frozen=True)
class DegreeStats:
    """Summary of a graph's degree distribution."""

    minimum: int
    maximum: int
    mean: float
    median: float
    p99: float
    gini: float

    @property
    def skewed(self) -> bool:
        """Heuristic: hub-dominated distributions have high Gini."""
        return self.gini > 0.4


def degree_stats(graph: CSRGraph) -> DegreeStats:
    """Degree distribution summary (d_max is Table II's last column)."""
    degrees = graph.degrees()
    if degrees.size == 0:
        return DegreeStats(0, 0, 0.0, 0.0, 0.0, 0.0)
    sorted_deg = np.sort(degrees).astype(np.float64)
    n = sorted_deg.size
    total = sorted_deg.sum()
    if total == 0:
        gini = 0.0
    else:
        # Gini via the sorted-cumulative formula.
        index = np.arange(1, n + 1)
        gini = float(
            (2 * (index * sorted_deg).sum()) / (n * total) - (n + 1) / n
        )
    return DegreeStats(
        minimum=int(degrees.min()),
        maximum=int(degrees.max()),
        mean=float(degrees.mean()),
        median=float(np.median(degrees)),
        p99=float(np.percentile(degrees, 99)),
        gini=gini,
    )


def bfs_levels(graph: CSRGraph, source: int) -> np.ndarray:
    """BFS distance from ``source`` (-1 for unreachable), frontier-vectorized."""
    if not 0 <= source < graph.num_vertices:
        raise IndexError(f"source {source} out of range")
    levels = np.full(graph.num_vertices, -1, dtype=np.int64)
    levels[source] = 0
    frontier = np.array([source], dtype=np.int64)
    depth = 0
    degrees = graph.degrees()
    while frontier.size:
        depth += 1
        # Gather all neighbors of the frontier in one shot.
        counts = degrees[frontier]
        if counts.sum() == 0:
            break
        starts = graph.offsets[frontier]
        gather = np.concatenate(
            [
                graph.targets[s : s + c]
                for s, c in zip(starts, counts)
                if c
            ]
        )
        fresh = np.unique(gather)
        fresh = fresh[levels[fresh] < 0]
        if fresh.size == 0:
            break
        levels[fresh] = depth
        frontier = fresh
    return levels


def connected_components(graph: CSRGraph) -> Tuple[np.ndarray, int]:
    """Component label per vertex and the component count (undirected view).

    Uses repeated BFS; treats edges as undirected (the preprocessing
    pipeline symmetrizes graphs, so this matches the benchmark datasets).
    """
    labels = np.full(graph.num_vertices, -1, dtype=np.int64)
    count = 0
    for v in range(graph.num_vertices):
        if labels[v] >= 0:
            continue
        reached = bfs_levels(graph, v) >= 0
        labels[reached & (labels < 0)] = count
        count += 1
    return labels, count


def largest_component_fraction(graph: CSRGraph) -> float:
    """Fraction of vertices in the largest (weakly) connected component."""
    if graph.num_vertices == 0:
        return 0.0
    labels, count = connected_components(graph)
    sizes = np.bincount(labels, minlength=count)
    return float(sizes.max() / graph.num_vertices)


def effective_diameter(
    graph: CSRGraph,
    percentile: float = 90.0,
    samples: int = 16,
    seed: Optional[int] = 7,
) -> float:
    """Approximate effective diameter from sampled BFS sources."""
    if not 0 < percentile <= 100:
        raise ValueError("percentile must be in (0, 100]")
    if graph.num_vertices == 0:
        return 0.0
    rng = seeded_rng(seed)
    sources = rng.integers(0, graph.num_vertices, size=min(samples, graph.num_vertices))
    distances = []
    for source in sources:
        levels = bfs_levels(graph, int(source))
        reachable = levels[levels >= 0]
        if reachable.size > 1:
            distances.append(np.percentile(reachable, percentile))
    return float(np.mean(distances)) if distances else 0.0


def walk_pressure_profile(partitioned: PartitionedGraph) -> np.ndarray:
    """Expected stationary walk mass per partition (simple walks).

    For an undirected graph the stationary distribution of a simple walk is
    degree-proportional; summing it per partition predicts which partitions
    stay walk-heavy — the signal selective scheduling keys on.  Returns a
    probability vector over partitions.
    """
    graph = partitioned.graph
    degrees = graph.degrees().astype(np.float64)
    total = degrees.sum()
    if total == 0:
        return np.full(partitioned.num_partitions, 1.0 / partitioned.num_partitions)
    pressure = np.empty(partitioned.num_partitions, dtype=np.float64)
    for part in partitioned.partitions:
        pressure[part.index] = degrees[part.start : part.stop].sum() / total
    return pressure
