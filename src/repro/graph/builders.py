"""Builders that turn raw edge data into :class:`~repro.graph.csr.CSRGraph`.

``preprocess_edges`` implements the paper's preprocessing pipeline
(§IV-A): convert to an undirected graph, remove self loops and duplicate
edges, and drop zero-degree vertices (compacting vertex ids).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.graph.csr import CSRGraph


def _as_edge_array(edges: Iterable[Tuple[int, int]]) -> np.ndarray:
    arr = np.asarray(list(edges) if not isinstance(edges, np.ndarray) else edges)
    if arr.size == 0:
        return np.empty((0, 2), dtype=np.int64)
    arr = np.asarray(arr, dtype=np.int64)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ValueError("edges must be an (n, 2) array of (source, target)")
    return arr


def preprocess_edges(
    edges: Iterable[Tuple[int, int]],
    undirected: bool = True,
    remove_self_loops: bool = True,
    remove_duplicates: bool = True,
    compact_ids: bool = True,
) -> Tuple[np.ndarray, int, np.ndarray]:
    """Clean an edge list the way the paper preprocesses its datasets.

    Returns ``(edges, num_vertices, id_map)`` where ``edges`` is the cleaned
    ``(n, 2)`` array, ``num_vertices`` counts the surviving vertices and
    ``id_map`` maps new vertex ids back to the original ids (identity when
    ``compact_ids`` is false).
    """
    arr = _as_edge_array(edges)
    if arr.size and arr.min() < 0:
        raise ValueError("vertex ids must be non-negative")
    if undirected and arr.size:
        arr = np.concatenate([arr, arr[:, ::-1]], axis=0)
    if remove_self_loops and arr.size:
        arr = arr[arr[:, 0] != arr[:, 1]]
    if remove_duplicates and arr.size:
        arr = np.unique(arr, axis=0)
    if arr.size == 0:
        return np.empty((0, 2), dtype=np.int64), 0, np.empty(0, dtype=np.int64)
    if compact_ids:
        used = np.unique(arr)
        remap = np.empty(int(used.max()) + 1, dtype=np.int64)
        remap[used] = np.arange(used.size)
        arr = remap[arr]
        return arr, int(used.size), used
    num_vertices = int(arr.max()) + 1
    return arr, num_vertices, np.arange(num_vertices, dtype=np.int64)


def from_edges(
    edges: Iterable[Tuple[int, int]],
    num_vertices: Optional[int] = None,
    weights: Optional[Sequence[float]] = None,
    sort_neighbors: bool = True,
    name: str = "",
) -> CSRGraph:
    """Build a CSR graph from an edge list.

    Parameters
    ----------
    edges:
        iterable of ``(source, target)`` pairs, or an ``(n, 2)`` array.
    num_vertices:
        total vertex count; inferred as ``max id + 1`` when omitted.
    weights:
        optional per-edge weights aligned with ``edges``.
    sort_neighbors:
        keep each neighbor list sorted (enables binary-search ``has_edge``).
    """
    arr = _as_edge_array(edges)
    if num_vertices is None:
        num_vertices = int(arr.max()) + 1 if arr.size else 0
    if arr.size and arr.max() >= num_vertices:
        raise ValueError("edge endpoint exceeds num_vertices")
    weight_arr = None
    if weights is not None:
        weight_arr = np.asarray(weights, dtype=np.float64)
        if weight_arr.shape != (arr.shape[0],):
            raise ValueError("weights must align with edges")

    if sort_neighbors and arr.size:
        order = np.lexsort((arr[:, 1], arr[:, 0]))
    elif arr.size:
        order = np.argsort(arr[:, 0], kind="stable")
    else:
        order = np.empty(0, dtype=np.int64)
    arr = arr[order]
    if weight_arr is not None:
        weight_arr = weight_arr[order]

    counts = np.bincount(arr[:, 0], minlength=num_vertices) if arr.size else (
        np.zeros(num_vertices, dtype=np.int64)
    )
    offsets = np.zeros(num_vertices + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    targets = arr[:, 1].copy() if arr.size else np.empty(0, dtype=np.int64)
    return CSRGraph(offsets, targets, weight_arr, name=name)


def from_adjacency(
    adjacency: Sequence[Sequence[int]],
    weights: Optional[Sequence[Sequence[float]]] = None,
    name: str = "",
) -> CSRGraph:
    """Build a CSR graph from per-vertex neighbor lists."""
    num_vertices = len(adjacency)
    counts = np.fromiter(
        (len(neigh) for neigh in adjacency), dtype=np.int64, count=num_vertices
    )
    offsets = np.zeros(num_vertices + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    targets = np.empty(int(offsets[-1]), dtype=np.int64)
    for v, neigh in enumerate(adjacency):
        targets[offsets[v] : offsets[v + 1]] = neigh
    weight_arr = None
    if weights is not None:
        if len(weights) != num_vertices:
            raise ValueError("weights must align with adjacency")
        weight_arr = np.empty_like(targets, dtype=np.float64)
        for v, w in enumerate(weights):
            if len(w) != counts[v]:
                raise ValueError(f"weights for vertex {v} misaligned")
            weight_arr[offsets[v] : offsets[v + 1]] = w
    return CSRGraph(offsets, targets, weight_arr, name=name)
