"""Synthetic graph generators.

The paper evaluates on seven real graphs (Table II) that are not
redistributable here, so the benchmark suite uses scaled-down synthetic
twins.  The workhorse is a vectorized R-MAT generator, which reproduces the
power-law degree skew (hub vertices, stragglers, hot partitions) that drives
the paper's scheduling results.  Simple deterministic topologies (star, ring,
complete) support unit tests with analytically known walk behaviour.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.prng import seeded_rng
from repro.graph.builders import from_edges, preprocess_edges
from repro.graph.csr import CSRGraph


def _rng(seed: Optional[int]) -> np.random.Generator:
    return seeded_rng(seed)


def rmat(
    scale: int,
    edge_factor: float,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: Optional[int] = None,
    undirected: bool = True,
    name: str = "",
) -> CSRGraph:
    """Generate an R-MAT graph with ``2**scale`` vertices.

    ``edge_factor`` is the number of generated edges per vertex *before*
    preprocessing (undirecting and dedup change the final count).  The
    recursive quadrant probabilities ``(a, b, c, d=1-a-b-c)`` default to the
    Graph500 values, which yield a heavy-tailed degree distribution similar
    to the paper's social/web graphs.
    """
    if scale < 1 or scale > 30:
        raise ValueError("scale must be in [1, 30]")
    if not 0 < edge_factor <= 1024:
        raise ValueError("edge_factor must be in (0, 1024]")
    if not 0 < a + b + c < 1:
        raise ValueError("quadrant probabilities must leave d = 1-a-b-c > 0")
    rng = _rng(seed)
    num_vertices = 1 << scale
    num_edges = int(edge_factor * num_vertices)
    src = np.zeros(num_edges, dtype=np.int64)
    dst = np.zeros(num_edges, dtype=np.int64)
    ab = a + b
    a_frac = a / ab
    c_frac = c / (1.0 - ab)
    for _ in range(scale):
        src <<= 1
        dst <<= 1
        go_down = rng.random(num_edges) >= ab
        # Within the chosen half, pick the right quadrant.
        right = np.where(
            go_down,
            rng.random(num_edges) >= c_frac,
            rng.random(num_edges) >= a_frac,
        )
        src += go_down
        dst += right
    edges = np.stack([src, dst], axis=1)
    cleaned, n, __ = preprocess_edges(edges, undirected=undirected)
    return from_edges(cleaned, num_vertices=n, name=name)


def erdos_renyi(
    num_vertices: int,
    num_edges: int,
    seed: Optional[int] = None,
    undirected: bool = True,
    name: str = "",
) -> CSRGraph:
    """Uniform random graph with ``num_edges`` sampled edges."""
    if num_vertices < 1:
        raise ValueError("num_vertices must be >= 1")
    rng = _rng(seed)
    src = rng.integers(0, num_vertices, size=num_edges, dtype=np.int64)
    dst = rng.integers(0, num_vertices, size=num_edges, dtype=np.int64)
    edges = np.stack([src, dst], axis=1)
    cleaned, n, __ = preprocess_edges(edges, undirected=undirected)
    return from_edges(cleaned, num_vertices=n, name=name)


def barabasi_albert(
    num_vertices: int,
    attach: int,
    seed: Optional[int] = None,
    name: str = "",
) -> CSRGraph:
    """Preferential-attachment graph (each new vertex attaches ``attach`` edges).

    Uses the repeated-endpoint trick for preferential attachment, so it runs
    in O(|E|) without per-step degree bookkeeping.
    """
    if attach < 1:
        raise ValueError("attach must be >= 1")
    if num_vertices <= attach:
        raise ValueError("num_vertices must exceed attach")
    rng = _rng(seed)
    # Start from a small clique of `attach + 1` vertices.
    seed_vertices = attach + 1
    repeated = []
    edges = []
    for v in range(seed_vertices):
        for u in range(v):
            edges.append((v, u))
            repeated.extend((v, u))
    for v in range(seed_vertices, num_vertices):
        pool = np.asarray(repeated, dtype=np.int64)
        choices = rng.choice(pool, size=attach, replace=True)
        for u in np.unique(choices):
            edges.append((v, int(u)))
            repeated.extend((v, int(u)))
    cleaned, n, __ = preprocess_edges(edges, undirected=True)
    return from_edges(cleaned, num_vertices=n, name=name)


def star(num_leaves: int, name: str = "star") -> CSRGraph:
    """Hub vertex 0 connected to ``num_leaves`` leaves (undirected)."""
    if num_leaves < 1:
        raise ValueError("num_leaves must be >= 1")
    leaves = np.arange(1, num_leaves + 1, dtype=np.int64)
    edges = np.stack([np.zeros_like(leaves), leaves], axis=1)
    cleaned, n, __ = preprocess_edges(edges, undirected=True, compact_ids=False)
    return from_edges(cleaned, num_vertices=n, name=name)


def ring(num_vertices: int, name: str = "ring") -> CSRGraph:
    """Cycle graph on ``num_vertices`` vertices (undirected)."""
    if num_vertices < 3:
        raise ValueError("ring needs at least 3 vertices")
    src = np.arange(num_vertices, dtype=np.int64)
    dst = (src + 1) % num_vertices
    cleaned, n, __ = preprocess_edges(
        np.stack([src, dst], axis=1), undirected=True, compact_ids=False
    )
    return from_edges(cleaned, num_vertices=n, name=name)


def complete(num_vertices: int, name: str = "complete") -> CSRGraph:
    """Complete graph on ``num_vertices`` vertices."""
    if num_vertices < 2:
        raise ValueError("complete graph needs at least 2 vertices")
    grid_src, grid_dst = np.meshgrid(
        np.arange(num_vertices, dtype=np.int64),
        np.arange(num_vertices, dtype=np.int64),
        indexing="ij",
    )
    mask = grid_src != grid_dst
    edges = np.stack([grid_src[mask], grid_dst[mask]], axis=1)
    return from_edges(edges, num_vertices=num_vertices, name=name)


def with_random_weights(
    graph: CSRGraph, seed: Optional[int] = None, low: float = 0.1, high: float = 1.0
) -> CSRGraph:
    """Copy of ``graph`` with uniform random edge weights in ``[low, high)``."""
    if low <= 0 or high <= low:
        raise ValueError("need 0 < low < high")
    rng = _rng(seed)
    weights = rng.uniform(low, high, size=graph.num_edges)
    return CSRGraph(graph.offsets, graph.targets, weights, name=graph.name)


def degree_histogram(graph: CSRGraph, bins: int = 32) -> Tuple[np.ndarray, np.ndarray]:
    """Log-binned degree histogram (testing/reporting helper)."""
    degrees = graph.degrees()
    degrees = degrees[degrees > 0]
    if degrees.size == 0:
        return np.zeros(0), np.zeros(0)
    edges = np.unique(
        np.geomspace(1, max(degrees.max(), 2), num=bins).astype(np.int64)
    )
    hist, bin_edges = np.histogram(degrees, bins=edges)
    return hist, bin_edges
