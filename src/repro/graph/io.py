"""Graph persistence: text edge lists and binary CSR files.

Binary CSR uses ``numpy``'s ``.npz`` container so a saved graph round-trips
bit-exactly; edge lists use the common whitespace-separated format of SNAP
datasets (``# comment`` lines allowed), matching how the paper's datasets are
distributed.
"""

from __future__ import annotations

import os
from typing import Optional, Union

import numpy as np

from repro.graph.builders import from_edges, preprocess_edges
from repro.graph.csr import CSRGraph

PathLike = Union[str, "os.PathLike[str]"]


def save_edge_list(graph: CSRGraph, path: PathLike, header: bool = True) -> None:
    """Write the graph as a ``source target [weight]`` text file."""
    with open(path, "w", encoding="utf-8") as handle:
        if header:
            handle.write(
                f"# repro edge list |V|={graph.num_vertices} "
                f"|E|={graph.num_edges}\n"
            )
        degrees = graph.degrees()
        sources = np.repeat(np.arange(graph.num_vertices, dtype=np.int64), degrees)
        if graph.weights is None:
            for s, t in zip(sources, graph.targets):
                handle.write(f"{s} {t}\n")
        else:
            for s, t, w in zip(sources, graph.targets, graph.weights):
                handle.write(f"{s} {t} {w:.17g}\n")


def load_edge_list(
    path: PathLike,
    undirected: bool = False,
    preprocess: bool = False,
    name: str = "",
) -> CSRGraph:
    """Load a whitespace-separated edge list.

    ``preprocess=True`` applies the paper's pipeline (undirect, dedup, drop
    self loops and zero-degree vertices); otherwise edges are used verbatim.
    """
    sources, targets, weights = [], [], []
    weighted: Optional[bool] = None
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line or line.startswith(("#", "%")):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise ValueError(f"malformed edge line: {line!r}")
            if weighted is None:
                weighted = len(parts) >= 3
            sources.append(int(parts[0]))
            targets.append(int(parts[1]))
            if weighted:
                weights.append(float(parts[2]) if len(parts) >= 3 else 1.0)
    edges = np.stack(
        [
            np.asarray(sources, dtype=np.int64),
            np.asarray(targets, dtype=np.int64),
        ],
        axis=1,
    ) if sources else np.empty((0, 2), dtype=np.int64)
    if preprocess:
        cleaned, n, __ = preprocess_edges(edges, undirected=True)
        return from_edges(cleaned, num_vertices=n, name=name)
    if undirected and edges.size:
        edges = np.concatenate([edges, edges[:, ::-1]], axis=0)
        if weighted:
            weights = weights + weights
    return from_edges(
        edges,
        weights=np.asarray(weights) if weighted and weights else None,
        name=name,
    )


def save_csr(graph: CSRGraph, path: PathLike) -> None:
    """Save the CSR arrays to a compressed ``.npz`` file."""
    payload = {
        "offsets": graph.offsets,
        "targets": graph.targets,
        "name": np.asarray(graph.name),
    }
    if graph.weights is not None:
        payload["weights"] = graph.weights
    np.savez_compressed(path, **payload)


def load_csr(path: PathLike) -> CSRGraph:
    """Load a graph saved by :func:`save_csr`."""
    with np.load(path, allow_pickle=False) as data:
        weights = data["weights"] if "weights" in data.files else None
        name = str(data["name"]) if "name" in data.files else ""
        return CSRGraph(data["offsets"], data["targets"], weights, name=name)
