"""Compressed Sparse Row graph representation.

The paper stores graphs in CSR format (Figure 5): a vertex array whose entry
``offsets[v]`` gives the start of vertex ``v``'s neighbor range in the edge
array, and an edge array holding neighbor ids.  All LightTraffic components
(partitioner, engine kernels, baselines) consume this structure.

Sizing conventions follow the paper's accounting: vertex ids are 8 bytes and
edge entries are 8 bytes, so the CSR size of a graph is
``8 * (|V| + 1) + 8 * |E|`` bytes (plus another ``8 * |E|`` when weighted).
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence, Tuple

import numpy as np

from repro.core.units import Bytes

#: Bytes used per vertex-array entry when accounting CSR sizes.
VERTEX_ENTRY_BYTES = 8
#: Bytes used per edge-array entry when accounting CSR sizes.
EDGE_ENTRY_BYTES = 8


class CSRGraph:
    """An immutable CSR graph.

    Parameters
    ----------
    offsets:
        ``int64`` array of length ``num_vertices + 1``; monotonically
        non-decreasing, ``offsets[0] == 0`` and ``offsets[-1] == num_edges``.
    targets:
        ``int64`` array of length ``num_edges`` with neighbor vertex ids.
    weights:
        optional ``float64`` array of length ``num_edges`` with positive edge
        weights; ``None`` for unweighted graphs.
    name:
        optional human-readable label used by the dataset registry.
    """

    __slots__ = ("offsets", "targets", "weights", "name")

    def __init__(
        self,
        offsets: np.ndarray,
        targets: np.ndarray,
        weights: Optional[np.ndarray] = None,
        name: str = "",
    ) -> None:
        offsets = np.ascontiguousarray(offsets, dtype=np.int64)
        targets = np.ascontiguousarray(targets, dtype=np.int64)
        if offsets.ndim != 1 or targets.ndim != 1:
            raise ValueError("offsets and targets must be 1-D arrays")
        if offsets.size == 0:
            raise ValueError("offsets must have at least one entry")
        if offsets[0] != 0:
            raise ValueError("offsets[0] must be 0")
        if offsets[-1] != targets.size:
            raise ValueError(
                f"offsets[-1] ({offsets[-1]}) must equal number of edges "
                f"({targets.size})"
            )
        if np.any(np.diff(offsets) < 0):
            raise ValueError("offsets must be non-decreasing")
        num_vertices = offsets.size - 1
        if targets.size and (targets.min() < 0 or targets.max() >= num_vertices):
            raise ValueError("edge targets out of vertex-id range")
        if weights is not None:
            weights = np.ascontiguousarray(weights, dtype=np.float64)
            if weights.shape != targets.shape:
                raise ValueError("weights must have one entry per edge")
            if weights.size and weights.min() <= 0:
                raise ValueError("edge weights must be positive")
        self.offsets = offsets
        self.targets = targets
        self.weights = weights
        self.name = name

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices ``|V|``."""
        return self.offsets.size - 1

    @property
    def num_edges(self) -> int:
        """Number of (directed) edge entries ``|E|``."""
        return self.targets.size

    @property
    def is_weighted(self) -> bool:
        """Whether the graph carries edge weights."""
        return self.weights is not None

    @property
    def csr_bytes(self) -> Bytes:
        """Size of the CSR arrays using the paper's 8-byte entries."""
        size = VERTEX_ENTRY_BYTES * (self.num_vertices + 1)
        size += EDGE_ENTRY_BYTES * self.num_edges
        if self.weights is not None:
            size += EDGE_ENTRY_BYTES * self.num_edges
        return Bytes(size)

    def degrees(self) -> np.ndarray:
        """Out-degree of every vertex as an ``int64`` array."""
        return np.diff(self.offsets)

    def degree(self, vertex: int) -> int:
        """Out-degree of a single vertex."""
        self._check_vertex(vertex)
        return int(self.offsets[vertex + 1] - self.offsets[vertex])

    @property
    def max_degree(self) -> int:
        """The largest vertex degree (``d_max`` in Table II)."""
        if self.num_vertices == 0:
            return 0
        return int(self.degrees().max(initial=0))

    # ------------------------------------------------------------------
    # Neighbor queries
    # ------------------------------------------------------------------
    def neighbors(self, vertex: int) -> np.ndarray:
        """View of the neighbor ids of ``vertex``."""
        self._check_vertex(vertex)
        return self.targets[self.offsets[vertex] : self.offsets[vertex + 1]]

    def neighbor_weights(self, vertex: int) -> np.ndarray:
        """View of the edge weights of ``vertex``'s out-edges."""
        if self.weights is None:
            raise ValueError("graph is unweighted")
        self._check_vertex(vertex)
        return self.weights[self.offsets[vertex] : self.offsets[vertex + 1]]

    def has_edge(self, source: int, target: int) -> bool:
        """Whether the directed edge ``source -> target`` exists."""
        neigh = self.neighbors(source)
        # Neighbor lists are sorted by the builders, so binary search works;
        # fall back to a scan for hand-built graphs.
        pos = np.searchsorted(neigh, target)
        if pos < neigh.size and neigh[pos] == target:
            return True
        return bool(np.any(neigh == target))

    def iter_edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate over ``(source, target)`` pairs (mainly for tests)."""
        for v in range(self.num_vertices):
            for t in self.neighbors(v):
                yield v, int(t)

    # ------------------------------------------------------------------
    # Slicing (used by the partitioner and the Subway baseline)
    # ------------------------------------------------------------------
    def vertex_range_edges(self, start: int, stop: int) -> Tuple[int, int]:
        """Edge-array range ``[lo, hi)`` covering vertices ``[start, stop)``."""
        if not 0 <= start <= stop <= self.num_vertices:
            raise ValueError(f"invalid vertex range [{start}, {stop})")
        return int(self.offsets[start]), int(self.offsets[stop])

    def subgraph_arrays(
        self, start: int, stop: int
    ) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
        """CSR arrays restricted to source vertices ``[start, stop)``.

        The returned ``offsets`` are rebased to 0 and have length
        ``stop - start + 1``; ``targets`` keep *global* vertex ids so walks
        can cross partition boundaries.
        """
        lo, hi = self.vertex_range_edges(start, stop)
        offsets = self.offsets[start : stop + 1] - self.offsets[start]
        targets = self.targets[lo:hi]
        weights = None if self.weights is None else self.weights[lo:hi]
        return offsets, targets, weights

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Re-run the construction invariants (useful after IO)."""
        CSRGraph(self.offsets, self.targets, self.weights, self.name)

    def _check_vertex(self, vertex: int) -> None:
        if not 0 <= vertex < self.num_vertices:
            raise IndexError(
                f"vertex {vertex} out of range [0, {self.num_vertices})"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f" {self.name!r}" if self.name else ""
        return (
            f"<CSRGraph{label} |V|={self.num_vertices} |E|={self.num_edges}"
            f" {'weighted' if self.is_weighted else 'unweighted'}>"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSRGraph):
            return NotImplemented
        if not np.array_equal(self.offsets, other.offsets):
            return False
        if not np.array_equal(self.targets, other.targets):
            return False
        if (self.weights is None) != (other.weights is None):
            return False
        if self.weights is not None and not np.allclose(
            self.weights, other.weights
        ):
            return False
        return True

    def __hash__(self) -> int:  # noqa: D105 - graphs are mutable-free
        return id(self)


def adjacency_lists(graph: CSRGraph) -> Sequence[np.ndarray]:
    """Materialize per-vertex neighbor arrays (testing helper)."""
    return [graph.neighbors(v) for v in range(graph.num_vertices)]
