"""Back-compat shim for the old single-file linter.

The linter grew into the multi-pass framework in
:mod:`repro.analysis.static` (shared symbol table + def-use dataflow
core, unit-of-measure and cross-stage aliasing passes, suppression
baseline).  This module keeps the historical import surface alive —
rule constants, :class:`LintViolation` (now an alias of the unified
:class:`~repro.analysis.static.findings.Finding`), :func:`lint_paths`
and :func:`run_lint` — so existing callers and tests keep working.
There is no separate legacy implementation behind it.
"""

from __future__ import annotations

from repro.analysis.static.dataflow import PathInput, iter_python_files
from repro.analysis.static.findings import Finding as LintViolation
from repro.analysis.static.houserules import (
    RNG_FACTORY_MODULE,
    RULE_BACKEND_SIM_TIME,
    RULE_FAILURE_CONSERVATION,
    RULE_FLOAT_EQ,
    RULE_FROZEN_EVENT,
    RULE_HANDLER_COVERAGE,
    RULE_RNG,
    TIMESTAMP_NAMES,
)
from repro.analysis.static.runner import lint_paths, run_lint

__all__ = [
    "LintViolation",
    "PathInput",
    "RNG_FACTORY_MODULE",
    "RULE_BACKEND_SIM_TIME",
    "RULE_FAILURE_CONSERVATION",
    "RULE_FLOAT_EQ",
    "RULE_FROZEN_EVENT",
    "RULE_HANDLER_COVERAGE",
    "RULE_RNG",
    "TIMESTAMP_NAMES",
    "iter_python_files",
    "lint_paths",
    "run_lint",
]
