"""``repro lint`` — repo-specific static checks over ``src/repro``.

Generic linters cannot know that this codebase's determinism hinges on a
single RNG factory, that simulated timestamps are accumulated floats, or
that the event bus must cover every event type.  This AST pass encodes
those house rules:

``rng-factory``
    Every ``numpy`` generator must come from
    :func:`repro.core.prng.seeded_rng` (or ``CounterRNG``); direct
    ``np.random.default_rng`` / ``np.random.*`` calls and the stdlib
    ``random`` module are banned outside ``core/prng.py``.  Ad-hoc
    generators fork untracked RNG streams and silently break
    counter-RNG replay and cross-system seed alignment.

``float-timestamp-eq``
    No ``==`` / ``!=`` on simulated-timeline timestamps (``busy_until``,
    ``ready_time``, ``now``, ``*_time`` names).  Timestamps are sums of
    float durations accumulated in program order; exact equality is
    order-sensitive — use :func:`repro.gpu.timeline.times_close`.

``frozen-event``
    Every ``@dataclass`` in an ``events.py`` module (and every subclass
    of ``EngineEvent`` anywhere) must be declared ``frozen=True``:
    events are delivered synchronously to multiple subscribers, and a
    subscriber mutating a shared event corrupts everyone downstream.

``event-handler-coverage``
    Every event type registered in ``core/events.py``'s ``EVENT_TYPES``
    must have at least one ``on_<snake_case>`` handler defined somewhere
    in the tree (or an explicit waiver) — an event nobody consumes is
    either dead weight or a silently unobserved engine fact.

Any rule can be waived on a specific line with a trailing
``# lint: allow-<rule>`` comment; waivers are deliberate and grep-able.
"""

from __future__ import annotations

import ast
import re
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Set, Tuple, Union

#: anything ``Path()`` accepts — callers may pass plain strings.
PathInput = Union[str, "Path"]

RULE_RNG = "rng-factory"
RULE_FLOAT_EQ = "float-timestamp-eq"
RULE_FROZEN_EVENT = "frozen-event"
RULE_HANDLER_COVERAGE = "event-handler-coverage"

#: module path (as posix suffix) allowed to construct raw generators.
RNG_FACTORY_MODULE = "core/prng.py"

#: identifiers treated as simulated timestamps by ``float-timestamp-eq``.
TIMESTAMP_NAMES = re.compile(
    r"^(busy_until|ready_time|now|graph_t|batch_t|k_end|earliest"
    r"|[a-z0-9_]*_time)$"
)

_WAIVER_RE = re.compile(r"#\s*lint:\s*allow-([a-z\-]+)")
_SNAKE_RE = re.compile(r"(?<!^)(?=[A-Z])")


@dataclass(frozen=True)
class LintViolation:
    """One static-rule violation at a specific source line."""

    path: str
    line: int
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def _waivers_by_line(source: str) -> Dict[int, Set[str]]:
    """``# lint: allow-<rule>`` comments, keyed by 1-based line number."""
    waivers: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        for match in _WAIVER_RE.finditer(line):
            waivers.setdefault(lineno, set()).add(match.group(1))
    return waivers


def _dotted(node: ast.AST) -> str:
    """Best-effort dotted name of an expression (``np.random.default_rng``)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return ".".join(reversed(parts))


def _is_timestamp_operand(node: ast.AST) -> bool:
    if isinstance(node, ast.Name):
        return bool(TIMESTAMP_NAMES.match(node.id))
    if isinstance(node, ast.Attribute):
        return bool(TIMESTAMP_NAMES.match(node.attr))
    return False


class _FileLinter(ast.NodeVisitor):
    """Single-file visitor producing violations (waivers applied later)."""

    def __init__(self, path: Path, rel: str, allow_rng: bool) -> None:
        self.path = path
        self.rel = rel
        self.allow_rng = allow_rng
        self.violations: List[LintViolation] = []
        self.handler_names: Set[str] = set()

    def _report(self, node: ast.AST, rule: str, message: str) -> None:
        self.violations.append(
            LintViolation(self.rel, getattr(node, "lineno", 0), rule, message)
        )

    # -- rng-factory ---------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        if not self.allow_rng:
            for alias in node.names:
                if alias.name == "random" or alias.name.startswith("random."):
                    self._report(
                        node,
                        RULE_RNG,
                        "stdlib 'random' bypasses core/prng.py; use "
                        "repro.core.prng.seeded_rng",
                    )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if not self.allow_rng and node.module is not None:
            if node.module == "random" or node.module.startswith("random."):
                self._report(
                    node,
                    RULE_RNG,
                    "stdlib 'random' bypasses core/prng.py; use "
                    "repro.core.prng.seeded_rng",
                )
            if node.module in ("numpy.random",) or node.module.startswith(
                "numpy.random."
            ):
                self._report(
                    node,
                    RULE_RNG,
                    "importing from numpy.random bypasses core/prng.py; "
                    "use repro.core.prng.seeded_rng",
                )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if not self.allow_rng:
            dotted = _dotted(node.func)
            if ".random." in f".{dotted}." and (
                dotted.startswith("np.random")
                or dotted.startswith("numpy.random")
            ):
                self._report(
                    node,
                    RULE_RNG,
                    f"direct '{dotted}' call outside core/prng.py; "
                    "construct generators via repro.core.prng.seeded_rng "
                    "so runs stay counter-RNG deterministic",
                )
        self.generic_visit(node)

    # -- float-timestamp-eq --------------------------------------------
    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            for side in (left, right):
                if _is_timestamp_operand(side):
                    name = _dotted(side) or "<timestamp>"
                    self._report(
                        node,
                        RULE_FLOAT_EQ,
                        f"exact {'==' if isinstance(op, ast.Eq) else '!='} "
                        f"on simulated timestamp '{name}'; use "
                        "repro.gpu.timeline.times_close",
                    )
                    break
        self.generic_visit(node)

    # -- frozen-event ----------------------------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        is_event_module = self.path.name == "events.py"
        subclasses_event = any(
            _dotted(base).split(".")[-1] == "EngineEvent"
            for base in node.bases
        )
        for decorator in node.decorator_list:
            target = decorator
            frozen = False
            if isinstance(decorator, ast.Call):
                target = decorator.func
                frozen = any(
                    kw.arg == "frozen"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value is True
                    for kw in decorator.keywords
                )
            if _dotted(target).split(".")[-1] != "dataclass":
                continue
            if (is_event_module or subclasses_event) and not frozen:
                self._report(
                    node,
                    RULE_FROZEN_EVENT,
                    f"event dataclass '{node.name}' must be "
                    "@dataclass(frozen=True): events are shared across "
                    "bus subscribers",
                )
        self.generic_visit(node)

    # -- handler collection (for event-handler-coverage) -----------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        if node.name.startswith("on_"):
            self.handler_names.add(node.name)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        if node.name.startswith("on_"):
            self.handler_names.add(node.name)
        self.generic_visit(node)


def _event_types(tree: ast.Module) -> List[Tuple[str, int]]:
    """``(class name, lineno)`` of every EngineEvent subclass in a module."""
    out: List[Tuple[str, int]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and any(
            _dotted(base).split(".")[-1] == "EngineEvent"
            for base in node.bases
        ):
            out.append((node.name, node.lineno))
    return out


def _handler_name(event_name: str) -> str:
    return "on_" + _SNAKE_RE.sub("_", event_name).lower()


def iter_python_files(paths: Sequence["PathInput"]) -> Iterable[Path]:
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def lint_paths(paths: Sequence["PathInput"]) -> List[LintViolation]:
    """Run every rule over ``paths``; returns unwaived violations."""
    violations: List[LintViolation] = []
    all_handlers: Set[str] = set()
    events_modules: List[Tuple[str, ast.Module, Dict[int, Set[str]]]] = []

    for path in iter_python_files(paths):
        rel = path.as_posix()
        source = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=rel)
        except SyntaxError as exc:
            violations.append(
                LintViolation(
                    rel, exc.lineno or 0, "syntax", f"cannot parse: {exc.msg}"
                )
            )
            continue
        waivers = _waivers_by_line(source)
        linter = _FileLinter(
            path, rel, allow_rng=rel.endswith(RNG_FACTORY_MODULE)
        )
        linter.visit(tree)
        all_handlers.update(linter.handler_names)
        violations.extend(
            v
            for v in linter.violations
            if v.rule not in waivers.get(v.line, set())
        )
        if rel.endswith("core/events.py"):
            events_modules.append((rel, tree, waivers))

    # event-handler-coverage spans files: needs all handlers collected.
    for rel, tree, waivers in events_modules:
        for event_name, lineno in _event_types(tree):
            handler = _handler_name(event_name)
            if handler in all_handlers:
                continue
            if RULE_HANDLER_COVERAGE in waivers.get(lineno, set()):
                continue
            violations.append(
                LintViolation(
                    rel,
                    lineno,
                    RULE_HANDLER_COVERAGE,
                    f"event type '{event_name}' has no '{handler}' "
                    "subscriber anywhere in the tree; register a handler "
                    "or waive with '# lint: allow-event-handler-coverage'",
                )
            )

    violations.sort(key=lambda v: (v.path, v.line, v.rule))
    return violations


def run_lint(paths: Sequence[str]) -> int:
    """CLI entry: print violations, return the exit code."""
    resolved = [Path(p) for p in paths]
    missing = [p for p in resolved if not p.exists()]
    if missing:
        for path in missing:
            print(f"repro lint: no such path: {path}", file=sys.stderr)
        return 2
    violations = lint_paths(resolved)
    for violation in violations:
        print(violation)
    checked = sum(1 for _ in iter_python_files(resolved))
    if violations:
        print(
            f"repro lint: {len(violations)} violation(s) in "
            f"{checked} file(s)",
            file=sys.stderr,
        )
        return 1
    print(f"repro lint: {checked} file(s) clean")
    return 0
