"""Pass registry and the ``repro lint`` entry points.

``repro lint`` (default) runs the ported house rules — cheap, zero
false positives, always on.  ``repro lint --strict`` additionally runs
the dataflow passes (unit-of-measure, cross-stage aliasing) and the
interprocedural call-graph passes (RNG discipline, observer purity,
event-protocol conformance, resource typestate, client-input taint) and
gates against the committed suppression baseline: findings already
recorded in the baseline are reported as suppressed and do not fail the
run, anything new does.  ``--json`` writes the machine-readable findings
report CI uploads as an artifact; ``--sarif`` writes a SARIF 2.1.0 log
for GitHub code scanning; ``--update-baseline`` rewrites the baseline
from the current findings (a reviewed, committed action).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.static import (
    aliasing,
    effects,
    houserules,
    protocol,
    rngcheck,
    sarif,
    taint,
    typestate,
    unitcheck,
)
from repro.analysis.static.dataflow import (
    ModuleInfo,
    PathInput,
    SymbolTable,
    iter_python_files,
)
from repro.analysis.static.findings import Baseline, Finding, apply_waivers

#: pass name -> (runner, strict_only)
PassFn = Callable[[Sequence[ModuleInfo], SymbolTable], List[Finding]]
PASSES: Dict[str, Tuple[PassFn, bool]] = {
    houserules.PASS_NAME: (houserules.run_pass, False),
    unitcheck.PASS_NAME: (unitcheck.run_pass, True),
    aliasing.PASS_NAME: (aliasing.run_pass, True),
    rngcheck.PASS_NAME: (rngcheck.run_pass, True),
    effects.PASS_NAME: (effects.run_pass, True),
    protocol.PASS_NAME: (protocol.run_pass, True),
    typestate.PASS_NAME: (typestate.run_pass, True),
    taint.PASS_NAME: (taint.run_pass, True),
}

#: default suppression-baseline location (repo root, committed).
DEFAULT_BASELINE = "lint-baseline.json"


def active_passes(strict: bool) -> List[str]:
    return [
        name
        for name, (_, strict_only) in PASSES.items()
        if strict or not strict_only
    ]


def analyze_paths(
    paths: Sequence[PathInput], strict: bool = False
) -> Tuple[List[Finding], int]:
    """Parse, run the active passes, apply waivers.

    Returns ``(findings, files_checked)`` with findings sorted by
    ``(path, line, rule)``.  Unparseable files yield one ``syntax``
    finding each and are excluded from the passes.
    """
    modules: List[ModuleInfo] = []
    findings: List[Finding] = []
    checked = 0
    for path in iter_python_files(paths):
        checked += 1
        try:
            modules.append(ModuleInfo.parse(path))
        except SyntaxError as exc:
            findings.append(
                Finding(
                    path.as_posix(),
                    exc.lineno or 0,
                    "syntax",
                    f"cannot parse: {exc.msg}",
                )
            )
    table = SymbolTable.build(modules)
    for name in active_passes(strict):
        run, _ = PASSES[name]
        findings.extend(run(modules, table))
    waivers_of = {module.rel: module.waivers for module in modules}
    findings = apply_waivers_by_module(findings, waivers_of)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings, checked


def apply_waivers_by_module(
    findings: Sequence[Finding],
    waivers_of: Dict[str, Dict[int, set]],
) -> List[Finding]:
    out: List[Finding] = []
    for rel in sorted({f.path for f in findings}):
        batch = [f for f in findings if f.path == rel]
        out.extend(apply_waivers(batch, waivers_of.get(rel, {})))
    return out


def lint_paths(paths: Sequence[PathInput]) -> List[Finding]:
    """Run the default (non-strict) rules; returns unwaived findings."""
    findings, _ = analyze_paths(paths, strict=False)
    return findings


def _write_json(
    json_path: Path,
    checked: int,
    strict: bool,
    fresh: Sequence[Finding],
    suppressed: Sequence[Finding],
) -> None:
    payload = {
        "checked_files": checked,
        "strict": strict,
        "passes": active_passes(strict),
        "findings": [f.as_dict() for f in fresh],
        "suppressed": [f.as_dict() for f in suppressed],
    }
    json_path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


def run_lint(
    paths: Sequence[str],
    strict: bool = False,
    json_path: Optional[str] = None,
    baseline_path: Optional[str] = None,
    update_baseline: bool = False,
    sarif_path: Optional[str] = None,
) -> int:
    """CLI entry: print findings, return the exit code (0/1/2)."""
    resolved = [Path(p) for p in paths]
    missing = [p for p in resolved if not p.exists()]
    if missing:
        for path in missing:
            print(f"repro lint: no such path: {path}", file=sys.stderr)
        return 2
    findings, checked = analyze_paths(resolved, strict=strict)

    baseline = Baseline.empty()
    if strict and baseline_path is not None:
        baseline = Baseline.load(Path(baseline_path))
    if update_baseline:
        target = Path(baseline_path or DEFAULT_BASELINE)
        Baseline.save(
            target,
            findings,
            comment=(
                "Accepted `repro lint --strict` findings; every entry "
                "needs a justification in the PR that adds it.  Keyed on "
                "(path, rule, message): fixing the finding or changing "
                "the flagged code un-suppresses it."
            ),
        )
        print(
            f"repro lint: baseline updated with {len(findings)} "
            f"finding(s) at {target}"
        )
        return 0
    fresh, suppressed = baseline.split(findings)

    for finding in fresh:
        print(finding)
    if json_path is not None:
        _write_json(Path(json_path), checked, strict, fresh, suppressed)
    if sarif_path is not None:
        sarif.write_sarif(Path(sarif_path), fresh, suppressed)
    suffix = (
        f" ({len(suppressed)} baseline-suppressed)" if suppressed else ""
    )
    if fresh:
        print(
            f"repro lint: {len(fresh)} violation(s) in "
            f"{checked} file(s){suffix}",
            file=sys.stderr,
        )
        return 1
    print(f"repro lint: {checked} file(s) clean{suffix}")
    return 0
