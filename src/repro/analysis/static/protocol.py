"""Event-protocol conformance pass (``--strict``, rules
``unhandled-event``, ``unknown-event-field``, ``event-device-coverage``).

The event vocabulary in ``core/events.py`` is a *protocol*: emitters and
subscribers agree on which events exist and what they carry, but Python
enforces none of it — a handler reading ``event.walk_count`` from an
event that carries ``walks`` raises only when that handler actually
runs, and an event nobody subscribes to fails never.  This pass
cross-checks the three directions statically:

``unhandled-event``
    An event type constructed at a ``bus.emit(...)`` site with no
    ``on_<snake_case>`` handler (and no ``subscribe(Type, ...)``
    registration) anywhere in the analyzed tree.  Complements the
    house-rules ``event-handler-coverage`` rule, which audits the
    *declared* vocabulary in ``core/events.py`` — this one audits the
    *emitted* vocabulary wherever it lives.

``unknown-event-field``
    A handler reading an attribute its event type does not declare
    (fields and methods, bases included).  With synchronous delivery
    this is a guaranteed ``AttributeError`` on the hot path the first
    time the event fires.

``event-device-coverage``
    A per-iteration event (one declaring an ``iteration`` field) that
    carries no device identity (``device`` / ``src_device`` /
    ``dst_device``).  Multi-device runs interleave shard iterations on
    one bus; an iteration-scoped event without a device field is
    unattributable in cluster traces.  Genuinely cluster-scoped events
    waive with ``# lint: allow-event-device-coverage``.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.analysis.static.dataflow import (
    CallGraph,
    ModuleInfo,
    SymbolTable,
    bus_handler_event,
    dotted,
    snake_case,
)
from repro.analysis.static.findings import Finding

PASS_NAME = "protocol"

RULE_UNHANDLED_EVENT = "unhandled-event"
RULE_UNKNOWN_FIELD = "unknown-event-field"
RULE_DEVICE_COVERAGE = "event-device-coverage"

#: field names that attribute an event to a device / shard.
DEVICE_FIELDS = frozenset({"device", "src_device", "dst_device"})


def _subscribe_registrations(modules: Sequence[ModuleInfo]) -> Set[str]:
    """Event class names registered via ``subscribe(Type, handler)``."""
    registered: Set[str] = set()
    for module in modules:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            callee = dotted(node.func)
            if callee.rsplit(".", 1)[-1] != "subscribe" or not node.args:
                continue
            first = node.args[0]
            name = dotted(first)
            if name:
                registered.add(name.rsplit(".", 1)[-1])
    return registered


def _event_surface(table: SymbolTable, event: str) -> Set[str]:
    """Attributes an event type legitimately exposes: declared fields
    and methods of the class and its analyzed bases."""
    surface: Set[str] = set()
    for cls_name in table.mro(event):
        symbol = table.classes.get(cls_name)
        if symbol is None:
            continue
        surface.update(symbol.fields)
        surface.update(symbol.methods)
    return surface


def _event_param(
    fn: Union[ast.FunctionDef, ast.AsyncFunctionDef], is_method: bool
) -> Optional[str]:
    params = [a.arg for a in [*fn.args.posonlyargs, *fn.args.args]]
    if is_method and params and params[0] in ("self", "cls"):
        params = params[1:]
    return params[0] if params else None


def _check_unhandled(
    graph: CallGraph,
    table: SymbolTable,
    registered: Set[str],
    findings: List[Finding],
) -> None:
    handled_events: Set[str] = set()
    reported: Set[str] = set()
    for event in table.event_types:
        if graph.handlers_of(event) or event in registered:
            handled_events.add(event)
    for uid in sorted(graph.nodes):
        node = graph.nodes[uid]
        for event, line in node.emits:
            if event == "<event>" or event not in table.event_types:
                continue
            if event in handled_events or event in reported:
                continue
            reported.add(event)
            findings.append(
                Finding(
                    node.module.rel,
                    line,
                    RULE_UNHANDLED_EVENT,
                    f"'{event}' is emitted here but no "
                    f"'on_{snake_case(event)}' handler (or subscribe "
                    "registration) exists anywhere in the analyzed "
                    "tree: the event is dead weight or an unobserved "
                    "engine fact",
                    PASS_NAME,
                )
            )


def _check_handler_fields(
    graph: CallGraph, table: SymbolTable, findings: List[Finding]
) -> None:
    for uid in sorted(graph.nodes):
        node = graph.nodes[uid]
        event = bus_handler_event(node.scope, table)
        if event is None:
            continue
        param = _event_param(
            node.scope.node, is_method=node.scope.owner is not None
        )
        if param is None:
            continue
        surface = _event_surface(table, event)
        seen_attrs: Set[str] = set()
        for sub in ast.walk(node.scope.node):
            if not (
                isinstance(sub, ast.Attribute)
                and isinstance(sub.value, ast.Name)
                and sub.value.id == param
            ):
                continue
            attr = sub.attr
            if (
                attr in surface
                or attr.startswith("__")
                or attr in seen_attrs
            ):
                continue
            seen_attrs.add(attr)
            findings.append(
                Finding(
                    node.module.rel,
                    sub.lineno,
                    RULE_UNKNOWN_FIELD,
                    f"handler '{node.scope.qualname}' reads "
                    f"'{param}.{attr}' but event '{event}' defines no "
                    f"such field: guaranteed AttributeError when the "
                    "event fires",
                    PASS_NAME,
                )
            )


def _event_classes(
    module: ModuleInfo,
) -> List[Tuple[ast.ClassDef, Dict[str, int]]]:
    """EngineEvent subclasses with their directly-declared field lines."""
    out: List[Tuple[ast.ClassDef, Dict[str, int]]] = []
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        if not any(
            dotted(base).rsplit(".", 1)[-1] == "EngineEvent"
            for base in node.bases
        ):
            continue
        fields: Dict[str, int] = {}
        for stmt in node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                fields[stmt.target.id] = stmt.lineno
        out.append((node, fields))
    return out


def _check_device_coverage(
    modules: Sequence[ModuleInfo], findings: List[Finding]
) -> None:
    for module in modules:
        for node, fields in _event_classes(module):
            if "iteration" not in fields:
                continue
            if DEVICE_FIELDS & set(fields):
                continue
            findings.append(
                Finding(
                    module.rel,
                    node.lineno,
                    RULE_DEVICE_COVERAGE,
                    f"per-iteration event '{node.name}' carries no "
                    "device identity (device/src_device/dst_device): "
                    "multi-device traces cannot attribute it to a "
                    "shard; add a device field or waive with "
                    "'# lint: allow-event-device-coverage'",
                    PASS_NAME,
                )
            )


def run_pass(
    modules: Sequence[ModuleInfo], table: SymbolTable
) -> List[Finding]:
    findings: List[Finding] = []
    graph = CallGraph.build(modules, table)
    registered = _subscribe_registrations(modules)
    _check_unhandled(graph, table, registered, findings)
    _check_handler_fields(graph, table, findings)
    _check_device_coverage(modules, findings)
    return findings
