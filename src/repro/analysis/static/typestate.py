"""Resource-lifecycle pass (``--strict``, rules ``typestate-order``,
``leaked-resource``, ``use-after-close``).

The tree now runs real substrates whose objects carry a protocol: an
:class:`~repro.backends.base.ExecutionBackend` must see ``bind`` →
``on_walks_seeded`` → ``advance``\\* → ``close``; a
``shared_memory.SharedMemory`` block must be released on *every* path,
including the exception edges; an ``EventBus`` must have its observers
attached before emission starts or they silently miss events; a
``ServeSession`` serves (``admit`` → ``run`` → ``complete``).  Each
protocol is a declarative state machine in :data:`PROTOCOLS`; the pass
abstract-interprets every function body, tracking the state set of each
locally constructed protocol object, and flags:

``typestate-order``
    A protocol method invoked from a state that does not allow it
    (``advance`` before ``bind``/``on_walks_seeded``, ``subscribe`` to
    an event type already emitted on that bus, ``complete`` before
    ``run``).  Only *definite* violations fire: after a branch merge
    the call is allowed if any merged state allows it.

``use-after-close``
    A protocol method invoked when the object can only be in its
    terminal state (``advance`` after ``close``).  Observation methods
    outside the transition table (``timings()``) stay legal.

``leaked-resource``
    A ``SharedMemory(create=True)`` acquisition that is not *dominated*
    by a release on the exception edges: either a plain local whose
    enclosing ``try`` has no ``close``/``unlink`` in a handler or
    finalizer, or a block stored into an owning ``self`` container
    whose class has no releasing ``close()``, or — the multiprocess
    bug shape — an acquiring method that keeps executing fallible
    calls (further ``self.m()`` setup steps) after the first block
    exists, outside any ``try`` whose handler/finalizer releases the
    blocks.  Exception-edge reasoning uses
    :func:`~repro.analysis.static.dataflow.try_scopes`.

The state tracking is intraprocedural by design — cross-function object
lifecycles are the engine's (tested) domain; what slips through review
is exactly the local misuse this pass pins.  The leak analysis is
interprocedural within a class: a method that calls an acquiring helper
(``self._shared_array``) inherits the acquisition obligation.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.analysis.static.dataflow import (
    AbstractInterpreter,
    FunctionScope,
    ModuleInfo,
    SymbolTable,
    TryRegion,
    canonical_name,
    dotted,
    import_aliases,
    iter_own_nodes,
    try_scopes,
)
from repro.analysis.static.findings import Finding

PASS_NAME = "typestate"

RULE_TYPESTATE_ORDER = "typestate-order"
RULE_LEAKED_RESOURCE = "leaked-resource"
RULE_USE_AFTER_CLOSE = "use-after-close"


@dataclass(frozen=True)
class Protocol:
    """One declarative lifecycle state machine.

    A class is governed when it inherits ``base`` over the analyzed
    tree, or its name ends with ``suffix`` *and* it defines every
    ``anchors`` method (directly or via MRO) — the opt-in that keeps
    convention matching from capturing unrelated classes.  Methods not
    in ``transitions`` are observations and never checked.
    """

    name: str
    base: str
    suffix: str
    anchors: FrozenSet[str]
    initial: str
    #: method -> (states allowing the call, state after the call)
    transitions: Mapping[str, Tuple[FrozenSet[str], str]]
    terminal: Optional[str] = None


PROTOCOLS: Tuple[Protocol, ...] = (
    Protocol(
        name="ExecutionBackend",
        base="ExecutionBackend",
        suffix="Backend",
        anchors=frozenset({"bind", "close"}),
        initial="new",
        transitions={
            "bind": (
                frozenset({"new", "bound", "seeded", "advancing"}),
                "bound",
            ),
            "on_walks_seeded": (frozenset({"bound"}), "seeded"),
            "advance": (frozenset({"seeded", "advancing"}), "advancing"),
            "close": (
                frozenset({"new", "bound", "seeded", "advancing", "closed"}),
                "closed",
            ),
        },
        terminal="closed",
    ),
    Protocol(
        name="SharedMemory",
        base="SharedMemory",
        suffix="SharedMemory",
        anchors=frozenset(),
        initial="open",
        transitions={
            "close": (frozenset({"open", "closed"}), "closed"),
            "unlink": (frozenset({"open", "closed"}), "unlinked"),
        },
        terminal="unlinked",
    ),
    Protocol(
        name="ServeSession",
        base="ServeSession",
        suffix="ServeSession",
        anchors=frozenset({"run"}),
        initial="new",
        transitions={
            "admit": (frozenset({"new", "admitting"}), "admitting"),
            "run": (frozenset({"new", "admitting", "serving"}), "serving"),
            "complete": (frozenset({"serving"}), "completed"),
        },
        terminal="completed",
    ),
)

#: EventBus is convention-tracked separately: its "state" is the set of
#: event types already emitted, not a scalar machine state.
_BUS = "EventBus"

#: method names that release an acquired resource when they appear in a
#: ``try`` handler or finalizer.
_CLEANUP_METHODS = frozenset(
    {"close", "unlink", "shutdown", "release", "terminate"}
)

#: method names a resource-owning class may use for its releasing hook.
_OWNER_CLEANUP = frozenset({"close", "shutdown", "release", "teardown"})


# ---------------------------------------------------------------------------
# Protocol matching
# ---------------------------------------------------------------------------

def _class_methods(table: SymbolTable, name: str) -> Set[str]:
    methods: Set[str] = set()
    for cls in table.mro(name):
        symbol = table.classes.get(cls)
        if symbol is not None:
            methods.update(symbol.methods)
    return methods


def protocol_of(table: SymbolTable, class_name: str) -> Optional[Protocol]:
    """The protocol governing ``class_name``, if any."""
    for proto in PROTOCOLS:
        if class_name == proto.base or table.inherits_from(
            class_name, proto.base
        ):
            return proto
        if class_name.endswith(proto.suffix):
            if class_name in table.classes:
                if proto.anchors <= _class_methods(table, class_name):
                    return proto
            else:
                # Imported from outside the analyzed tree: convention
                # match only (covers shared_memory.SharedMemory).
                return proto
    return None


@dataclass(frozen=True)
class TSValue:
    """Abstract value: protocol name + set of possible machine states.

    For ``EventBus`` values, ``states`` holds the event-type names
    already emitted instead of machine states.
    """

    proto: str
    states: FrozenSet[str]


class _LifecycleInterp(AbstractInterpreter[Optional[TSValue]]):
    """Tracks protocol objects through one function body."""

    def __init__(
        self,
        module: ModuleInfo,
        table: SymbolTable,
        aliases: Dict[str, str],
        qualname: str,
    ) -> None:
        super().__init__()
        self.module = module
        self.table = table
        self.aliases = aliases
        self.qualname = qualname
        self.findings: List[Finding] = []
        self._reported: Set[Tuple[int, str]] = set()

    # -- domain ---------------------------------------------------------
    def top(self) -> Optional[TSValue]:
        return None

    def merge(
        self, a: Optional[TSValue], b: Optional[TSValue]
    ) -> Optional[TSValue]:
        if a is None or b is None or a.proto != b.proto:
            return None
        return TSValue(a.proto, a.states | b.states)

    def on_assign(
        self,
        target: ast.expr,
        value: Optional[TSValue],
        node: ast.stmt,
    ) -> None:
        key = self._key(target)
        if key is not None:
            self.env[key] = value

    # -- helpers --------------------------------------------------------
    @staticmethod
    def _key(node: ast.expr) -> Optional[str]:
        """Env key of a trackable reference: ``x`` or ``self.x``."""
        if isinstance(node, ast.Name):
            return node.id
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return f"self.{node.attr}"
        return None

    def _report(self, line: int, rule: str, message: str) -> None:
        if (line, rule) in self._reported:
            return
        self._reported.add((line, rule))
        self.findings.append(
            Finding(self.module.rel, line, rule, message, PASS_NAME)
        )

    def _constructed(self, call: ast.Call) -> Optional[TSValue]:
        name = canonical_name(dotted(call.func), self.aliases)
        simple = name.rsplit(".", 1)[-1]
        if not simple:
            return None
        if simple == _BUS or name.endswith(f".{_BUS}"):
            return TSValue(_BUS, frozenset())
        proto = protocol_of(self.table, simple)
        if proto is None:
            return None
        return TSValue(proto.name, frozenset({proto.initial}))

    # -- transitions ----------------------------------------------------
    def _bus_op(self, call: ast.Call, key: str, value: TSValue) -> None:
        assert isinstance(call.func, ast.Attribute)
        method = call.func.attr
        if method == "emit":
            event = "<event>"
            if call.args and isinstance(call.args[0], ast.Call):
                event = dotted(call.args[0].func).rsplit(".", 1)[-1]
            self.env[key] = TSValue(_BUS, value.states | {event})
            return
        if method == "subscribe" and call.args:
            event = dotted(call.args[0]).rsplit(".", 1)[-1]
            if event in value.states:
                self._report(
                    call.lineno,
                    RULE_TYPESTATE_ORDER,
                    f"'{self.qualname}' subscribes to '{event}' on a bus "
                    f"that already emitted it; the subscriber missed "
                    "events — register before the first emit",
                )
        elif method == "attach" and value.states:
            emitted = ", ".join(sorted(value.states))
            self._report(
                call.lineno,
                RULE_TYPESTATE_ORDER,
                f"'{self.qualname}' attaches an observer after the bus "
                f"already emitted {emitted}; attach every observer "
                "before emission starts",
            )

    def _transition(self, call: ast.Call, key: str, value: TSValue) -> None:
        assert isinstance(call.func, ast.Attribute)
        method = call.func.attr
        proto = next(p for p in PROTOCOLS if p.name == value.proto)
        spec = proto.transitions.get(method)
        if spec is None:
            return  # observation method: always legal
        allowed, nxt = spec
        if value.states & allowed:
            self.env[key] = TSValue(
                value.proto,
                frozenset(
                    nxt if state in allowed else state
                    for state in value.states
                ),
            )
            return
        states = ", ".join(sorted(value.states))
        if proto.terminal is not None and value.states == frozenset(
            {proto.terminal}
        ):
            self._report(
                call.lineno,
                RULE_USE_AFTER_CLOSE,
                f"'{self.qualname}' calls '{key}.{method}()' after the "
                f"{proto.name} reached terminal state "
                f"'{proto.terminal}'; construct a fresh one instead",
            )
        else:
            wanted = ", ".join(sorted(allowed))
            self._report(
                call.lineno,
                RULE_TYPESTATE_ORDER,
                f"'{self.qualname}' calls '{key}.{method}()' in state "
                f"{{{states}}} but the {proto.name} protocol allows it "
                f"only in {{{wanted}}}",
            )
        self.env[key] = TSValue(value.proto, frozenset({nxt}))

    # -- expression evaluation ------------------------------------------
    def eval_expr(self, node: ast.expr) -> Optional[TSValue]:
        if isinstance(node, ast.Call):
            for arg in node.args:
                self.eval_expr(arg)
            for kw in node.keywords:
                self.eval_expr(kw.value)
            func = node.func
            if isinstance(func, ast.Attribute):
                key = self._key(func.value)
                if key is None:
                    self.eval_expr(func.value)
                else:
                    value = self.env.get(key)
                    if value is not None:
                        if value.proto == _BUS:
                            self._bus_op(node, key, value)
                        else:
                            self._transition(node, key, value)
                return None
            constructed = self._constructed(node)
            if constructed is not None:
                return constructed
            return None
        if isinstance(node, ast.Name):
            return self.env.get(node.id)
        if isinstance(node, ast.Attribute):
            key = self._key(node)
            if key is not None:
                return self.env.get(key)
            self.eval_expr(node.value)
            return None
        if isinstance(node, ast.IfExp):
            self.eval_expr(node.test)
            return self.merge(
                self.eval_expr(node.body), self.eval_expr(node.orelse)
            )
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self.eval_expr(child)
        return None


# ---------------------------------------------------------------------------
# Leaked-resource analysis
# ---------------------------------------------------------------------------

def _is_acquisition(call: ast.Call, aliases: Dict[str, str]) -> bool:
    """``SharedMemory(create=True, ...)`` — attaching is not acquiring."""
    name = canonical_name(dotted(call.func), aliases)
    if not (name == "SharedMemory" or name.endswith(".SharedMemory")):
        return False
    for kw in call.keywords:
        if (
            kw.arg == "create"
            and isinstance(kw.value, ast.Constant)
            and kw.value.value is True
        ):
            return True
    return False


def _has_cleanup(stmts: Sequence[ast.stmt]) -> bool:
    for stmt in stmts:
        for node in ast.walk(stmt):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _CLEANUP_METHODS
            ):
                return True
    return False


def _protected(regions: Tuple[TryRegion, ...]) -> bool:
    """Whether a statement's exception edge runs releasing cleanup.

    Statements in the *body* of a try whose handler or finalizer
    releases are covered; so are the handler/finalizer statements
    themselves (they are the release path).  ``else`` blocks are not:
    exceptions raised there bypass the handlers.
    """
    for region in regions:
        if region.region == "else":
            continue
        if region.region in ("handler", "final"):
            if _has_cleanup(region.stmt.finalbody) or any(
                _has_cleanup(h.body) for h in region.stmt.handlers
            ):
                return True
            continue
        if _has_cleanup(region.stmt.finalbody):
            return True
        if any(
            _has_cleanup(handler.body) for handler in region.stmt.handlers
        ):
            return True
    return False


def _self_store_attr(fn: ast.AST, local: str) -> Optional[str]:
    """Attribute name when ``local`` is stored into ``self`` state."""
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign):
            if not (
                isinstance(node.value, ast.Name) and node.value.id == local
            ):
                continue
            for target in node.targets:
                attr = _self_attr_of(target)
                if attr is not None:
                    return attr
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in ("append", "add", "insert", "setdefault")
                and node.args
                and any(
                    isinstance(a, ast.Name) and a.id == local
                    for a in node.args
                )
            ):
                attr = _self_attr_of(func.value)
                if attr is not None:
                    return attr
    return None


def _self_attr_of(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Subscript):
        node = node.value
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _owner_releases(
    modules: Sequence[ModuleInfo], table: SymbolTable, owner: str, attr: str
) -> bool:
    """Whether any MRO cleanup method of ``owner`` releases ``attr``."""
    names = set(table.mro(owner)) or {owner}
    for module in modules:
        for scope in module.functions():
            if scope.owner not in names:
                continue
            if scope.node.name not in _OWNER_CLEANUP:
                continue
            mentions = any(
                isinstance(node, ast.Attribute) and node.attr == attr
                for node in ast.walk(scope.node)
            )
            if mentions and _has_cleanup(scope.node.body):
                return True
    return False


def _is_fallible(
    node: ast.AST, module_funcs: Set[str]
) -> Optional[str]:
    """Description when a single node can raise mid-setup.

    Fallible means a ``self.m()`` call, a call to a same-module
    function, or an explicit ``raise`` — the project's own multi-step
    setup code, where a partial failure strands earlier acquisitions.
    """
    if isinstance(node, ast.Raise):
        return "raises"
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id == "self"
    ):
        return f"calls 'self.{func.attr}()'"
    if isinstance(func, ast.Name) and func.id in module_funcs:
        return f"calls '{func.id}()'"
    return None


def _later_try_releases(fn: ast.AST, after_line: int, local: str) -> bool:
    """A subsequent try's handler/finally releases ``local``.

    Accepts the canonical acquire-then-guard idiom::

        shm = SharedMemory(create=True, ...)
        try: ...
        finally: shm.close(); shm.unlink()
    """
    for node in ast.walk(fn):
        if not isinstance(node, ast.Try) or node.lineno < after_line:
            continue
        cleanup_stmts = list(node.finalbody) + [
            stmt for handler in node.handlers for stmt in handler.body
        ]
        for stmt in cleanup_stmts:
            for sub in ast.walk(stmt):
                if (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr in _CLEANUP_METHODS
                    and isinstance(sub.func.value, ast.Name)
                    and sub.func.value.id == local
                ):
                    return True
    return False


class _LeakChecker:
    """Per-module SharedMemory acquisition/release conformance."""

    def __init__(
        self,
        modules: Sequence[ModuleInfo],
        module: ModuleInfo,
        table: SymbolTable,
    ) -> None:
        self.modules = modules
        self.module = module
        self.table = table
        self.aliases = import_aliases(module)
        self.module_funcs = {
            scope.node.name
            for scope in module.functions()
            if scope.owner is None
        }
        #: (owner, method) -> first direct-acquisition line
        self.direct: Dict[Tuple[Optional[str], str], int] = {}
        #: functions already flagged by the direct check; the
        #: exception-edge obligation skips them so one defect yields
        #: exactly one finding.
        self.flagged: Set[Tuple[Optional[str], str]] = set()

    def run(self) -> List[Finding]:
        findings: List[Finding] = []
        scopes = list(self.module.functions())
        for scope in scopes:
            findings.extend(self._check_direct(scope))
        acquiring = self._acquiring_methods(scopes)
        for scope in scopes:
            findings.extend(self._check_obligation(scope, acquiring))
        return findings

    # -- direct acquisitions --------------------------------------------
    def _check_direct(self, scope: FunctionScope) -> List[Finding]:
        findings: List[Finding] = []
        fn = scope.node
        tries = try_scopes(fn)
        returned = {
            node.value.id
            for node in ast.walk(fn)
            if isinstance(node, ast.Return)
            and isinstance(node.value, ast.Name)
        }
        for stmt in iter_own_nodes(fn):
            if not isinstance(stmt, ast.Assign):
                continue
            if not (
                isinstance(stmt.value, ast.Call)
                and _is_acquisition(stmt.value, self.aliases)
            ):
                continue
            key = (scope.owner, fn.name)
            self.direct[key] = min(
                self.direct.get(key, stmt.lineno), stmt.lineno
            )
            target = stmt.targets[0]
            local = target.id if isinstance(target, ast.Name) else None
            if local is None:
                continue
            stored = (
                _self_store_attr(fn, local)
                or _self_attr_of(target)
            )
            if stored is not None:
                if scope.owner is not None and not _owner_releases(
                    self.modules, self.table, scope.owner, stored
                ):
                    self.flagged.add(key)
                    findings.append(
                        Finding(
                            self.module.rel,
                            stmt.lineno,
                            RULE_LEAKED_RESOURCE,
                            f"'{scope.qualname}' stores a SharedMemory "
                            f"block in 'self.{stored}' but no cleanup "
                            f"method of '{scope.owner}' releases it; add "
                            "a close() that closes and unlinks the "
                            "container's blocks",
                            PASS_NAME,
                        )
                    )
                continue
            if local in returned:
                continue  # ownership transfers to the caller
            if _protected(tries.get(id(stmt), ())):
                continue
            if _later_try_releases(fn, stmt.lineno, local):
                continue
            self.flagged.add(key)
            findings.append(
                Finding(
                    self.module.rel,
                    stmt.lineno,
                    RULE_LEAKED_RESOURCE,
                    f"'{scope.qualname}' acquires SharedMemory "
                    f"'{local}' outside any try whose handler or "
                    "finally releases it; wrap in try/finally with "
                    f"{local}.close() and {local}.unlink()",
                    PASS_NAME,
                )
            )
        return findings

    # -- transitive acquiring methods -----------------------------------
    def _acquiring_methods(
        self, scopes: Sequence[FunctionScope]
    ) -> Dict[Tuple[Optional[str], str], int]:
        """(owner, method) -> acquisition-point line, transitively.

        A method acquires when it contains a direct acquisition or a
        ``self.m()`` call to an acquiring method of the same class.
        """
        acquiring = dict(self.direct)
        changed = True
        while changed:
            changed = False
            for scope in scopes:
                key = (scope.owner, scope.node.name)
                if key in acquiring or scope.owner is None:
                    continue
                for node in iter_own_nodes(scope.node):
                    if not isinstance(node, ast.Call):
                        continue
                    func = node.func
                    if not (
                        isinstance(func, ast.Attribute)
                        and isinstance(func.value, ast.Name)
                        and func.value.id == "self"
                    ):
                        continue
                    if (scope.owner, func.attr) in acquiring:
                        acquiring[key] = node.lineno
                        changed = True
                        break
        return acquiring

    # -- exception-edge obligation --------------------------------------
    def _check_obligation(
        self,
        scope: FunctionScope,
        acquiring: Dict[Tuple[Optional[str], str], int],
    ) -> List[Finding]:
        fn = scope.node
        key = (scope.owner, fn.name)
        if key not in acquiring or key in self.flagged:
            return []
        tries = try_scopes(fn)
        acq_line: Optional[int] = None
        for node in sorted(
            iter_own_nodes(fn), key=lambda n: getattr(n, "lineno", 0)
        ):
            if acq_line is None:
                if self._acquisition_point(node, scope.owner, acquiring):
                    acq_line = node.lineno
                continue
            if getattr(node, "lineno", 0) <= acq_line:
                continue
            description = _is_fallible(node, self.module_funcs)
            if description is None:
                continue
            if _protected(tries.get(id(node), ())):
                continue
            return [
                Finding(
                    self.module.rel,
                    acq_line,
                    RULE_LEAKED_RESOURCE,
                    f"'{scope.qualname}' allocates SharedMemory (line "
                    f"{acq_line}) and then {description} (line "
                    f"{node.lineno}) with no try releasing the blocks on "
                    "failure; a partial failure strands the mappings — "
                    "wrap the setup in try/except with close() (or "
                    "try/finally)",
                    PASS_NAME,
                )
            ]
        return []

    def _acquisition_point(
        self,
        node: ast.AST,
        owner: Optional[str],
        acquiring: Dict[Tuple[Optional[str], str], int],
    ) -> bool:
        if not isinstance(node, ast.Call):
            return False
        if _is_acquisition(node, self.aliases):
            return True
        func = node.func
        return (
            owner is not None
            and isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"
            and (owner, func.attr) in acquiring
        )


# ---------------------------------------------------------------------------
# Pass entry point
# ---------------------------------------------------------------------------

def run_pass(
    modules: Sequence[ModuleInfo], table: SymbolTable
) -> List[Finding]:
    findings: List[Finding] = []
    for module in modules:
        aliases = import_aliases(module)
        for scope in module.functions():
            interp = _LifecycleInterp(
                module, table, aliases, scope.qualname
            )
            interp.run(scope.node.body)
            findings.extend(interp.findings)
        findings.extend(_LeakChecker(modules, module, table).run())
    return findings
