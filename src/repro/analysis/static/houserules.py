"""House-rules pass: the original repo-specific AST checks.

These four rules predate the dataflow framework (they were
``analysis/lint.py``); they are ported onto the shared
:class:`~repro.analysis.static.dataflow.ModuleInfo` /
:class:`~repro.analysis.static.dataflow.SymbolTable` plumbing so the
whole linter has one :class:`Finding` type, one waiver syntax and one
CLI path:

``rng-factory``
    Every ``numpy`` generator must come from
    :func:`repro.core.prng.seeded_rng` (or ``CounterRNG``); direct
    ``np.random.default_rng`` / ``np.random.*`` calls and the stdlib
    ``random`` module are banned outside ``core/prng.py``.  Ad-hoc
    generators fork untracked RNG streams and silently break
    counter-RNG replay and cross-system seed alignment.

``float-timestamp-eq``
    No ``==`` / ``!=`` on simulated-timeline timestamps (``busy_until``,
    ``ready_time``, ``now``, ``*_time`` names).  Timestamps are sums of
    float durations accumulated in program order; exact equality is
    order-sensitive — use :func:`repro.gpu.timeline.times_close`.

``frozen-event``
    Every ``@dataclass`` in an ``events.py`` module (and every subclass
    of ``EngineEvent`` anywhere) must be declared ``frozen=True``:
    events are delivered synchronously to multiple subscribers, and a
    subscriber mutating a shared event corrupts everyone downstream.

``event-handler-coverage``
    Every event type defined in ``core/events.py`` must have at least
    one ``on_<snake_case>`` handler defined somewhere in the tree (or
    an explicit waiver) — an event nobody consumes is either dead
    weight or a silently unobserved engine fact.

``no-simulated-time-in-backends``
    Modules in the execution-backend package (``repro/backends/``) must
    never import :mod:`repro.gpu.timeline` or :mod:`repro.gpu.device`.
    Backends measure *real* wall-clock per kernel; the simulated clock
    and device specs belong to the cost model that consumes the
    backend's step counts — a backend reading simulated time would let
    measured and simulated seconds contaminate each other, which is
    exactly the split ``repro bench backends`` cross-validates.

``device-failure-conservation``
    Every ``DeviceFailed``-handling code path — a function named
    ``on_device_failed`` or one that constructs/emits a
    ``DeviceFailed`` event — must re-assert walk conservation: call
    something whose name mentions ``conservation`` (e.g. the engine's
    ``_assert_cluster_conservation`` or the sanitizer's
    ``_check_conservation``).  Failure recovery moves whole walk
    populations between shards; a path that mutates them without
    re-checking the global count is exactly where walks get silently
    lost.  Pure counter observers waive per line with
    ``# lint: allow-device-failure-conservation``.
"""

from __future__ import annotations

import ast
import re
from typing import List, Sequence, Set, Tuple

from repro.analysis.static.dataflow import (
    ModuleInfo,
    SymbolTable,
    dotted,
    snake_case,
)
from repro.analysis.static.findings import Finding
from repro.core.prng import FACTORY_MODULE_SUFFIX, FACTORY_NAMES

PASS_NAME = "house-rules"

RULE_RNG = "rng-factory"
RULE_FLOAT_EQ = "float-timestamp-eq"
RULE_FROZEN_EVENT = "frozen-event"
RULE_HANDLER_COVERAGE = "event-handler-coverage"
RULE_FAILURE_CONSERVATION = "device-failure-conservation"
RULE_BACKEND_SIM_TIME = "no-simulated-time-in-backends"

#: package directory whose modules may not touch simulated clocks.
BACKENDS_PACKAGE = "backends/"

#: module paths banned inside the backends package (simulated time).
SIMULATED_TIME_MODULES = ("gpu.timeline", "gpu.device")

#: module path (as posix suffix) allowed to construct raw generators and
#: the blessed factory surface — both shared with the interprocedural
#: ``rng`` pass via :mod:`repro.core.prng` so the two linters can never
#: disagree about what counts as sanctioned randomness.
RNG_FACTORY_MODULE = FACTORY_MODULE_SUFFIX
RNG_FACTORY_NAMES = FACTORY_NAMES

#: identifiers treated as simulated timestamps by ``float-timestamp-eq``.
TIMESTAMP_NAMES = re.compile(
    r"^(busy_until|ready_time|now|graph_t|batch_t|k_end|earliest"
    r"|[a-z0-9_]*_time)$"
)


def _constructs_device_failed(node: ast.AST) -> bool:
    """Does this subtree build (and therefore emit) a DeviceFailed event?"""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            if dotted(sub.func).split(".")[-1] == "DeviceFailed":
                return True
    return False


def _reasserts_conservation(node: ast.AST) -> bool:
    """Does this subtree call anything whose name mentions conservation?"""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            if "conservation" in dotted(sub.func).lower():
                return True
    return False


def _in_backends_package(rel: str) -> bool:
    rel = rel.replace("\\", "/")
    return f"/{BACKENDS_PACKAGE}" in rel or rel.startswith(BACKENDS_PACKAGE)


def _is_simulated_time_module(name: str) -> bool:
    for banned in SIMULATED_TIME_MODULES:
        for full in (banned, f"repro.{banned}"):
            if name == full or name.startswith(full + "."):
                return True
    return False


def _is_timestamp_operand(node: ast.AST) -> bool:
    if isinstance(node, ast.Name):
        return bool(TIMESTAMP_NAMES.match(node.id))
    if isinstance(node, ast.Attribute):
        return bool(TIMESTAMP_NAMES.match(node.attr))
    return False


class _FileVisitor(ast.NodeVisitor):
    """Single-file visitor for the per-file house rules."""

    def __init__(self, module: ModuleInfo, allow_rng: bool) -> None:
        self.module = module
        self.allow_rng = allow_rng
        self.in_backends = _in_backends_package(module.rel)
        self.findings: List[Finding] = []
        self.handler_names: Set[str] = set()

    def _report(self, node: ast.AST, rule: str, message: str) -> None:
        self.findings.append(
            Finding(
                self.module.rel,
                getattr(node, "lineno", 0),
                rule,
                message,
                PASS_NAME,
            )
        )

    # -- no-simulated-time-in-backends ---------------------------------
    def _report_simulated_time(self, node: ast.AST, name: str) -> None:
        self._report(
            node,
            RULE_BACKEND_SIM_TIME,
            f"backend module imports '{name}': execution backends "
            "measure real wall-clock and must not consume simulated "
            "clocks or device specs (the cost model does that from the "
            "backend's returned step counts)",
        )

    # -- rng-factory ---------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        if not self.allow_rng:
            for alias in node.names:
                if alias.name == "random" or alias.name.startswith(
                    "random."
                ):
                    self._report(
                        node,
                        RULE_RNG,
                        "stdlib 'random' bypasses core/prng.py; use "
                        "repro.core.prng.seeded_rng",
                    )
        if self.in_backends:
            for alias in node.names:
                if _is_simulated_time_module(alias.name):
                    self._report_simulated_time(node, alias.name)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if not self.allow_rng and node.module is not None:
            if node.module == "random" or node.module.startswith("random."):
                self._report(
                    node,
                    RULE_RNG,
                    "stdlib 'random' bypasses core/prng.py; use "
                    "repro.core.prng.seeded_rng",
                )
            if node.module in ("numpy.random",) or node.module.startswith(
                "numpy.random."
            ):
                self._report(
                    node,
                    RULE_RNG,
                    "importing from numpy.random bypasses core/prng.py; "
                    "use repro.core.prng.seeded_rng",
                )
        if self.in_backends and node.module is not None:
            if _is_simulated_time_module(node.module):
                self._report_simulated_time(node, node.module)
            elif node.module in ("repro.gpu", "gpu"):
                for alias in node.names:
                    target = f"{node.module}.{alias.name}"
                    if _is_simulated_time_module(target):
                        self._report_simulated_time(node, target)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if not self.allow_rng:
            name = dotted(node.func)
            if ".random." in f".{name}." and (
                name.startswith("np.random")
                or name.startswith("numpy.random")
            ):
                self._report(
                    node,
                    RULE_RNG,
                    f"direct '{name}' call outside core/prng.py; "
                    "construct generators via repro.core.prng.seeded_rng "
                    "so runs stay counter-RNG deterministic",
                )
        self.generic_visit(node)

    # -- float-timestamp-eq --------------------------------------------
    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            for side in (left, right):
                if _is_timestamp_operand(side):
                    name = dotted(side) or "<timestamp>"
                    self._report(
                        node,
                        RULE_FLOAT_EQ,
                        f"exact {'==' if isinstance(op, ast.Eq) else '!='} "
                        f"on simulated timestamp '{name}'; use "
                        "repro.gpu.timeline.times_close",
                    )
                    break
        self.generic_visit(node)

    # -- frozen-event ----------------------------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        is_event_module = self.module.path.name == "events.py"
        subclasses_event = any(
            dotted(base).split(".")[-1] == "EngineEvent"
            for base in node.bases
        )
        for decorator in node.decorator_list:
            target = decorator
            frozen = False
            if isinstance(decorator, ast.Call):
                target = decorator.func
                frozen = any(
                    kw.arg == "frozen"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value is True
                    for kw in decorator.keywords
                )
            if dotted(target).split(".")[-1] != "dataclass":
                continue
            if (is_event_module or subclasses_event) and not frozen:
                self._report(
                    node,
                    RULE_FROZEN_EVENT,
                    f"event dataclass '{node.name}' must be "
                    "@dataclass(frozen=True): events are shared across "
                    "bus subscribers",
                )
        self.generic_visit(node)

    # -- device-failure-conservation -------------------------------------
    def _check_device_failure(self, node: ast.AST) -> None:
        name = getattr(node, "name", "")
        handles = name == "on_device_failed" or _constructs_device_failed(
            node
        )
        if not handles or "conservation" in name.lower():
            return
        if _reasserts_conservation(node):
            return
        self._report(
            node,
            RULE_FAILURE_CONSERVATION,
            f"'{name}' handles DeviceFailed but never re-asserts walk "
            "conservation; call a *conservation* check (e.g. "
            "_assert_cluster_conservation) or waive with "
            "'# lint: allow-device-failure-conservation'",
        )

    # -- handler collection (for event-handler-coverage) -----------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        if node.name.startswith("on_"):
            self.handler_names.add(node.name)
        self._check_device_failure(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        if node.name.startswith("on_"):
            self.handler_names.add(node.name)
        self._check_device_failure(node)
        self.generic_visit(node)


def _event_types(tree: ast.Module) -> List[Tuple[str, int]]:
    """``(class name, lineno)`` of every EngineEvent subclass in a module."""
    out: List[Tuple[str, int]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and any(
            dotted(base).split(".")[-1] == "EngineEvent"
            for base in node.bases
        ):
            out.append((node.name, node.lineno))
    return out


def run_pass(
    modules: Sequence[ModuleInfo], table: SymbolTable
) -> List[Finding]:
    """Run the four house rules over parsed modules."""
    findings: List[Finding] = []
    all_handlers: Set[str] = set()
    events_modules: List[ModuleInfo] = []

    for module in modules:
        visitor = _FileVisitor(
            module, allow_rng=module.rel.endswith(RNG_FACTORY_MODULE)
        )
        visitor.visit(module.tree)
        all_handlers.update(visitor.handler_names)
        findings.extend(visitor.findings)
        if module.rel.endswith("core/events.py"):
            events_modules.append(module)

    # event-handler-coverage spans files: needs all handlers collected.
    for module in events_modules:
        for event_name, lineno in _event_types(module.tree):
            handler = "on_" + snake_case(event_name)
            if handler in all_handlers:
                continue
            findings.append(
                Finding(
                    module.rel,
                    lineno,
                    RULE_HANDLER_COVERAGE,
                    f"event type '{event_name}' has no '{handler}' "
                    "subscriber anywhere in the tree; register a handler "
                    "or waive with '# lint: allow-event-handler-coverage'",
                    PASS_NAME,
                )
            )
    return findings
