"""SARIF 2.1.0 emission for ``repro lint`` findings.

``repro lint --strict --sarif lint.sarif`` writes a Static Analysis
Results Interchange Format log so CI can upload findings to GitHub code
scanning (``github/codeql-action/upload-sarif``) and reviewers see them
as inline annotations.  Baseline-suppressed findings are included with
a SARIF ``suppressions`` entry (kind ``external``) rather than dropped,
matching the JSON report's ``findings``/``suppressed`` split.

The environment has no ``jsonschema`` package, so
:func:`validate_sarif` structurally checks the invariants the 2.1.0
schema imposes on exactly the subset we emit — version/schema pinning,
driver and rule shape, result/location shape, and that every
``ruleId`` is declared by the driver.  The round-trip test runs it over
a freshly parsed log.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.analysis.static.findings import Finding

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
TOOL_NAME = "repro-lint"

#: one-line help per rule, surfaced in the code-scanning UI.  Rules not
#: listed fall back to a generic description — keeping this table soft
#: means a new pass cannot break SARIF emission by forgetting an entry.
RULE_DESCRIPTIONS: Dict[str, str] = {
    "typestate-order": (
        "Protocol method called from a lifecycle state that does not "
        "allow it"
    ),
    "use-after-close": (
        "Protocol method called after the object reached its terminal "
        "state"
    ),
    "leaked-resource": (
        "SharedMemory acquisition not released on every exception path"
    ),
    "unvalidated-size": (
        "Client-controlled value reaches an allocation size or range "
        "bound without validation"
    ),
    "tainted-seed": (
        "Client-controlled value flows into seed derivation"
    ),
    "tainted-index": (
        "Client-controlled value indexes a CSR array without bounds "
        "validation"
    ),
    "raw-rng": "RNG constructed outside the seeded factory helpers",
    "unkeyed-draw": "Random draw not keyed by (seed, walk, step, draw)",
    "nondeterministic-seed": "Seed derived from a nondeterministic source",
    "impure-bus-subscriber": "Bus handler mutates engine-side state",
    "handler-calls-emit": "Bus handler emits re-entrantly",
}


def sarif_log(
    fresh: Sequence[Finding], suppressed: Sequence[Finding]
) -> Dict[str, object]:
    """Build the SARIF 2.1.0 log object for one lint run."""
    rule_ids = sorted(
        {f.rule for f in fresh} | {f.rule for f in suppressed}
    )
    rule_index = {rule: index for index, rule in enumerate(rule_ids)}
    rules: List[Dict[str, object]] = [
        {
            "id": rule,
            "shortDescription": {
                "text": RULE_DESCRIPTIONS.get(
                    rule, f"repro lint rule '{rule}'"
                )
            },
        }
        for rule in rule_ids
    ]

    def result(finding: Finding, suppress: bool) -> Dict[str, object]:
        entry: Dict[str, object] = {
            "ruleId": finding.rule,
            "ruleIndex": rule_index[finding.rule],
            "level": "error",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path,
                            "uriBaseId": "%SRCROOT%",
                        },
                        "region": {"startLine": max(finding.line, 1)},
                    }
                }
            ],
        }
        if suppress:
            entry["suppressions"] = [
                {
                    "kind": "external",
                    "justification": (
                        "accepted in the committed lint-baseline.json"
                    ),
                }
            ]
        return entry

    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "informationUri": (
                            "https://github.com/"  # repo-relative docs
                        ),
                        "rules": rules,
                    }
                },
                "results": [result(f, False) for f in fresh]
                + [result(f, True) for f in suppressed],
            }
        ],
    }


def write_sarif(
    path: Path, fresh: Sequence[Finding], suppressed: Sequence[Finding]
) -> None:
    log = sarif_log(fresh, suppressed)
    path.write_text(
        json.dumps(log, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


# ---------------------------------------------------------------------------
# Structural validation (no jsonschema available in this environment)
# ---------------------------------------------------------------------------

def validate_sarif(log: object) -> List[str]:
    """Problems that would fail the SARIF 2.1.0 schema; empty == valid.

    Checks the constraints the official schema places on the subset
    :func:`sarif_log` emits: required top-level members and their
    types, run/tool/driver shape, declared rules, and result shape
    (ruleId, message.text, physical locations with an artifact uri and
    a positive integer startLine, ruleIndex consistency).
    """
    problems: List[str] = []

    def expect(cond: bool, message: str) -> bool:
        if not cond:
            problems.append(message)
        return cond

    if not expect(isinstance(log, dict), "log must be a JSON object"):
        return problems
    assert isinstance(log, dict)
    expect(log.get("version") == SARIF_VERSION, "version must be '2.1.0'")
    schema = log.get("$schema", SARIF_SCHEMA)
    expect(
        isinstance(schema, str) and "sarif" in schema and "2.1.0" in schema,
        "$schema must reference the SARIF 2.1.0 schema",
    )
    runs = log.get("runs")
    if not expect(
        isinstance(runs, list) and len(runs) >= 1, "runs must be a non-empty array"
    ):
        return problems
    assert isinstance(runs, list)
    for run_index, run in enumerate(runs):
        prefix = f"runs[{run_index}]"
        if not expect(isinstance(run, dict), f"{prefix} must be an object"):
            continue
        driver = run.get("tool", {}).get("driver") if isinstance(
            run.get("tool"), dict
        ) else None
        if not expect(
            isinstance(driver, dict), f"{prefix}.tool.driver is required"
        ):
            continue
        assert isinstance(driver, dict)
        expect(
            isinstance(driver.get("name"), str) and driver["name"],
            f"{prefix}.tool.driver.name must be a non-empty string",
        )
        rules = driver.get("rules", [])
        declared: List[Optional[str]] = []
        if expect(
            isinstance(rules, list), f"{prefix}.tool.driver.rules must be an array"
        ):
            for rule_i, rule in enumerate(rules):
                where = f"{prefix}.rules[{rule_i}]"
                if not expect(
                    isinstance(rule, dict) and isinstance(
                        rule.get("id"), str
                    ),
                    f"{where} must declare a string id",
                ):
                    declared.append(None)
                    continue
                declared.append(rule["id"])
        results = run.get("results", [])
        if not expect(
            isinstance(results, list), f"{prefix}.results must be an array"
        ):
            continue
        for res_i, res in enumerate(results):
            where = f"{prefix}.results[{res_i}]"
            if not expect(isinstance(res, dict), f"{where} must be an object"):
                continue
            rule_id = res.get("ruleId")
            expect(
                isinstance(rule_id, str) and rule_id in declared,
                f"{where}.ruleId must be declared in driver.rules",
            )
            index = res.get("ruleIndex")
            if index is not None:
                expect(
                    isinstance(index, int)
                    and 0 <= index < len(declared)
                    and declared[index] == rule_id,
                    f"{where}.ruleIndex must match the declared rule",
                )
            message = res.get("message")
            expect(
                isinstance(message, dict)
                and isinstance(message.get("text"), str),
                f"{where}.message.text is required",
            )
            expect(
                res.get("level")
                in (None, "none", "note", "warning", "error"),
                f"{where}.level must be a SARIF level",
            )
            for loc_i, loc in enumerate(res.get("locations", [])):
                lwhere = f"{where}.locations[{loc_i}]"
                physical = (
                    loc.get("physicalLocation")
                    if isinstance(loc, dict)
                    else None
                )
                if not expect(
                    isinstance(physical, dict),
                    f"{lwhere}.physicalLocation is required",
                ):
                    continue
                assert isinstance(physical, dict)
                artifact = physical.get("artifactLocation")
                expect(
                    isinstance(artifact, dict)
                    and isinstance(artifact.get("uri"), str),
                    f"{lwhere}.artifactLocation.uri is required",
                )
                region = physical.get("region")
                if region is not None:
                    start = region.get("startLine") if isinstance(
                        region, dict
                    ) else None
                    expect(
                        isinstance(start, int) and start >= 1,
                        f"{lwhere}.region.startLine must be a positive int",
                    )
            for sup_i, sup in enumerate(res.get("suppressions", [])):
                expect(
                    isinstance(sup, dict)
                    and sup.get("kind") in ("inSource", "external"),
                    f"{where}.suppressions[{sup_i}].kind must be "
                    "inSource or external",
                )
    return problems
