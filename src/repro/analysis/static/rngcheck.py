"""Interprocedural RNG-discipline pass (``--strict``, rules ``raw-rng``,
``unkeyed-draw``, ``nondeterministic-seed``).

The repo's replay guarantee is dynamic: the counter RNG keys every draw
by ``(seed, walk, step, draw)``, so any batch schedule replays
bit-identically.  That guarantee dies silently the moment randomness
enters through a side door.  This pass closes the three doors the
house-rules lint cannot see:

``raw-rng``
    A raw ``numpy.random.*`` / stdlib ``random.*`` construction that is
    *reachable from engine or backend code* through the project call
    graph — including sites the intraprocedural ``rng-factory`` rule
    misses because the module was imported under an alias (``from numpy
    import random as nprng``) or the construction hides in a helper the
    engine calls.  Only names in :data:`repro.core.prng.FACTORY_NAMES`
    (the same allowlist ``house-rules`` uses) may mint randomness.

``nondeterministic-seed``
    An RNG construction (raw or blessed) whose seed argument derives
    from wall-clock time, process identity or entropy —
    ``time.time()``, ``os.urandom``, ``uuid4``, ``secrets``, ``id()``,
    ``datetime.now()``.  Such a seed makes every run a new universe;
    goldens and cross-backend parity checks can never hold.

``unkeyed-draw``
    A backend draw routine whose parameter list does not carry all four
    key roles — seed, walk, step and draw counter.  A draw keyed on a
    subset is order-dependent in the dropped dimension: e.g. dropping
    ``step`` makes every step of a walk reuse one value, dropping
    ``draw`` collides multiple draws within a step.  The numba lane
    kernel ``_lane_draw_py(seed, walk_id, step, draw)`` is the contract.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.static.dataflow import (
    CallGraph,
    ModuleInfo,
    SymbolTable,
    canonical_name,
    dotted,
    import_aliases,
    iter_own_nodes,
)
from repro.analysis.static.findings import Finding
from repro.core.prng import FACTORY_MODULE_SUFFIX, FACTORY_NAMES

PASS_NAME = "rng"

RULE_RAW_RNG = "raw-rng"
RULE_UNKEYED_DRAW = "unkeyed-draw"
RULE_NONDET_SEED = "nondeterministic-seed"

#: modules whose functions are reachability roots: anything that can run
#: under the engine/backend umbrella must obey RNG discipline.
ROOT_MODULE_RE = re.compile(
    r"(^|/)repro/(core|backends|gpu|walks|algorithms)/"
)

#: classes whose methods are roots regardless of module placement.
ROOT_CLASS_RE = re.compile(
    r"(Engine|Backend|Stage|Dispatcher|Loader|Server|Migrator|Cluster)$"
)

#: canonical call prefixes that mint raw randomness.
_RAW_PREFIXES = ("numpy.random.", "random.")

#: canonical dotted names whose value is nondeterministic across runs.
_ENTROPY_CALL_RE = re.compile(
    r"(^|\.)("
    r"time|time_ns|perf_counter|perf_counter_ns|monotonic|monotonic_ns"
    r"|urandom|getpid|uuid1|uuid4|token_bytes|token_hex|randbits|now"
    r")$"
)
_ENTROPY_MODULES = ("time.", "os.", "uuid.", "secrets.", "datetime.")

#: parameter-name patterns for the four draw-key roles.
_KEY_ROLES: Tuple[Tuple[str, re.Pattern[str]], ...] = (
    ("seed", re.compile(r"seed")),
    ("walk", re.compile(r"walk|lane|^ids?$|_ids?$")),
    ("step", re.compile(r"step")),
    ("draw", re.compile(r"draw|counter|round")),
)


def _is_factory_module(rel: str) -> bool:
    return rel.replace("\\", "/").endswith(FACTORY_MODULE_SUFFIX)


def _canonical_call(call: ast.Call, aliases: Dict[str, str]) -> str:
    """Canonical dotted name of a call's callee ('' if not a name)."""
    name = dotted(call.func)
    if not name:
        return ""
    return canonical_name(name, aliases)


def _is_raw_rng_call(canonical: str) -> bool:
    if canonical.rsplit(".", 1)[-1] in FACTORY_NAMES:
        return False
    for prefix in _RAW_PREFIXES:
        if canonical.startswith(prefix):
            return True
    return False


def _is_rng_construction(canonical: str) -> bool:
    """Raw or blessed: any call that mints an RNG or derives a seed."""
    return (
        _is_raw_rng_call(canonical)
        or canonical.rsplit(".", 1)[-1] in FACTORY_NAMES
    )


def _entropy_source(
    node: ast.AST, aliases: Dict[str, str]
) -> Optional[str]:
    """Canonical name of a nondeterministic call in ``node``, if any."""
    for sub in ast.walk(node):
        if not isinstance(sub, ast.Call):
            continue
        name = dotted(sub.func)
        if name == "id":
            return "id"
        canonical = canonical_name(name, aliases) if name else ""
        if not canonical:
            continue
        if canonical.startswith(_ENTROPY_MODULES) and _ENTROPY_CALL_RE.search(
            canonical
        ):
            return canonical
        # bare ``from time import time``-style aliases resolve fully.
        if canonical in ("time.time", "os.urandom", "uuid.uuid4"):
            return canonical
    return None


def _collect_roots(graph: CallGraph, table: SymbolTable) -> List[str]:
    roots: List[str] = []
    for uid, node in graph.nodes.items():
        rel = node.module.rel.replace("\\", "/")
        if ROOT_MODULE_RE.search(f"/{rel}"):
            roots.append(uid)
            continue
        owner = node.scope.owner
        if owner is not None and (
            ROOT_CLASS_RE.search(owner)
            or table.inherits_from(owner, "ExecutionBackend")
        ):
            roots.append(uid)
    return roots


def _module_is_backend(module: ModuleInfo, table: SymbolTable) -> bool:
    rel = module.rel.replace("\\", "/")
    if re.search(r"(^|/)backends/", rel):
        return True
    for node in ast.walk(module.tree):
        if isinstance(node, ast.ClassDef) and (
            node.name.endswith("Backend")
            or table.inherits_from(node.name, "ExecutionBackend")
        ):
            return True
    return False


def _check_draw_signature(
    module: ModuleInfo, findings: List[Finding]
) -> None:
    """``unkeyed-draw``: draw routines must carry all four key roles."""
    for scope in module.functions():
        fn = scope.node
        if "draw" not in fn.name.lower():
            continue
        params = [
            a.arg
            for a in [*fn.args.posonlyargs, *fn.args.args, *fn.args.kwonlyargs]
            if a.arg not in ("self", "cls")
        ]
        roles_hit: Set[str] = set()
        for param in params:
            for role, pattern in _KEY_ROLES:
                if pattern.search(param):
                    roles_hit.add(role)
        # Only judge functions that look like per-lane draw kernels:
        # at least two key roles present means the author intended a
        # keyed draw; fewer means it's some unrelated 'draw' helper.
        if len(roles_hit) < 2 or len(roles_hit) == len(_KEY_ROLES):
            continue
        missing = [
            role for role, _ in _KEY_ROLES if role not in roles_hit
        ]
        findings.append(
            Finding(
                module.rel,
                fn.lineno,
                RULE_UNKEYED_DRAW,
                f"draw routine '{scope.qualname}' keys on "
                f"{sorted(roles_hit)} but not {missing}: counter draws "
                "must mix all four (seed, walk, step, draw) components "
                "or replay becomes schedule-dependent",
                PASS_NAME,
            )
        )


def run_pass(
    modules: Sequence[ModuleInfo], table: SymbolTable
) -> List[Finding]:
    findings: List[Finding] = []
    graph = CallGraph.build(modules, table)
    roots = _collect_roots(graph, table)
    reachable = graph.reachable(roots)
    aliases_of: Dict[str, Dict[str, str]] = {}

    def aliases_for(module: ModuleInfo) -> Dict[str, str]:
        cached = aliases_of.get(module.rel)
        if cached is None:
            cached = import_aliases(module)
            aliases_of[module.rel] = cached
        return cached

    for uid in sorted(reachable):
        node = graph.nodes[uid]
        if _is_factory_module(node.module.rel):
            continue
        aliases = aliases_for(node.module)
        for sub in iter_own_nodes(node.scope.node):
            if not isinstance(sub, ast.Call):
                continue
            canonical = _canonical_call(sub, aliases)
            if not canonical:
                continue
            if _is_raw_rng_call(canonical):
                findings.append(
                    Finding(
                        node.module.rel,
                        sub.lineno,
                        RULE_RAW_RNG,
                        f"'{canonical}' in '{node.scope.qualname}' is "
                        "reachable from engine/backend code but bypasses "
                        "the core/prng.py factories "
                        f"({', '.join(FACTORY_NAMES)}); raw generators "
                        "fork untracked streams and break counter-RNG "
                        "replay",
                        PASS_NAME,
                    )
                )
            if _is_rng_construction(canonical):
                source = None
                for arg in [*sub.args, *[kw.value for kw in sub.keywords]]:
                    source = _entropy_source(arg, aliases)
                    if source is not None:
                        break
                if source is not None:
                    findings.append(
                        Finding(
                            node.module.rel,
                            sub.lineno,
                            RULE_NONDET_SEED,
                            f"'{canonical}' in '{node.scope.qualname}' "
                            f"seeds from '{source}': time/entropy-derived "
                            "seeds make runs unreproducible; derive seeds "
                            "via repro.core.prng.derive_seed",
                            PASS_NAME,
                        )
                    )

    for module in modules:
        if _is_factory_module(module.rel):
            continue
        if _module_is_backend(module, table):
            _check_draw_signature(module, findings)
    return findings
