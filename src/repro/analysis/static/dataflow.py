"""Shared per-module symbol tables and the def-use dataflow core.

Every pass of the static framework works from the same parsed picture of
the tree, built once per run:

* :class:`ModuleInfo` — one parsed module: AST, source, waiver comments.
* :class:`SymbolTable` — the cross-module index: function/method return
  annotations (``transfer_time -> Seconds``), class definitions with
  their declared fields, and the set of ``EngineEvent`` subclasses.
* :class:`AbstractInterpreter` — a flow-sensitive walker over one
  function body maintaining an environment of abstract values.  Passes
  subclass it and supply the domain (:meth:`eval_expr`, :meth:`merge`);
  the walker handles assignment, branching (both arms evaluated on
  copies of the environment, then merged) and loops (body evaluated
  once — enough for the intraprocedural unit checks, and it guarantees
  each defect site is reported exactly once).
* :class:`CallGraph` — the project-wide interprocedural layer: one
  node per function/method, edges resolved from call sites (bare names
  against module-level functions, ``self.m()`` through the class-shape
  index's MRO, other attribute calls by method name over the analyzed
  tree) plus the *bus* edges — a ``bus.emit(Event(...))`` site links to
  every ``on_<snake(Event)>`` handler, so reachability queries follow
  control flow through the event bus exactly as the runtime does.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Dict,
    Generic,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    TypeVar,
    Union,
)

from repro.analysis.static.findings import waivers_by_line

#: anything ``Path()`` accepts — callers may pass plain strings.
PathInput = Union[str, Path]

_SNAKE_RE = re.compile(r"(?<!^)(?=[A-Z])")


def snake_case(name: str) -> str:
    """``KernelDispatched`` → ``kernel_dispatched``."""
    return _SNAKE_RE.sub("_", name).lower()


def dotted(node: ast.AST) -> str:
    """Best-effort dotted name of an expression (``np.random.default_rng``)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return ".".join(reversed(parts))


def annotation_name(node: Optional[ast.AST]) -> Optional[str]:
    """The trailing simple name of an annotation (``units.Seconds`` →
    ``Seconds``; string annotations are unquoted; ``Optional[X]`` → X)."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, ast.Subscript):
        base = dotted(node.value).rsplit(".", 1)[-1]
        if base == "Optional":
            return annotation_name(node.slice)
        return base
    name = dotted(node)
    if not name:
        return None
    return name.rsplit(".", 1)[-1]


def iter_python_files(paths: Sequence[PathInput]) -> Iterator[Path]:
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


# ---------------------------------------------------------------------------
# Parsed modules
# ---------------------------------------------------------------------------

@dataclass
class ModuleInfo:
    """One parsed source module plus its waiver comments."""

    path: Path
    rel: str
    source: str
    tree: ast.Module
    waivers: Dict[int, Set[str]]

    @classmethod
    def parse(cls, path: Path) -> "ModuleInfo":
        rel = path.as_posix()
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=rel)
        return cls(path, rel, source, tree, waivers_by_line(source))

    def functions(self) -> Iterator["FunctionScope"]:
        """Every function/method with its enclosing class (if any)."""
        yield from _walk_functions(self.tree, None)


@dataclass
class FunctionScope:
    """One function definition plus its enclosing class name."""

    node: Union[ast.FunctionDef, ast.AsyncFunctionDef]
    owner: Optional[str]

    @property
    def qualname(self) -> str:
        if self.owner:
            return f"{self.owner}.{self.node.name}"
        return self.node.name


def _walk_functions(
    node: ast.AST, owner: Optional[str]
) -> Iterator[FunctionScope]:
    for child in ast.iter_child_nodes(node):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield FunctionScope(child, owner)
            yield from _walk_functions(child, owner)
        elif isinstance(child, ast.ClassDef):
            yield from _walk_functions(child, child.name)
        else:
            yield from _walk_functions(child, owner)


# ---------------------------------------------------------------------------
# Cross-module symbol table
# ---------------------------------------------------------------------------

@dataclass
class ClassSymbol:
    """Declared shape of one class: fields, methods, bases."""

    name: str
    module: str
    bases: List[str] = field(default_factory=list)
    fields: Set[str] = field(default_factory=set)
    methods: Set[str] = field(default_factory=set)


class SymbolTable:
    """The cross-module index every pass shares.

    ``method_returns`` maps a simple function/method name to the set of
    return-annotation names seen anywhere in the analyzed tree; a name
    resolves to a unit only when all annotations agree
    (:meth:`unique_return`).
    """

    def __init__(self) -> None:
        self.method_returns: Dict[str, Set[str]] = {}
        self.classes: Dict[str, ClassSymbol] = {}
        self.event_types: Dict[str, int] = {}

    @classmethod
    def build(cls, modules: Iterable[ModuleInfo]) -> "SymbolTable":
        table = cls()
        for module in modules:
            table._index_module(module)
        return table

    def _index_module(self, module: ModuleInfo) -> None:
        for scope in module.functions():
            ann = annotation_name(scope.node.returns)
            if ann is not None:
                self.method_returns.setdefault(scope.node.name, set()).add(
                    ann
                )
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            symbol = self.classes.setdefault(
                node.name, ClassSymbol(node.name, module.rel)
            )
            symbol.bases = [
                dotted(base).rsplit(".", 1)[-1] for base in node.bases
            ]
            for stmt in node.body:
                if isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name
                ):
                    symbol.fields.add(stmt.target.id)
                elif isinstance(stmt, ast.Assign):
                    for target in stmt.targets:
                        if isinstance(target, ast.Name):
                            symbol.fields.add(target.id)
                elif isinstance(
                    stmt, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    symbol.methods.add(stmt.name)
            if "EngineEvent" in symbol.bases:
                self.event_types[node.name] = node.lineno

    def unique_return(self, func_name: str) -> Optional[str]:
        """Return-annotation name if every definition agrees, else None."""
        annotations = self.method_returns.get(func_name)
        if annotations is not None and len(annotations) == 1:
            return next(iter(annotations))
        return None

    def mro(self, class_name: str) -> List[str]:
        """Name-resolution order of a class over the analyzed tree.

        Breadth-first over declared bases, restricted to classes the
        table has seen; external bases (``Protocol``, ABCs from other
        packages) terminate the walk.
        """
        order: List[str] = []
        queue = [class_name]
        seen: Set[str] = set()
        while queue:
            name = queue.pop(0)
            if name in seen:
                continue
            seen.add(name)
            symbol = self.classes.get(name)
            if symbol is None:
                continue
            order.append(name)
            queue.extend(symbol.bases)
        return order

    def inherits_from(self, class_name: str, base: str) -> bool:
        """Whether ``class_name`` transitively declares ``base``."""
        if class_name == base:
            return False
        queue = list(self.classes.get(class_name, ClassSymbol("", "")).bases)
        seen: Set[str] = set()
        while queue:
            name = queue.pop(0)
            if name in seen:
                continue
            seen.add(name)
            if name == base:
                return True
            queue.extend(self.classes.get(name, ClassSymbol("", "")).bases)
        return False


# ---------------------------------------------------------------------------
# Flow-sensitive abstract interpretation
# ---------------------------------------------------------------------------

V = TypeVar("V")


class AbstractInterpreter(Generic[V]):
    """Walks one function body, maintaining ``name -> abstract value``.

    Subclasses provide the domain: :meth:`eval_expr` (which must also
    recurse into sub-expressions so every expression is visited exactly
    once) and :meth:`merge` for joining branch environments.  Statement
    structure — assignment targets, branch copies, single-pass loop
    bodies — is handled here so every pass agrees on the same def-use
    semantics.
    """

    def __init__(self) -> None:
        self.env: Dict[str, V] = {}

    # -- domain hooks ---------------------------------------------------
    def top(self) -> V:
        """The 'unknown' element of the domain."""
        raise NotImplementedError

    def eval_expr(self, node: ast.expr) -> V:
        raise NotImplementedError

    def merge(self, a: V, b: V) -> V:
        raise NotImplementedError

    def on_assign(self, target: ast.expr, value: V, node: ast.stmt) -> None:
        """Called for attribute/subscript stores (env handles plain names)."""

    def on_return(self, node: ast.Return, value: Optional[V]) -> None:
        """Called at every ``return`` with the returned abstract value."""

    # -- walker ---------------------------------------------------------
    def run(self, body: Sequence[ast.stmt]) -> None:
        self.exec_block(body)

    def exec_block(self, stmts: Sequence[ast.stmt]) -> None:
        for stmt in stmts:
            self.exec_stmt(stmt)

    def _merge_envs(self, envs: List[Dict[str, V]]) -> Dict[str, V]:
        merged: Dict[str, V] = {}
        keys = set().union(*(env.keys() for env in envs)) if envs else set()
        for key in keys:
            value: Optional[V] = None
            missing = False
            for env in envs:
                if key not in env:
                    missing = True
                    continue
                value = (
                    env[key]
                    if value is None
                    else self.merge(value, env[key])
                )
            if value is None:
                continue
            merged[key] = self.merge(value, self.top()) if missing else value
        return merged

    def _bind_target(self, target: ast.expr, value: V, stmt: ast.stmt) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind_target(element, self.top(), stmt)
        elif isinstance(target, ast.Starred):
            self._bind_target(target.value, self.top(), stmt)
        else:
            # attribute / subscript stores: evaluate the container
            # expression (so reads inside it are visited) and notify.
            if isinstance(target, ast.Attribute):
                self.eval_expr(target.value)
            elif isinstance(target, ast.Subscript):
                self.eval_expr(target.value)
                self.eval_expr(target.slice)
            self.on_assign(target, value, stmt)

    def exec_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            value = self.eval_expr(stmt.value)
            for target in stmt.targets:
                self._bind_target(target, value, stmt)
        elif isinstance(stmt, ast.AnnAssign):
            value = (
                self.eval_expr(stmt.value)
                if stmt.value is not None
                else self.top()
            )
            annotated = self.value_from_annotation(stmt.annotation)
            if annotated is not None:
                value = annotated
            self._bind_target(stmt.target, value, stmt)
        elif isinstance(stmt, ast.AugAssign):
            combined = self.eval_expr(
                ast.copy_location(
                    ast.BinOp(stmt.target, stmt.op, stmt.value), stmt
                )
            )
            self._bind_target(stmt.target, combined, stmt)
        elif isinstance(stmt, ast.If):
            self.eval_expr(stmt.test)
            before = dict(self.env)
            self.exec_block(stmt.body)
            then_env = self.env
            self.env = dict(before)
            self.exec_block(stmt.orelse)
            self.env = self._merge_envs([then_env, self.env])
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self.eval_expr(stmt.iter)
            before = dict(self.env)
            self._bind_target(stmt.target, self.top(), stmt)
            self.exec_block(stmt.body)
            self.exec_block(stmt.orelse)
            self.env = self._merge_envs([before, self.env])
        elif isinstance(stmt, ast.While):
            self.eval_expr(stmt.test)
            before = dict(self.env)
            self.exec_block(stmt.body)
            self.exec_block(stmt.orelse)
            self.env = self._merge_envs([before, self.env])
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self.eval_expr(item.context_expr)
                if item.optional_vars is not None:
                    self._bind_target(item.optional_vars, self.top(), stmt)
            self.exec_block(stmt.body)
        elif isinstance(stmt, ast.Try):
            before = dict(self.env)
            self.exec_block(stmt.body)
            arms = [self.env]
            for handler in stmt.handlers:
                self.env = dict(before)
                if handler.name:
                    self.env[handler.name] = self.top()
                self.exec_block(handler.body)
                arms.append(self.env)
            self.env = self._merge_envs(arms)
            self.exec_block(stmt.orelse)
            self.exec_block(stmt.finalbody)
        elif isinstance(stmt, ast.Return):
            value = (
                self.eval_expr(stmt.value)
                if stmt.value is not None
                else None
            )
            self.on_return(stmt, value)
        elif isinstance(stmt, ast.Expr):
            self.eval_expr(stmt.value)
        elif isinstance(stmt, (ast.Raise, ast.Assert, ast.Delete)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self.eval_expr(child)
        elif isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            pass  # nested scopes are analyzed as their own functions
        # pass/break/continue/global/import: nothing to evaluate

    def value_from_annotation(self, node: ast.expr) -> Optional[V]:
        """Abstract value carried by a type annotation (domain hook)."""
        return None


# ---------------------------------------------------------------------------
# Import canonicalization
# ---------------------------------------------------------------------------

def import_aliases(module: ModuleInfo) -> Dict[str, str]:
    """Map every imported local name to its canonical dotted path.

    ``import numpy as np`` → ``np: numpy``; ``from numpy import random
    as nprng`` → ``nprng: numpy.random``; ``from repro.core.prng import
    seeded_rng`` → ``seeded_rng: repro.core.prng.seeded_rng``.  Lets
    passes recognize aliased uses of a banned (or blessed) module that
    plain dotted-name matching misses.
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".", 1)[0]
                target = alias.name if alias.asname else local
                aliases[local] = target
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                target = f"{base}.{alias.name}" if base else alias.name
                aliases[local] = target
    return aliases


def canonical_name(dotted_name: str, aliases: Dict[str, str]) -> str:
    """Resolve the first segment of a dotted name through import aliases."""
    if not dotted_name:
        return dotted_name
    head, _, rest = dotted_name.partition(".")
    resolved = aliases.get(head)
    if resolved is None:
        return dotted_name
    return f"{resolved}.{rest}" if rest else resolved


# ---------------------------------------------------------------------------
# Project-wide call graph
# ---------------------------------------------------------------------------

#: attribute-call names too generic to resolve by name over the tree
#: (container/stdlib methods; resolving them would wire every class
#: defining e.g. ``update`` into every caller's reachable set).
GENERIC_CALL_NAMES = frozenset(
    {
        "append",
        "add",
        "clear",
        "copy",
        "count",
        "discard",
        "extend",
        "format",
        "get",
        "index",
        "insert",
        "items",
        "join",
        "keys",
        "pop",
        "popleft",
        "remove",
        "setdefault",
        "sort",
        "split",
        "startswith",
        "endswith",
        "strip",
        "update",
        "values",
        "astype",
        "sum",
        "min",
        "max",
        "mean",
        "reshape",
        "tolist",
    }
)


@dataclass
class CallRef:
    """One call site inside a function body, pre-resolution."""

    #: ``name`` (bare ``f()``), ``self`` (``self.m()``) or ``attr``
    #: (any other ``obj.m()``).
    kind: str
    name: str
    line: int


@dataclass
class FunctionNode:
    """One call-graph node: a function/method plus its outgoing refs."""

    uid: str
    scope: FunctionScope
    module: ModuleInfo
    calls: List[CallRef] = field(default_factory=list)
    #: event class names emitted on a bus from this body (``<event>``
    #: when the emitted expression is not a direct constructor call).
    emits: List[Tuple[str, int]] = field(default_factory=list)


def function_uid(module: ModuleInfo, scope: FunctionScope) -> str:
    return f"{module.rel}::{scope.qualname}"


def bus_handler_event(
    scope: FunctionScope, table: SymbolTable
) -> Optional[str]:
    """Event type a function handles via the bus naming convention.

    ``on_<snake(E)>`` for a known event type ``E`` — unless the first
    parameter's annotation names a *different* type, which marks the
    method as a direct-call hook that merely shares the naming
    convention (e.g. a backend's ``on_walks_seeded(walks: WalkArrays)``
    fed by the engine, not the bus).
    """
    name = scope.node.name
    if not name.startswith("on_"):
        return None
    event = next(
        (e for e in table.event_types if "on_" + snake_case(e) == name),
        None,
    )
    if event is None:
        return None
    args = scope.node.args
    params = [*args.posonlyargs, *args.args]
    if scope.owner is not None and params and params[0].arg in (
        "self",
        "cls",
    ):
        params = params[1:]
    if params:
        ann = annotation_name(params[0].annotation)
        if ann is not None and ann not in (event, "EngineEvent", "Any"):
            return None
    return event


def iter_own_nodes(
    fn: Union[ast.FunctionDef, ast.AsyncFunctionDef]
) -> Iterator[ast.AST]:
    """Every AST node of a function body, excluding nested defs/classes.

    Nested functions and classes are their own :class:`FunctionScope`
    nodes; attributing their calls to the enclosing function would
    double-count edges.
    """
    stack: List[ast.AST] = list(fn.body)
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            stack.append(child)


@dataclass(frozen=True)
class TryRegion:
    """One enclosing ``try`` statement plus which region holds the node.

    ``region`` is ``"body"`` / ``"handler"`` / ``"else"`` / ``"final"``
    — exception-edge reasoning cares: only code in the *body* region is
    covered by that try's handlers and finalizer.
    """

    stmt: ast.Try
    region: str


def try_scopes(
    fn: Union[ast.FunctionDef, ast.AsyncFunctionDef]
) -> Dict[int, Tuple[TryRegion, ...]]:
    """Map ``id(node)`` -> enclosing try regions, innermost last.

    Covers every node of the function body except nested defs/classes
    (which are their own scopes).  The exception-edge extension the
    lifecycle pass builds on: a statement is *protected* by a try when
    its region stack contains that try's ``body``.
    """
    scopes: Dict[int, Tuple[TryRegion, ...]] = {}

    def walk_stmts(
        stmts: Sequence[ast.stmt], stack: Tuple[TryRegion, ...]
    ) -> None:
        for stmt in stmts:
            scopes[id(stmt)] = stack
            walk(stmt, stack)

    def walk(node: ast.AST, stack: Tuple[TryRegion, ...]) -> None:
        if isinstance(node, ast.Try):
            walk_stmts(node.body, stack + (TryRegion(node, "body"),))
            for handler in node.handlers:
                walk_stmts(
                    handler.body, stack + (TryRegion(node, "handler"),)
                )
            walk_stmts(node.orelse, stack + (TryRegion(node, "else"),))
            walk_stmts(node.finalbody, stack + (TryRegion(node, "final"),))
            return
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            scopes[id(child)] = stack
            walk(child, stack)

    walk_stmts(fn.body, ())
    return scopes


def is_frozen_dataclass(node: ast.ClassDef) -> bool:
    """Whether a class is decorated ``@dataclass(frozen=True)``."""
    for deco in node.decorator_list:
        if isinstance(deco, ast.Call):
            name = dotted(deco.func).rsplit(".", 1)[-1]
            if name != "dataclass":
                continue
            for kw in deco.keywords:
                if (
                    kw.arg == "frozen"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value is True
                ):
                    return True
    return False


def is_bus_expr(node: ast.expr) -> bool:
    """Whether an expression conventionally names an event bus."""
    if isinstance(node, ast.Name):
        return node.id == "bus" or node.id.endswith("_bus")
    if isinstance(node, ast.Attribute):
        return node.attr == "bus" or node.attr.endswith("_bus")
    return False


def emitted_event_name(call: ast.Call) -> str:
    """Event class constructed by an ``emit(...)`` call, or ``<event>``."""
    if call.args:
        arg = call.args[0]
        if isinstance(arg, ast.Call):
            return dotted(arg.func).rsplit(".", 1)[-1] or "<event>"
    return "<event>"


class CallGraph:
    """Interprocedural call resolution over the analyzed tree.

    Resolution is intentionally name-based (no type inference): bare
    calls bind to module-level functions (same module first, then a
    global match), constructor calls to ``__init__``, ``self.m()``
    through the class-shape MRO, and other attribute calls to every
    class defining that method — except :data:`GENERIC_CALL_NAMES`,
    whose ubiquity would drown the graph in false edges.  The result
    over-approximates real control flow, which is the right polarity
    for reachability gating (a raw RNG is flagged if it *may* run under
    the engine) and is refined per-pass where precision matters.
    """

    def __init__(self) -> None:
        self.nodes: Dict[str, FunctionNode] = {}
        self._module_funcs: Dict[str, Dict[str, str]] = {}
        self._global_funcs: Dict[str, List[str]] = {}
        self._methods: Dict[Tuple[str, str], List[str]] = {}
        self._methods_by_name: Dict[str, List[str]] = {}
        self.table: SymbolTable = SymbolTable()

    @classmethod
    def build(
        cls, modules: Iterable[ModuleInfo], table: SymbolTable
    ) -> "CallGraph":
        graph = cls()
        graph.table = table
        for module in modules:
            for scope in module.functions():
                node = FunctionNode(function_uid(module, scope), scope, module)
                graph.nodes[node.uid] = node
                if scope.owner is None:
                    graph._module_funcs.setdefault(module.rel, {})[
                        scope.node.name
                    ] = node.uid
                    graph._global_funcs.setdefault(
                        scope.node.name, []
                    ).append(node.uid)
                else:
                    graph._methods.setdefault(
                        (scope.owner, scope.node.name), []
                    ).append(node.uid)
                    graph._methods_by_name.setdefault(
                        scope.node.name, []
                    ).append(node.uid)
                graph._collect_refs(node)
        return graph

    def _collect_refs(self, node: FunctionNode) -> None:
        for sub in iter_own_nodes(node.scope.node):
            if not isinstance(sub, ast.Call):
                continue
            func = sub.func
            if isinstance(func, ast.Name):
                node.calls.append(CallRef("name", func.id, sub.lineno))
            elif isinstance(func, ast.Attribute):
                if func.attr == "emit" and is_bus_expr(func.value):
                    node.emits.append((emitted_event_name(sub), sub.lineno))
                    continue
                if (
                    isinstance(func.value, ast.Name)
                    and func.value.id == "self"
                ):
                    node.calls.append(CallRef("self", func.attr, sub.lineno))
                else:
                    node.calls.append(CallRef("attr", func.attr, sub.lineno))

    # -- resolution -----------------------------------------------------
    def resolve(
        self, node: FunctionNode, ref: CallRef, dynamic: bool = True
    ) -> List[str]:
        """Candidate callee uids for one call site.

        ``dynamic=False`` restricts to the precise edges (bare names and
        ``self.m()``), for passes where a false edge means a false
        positive rather than a missed root.
        """
        if ref.kind == "name":
            local = self._module_funcs.get(node.module.rel, {}).get(ref.name)
            if local is not None:
                return [local]
            if ref.name in self.table.classes:
                return self._method_in_mro(ref.name, "__init__")
            return list(self._global_funcs.get(ref.name, []))
        if ref.kind == "self":
            if node.scope.owner is None:
                return []
            return self._method_in_mro(node.scope.owner, ref.name)
        if not dynamic or ref.name in GENERIC_CALL_NAMES:
            return []
        return list(self._methods_by_name.get(ref.name, []))

    def _method_in_mro(self, class_name: str, method: str) -> List[str]:
        for owner in self.table.mro(class_name):
            uids = self._methods.get((owner, method))
            if uids:
                return list(uids)
        return []

    def handlers_of(self, event_name: str) -> List[str]:
        """Uids of every ``on_<snake(event_name)>`` handler in the tree."""
        handler = "on_" + snake_case(event_name)
        return list(self._methods_by_name.get(handler, [])) + list(
            self._global_funcs.get(handler, [])
        )

    def reachable(
        self,
        roots: Iterable[str],
        dynamic: bool = True,
        bus_edges: bool = True,
    ) -> Set[str]:
        """Every node reachable from ``roots`` (roots included).

        ``bus_edges=True`` follows synchronous event delivery: a node
        emitting ``E`` reaches every ``on_<snake(E)>`` handler.
        """
        seen: Set[str] = set()
        queue = [uid for uid in roots if uid in self.nodes]
        while queue:
            uid = queue.pop()
            if uid in seen:
                continue
            seen.add(uid)
            node = self.nodes[uid]
            for ref in node.calls:
                queue.extend(self.resolve(node, ref, dynamic=dynamic))
            if bus_edges:
                for event_name, _ in node.emits:
                    if event_name != "<event>":
                        queue.extend(self.handlers_of(event_name))
        return seen
