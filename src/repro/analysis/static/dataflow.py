"""Shared per-module symbol tables and the def-use dataflow core.

Every pass of the static framework works from the same parsed picture of
the tree, built once per run:

* :class:`ModuleInfo` — one parsed module: AST, source, waiver comments.
* :class:`SymbolTable` — the cross-module index: function/method return
  annotations (``transfer_time -> Seconds``), class definitions with
  their declared fields, and the set of ``EngineEvent`` subclasses.
* :class:`AbstractInterpreter` — a flow-sensitive walker over one
  function body maintaining an environment of abstract values.  Passes
  subclass it and supply the domain (:meth:`eval_expr`, :meth:`merge`);
  the walker handles assignment, branching (both arms evaluated on
  copies of the environment, then merged) and loops (body evaluated
  once — enough for the intraprocedural unit checks, and it guarantees
  each defect site is reported exactly once).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Dict,
    Generic,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    TypeVar,
    Union,
)

from repro.analysis.static.findings import waivers_by_line

#: anything ``Path()`` accepts — callers may pass plain strings.
PathInput = Union[str, Path]

_SNAKE_RE = re.compile(r"(?<!^)(?=[A-Z])")


def snake_case(name: str) -> str:
    """``KernelDispatched`` → ``kernel_dispatched``."""
    return _SNAKE_RE.sub("_", name).lower()


def dotted(node: ast.AST) -> str:
    """Best-effort dotted name of an expression (``np.random.default_rng``)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return ".".join(reversed(parts))


def annotation_name(node: Optional[ast.AST]) -> Optional[str]:
    """The trailing simple name of an annotation (``units.Seconds`` →
    ``Seconds``; string annotations are unquoted; ``Optional[X]`` → X)."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, ast.Subscript):
        base = dotted(node.value).rsplit(".", 1)[-1]
        if base == "Optional":
            return annotation_name(node.slice)
        return base
    name = dotted(node)
    if not name:
        return None
    return name.rsplit(".", 1)[-1]


def iter_python_files(paths: Sequence[PathInput]) -> Iterator[Path]:
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


# ---------------------------------------------------------------------------
# Parsed modules
# ---------------------------------------------------------------------------

@dataclass
class ModuleInfo:
    """One parsed source module plus its waiver comments."""

    path: Path
    rel: str
    source: str
    tree: ast.Module
    waivers: Dict[int, Set[str]]

    @classmethod
    def parse(cls, path: Path) -> "ModuleInfo":
        rel = path.as_posix()
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=rel)
        return cls(path, rel, source, tree, waivers_by_line(source))

    def functions(self) -> Iterator["FunctionScope"]:
        """Every function/method with its enclosing class (if any)."""
        yield from _walk_functions(self.tree, None)


@dataclass
class FunctionScope:
    """One function definition plus its enclosing class name."""

    node: Union[ast.FunctionDef, ast.AsyncFunctionDef]
    owner: Optional[str]

    @property
    def qualname(self) -> str:
        if self.owner:
            return f"{self.owner}.{self.node.name}"
        return self.node.name


def _walk_functions(
    node: ast.AST, owner: Optional[str]
) -> Iterator[FunctionScope]:
    for child in ast.iter_child_nodes(node):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield FunctionScope(child, owner)
            yield from _walk_functions(child, owner)
        elif isinstance(child, ast.ClassDef):
            yield from _walk_functions(child, child.name)
        else:
            yield from _walk_functions(child, owner)


# ---------------------------------------------------------------------------
# Cross-module symbol table
# ---------------------------------------------------------------------------

@dataclass
class ClassSymbol:
    """Declared shape of one class: fields, methods, bases."""

    name: str
    module: str
    bases: List[str] = field(default_factory=list)
    fields: Set[str] = field(default_factory=set)
    methods: Set[str] = field(default_factory=set)


class SymbolTable:
    """The cross-module index every pass shares.

    ``method_returns`` maps a simple function/method name to the set of
    return-annotation names seen anywhere in the analyzed tree; a name
    resolves to a unit only when all annotations agree
    (:meth:`unique_return`).
    """

    def __init__(self) -> None:
        self.method_returns: Dict[str, Set[str]] = {}
        self.classes: Dict[str, ClassSymbol] = {}
        self.event_types: Dict[str, int] = {}

    @classmethod
    def build(cls, modules: Iterable[ModuleInfo]) -> "SymbolTable":
        table = cls()
        for module in modules:
            table._index_module(module)
        return table

    def _index_module(self, module: ModuleInfo) -> None:
        for scope in module.functions():
            ann = annotation_name(scope.node.returns)
            if ann is not None:
                self.method_returns.setdefault(scope.node.name, set()).add(
                    ann
                )
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            symbol = self.classes.setdefault(
                node.name, ClassSymbol(node.name, module.rel)
            )
            symbol.bases = [
                dotted(base).rsplit(".", 1)[-1] for base in node.bases
            ]
            for stmt in node.body:
                if isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name
                ):
                    symbol.fields.add(stmt.target.id)
                elif isinstance(stmt, ast.Assign):
                    for target in stmt.targets:
                        if isinstance(target, ast.Name):
                            symbol.fields.add(target.id)
                elif isinstance(
                    stmt, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    symbol.methods.add(stmt.name)
            if "EngineEvent" in symbol.bases:
                self.event_types[node.name] = node.lineno

    def unique_return(self, func_name: str) -> Optional[str]:
        """Return-annotation name if every definition agrees, else None."""
        annotations = self.method_returns.get(func_name)
        if annotations is not None and len(annotations) == 1:
            return next(iter(annotations))
        return None


# ---------------------------------------------------------------------------
# Flow-sensitive abstract interpretation
# ---------------------------------------------------------------------------

V = TypeVar("V")


class AbstractInterpreter(Generic[V]):
    """Walks one function body, maintaining ``name -> abstract value``.

    Subclasses provide the domain: :meth:`eval_expr` (which must also
    recurse into sub-expressions so every expression is visited exactly
    once) and :meth:`merge` for joining branch environments.  Statement
    structure — assignment targets, branch copies, single-pass loop
    bodies — is handled here so every pass agrees on the same def-use
    semantics.
    """

    def __init__(self) -> None:
        self.env: Dict[str, V] = {}

    # -- domain hooks ---------------------------------------------------
    def top(self) -> V:
        """The 'unknown' element of the domain."""
        raise NotImplementedError

    def eval_expr(self, node: ast.expr) -> V:
        raise NotImplementedError

    def merge(self, a: V, b: V) -> V:
        raise NotImplementedError

    def on_assign(self, target: ast.expr, value: V, node: ast.stmt) -> None:
        """Called for attribute/subscript stores (env handles plain names)."""

    def on_return(self, node: ast.Return, value: Optional[V]) -> None:
        """Called at every ``return`` with the returned abstract value."""

    # -- walker ---------------------------------------------------------
    def run(self, body: Sequence[ast.stmt]) -> None:
        self.exec_block(body)

    def exec_block(self, stmts: Sequence[ast.stmt]) -> None:
        for stmt in stmts:
            self.exec_stmt(stmt)

    def _merge_envs(self, envs: List[Dict[str, V]]) -> Dict[str, V]:
        merged: Dict[str, V] = {}
        keys = set().union(*(env.keys() for env in envs)) if envs else set()
        for key in keys:
            value: Optional[V] = None
            missing = False
            for env in envs:
                if key not in env:
                    missing = True
                    continue
                value = (
                    env[key]
                    if value is None
                    else self.merge(value, env[key])
                )
            if value is None:
                continue
            merged[key] = self.merge(value, self.top()) if missing else value
        return merged

    def _bind_target(self, target: ast.expr, value: V, stmt: ast.stmt) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind_target(element, self.top(), stmt)
        elif isinstance(target, ast.Starred):
            self._bind_target(target.value, self.top(), stmt)
        else:
            # attribute / subscript stores: evaluate the container
            # expression (so reads inside it are visited) and notify.
            if isinstance(target, ast.Attribute):
                self.eval_expr(target.value)
            elif isinstance(target, ast.Subscript):
                self.eval_expr(target.value)
                self.eval_expr(target.slice)
            self.on_assign(target, value, stmt)

    def exec_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            value = self.eval_expr(stmt.value)
            for target in stmt.targets:
                self._bind_target(target, value, stmt)
        elif isinstance(stmt, ast.AnnAssign):
            value = (
                self.eval_expr(stmt.value)
                if stmt.value is not None
                else self.top()
            )
            annotated = self.value_from_annotation(stmt.annotation)
            if annotated is not None:
                value = annotated
            self._bind_target(stmt.target, value, stmt)
        elif isinstance(stmt, ast.AugAssign):
            combined = self.eval_expr(
                ast.copy_location(
                    ast.BinOp(stmt.target, stmt.op, stmt.value), stmt
                )
            )
            self._bind_target(stmt.target, combined, stmt)
        elif isinstance(stmt, ast.If):
            self.eval_expr(stmt.test)
            before = dict(self.env)
            self.exec_block(stmt.body)
            then_env = self.env
            self.env = dict(before)
            self.exec_block(stmt.orelse)
            self.env = self._merge_envs([then_env, self.env])
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self.eval_expr(stmt.iter)
            before = dict(self.env)
            self._bind_target(stmt.target, self.top(), stmt)
            self.exec_block(stmt.body)
            self.exec_block(stmt.orelse)
            self.env = self._merge_envs([before, self.env])
        elif isinstance(stmt, ast.While):
            self.eval_expr(stmt.test)
            before = dict(self.env)
            self.exec_block(stmt.body)
            self.exec_block(stmt.orelse)
            self.env = self._merge_envs([before, self.env])
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self.eval_expr(item.context_expr)
                if item.optional_vars is not None:
                    self._bind_target(item.optional_vars, self.top(), stmt)
            self.exec_block(stmt.body)
        elif isinstance(stmt, ast.Try):
            before = dict(self.env)
            self.exec_block(stmt.body)
            arms = [self.env]
            for handler in stmt.handlers:
                self.env = dict(before)
                if handler.name:
                    self.env[handler.name] = self.top()
                self.exec_block(handler.body)
                arms.append(self.env)
            self.env = self._merge_envs(arms)
            self.exec_block(stmt.orelse)
            self.exec_block(stmt.finalbody)
        elif isinstance(stmt, ast.Return):
            value = (
                self.eval_expr(stmt.value)
                if stmt.value is not None
                else None
            )
            self.on_return(stmt, value)
        elif isinstance(stmt, ast.Expr):
            self.eval_expr(stmt.value)
        elif isinstance(stmt, (ast.Raise, ast.Assert, ast.Delete)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self.eval_expr(child)
        elif isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            pass  # nested scopes are analyzed as their own functions
        # pass/break/continue/global/import: nothing to evaluate

    def value_from_annotation(self, node: ast.expr) -> Optional[V]:
        """Abstract value carried by a type annotation (domain hook)."""
        return None
