"""Unit-of-measure pass: dimensional analysis over the cost stack.

Every expression is mapped to a point in the unit lattice — an exponent
vector over the six base dimensions of :data:`repro.core.units.
BASE_DIMENSIONS` (seconds, cycles, bytes, cache lines, walks, packets)
— via three sources of truth, strongest first:

1. **Annotations.** A call to a function annotated ``-> Seconds`` (any
   alias in :data:`~repro.core.units.UNIT_DIMENSIONS`, resolved through
   the shared :class:`~repro.analysis.static.dataflow.SymbolTable`) has
   that alias's dimension vector, as does a parameter or variable
   annotated with one, and an explicit cast ``Seconds(expr)``.
2. **Dataflow.** Assignments propagate dimensions through local
   variables; arithmetic combines them (multiplication adds exponents,
   division subtracts, so ``Cycles / Hertz`` cancels to ``Seconds``).
3. **Naming convention.** ``latency_seconds``, ``step_cycles``,
   ``nbytes``, ``clock_hz``, ``bytes_per_walk`` … — snake-case tokens
   carry dimensions, with ``_per_`` / ``_from_`` / ``_to_`` compounds
   split into ratios and conversions.

Count dimensions (cache lines, walks, packets) are *absorbed* by
multiplication and division — ``walks * bytes_per_walk`` is bytes, not
byte-walks — because counts legitimately scale other quantities; they
still participate in addition/comparison checks, where adding walks to
bytes is always a bug.

Rules:

* ``unit-mix`` — addition, subtraction or ordering comparison between
  two different concrete dimensions.
* ``cycles-vs-seconds`` — the special case the cost stack is most
  exposed to (kernel cycle counts vs timeline seconds); points at the
  blessed conversions.
* ``unit-return-mismatch`` — a ``return`` whose inferred dimension
  contradicts the declared (or name-implied) unit of the function.
* ``unit-return-untyped`` — a function named ``*_seconds`` /
  ``*_cycles`` / ``*_bytes`` whose return annotation is not a unit
  alias, so mypy cannot hold callers to it.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.units import UNIT_DIMENSIONS
from repro.analysis.static.dataflow import (
    AbstractInterpreter,
    FunctionScope,
    ModuleInfo,
    SymbolTable,
)
from repro.analysis.static.findings import Finding

PASS_NAME = "units"

RULE_UNIT_MIX = "unit-mix"
RULE_CYCLES_SECONDS = "cycles-vs-seconds"
RULE_RETURN_MISMATCH = "unit-return-mismatch"
RULE_RETURN_UNTYPED = "unit-return-untyped"

# ---------------------------------------------------------------------------
# The dimension domain
# ---------------------------------------------------------------------------

#: Canonical dimension vector: sorted ((base, exponent), ...), no zeros.
Dims = Tuple[Tuple[str, int], ...]

#: Polymorphic / dimensionless: literals, ratios — unifies with anything.
POLY: Dims = ()

#: Dimensions that are counts: absorbed by * and /, checked by + and <.
COUNT_DIMS = frozenset({"cache_lines", "walks", "packets"})

_DIM_SYMBOL = {
    "seconds": "s",
    "cycles": "cy",
    "bytes": "B",
    "cache_lines": "line",
    "walks": "walk",
    "packets": "pkt",
}


def make_dims(exponents: Dict[str, int]) -> Dims:
    return tuple(sorted((k, v) for k, v in exponents.items() if v != 0))


_SECONDS = make_dims({"seconds": 1})
_CYCLES = make_dims({"cycles": 1})
_BYTES = make_dims({"bytes": 1})
_LINES = make_dims({"cache_lines": 1})
_WALKS = make_dims({"walks": 1})
_PACKETS = make_dims({"packets": 1})
_HERTZ = make_dims({"cycles": 1, "seconds": -1})
_BANDWIDTH = make_dims({"bytes": 1, "seconds": -1})

_ALIAS_DIMS: Dict[str, Dims] = {
    alias: make_dims(vector) for alias, vector in UNIT_DIMENSIONS.items()
}

#: Annotations that positively mean "no dimension" — stop name inference.
_NEUTRAL_ANNOTATIONS = frozenset({"bool", "str", "None"})


def fmt_dims(dims: Optional[Dims]) -> str:
    """Human-readable vector: ``s``, ``cy``, ``B/s``, ``1/s``, ``s^2``."""
    if dims is None:
        return "?"
    if not dims:
        return "1"
    num = [
        _DIM_SYMBOL[d] + (f"^{e}" if e > 1 else "")
        for d, e in dims
        if e > 0
    ]
    den = [
        _DIM_SYMBOL[d] + (f"^{-e}" if e < -1 else "")
        for d, e in dims
        if e < 0
    ]
    head = "*".join(num) if num else "1"
    if den:
        return head + "/" + "*".join(den)
    return head


def is_count_only(dims: Optional[Dims]) -> bool:
    return bool(dims) and all(d in COUNT_DIMS for d, _ in dims)


def _invert(dims: Optional[Dims]) -> Optional[Dims]:
    if dims is None:
        return None
    if is_count_only(dims):
        return dims  # counts are absorbed regardless of side
    return tuple(sorted((d, -e) for d, e in dims))


def dims_mul(a: Optional[Dims], b: Optional[Dims]) -> Optional[Dims]:
    """Product of two dimension vectors; counts are absorbed."""
    if a is None or b is None:
        return None
    if a == POLY:
        return b
    if b == POLY:
        return a
    a_count, b_count = is_count_only(a), is_count_only(b)
    if a_count and b_count:
        return a if a == b else None
    if a_count:
        return b
    if b_count:
        return a
    merged: Dict[str, int] = dict(a)
    for dim, exp in b:
        merged[dim] = merged.get(dim, 0) + exp
    return make_dims(merged)


def dims_div(a: Optional[Dims], b: Optional[Dims]) -> Optional[Dims]:
    return dims_mul(a, _invert(b))


# ---------------------------------------------------------------------------
# Naming-convention inference
# ---------------------------------------------------------------------------

_TOKEN_DIMS: Dict[str, Dims] = {
    "seconds": _SECONDS,
    "second": _SECONDS,
    "secs": _SECONDS,
    "sec": _SECONDS,
    "time": _SECONDS,
    "duration": _SECONDS,
    "latency": _SECONDS,
    "deadline": _SECONDS,
    "makespan": _SECONDS,
    "cycles": _CYCLES,
    "cycle": _CYCLES,
    "hz": _HERTZ,
    "hertz": _HERTZ,
    "bytes": _BYTES,
    "byte": _BYTES,
    "nbytes": _BYTES,
    "bandwidth": _BANDWIDTH,
    "cachelines": _LINES,
    "walks": _WALKS,
    "walk": _WALKS,
    "packets": _PACKETS,
    "pkts": _PACKETS,
}

#: Whole names with a conventional meaning that tokens alone miss.
_EXACT_NAMES: Dict[str, Dims] = {
    "now": _SECONDS,
    "busy_until": _SECONDS,
    "earliest": _SECONDS,
    "k_end": _SECONDS,
}

_TIMESTAMP_SUFFIX_RE = re.compile(r"(^|_)(t|until)$")

#: Function-name suffix that *requires* a unit-alias return annotation.
RETURN_SUFFIX_DIMS: Dict[str, Dims] = {
    "seconds": _SECONDS,
    "cycles": _CYCLES,
    "bytes": _BYTES,
}


#: Tokens that positively mean "dimensionless" and stop inference:
#: ``zero_copy_bandwidth_fraction`` is a pure ratio, not a bandwidth.
_POLY_TOKENS = frozenset(
    {"fraction", "frac", "ratio", "scale", "factor", "pct", "percent"}
)


def _tokens_dim(tokens: Sequence[str]) -> Optional[Dims]:
    """Rightmost dimension-bearing token wins (``cacheline_bytes``→B)."""
    for token in reversed(tokens):
        if token in _POLY_TOKENS:
            return POLY
        dims = _TOKEN_DIMS.get(token)
        if dims is not None:
            return dims
    return None


def infer_name_dims(name: str) -> Optional[Dims]:
    """Dimension implied by a snake-case identifier, or None.

    ``_per_`` splits into a ratio (``bytes_per_second`` → B/s),
    ``_from_`` / ``_to_`` name conversions (``seconds_from_cycles`` →
    s; ``cycles_to_seconds`` → s).
    """
    exact = _EXACT_NAMES.get(name)
    if exact is not None:
        return exact
    if _TIMESTAMP_SUFFIX_RE.search(name):
        return _SECONDS
    tokens = name.lower().split("_")
    if "from" in tokens:
        tokens = tokens[: tokens.index("from")]
    elif "to" in tokens:
        tokens = tokens[tokens.index("to") + 1 :]
    if "per" in tokens:
        split = tokens.index("per")
        numer = _tokens_dim(tokens[:split])
        denom = _tokens_dim(tokens[split + 1 :])
        if denom is None:
            return None
        if numer is None:
            # ``_serial_per_walk``: an unknown per-count quantity stays
            # unknown (counts are absorbed, so POLY/walk would wrongly
            # claim the whole expression is dimensionless).
            return None if is_count_only(denom) else dims_div(POLY, denom)
        return dims_div(numer, denom)
    return _tokens_dim(tokens)


# ---------------------------------------------------------------------------
# The interpreter
# ---------------------------------------------------------------------------

#: builtins that preserve the dimension of their (first) argument
_PASSTHROUGH_CALLS = frozenset(
    {"abs", "float", "int", "round", "sum", "ceil", "floor", "fsum"}
)
#: builtins whose result carries the common dimension of all arguments
_EXTREMUM_CALLS = frozenset({"min", "max"})

#: method names shared with dict/list/set — never resolved through the
#: symbol table (``TimeBreakdown.get -> Seconds`` must not claim every
#: ``somedict.get(...)`` in the repo returns seconds).
_GENERIC_METHODS = frozenset(
    {
        "get",
        "pop",
        "add",
        "append",
        "update",
        "copy",
        "setdefault",
        "remove",
        "discard",
        "insert",
        "extend",
        "clear",
        "count",
        "index",
        "items",
        "keys",
        "values",
    }
)

_CHECKED_CMPOPS = (ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.Eq, ast.NotEq)


class _UnitInterpreter(AbstractInterpreter[Optional[Dims]]):
    """Flow-sensitive dimension inference over one function body."""

    def __init__(
        self,
        module: ModuleInfo,
        scope: FunctionScope,
        table: SymbolTable,
        findings: List[Finding],
    ) -> None:
        super().__init__()
        self.module = module
        self.scope = scope
        self.table = table
        self.findings = findings
        self.expected_return = self._declared_return()
        self._seed_parameters()

    # -- setup ----------------------------------------------------------
    def _declared_return(self) -> Optional[Dims]:
        from repro.analysis.static.dataflow import annotation_name

        ann = annotation_name(self.scope.node.returns)
        if ann in _ALIAS_DIMS:
            return _ALIAS_DIMS[ann]
        if ann in _NEUTRAL_ANNOTATIONS:
            return None
        return infer_name_dims(self.scope.node.name)

    def _seed_parameters(self) -> None:
        from repro.analysis.static.dataflow import annotation_name

        args = self.scope.node.args
        every = [
            *args.posonlyargs,
            *args.args,
            *args.kwonlyargs,
        ]
        for arg in every:
            if arg.arg in ("self", "cls"):
                continue
            ann = annotation_name(arg.annotation)
            if ann in _ALIAS_DIMS:
                self.env[arg.arg] = _ALIAS_DIMS[ann]
            elif ann in _NEUTRAL_ANNOTATIONS:
                self.env[arg.arg] = None
            else:
                self.env[arg.arg] = infer_name_dims(arg.arg)

    # -- domain ---------------------------------------------------------
    def top(self) -> Optional[Dims]:
        return None

    def merge(
        self, a: Optional[Dims], b: Optional[Dims]
    ) -> Optional[Dims]:
        if a == b:
            return a
        if a == POLY:
            return b
        if b == POLY:
            return a
        return None

    def value_from_annotation(self, node: ast.expr) -> Optional[Dims]:
        from repro.analysis.static.dataflow import annotation_name

        ann = annotation_name(node)
        if ann in _ALIAS_DIMS:
            return _ALIAS_DIMS[ann]
        return None

    # -- reporting ------------------------------------------------------
    def _report(self, node: ast.AST, rule: str, message: str) -> None:
        self.findings.append(
            Finding(
                self.module.rel,
                getattr(node, "lineno", self.scope.node.lineno),
                rule,
                message,
                PASS_NAME,
            )
        )

    def _check_mix(
        self,
        node: ast.AST,
        a: Optional[Dims],
        b: Optional[Dims],
        verb: str,
    ) -> None:
        if not a or not b or a == b:
            return
        pair = {a, b}
        if pair == {_CYCLES, _SECONDS}:
            self._report(
                node,
                RULE_CYCLES_SECONDS,
                f"cycles {verb} seconds in {self.scope.qualname}; convert"
                " via seconds_from_cycles()/DeviceSpec.cycles_to_seconds()",
            )
        else:
            self._report(
                node,
                RULE_UNIT_MIX,
                f"mixed units in {self.scope.qualname}:"
                f" {fmt_dims(a)} {verb} {fmt_dims(b)}",
            )

    def on_return(
        self, node: ast.Return, value: Optional[Optional[Dims]]
    ) -> None:
        if value is None or not value or not self.expected_return:
            return
        if value != self.expected_return:
            self._report(
                node,
                RULE_RETURN_MISMATCH,
                f"{self.scope.qualname} returns {fmt_dims(value)} but its"
                f" unit is {fmt_dims(self.expected_return)}",
            )

    # -- expression evaluation ------------------------------------------
    def eval_expr(self, node: ast.expr) -> Optional[Dims]:
        if isinstance(node, ast.Constant):
            return POLY
        if isinstance(node, ast.Name):
            if node.id in self.env:
                return self.env[node.id]
            return infer_name_dims(node.id)
        if isinstance(node, ast.Attribute):
            self.eval_expr(node.value)
            return infer_name_dims(node.attr)
        if isinstance(node, ast.BinOp):
            return self._eval_binop(node)
        if isinstance(node, ast.UnaryOp):
            inner = self.eval_expr(node.operand)
            if isinstance(node.op, (ast.USub, ast.UAdd)):
                return inner
            return POLY
        if isinstance(node, ast.Compare):
            self._eval_compare(node)
            return POLY
        if isinstance(node, ast.BoolOp):
            merged: Optional[Dims] = POLY
            for value in node.values:
                merged = self.merge(merged, self.eval_expr(value))
            return merged
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.IfExp):
            self.eval_expr(node.test)
            return self.merge(
                self.eval_expr(node.body), self.eval_expr(node.orelse)
            )
        if isinstance(node, ast.Subscript):
            container = self.eval_expr(node.value)
            self.eval_expr(node.slice)
            if container:  # a dict/list named *_seconds holds seconds
                return container
            name = self._expr_name(node.value)
            return infer_name_dims(name) if name else None
        if isinstance(node, ast.Starred):
            return self.eval_expr(node.value)
        # everything else (containers, comprehensions, f-strings, …):
        # visit children so nested calls are still checked, no dimension.
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self.eval_expr(child)
        return None

    @staticmethod
    def _expr_name(node: ast.expr) -> Optional[str]:
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, ast.Attribute):
            return node.attr
        return None

    def _eval_binop(self, node: ast.BinOp) -> Optional[Dims]:
        left = self.eval_expr(node.left)
        right = self.eval_expr(node.right)
        op = node.op
        if isinstance(op, (ast.Add, ast.Sub)):
            verb = "+" if isinstance(op, ast.Add) else "-"
            self._check_mix(node, left, right, verb)
            if left:
                return left
            if right:
                return right
            return POLY if left == POLY and right == POLY else None
        if isinstance(op, ast.Mult):
            return dims_mul(left, right)
        if isinstance(op, (ast.Div, ast.FloorDiv)):
            return dims_div(left, right)
        if isinstance(op, ast.Mod):
            return left
        if isinstance(op, ast.Pow):
            return POLY if left == POLY else None
        return None

    def _eval_compare(self, node: ast.Compare) -> None:
        values = [self.eval_expr(node.left)]
        values.extend(self.eval_expr(comp) for comp in node.comparators)
        for i, op in enumerate(node.ops):
            if isinstance(op, _CHECKED_CMPOPS):
                self._check_mix(
                    node, values[i], values[i + 1], "compared with"
                )

    def _eval_call(self, node: ast.Call) -> Optional[Dims]:
        arg_dims = [self.eval_expr(arg) for arg in node.args]
        for keyword in node.keywords:
            self.eval_expr(keyword.value)
        func = node.func
        name: Optional[str] = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            self.eval_expr(func.value)
            name = func.attr
        else:
            self.eval_expr(func)
        if name is None:
            return None
        # explicit unit cast: Seconds(expr), Cycles(expr), ...
        if name in _ALIAS_DIMS:
            return _ALIAS_DIMS[name]
        if name in _PASSTHROUGH_CALLS:
            return arg_dims[0] if arg_dims else None
        if name in _EXTREMUM_CALLS:
            concrete = {d for d in arg_dims if d}
            if len(concrete) == 1:
                return next(iter(concrete))
            return None
        if name in _GENERIC_METHODS:
            return None
        ann = self.table.unique_return(name)
        if ann in _ALIAS_DIMS:
            return _ALIAS_DIMS[ann]
        if ann in _NEUTRAL_ANNOTATIONS:
            return None
        return infer_name_dims(name)


def _check_return_annotation(
    module: ModuleInfo, scope: FunctionScope, findings: List[Finding]
) -> None:
    """``unit-return-untyped``: *_seconds/*_cycles/*_bytes must declare
    a unit alias so mypy enforces what the name promises."""
    from repro.analysis.static.dataflow import annotation_name

    suffix = scope.node.name.rsplit("_", 1)[-1]
    if suffix not in RETURN_SUFFIX_DIMS:
        return
    ann = annotation_name(scope.node.returns)
    if ann in _ALIAS_DIMS:
        return
    if ann in _NEUTRAL_ANNOTATIONS:
        return  # e.g. format_seconds() -> str: a formatter, not a cost
    found = ann if ann is not None else "missing"
    findings.append(
        Finding(
            module.rel,
            scope.node.lineno,
            RULE_RETURN_UNTYPED,
            f"{scope.qualname} is named *_{suffix} but its return"
            f" annotation is {found}; annotate with a unit alias from"
            " core/units.py",
            PASS_NAME,
        )
    )


def run_pass(
    modules: Sequence[ModuleInfo], table: SymbolTable
) -> List[Finding]:
    """Run the unit-of-measure pass over parsed modules."""
    findings: List[Finding] = []
    for module in modules:
        for scope in module.functions():
            _check_return_annotation(module, scope, findings)
            interp = _UnitInterpreter(module, scope, table, findings)
            interp.run(scope.node.body)
    return findings
