"""Multi-pass static-analysis framework (``repro lint``).

Built on a shared per-module symbol table, def-use dataflow core and
project-wide call graph
(:mod:`~repro.analysis.static.dataflow`); every pass produces the same
:class:`~repro.analysis.static.findings.Finding` type, suppressible by
``# lint: allow-<rule>`` waivers or the committed baseline file.

Passes:

* :mod:`~repro.analysis.static.houserules` — the four original repo
  rules (RNG factory, timestamp equality, frozen events, event-handler
  coverage); always on.
* :mod:`~repro.analysis.static.unitcheck` — unit-of-measure checking
  over the cost stack (``--strict``).
* :mod:`~repro.analysis.static.aliasing` — cross-stage StageContext
  aliasing / unpublished-mutation checking (``--strict``).
* :mod:`~repro.analysis.static.rngcheck` — interprocedural RNG
  discipline: raw generators, entropy-derived seeds and unkeyed draw
  routines reachable from engine/backend code (``--strict``).
* :mod:`~repro.analysis.static.effects` — observer purity: transitive
  write effects and re-entrant emission of bus subscribers
  (``--strict``).
* :mod:`~repro.analysis.static.protocol` — event-protocol conformance
  between emit sites, handlers and the event dataclasses
  (``--strict``).
* :mod:`~repro.analysis.static.typestate` — resource-lifecycle
  conformance against declarative protocol state machines (backend
  bind/seed/advance/close, SharedMemory create/close/unlink, serve
  sessions, bus subscribe-before-emit) plus exception-path leak
  checking (``--strict``).
* :mod:`~repro.analysis.static.taint` — client-input flow checking
  from query fields and CLI arguments to allocation sizes, seed
  derivation and CSR indexing, with ``__post_init__`` validators and
  ``validated()`` as sanitizers (``--strict``).

``repro lint --strict --sarif PATH`` additionally writes the findings
as a SARIF 2.1.0 log (:mod:`~repro.analysis.static.sarif`) for GitHub
code-scanning upload.
"""

from repro.analysis.static.aliasing import (
    RULE_UNDECLARED,
    RULE_UNPUBLISHED,
)
from repro.analysis.static.effects import (
    RULE_HANDLER_EMIT,
    RULE_IMPURE_SUBSCRIBER,
)
from repro.analysis.static.findings import Baseline, Finding
from repro.analysis.static.houserules import (
    RULE_BACKEND_SIM_TIME,
    RULE_FLOAT_EQ,
    RULE_FROZEN_EVENT,
    RULE_HANDLER_COVERAGE,
    RULE_RNG,
)
from repro.analysis.static.protocol import (
    RULE_DEVICE_COVERAGE,
    RULE_UNHANDLED_EVENT,
    RULE_UNKNOWN_FIELD,
)
from repro.analysis.static.rngcheck import (
    RULE_NONDET_SEED,
    RULE_RAW_RNG,
    RULE_UNKEYED_DRAW,
)
from repro.analysis.static.runner import (
    DEFAULT_BASELINE,
    PASSES,
    analyze_paths,
    lint_paths,
    run_lint,
)
from repro.analysis.static.sarif import sarif_log, validate_sarif, write_sarif
from repro.analysis.static.taint import (
    RULE_TAINTED_INDEX,
    RULE_TAINTED_SEED,
    RULE_UNVALIDATED_SIZE,
)
from repro.analysis.static.typestate import (
    RULE_LEAKED_RESOURCE,
    RULE_TYPESTATE_ORDER,
    RULE_USE_AFTER_CLOSE,
)
from repro.analysis.static.unitcheck import (
    RULE_CYCLES_SECONDS,
    RULE_RETURN_MISMATCH,
    RULE_RETURN_UNTYPED,
    RULE_UNIT_MIX,
)

__all__ = [
    "Baseline",
    "DEFAULT_BASELINE",
    "Finding",
    "PASSES",
    "RULE_BACKEND_SIM_TIME",
    "RULE_CYCLES_SECONDS",
    "RULE_DEVICE_COVERAGE",
    "RULE_FLOAT_EQ",
    "RULE_FROZEN_EVENT",
    "RULE_HANDLER_COVERAGE",
    "RULE_HANDLER_EMIT",
    "RULE_IMPURE_SUBSCRIBER",
    "RULE_LEAKED_RESOURCE",
    "RULE_NONDET_SEED",
    "RULE_RAW_RNG",
    "RULE_RETURN_MISMATCH",
    "RULE_RETURN_UNTYPED",
    "RULE_RNG",
    "RULE_TAINTED_INDEX",
    "RULE_TAINTED_SEED",
    "RULE_TYPESTATE_ORDER",
    "RULE_UNDECLARED",
    "RULE_UNHANDLED_EVENT",
    "RULE_UNIT_MIX",
    "RULE_UNKEYED_DRAW",
    "RULE_UNKNOWN_FIELD",
    "RULE_UNPUBLISHED",
    "RULE_UNVALIDATED_SIZE",
    "RULE_USE_AFTER_CLOSE",
    "analyze_paths",
    "lint_paths",
    "run_lint",
    "sarif_log",
    "validate_sarif",
    "write_sarif",
]
