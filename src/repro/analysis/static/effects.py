"""Observer-purity pass (``--strict``, rules ``impure-bus-subscriber``,
``handler-calls-emit``).

Bus subscribers (Sanitizer, Metrics, Trace, ClusterController, and
every future autotuner) are *observers*: the engine's behavior must be
identical with and without them attached, or detaching diagnostics
changes trajectories and the cost-model cross-validation lies.  That
contract was previously enforced only by convention.  This pass infers
the transitive write-effect set of every ``on_<event>`` handler through
the project call graph and flags:

``impure-bus-subscriber``
    A handler call chain that writes through *protected* state — the
    engine, a ``StageContext``, a pool, timeline, scheduler, cluster or
    shard — whether directly (``self.ctx.batch_size = 64``), through a
    helper (``self._retune()``), or through an argument (``tweak(ctx)``
    where the callee mutates its parameter).  Handlers may freely write
    their *own* bookkeeping (``self.counts[...] += 1``); only state the
    engine also reads is protected.

``handler-calls-emit``
    A handler chain that emits on a bus.  Synchronous re-entrant
    emission from inside delivery re-orders observers arbitrarily and
    can recurse; emission belongs to the engine loop, not to handlers.

Effect propagation follows only the *precise* call-graph edges (bare
module functions and ``self.m()`` through the MRO) — a false edge here
would be a false finding on a pure observer, the wrong polarity for a
gating pass.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.static.aliasing import MUTATING_METHODS
from repro.analysis.static.dataflow import (
    CallGraph,
    FunctionNode,
    ModuleInfo,
    SymbolTable,
    annotation_name,
    bus_handler_event,
    iter_own_nodes,
)
from repro.analysis.static.findings import Finding

PASS_NAME = "effects"

RULE_IMPURE_SUBSCRIBER = "impure-bus-subscriber"
RULE_HANDLER_EMIT = "handler-calls-emit"

#: attribute / parameter names conventionally bound to engine-side
#: state; writing through them from a handler chain is impure.
PROTECTED_NAMES = frozenset(
    {
        "ctx",
        "dctx",
        "engine",
        "cluster",
        "pool",
        "host_pool",
        "device_pool",
        "timeline",
        "scheduler",
        "shard",
        "stage",
        "migrator",
        "router",
    }
)

#: annotation names identifying engine-side state regardless of the
#: variable name it is bound to.
PROTECTED_CLASS_RE = re.compile(
    r"(StageContext|Engine|Cluster|Pool|Timeline|Scheduler|Stage"
    r"|Migrator|Shard)$"
)

#: abstract roots of a write target.
Root = Optional[Tuple[str, str]]  # ("selfattr"|"param"|"global", name)


def _protected_annotation(node: Optional[ast.expr]) -> bool:
    name = annotation_name(node)
    return name is not None and bool(PROTECTED_CLASS_RE.search(name))


def _protected_attrs(graph: CallGraph, owner: str) -> Set[str]:
    """Attributes of ``owner`` holding engine-side state.

    ``self.X`` is protected when ``X`` is a conventional engine name, is
    annotated with a protected class at class level, or any method binds
    it from a protected parameter (``self.ctx = ctx``).
    """
    protected: Set[str] = set(PROTECTED_NAMES)
    table = graph.table
    for cls_name in table.mro(owner):
        symbol = table.classes.get(cls_name)
        if symbol is None:
            continue
        for node in graph.nodes.values():
            if node.scope.owner != cls_name:
                continue
            fn = node.scope.node
            param_protected = {
                a.arg
                for a in [*fn.args.args, *fn.args.kwonlyargs]
                if a.arg in PROTECTED_NAMES
                or _protected_annotation(a.annotation)
            }
            for sub in iter_own_nodes(fn):
                if not isinstance(sub, ast.Assign):
                    continue
                if not (
                    isinstance(sub.value, ast.Name)
                    and sub.value.id in param_protected
                ):
                    continue
                for target in sub.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        protected.add(target.attr)
    return protected


class _FunctionEffects:
    """Write-effect scan of one function body under a protection map."""

    def __init__(
        self,
        node: FunctionNode,
        protected_params: Set[str],
        protected_attrs: Set[str],
    ) -> None:
        self.node = node
        self.protected_params = protected_params
        self.protected_attrs = protected_attrs
        fn = node.scope.node
        self.params = {
            a.arg
            for a in [
                *fn.args.posonlyargs,
                *fn.args.args,
                *fn.args.kwonlyargs,
            ]
        }
        self.locals: Set[str] = set()
        self.aliases: Dict[str, Root] = {}
        self.globals_declared: Set[str] = set()
        for sub in iter_own_nodes(fn):
            if isinstance(sub, ast.Global):
                self.globals_declared.update(sub.names)
            for target in _assigned_names(sub):
                self.locals.add(target)

    # -- root resolution -----------------------------------------------
    def expr_root(self, node: ast.expr) -> Root:
        while isinstance(node, (ast.Attribute, ast.Subscript)):
            parent = node.value
            if (
                isinstance(node, ast.Attribute)
                and isinstance(parent, ast.Name)
                and parent.id == "self"
            ):
                return ("selfattr", node.attr)
            node = parent
        if isinstance(node, ast.Name):
            name = node.id
            if name == "self":
                return None  # bare self: writes land on selfattr above
            if name in self.params:
                return ("param", name)
            if name in self.aliases:
                return self.aliases[name]
            if name in self.locals and name not in self.globals_declared:
                return None  # fresh local
            return ("global", name)
        return None

    def is_protected(self, root: Root) -> bool:
        if root is None:
            return False
        kind, name = root
        if kind == "selfattr":
            return name in self.protected_attrs
        if kind == "param":
            return (
                name in self.protected_params or name in PROTECTED_NAMES
            )
        return True  # global writes from a handler are always impure

    def _note_alias(self, sub: ast.Assign) -> None:
        """Track ``c = self.ctx``-style local bindings to their root."""
        root = self.expr_root(sub.value)
        for target in sub.targets:
            if isinstance(target, ast.Name):
                self.aliases[target.id] = root

    # -- the scan --------------------------------------------------------
    def first_impure_write(self) -> Optional[Tuple[int, str]]:
        """(line, description) of the first protected write, if any."""
        for sub in sorted(
            iter_own_nodes(self.node.scope.node),
            key=lambda n: getattr(n, "lineno", 0),
        ):
            if isinstance(sub, ast.Assign):
                self._note_alias(sub)
                for target in sub.targets:
                    hit = self._store_target(target)
                    if hit is not None:
                        return hit
            elif isinstance(sub, (ast.AugAssign, ast.AnnAssign)):
                hit = self._store_target(sub.target)
                if hit is not None:
                    return hit
            elif isinstance(sub, ast.Call):
                hit = self._mutating_call(sub)
                if hit is not None:
                    return hit
            elif isinstance(sub, ast.Delete):
                for target in sub.targets:
                    hit = self._store_target(target)
                    if hit is not None:
                        return hit
        return None

    def _store_target(self, target: ast.expr) -> Optional[Tuple[int, str]]:
        if isinstance(target, ast.Name):
            if target.id in self.globals_declared:
                return (
                    target.lineno,
                    f"writes global '{target.id}'",
                )
            return None
        if not isinstance(target, (ast.Attribute, ast.Subscript)):
            return None
        # ``self.x = ...`` rebinds the observer's own slot — pure even
        # when x *names* protected state (dropping a reference never
        # mutates the referent).  Everything deeper (``self.ctx.y``,
        # ``self.pool[k]``, ``ctx.y``) writes *through* the root object.
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            return None
        root = self.expr_root(target)
        if self.is_protected(root):
            assert root is not None
            return (
                target.lineno,
                f"writes through protected {root[0]} '{root[1]}'",
            )
        return None

    def _mutating_call(self, call: ast.Call) -> Optional[Tuple[int, str]]:
        func = call.func
        if not isinstance(func, ast.Attribute):
            return None
        if func.attr not in MUTATING_METHODS:
            return None
        root = self.expr_root(func.value)
        if self.is_protected(root):
            assert root is not None
            return (
                call.lineno,
                f"calls mutator '.{func.attr}()' on protected "
                f"{root[0]} '{root[1]}'",
            )
        return None

    def call_bindings(self, call: ast.Call) -> Set[str]:
        """Protected arguments of a call, as ``#posN`` / keyword names.

        The caller knows which *arguments* are protected; only the
        callee knows its parameter names.  :func:`_callee_protected_params`
        maps the positions onto the callee signature.
        """
        out: Set[str] = set()
        for index, arg in enumerate(call.args):
            if self.is_protected(self.expr_root(arg)):
                out.add(f"#pos{index}")
        for kw in call.keywords:
            if kw.arg is not None and self.is_protected(
                self.expr_root(kw.value)
            ):
                out.add(kw.arg)
        return out


def _assigned_names(node: ast.AST) -> List[str]:
    out: List[str] = []
    targets: List[ast.expr] = []
    if isinstance(node, ast.Assign):
        targets = list(node.targets)
    elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
        targets = [node.target]
    elif isinstance(node, (ast.For, ast.AsyncFor)):
        targets = [node.target]
    elif isinstance(node, (ast.With, ast.AsyncWith)):
        targets = [
            item.optional_vars
            for item in node.items
            if item.optional_vars is not None
        ]
    elif isinstance(node, ast.comprehension):
        targets = [node.target]
    for target in targets:
        for sub in ast.walk(target):
            if isinstance(sub, ast.Name):
                out.append(sub.id)
    return out


def _callee_protected_params(
    callee: FunctionNode, pseudo: Set[str], is_method_call: bool
) -> Set[str]:
    """Translate ``#posN`` pseudo-names onto the callee's signature."""
    fn = callee.scope.node
    params = [
        a.arg for a in [*fn.args.posonlyargs, *fn.args.args]
    ]
    if is_method_call and params and params[0] in ("self", "cls"):
        params = params[1:]
    out: Set[str] = set()
    for name in pseudo:
        if name.startswith("#pos"):
            index = int(name[4:])
            if index < len(params):
                out.add(params[index])
        else:
            out.add(name)
    return out


def _chain_search(
    graph: CallGraph,
    handler: FunctionNode,
    protected_attrs: Set[str],
) -> Tuple[Optional[Tuple[int, str, str]], Optional[Tuple[int, str]]]:
    """DFS the handler's precise call chain for impure writes and emits.

    Returns ``(impure, emit)`` where ``impure`` is ``(line, chain,
    description)`` at the offending function and ``emit`` is ``(line,
    chain)`` — either may be None.
    """
    impure: Optional[Tuple[int, str, str]] = None
    emit: Optional[Tuple[int, str]] = None
    visited: Set[str] = set()
    stack: List[Tuple[FunctionNode, Set[str], List[str]]] = [
        (handler, set(), [handler.scope.qualname])
    ]
    while stack and (impure is None or emit is None):
        node, protected_params, chain = stack.pop()
        if node.uid in visited:
            continue
        visited.add(node.uid)
        effects = _FunctionEffects(node, protected_params, protected_attrs)
        if impure is None:
            hit = effects.first_impure_write()
            if hit is not None:
                impure = (hit[0], " -> ".join(chain), hit[1])
        if emit is None and node.emits:
            emit = (node.emits[0][1], " -> ".join(chain))
        for sub in iter_own_nodes(node.scope.node):
            if not isinstance(sub, ast.Call):
                continue
            for ref in [
                r for r in node.calls if r.line == sub.lineno
            ]:
                if ref.kind == "attr":
                    continue  # precise edges only
                for uid in graph.resolve(node, ref, dynamic=False):
                    callee = graph.nodes.get(uid)
                    if callee is None or uid in visited:
                        continue
                    pseudo = effects.call_bindings(sub)
                    callee_params = _callee_protected_params(
                        callee, pseudo, is_method_call=(ref.kind == "self")
                    )
                    stack.append(
                        (
                            callee,
                            callee_params,
                            chain + [callee.scope.qualname],
                        )
                    )
    return impure, emit


def run_pass(
    modules: Sequence[ModuleInfo], table: SymbolTable
) -> List[Finding]:
    findings: List[Finding] = []
    graph = CallGraph.build(modules, table)
    attr_cache: Dict[str, Set[str]] = {}
    for uid in sorted(graph.nodes):
        node = graph.nodes[uid]
        owner = node.scope.owner
        if owner is None:
            continue
        event = bus_handler_event(node.scope, table)
        if event is None:
            continue
        protected = attr_cache.get(owner)
        if protected is None:
            protected = _protected_attrs(graph, owner)
            attr_cache[owner] = protected
        impure, emit = _chain_search(graph, node, protected)
        if impure is not None:
            line, chain, description = impure
            findings.append(
                Finding(
                    node.module.rel,
                    node.scope.node.lineno,
                    RULE_IMPURE_SUBSCRIBER,
                    f"'{event}' handler '{node.scope.qualname}' is not a "
                    f"pure observer: chain {chain} {description} "
                    f"(line {line}); detaching this subscriber would "
                    "change engine behavior",
                    PASS_NAME,
                )
            )
        if emit is not None:
            line, chain = emit
            findings.append(
                Finding(
                    node.module.rel,
                    node.scope.node.lineno,
                    RULE_HANDLER_EMIT,
                    f"'{event}' handler '{node.scope.qualname}' emits "
                    f"re-entrantly: chain {chain} reaches a bus emit "
                    f"(line {line}); emission belongs to the engine "
                    "loop, not to subscribers",
                    PASS_NAME,
                )
            )
    return findings
