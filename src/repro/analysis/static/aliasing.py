"""Cross-stage aliasing pass: a static race detector for the pipeline.

The pipeline stages (:mod:`repro.core.stages`), the engines and the
multi-device migrator all communicate through one shared mutable object
— the :class:`~repro.core.stages.StageContext` — plus the typed events
on its bus.  The repo's contract is: *a stage that mutates context
state other stages consume must publish what it did on the bus*, so
observers (stats, traces, the runtime sanitizer) and the other stages
can see the pipeline's ground truth.  This pass checks that contract
statically.

Model
-----
* A **context expression** is the name ``ctx``/``dctx``, any attribute
  access ending in ``.ctx`` (``self.ctx``, ``shard.ctx``), or — via the
  def-use core — any local variable assigned from one of those.  Inside
  methods of the context class itself, ``self`` is the context.
* An **actor** is a class (or module-level function) outside the
  context class whose code touches a context expression: the stages,
  the engines, the migrator.
* A **write** to field ``F`` is an attribute/subscript store on
  ``ctx.F``, an augmented assignment, or a call of a known mutating
  method anywhere under ``ctx.F`` (``ctx.graph_pool.insert(...)``,
  ``ctx.timeline.evict.schedule(...)``); :data:`CTX_METHOD_EFFECTS`
  maps the context's own helper methods to the state they mutate
  (``ctx.sched`` → ``timeline``).  Local aliases are tracked
  (``device = ctx.device; device.pop_all(...)`` is a write to
  ``device``).
* A method **publishes** if it emits on a bus (``...bus.emit(...)``)
  or calls — directly or transitively, resolved by method name over the
  analyzed tree — a method that does.

Rules
-----
* ``unpublished-mutation`` — actor A mutates a context field that at
  least one *other* actor also touches, and neither A's method nor
  anything it calls publishes an event: invisible cross-stage
  communication.
* ``undeclared-context-field`` — an actor touches a context attribute
  the context class does not declare (dataclass field, method or
  property): likely a typo silently creating new shared state.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.static.dataflow import (
    AbstractInterpreter,
    FunctionScope,
    ModuleInfo,
    SymbolTable,
)
from repro.analysis.static.findings import Finding

PASS_NAME = "aliasing"

RULE_UNPUBLISHED = "unpublished-mutation"
RULE_UNDECLARED = "undeclared-context-field"

#: The shared-context class this pass audits.
CONTEXT_CLASS = "StageContext"

#: Local names conventionally bound to a context.
CTX_NAMES = frozenset({"ctx", "dctx"})

#: Method names that mutate their receiver (pools, streams, dicts, …).
MUTATING_METHODS = frozenset(
    {
        "schedule",
        "insert",
        "evict",
        "evict_batch",
        "pop",
        "pop_all",
        "pop_batch",
        "pop_preemptible",
        "push",
        "push_batch",
        "append",
        "append_walks",
        "add",
        "clear",
        "update",
        "setdefault",
        "remove",
        "discard",
        "extend",
        "merge",
        "drain",
        "lookup",  # BlockPool.lookup updates LRU recency
        "reshuffle",  # reshufflers scatter into the device pool
    }
)

#: Context helper methods and the field each one mutates.
CTX_METHOD_EFFECTS: Dict[str, str] = {
    "sched": "timeline",
    "update_time": "_kernel_coeff",
}

# Abstract values of the def-use domain:
_CTX = ("ctx",)  # the context object itself


def _field_value(name: str) -> Tuple[str, str]:
    return ("field", name)


@dataclass
class MethodFacts:
    """What one actor method does to the shared context."""

    actor: str
    qualname: str
    module: str
    line: int
    reads: Dict[str, int] = field(default_factory=dict)
    writes: Dict[str, int] = field(default_factory=dict)
    publishes: Set[str] = field(default_factory=set)
    calls: Set[str] = field(default_factory=set)

    def touch(self, table: Dict[str, int], name: str, line: int) -> None:
        table.setdefault(name, line)


class _AliasInterpreter(AbstractInterpreter[Optional[Tuple[str, ...]]]):
    """Tracks which locals alias the context or one of its fields."""

    def __init__(self, facts: MethodFacts, is_context_method: bool) -> None:
        super().__init__()
        self.facts = facts
        if is_context_method:
            self.env["self"] = _CTX

    # -- domain ---------------------------------------------------------
    def top(self) -> Optional[Tuple[str, ...]]:
        return None

    def merge(
        self,
        a: Optional[Tuple[str, ...]],
        b: Optional[Tuple[str, ...]],
    ) -> Optional[Tuple[str, ...]]:
        return a if a == b else None

    # -- helpers --------------------------------------------------------
    def _record_read(self, name: str, node: ast.AST) -> None:
        self.facts.touch(self.facts.reads, name, node.lineno)

    def _record_write(self, name: str, node: ast.AST) -> None:
        self.facts.touch(self.facts.writes, name, node.lineno)

    # -- expression evaluation ------------------------------------------
    def eval_expr(self, node: ast.expr) -> Optional[Tuple[str, ...]]:
        if isinstance(node, ast.Name):
            if node.id in CTX_NAMES:
                return _CTX
            return self.env.get(node.id)
        if isinstance(node, ast.Attribute):
            base = self.eval_expr(node.value)
            if node.attr == "ctx":
                return _CTX
            if base == _CTX:
                self._record_read(node.attr, node)
                return _field_value(node.attr)
            if base is not None and base[0] == "field":
                return base  # deeper attribute still belongs to the field
            return None
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.IfExp):
            self.eval_expr(node.test)
            return self.merge(
                self.eval_expr(node.body), self.eval_expr(node.orelse)
            )
        if isinstance(node, ast.Subscript):
            base = self.eval_expr(node.value)
            self.eval_expr(node.slice)
            return base if base is not None and base[0] == "field" else None
        # anything else: visit children, no alias information.
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self.eval_expr(child)
        return None

    def _eval_call(self, node: ast.Call) -> Optional[Tuple[str, ...]]:
        for arg in node.args:
            self.eval_expr(arg)
        for keyword in node.keywords:
            self.eval_expr(keyword.value)
        func = node.func
        if isinstance(func, ast.Name):
            self.facts.calls.add(func.id)
            return None
        if not isinstance(func, ast.Attribute):
            self.eval_expr(func)
            return None
        base = self.eval_expr(func.value)
        method = func.attr
        self.facts.calls.add(method)
        if method == "emit" and self._is_bus(func.value, base):
            self.facts.publishes.add(_event_name(node))
            return None
        if base == _CTX:
            effect = CTX_METHOD_EFFECTS.get(method)
            if effect is not None:
                self._record_write(effect, node)
            else:
                self._record_read(method, node)
            return None
        if base is not None and base[0] == "field":
            if method in MUTATING_METHODS:
                self._record_write(base[1], node)
            return None
        return None

    @staticmethod
    def _is_bus(
        expr: ast.expr, alias: Optional[Tuple[str, ...]]
    ) -> bool:
        if alias is not None and alias == _field_value("bus"):
            return True
        if isinstance(expr, ast.Name):
            return expr.id == "bus"
        if isinstance(expr, ast.Attribute):
            return expr.attr == "bus"
        return False

    # -- statement hooks ------------------------------------------------
    def on_assign(
        self,
        target: ast.expr,
        value: Optional[Tuple[str, ...]],
        node: ast.stmt,
    ) -> None:
        if isinstance(target, ast.Attribute):
            base = self.eval_expr(target.value)
            if base == _CTX:
                self._record_write(target.attr, target)
            elif base is not None and base[0] == "field":
                self._record_write(base[1], target)
        elif isinstance(target, ast.Subscript):
            base = self.eval_expr(target.value)
            if base is not None and base[0] == "field":
                self._record_write(base[1], target)


def _event_name(call: ast.Call) -> str:
    if call.args:
        arg = call.args[0]
        if isinstance(arg, ast.Call):
            func = arg.func
            if isinstance(func, ast.Name):
                return func.id
            if isinstance(func, ast.Attribute):
                return func.attr
    return "<event>"


def _declared_fields(table: SymbolTable) -> Optional[Set[str]]:
    symbol = table.classes.get(CONTEXT_CLASS)
    if symbol is None:
        return None
    return set(symbol.fields) | set(symbol.methods)


def _effective_publishers(facts: Sequence[MethodFacts]) -> Set[str]:
    """Qualnames that publish directly or via calls, to a fixed point."""
    by_name: Dict[str, List[MethodFacts]] = {}
    for method in facts:
        by_name.setdefault(method.qualname.rsplit(".", 1)[-1], []).append(
            method
        )
    publishing = {m.qualname for m in facts if m.publishes}
    changed = True
    while changed:
        changed = False
        for method in facts:
            if method.qualname in publishing:
                continue
            for callee in method.calls:
                if any(
                    peer.qualname in publishing
                    for peer in by_name.get(callee, [])
                ):
                    publishing.add(method.qualname)
                    changed = True
                    break
    return publishing


def run_pass(
    modules: Sequence[ModuleInfo], table: SymbolTable
) -> List[Finding]:
    """Run the cross-stage aliasing pass over parsed modules."""
    facts: List[MethodFacts] = []
    module_of: Dict[int, ModuleInfo] = {}
    for module in modules:
        for scope in module.functions():
            is_ctx_class = scope.owner == CONTEXT_CLASS
            method = MethodFacts(
                actor=scope.owner or scope.node.name,
                qualname=scope.qualname,
                module=module.rel,
                line=scope.node.lineno,
            )
            interp = _AliasInterpreter(method, is_ctx_class)
            interp.run(scope.node.body)
            if is_ctx_class:
                # The context's own helpers are the state, not a stage:
                # publishing duty lies with the calling stage.  Keep the
                # facts only for call-graph publish propagation.
                method.reads.clear()
                method.writes.clear()
            if method.reads or method.writes or method.publishes:
                facts.append(method)
                module_of[id(method)] = module
            elif method.publishes or method.calls:
                facts.append(method)  # call-graph node only
                module_of[id(method)] = module

    findings: List[Finding] = []

    # -- undeclared-context-field --------------------------------------
    declared = _declared_fields(table)
    if declared is not None:
        for method in facts:
            for name, line in sorted(
                {**method.reads, **method.writes}.items()
            ):
                if name not in declared:
                    findings.append(
                        Finding(
                            method.module,
                            line,
                            RULE_UNDECLARED,
                            f"{method.qualname} accesses undeclared"
                            f" {CONTEXT_CLASS} field {name!r}",
                            PASS_NAME,
                        )
                    )

    # -- unpublished-mutation ------------------------------------------
    actors_of: Dict[str, Set[str]] = {}
    writers_of: Dict[str, List[MethodFacts]] = {}
    for method in facts:
        for name in method.reads:
            actors_of.setdefault(name, set()).add(method.actor)
        for name in method.writes:
            actors_of.setdefault(name, set()).add(method.actor)
            writers_of.setdefault(name, []).append(method)
    publishing = _effective_publishers(facts)
    for name, writers in sorted(writers_of.items()):
        sharers = actors_of.get(name, set())
        if len(sharers) < 2:
            continue  # private to one actor: no cross-stage contract
        for method in writers:
            if method.qualname in publishing:
                continue
            others = sorted(sharers - {method.actor})
            findings.append(
                Finding(
                    method.module,
                    method.writes[name],
                    RULE_UNPUBLISHED,
                    f"{method.qualname} mutates shared {CONTEXT_CLASS}"
                    f" field {name!r} (also touched by"
                    f" {', '.join(others)}) without publishing any"
                    " event on the bus",
                    PASS_NAME,
                )
            )
    return findings
