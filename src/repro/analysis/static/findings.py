"""Unified finding records, waivers and the suppression baseline.

Every pass of the static-analysis framework — the ported house rules,
the unit-of-measure pass and the cross-stage aliasing pass — produces
the same :class:`Finding` type, suppressible the same two ways:

* a trailing ``# lint: allow-<rule>`` comment waives one rule on one
  source line (deliberate, grep-able, reviewed with the code);
* a committed :class:`Baseline` JSON file suppresses known findings so
  ``repro lint --strict`` can gate CI on *new* findings only while a
  justified backlog is burned down.

Baseline entries key on ``(path, rule, message)`` rather than line
numbers, so unrelated edits shifting a file do not resurrect suppressed
findings; any drift in the finding itself (message text changes when
the flagged expression changes) un-suppresses it.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Set, Tuple

_WAIVER_RE = re.compile(r"#\s*lint:\s*allow-([a-z0-9\-]+)")


@dataclass(frozen=True)
class Finding:
    """One static-analysis finding at a specific source line."""

    path: str
    line: int
    rule: str
    message: str
    #: which pass produced the finding (``house-rules`` / ``units`` /
    #: ``aliasing``); cosmetic in text output, kept in JSON.
    pass_name: str = ""

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def as_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "rule": self.rule,
            "message": self.message,
            "pass": self.pass_name,
        }

    def baseline_key(self) -> Tuple[str, str, str]:
        """Line-insensitive identity used by the suppression baseline."""
        return (self.path, self.rule, self.message)


def waivers_by_line(source: str) -> Dict[int, Set[str]]:
    """``# lint: allow-<rule>`` comments, keyed by 1-based line number."""
    waivers: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        for match in _WAIVER_RE.finditer(line):
            waivers.setdefault(lineno, set()).add(match.group(1))
    return waivers


def apply_waivers(
    findings: Iterable[Finding], waivers: Dict[int, Set[str]]
) -> List[Finding]:
    """Drop findings waived on their own line."""
    return [
        f for f in findings if f.rule not in waivers.get(f.line, set())
    ]


class Baseline:
    """A committed set of accepted findings (the suppression file).

    The file is JSON so CI artifacts and humans read the same thing::

        {
          "comment": "why each entry is tolerated",
          "findings": [
            {"path": "...", "rule": "...", "message": "..."}
          ]
        }
    """

    def __init__(self, entries: Set[Tuple[str, str, str]]) -> None:
        self.entries = entries

    @classmethod
    def empty(cls) -> "Baseline":
        return cls(set())

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Read a baseline file; a missing or empty file is an empty
        baseline (``touch lint-baseline.json`` is a valid opt-in)."""
        if not path.exists():
            return cls.empty()
        text = path.read_text(encoding="utf-8")
        if not text.strip():
            return cls.empty()
        payload = json.loads(text)
        entries: Set[Tuple[str, str, str]] = set()
        for row in payload.get("findings", []):
            entries.add(
                (str(row["path"]), str(row["rule"]), str(row["message"]))
            )
        return cls(entries)

    @staticmethod
    def save(path: Path, findings: Sequence[Finding], comment: str) -> None:
        """Write ``findings`` as the new baseline (sorted, stable)."""
        rows = sorted(
            (
                {"path": f.path, "rule": f.rule, "message": f.message}
                for f in findings
            ),
            key=lambda r: (r["path"], r["rule"], r["message"]),
        )
        payload = {"comment": comment, "findings": rows}
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    def split(
        self, findings: Sequence[Finding]
    ) -> Tuple[List[Finding], List[Finding]]:
        """Partition into (new, suppressed-by-baseline)."""
        fresh: List[Finding] = []
        known: List[Finding] = []
        for finding in findings:
            if finding.baseline_key() in self.entries:
                known.append(finding)
            else:
                fresh.append(finding)
        return fresh, known
