"""Client-input flow pass (``--strict``, rules ``unvalidated-size``,
``tainted-seed``, ``tainted-index``).

The serving front-end accepts client-shaped input: frozen query
dataclasses (``serve/queries.py``) and CLI ``args.*``.  Three sink
classes must never consume such a field before it is validated:

``unvalidated-size``
    Allocation extents — ``np.empty``/``np.zeros``/``np.ndarray`` shape
    arguments and ``range()`` bounds in step loops.  An unbounded
    ``walks``/``length`` sizes the walk tables straight from the wire.

``tainted-seed``
    ``derive_seed`` inputs.  Per-request determinism keys off the
    *session* seed plus a request id; a client field mixed into seed
    derivation lets one request perturb another's replay stream.
    Fields literally named ``seed`` are exempt — a seed parameter is
    the sanctioned way to choose the stream.

``tainted-index``
    CSR index expressions (subscripts of ``offsets``/``targets``/
    ``weights``/``indptr``/``indices`` arrays).  An unvalidated vertex
    id reads out of bounds — or, with numpy's negative indexing,
    silently wraps.

Sources are field reads off a query value (a parameter annotated with
a ``*Query`` dataclass, or any ``query``-named base) and ``args.*``
attribute reads.  *Sanitizers* remove taint: a field checked in a
raising ``__post_init__`` bounds test (or passed through
``validated()``) is trusted everywhere; inside a function, a name
tested by a raising ``if`` guard (or ``assert``) is trusted after the
guard — the flow-sensitive half.  Taint propagates field-sensitively
(per dataclass field, not per object) and interprocedurally through
the precise call-graph edges with the same ``#posN``/keyword argument
binding effects.py uses; findings carry the full qualname flow chain.
"""

from __future__ import annotations

import ast
from typing import (
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.analysis.static.dataflow import (
    AbstractInterpreter,
    CallGraph,
    CallRef,
    FunctionNode,
    ModuleInfo,
    SymbolTable,
    annotation_name,
    canonical_name,
    dotted,
    import_aliases,
    is_frozen_dataclass,
)
from repro.analysis.static.findings import Finding

PASS_NAME = "taint"

RULE_UNVALIDATED_SIZE = "unvalidated-size"
RULE_TAINTED_SEED = "tainted-seed"
RULE_TAINTED_INDEX = "tainted-index"

#: one taint fact: (source description, field name) — the field name
#: carries the seed exemption through propagation.
Taint = Tuple[str, str]
Taints = FrozenSet[Taint]

_EMPTY: Taints = frozenset()

#: numpy constructors whose first positional / ``shape=`` argument is
#: an allocation extent.
_NP_ALLOCS = frozenset(
    {
        "numpy.empty",
        "numpy.zeros",
        "numpy.ones",
        "numpy.full",
        "numpy.ndarray",
        "numpy.arange",
    }
)

#: calls that return their (numeric) argument's value: taint flows
#: through, everything else launders it (callee sinks are checked via
#: interprocedural propagation instead).
_PASSTHROUGH = frozenset({"int", "float", "abs", "max", "min", "round", "len"})

#: conventional CSR array names; subscripting one with a tainted index
#: is the ``tainted-index`` sink.
_CSR_NAMES = frozenset({"offsets", "targets", "weights", "indptr", "indices"})

#: modules owning seed derivation itself — their internals consume seed
#: material by design and are never sinks.
_EXEMPT_SUFFIXES = ("core/prng.py",)

#: interprocedural depth cap; chains deeper than this are noise.
_MAX_DEPTH = 10


# ---------------------------------------------------------------------------
# Query dataclass index: fields and their validation status
# ---------------------------------------------------------------------------

class QueryIndex:
    """Field-sensitivity table for the frozen query dataclasses.

    A class is a query when it is a frozen dataclass whose name ends in
    ``Query`` (or inherits ``WalkQuery``).  A field is *validated* when
    any ``__post_init__`` on the MRO mentions ``self.<field>`` inside a
    raising ``if``/``assert`` test or passes it to ``validated()``.
    """

    def __init__(
        self, modules: Sequence[ModuleInfo], table: SymbolTable
    ) -> None:
        self.table = table
        self.query_classes: Set[str] = set()
        own_fields: Dict[str, Set[str]] = {}
        own_validated: Dict[str, Set[str]] = {}
        for module in modules:
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.ClassDef):
                    continue
                if not is_frozen_dataclass(node):
                    continue
                if not (
                    node.name.endswith("Query")
                    or table.inherits_from(node.name, "WalkQuery")
                ):
                    continue
                self.query_classes.add(node.name)
                own_fields[node.name] = self._declared_fields(node)
                own_validated[node.name] = self._validated_fields(node)
        self.fields: Dict[str, Set[str]] = {}
        self.validated: Dict[str, Set[str]] = {}
        for name in self.query_classes:
            fields: Set[str] = set()
            checked: Set[str] = set()
            for cls in table.mro(name) or [name]:
                fields |= own_fields.get(cls, set())
                checked |= own_validated.get(cls, set())
            self.fields[name] = fields
            self.validated[name] = checked

    @staticmethod
    def _declared_fields(node: ast.ClassDef) -> Set[str]:
        out: Set[str] = set()
        for stmt in node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                out.add(stmt.target.id)
        return out

    @staticmethod
    def _validated_fields(node: ast.ClassDef) -> Set[str]:
        post = next(
            (
                stmt
                for stmt in node.body
                if isinstance(stmt, ast.FunctionDef)
                and stmt.name == "__post_init__"
            ),
            None,
        )
        if post is None:
            return set()
        out: Set[str] = set()

        def self_fields(expr: ast.AST) -> Set[str]:
            return {
                sub.attr
                for sub in ast.walk(expr)
                if isinstance(sub, ast.Attribute)
                and isinstance(sub.value, ast.Name)
                and sub.value.id == "self"
            }

        for sub in ast.walk(post):
            if isinstance(sub, ast.If) and any(
                isinstance(inner, ast.Raise) for inner in ast.walk(sub)
            ):
                out |= self_fields(sub.test)
            elif isinstance(sub, ast.Assert):
                out |= self_fields(sub.test)
            elif (
                isinstance(sub, ast.Call)
                and dotted(sub.func).rsplit(".", 1)[-1] == "validated"
            ):
                for arg in sub.args:
                    out |= self_fields(arg)
        return out

    # -- queries ---------------------------------------------------------
    def tainted_field(
        self, field: str, cls: Optional[str] = None
    ) -> bool:
        """Whether reading ``field`` off a query yields taint.

        With a known class, field-sensitive against that class's MRO;
        without one (a ``query``-named base of unknown type), tainted
        when *any* query class declares it unvalidated.
        """
        if cls is not None:
            if cls not in self.query_classes:
                return False
            return field in self.fields[cls] and field not in self.validated[
                cls
            ]
        return any(
            field in self.fields[name]
            and field not in self.validated[name]
            for name in self.query_classes
        )


# ---------------------------------------------------------------------------
# Per-function flow-sensitive taint interpretation
# ---------------------------------------------------------------------------

class _TaintInterp(AbstractInterpreter[Taints]):
    def __init__(
        self,
        node: FunctionNode,
        graph: CallGraph,
        queries: QueryIndex,
        aliases: Dict[str, str],
        param_taints: Dict[str, Taints],
        chain: Tuple[str, ...],
        sinks_exempt: bool,
    ) -> None:
        super().__init__()
        self.node = node
        self.graph = graph
        self.queries = queries
        self.aliases = aliases
        self.chain = chain
        self.sinks_exempt = sinks_exempt
        self.findings: List[Finding] = []
        #: (callee uid, param -> taints) pairs discovered at call sites
        self.propagate: List[Tuple[str, Dict[str, Taints]]] = []
        self.env.update(param_taints)
        #: params annotated with a query class: field-sensitive bases
        self.query_params: Dict[str, str] = {}
        fn = node.scope.node
        for arg in [*fn.args.posonlyargs, *fn.args.args, *fn.args.kwonlyargs]:
            ann = annotation_name(arg.annotation)
            if ann is not None and ann in queries.query_classes:
                self.query_params[arg.arg] = ann

    # -- domain ---------------------------------------------------------
    def top(self) -> Taints:
        return _EMPTY

    def merge(self, a: Taints, b: Taints) -> Taints:
        return a | b

    # -- guard narrowing (the flow-sensitive sanitizer) ------------------
    def exec_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.If) and any(
            isinstance(node, ast.Raise) for node in ast.walk(stmt)
        ):
            super().exec_stmt(stmt)
            self._clear_guarded(stmt.test)
            return
        if isinstance(stmt, ast.Assert):
            super().exec_stmt(stmt)
            self._clear_guarded(stmt.test)
            return
        super().exec_stmt(stmt)

    def _clear_guarded(self, test: ast.expr) -> None:
        for node in ast.walk(test):
            if isinstance(node, ast.Name) and node.id in self.env:
                self.env[node.id] = _EMPTY
            elif isinstance(node, ast.Attribute):
                # Guarding an attribute read (``if args.count > cap:
                # raise``) sanitizes that dotted path for the
                # fall-through code.
                path = dotted(node)
                if path:
                    self.env[path] = _EMPTY

    # -- sources ---------------------------------------------------------
    def _attribute_taint(self, node: ast.Attribute) -> Taints:
        field = node.attr
        base = node.value
        path = dotted(node)
        if path and path in self.env:
            return self.env[path]  # guard-sanitized attribute read
        if isinstance(base, ast.Name):
            if base.id == "args":
                return frozenset({(f"args.{field}", field)})
            cls = self.query_params.get(base.id)
            if cls is not None:
                if self.queries.tainted_field(field, cls):
                    return frozenset({(f"{cls}.{field}", field)})
                return _EMPTY
        base_name = dotted(base).rsplit(".", 1)[-1]
        if base_name == "query" and self.queries.tainted_field(field):
            return frozenset({(f"query.{field}", field)})
        # field read off a tainted scalar propagates the taint
        return self.eval_expr(base)

    # -- sinks -----------------------------------------------------------
    def _report(self, line: int, rule: str, message: str) -> None:
        self.findings.append(
            Finding(self.node.module.rel, line, rule, message, PASS_NAME)
        )

    def _flow(self) -> str:
        return " -> ".join(self.chain)

    def _sink_size(self, what: str, line: int, taints: Taints) -> None:
        if self.sinks_exempt or not taints:
            return
        srcs = ", ".join(sorted({t[0] for t in taints}))
        self._report(
            line,
            RULE_UNVALIDATED_SIZE,
            f"client-controlled '{srcs}' reaches {what} (flow "
            f"{self._flow()}); bound it in __post_init__ or wrap in "
            "validated() before it sizes an allocation",
        )

    def _sink_seed(self, line: int, taints: Taints) -> None:
        if self.sinks_exempt:
            return
        bad = {t for t in taints if t[1] != "seed"}
        if not bad:
            return
        srcs = ", ".join(sorted({t[0] for t in bad}))
        self._report(
            line,
            RULE_TAINTED_SEED,
            f"client-controlled '{srcs}' flows into derive_seed() (flow "
            f"{self._flow()}); seed derivation must key off the session "
            "seed and request id only, never unvalidated client fields",
        )

    def _sink_index(
        self, array: str, line: int, taints: Taints
    ) -> None:
        if self.sinks_exempt or not taints:
            return
        srcs = ", ".join(sorted({t[0] for t in taints}))
        self._report(
            line,
            RULE_TAINTED_INDEX,
            f"client-controlled '{srcs}' indexes CSR array '{array}' "
            f"(flow {self._flow()}); validate against num_vertices/"
            "num_edges first — negative values silently wrap",
        )

    # -- calls -----------------------------------------------------------
    def _eval_call(self, node: ast.Call) -> Taints:
        name = canonical_name(dotted(node.func), self.aliases)
        simple = name.rsplit(".", 1)[-1]
        if simple == "validated":
            for arg in node.args:
                self.eval_expr(arg)
            for kw in node.keywords:
                self.eval_expr(kw.value)
            return _EMPTY
        arg_taints = [self.eval_expr(arg) for arg in node.args]
        kw_taints = {
            kw.arg: self.eval_expr(kw.value)
            for kw in node.keywords
            if kw.arg is not None
        }
        for kw in node.keywords:
            if kw.arg is None:
                self.eval_expr(kw.value)

        if name in _NP_ALLOCS:
            shape = arg_taints[0] if arg_taints else _EMPTY
            shape |= kw_taints.get("shape", _EMPTY)
            if name == "numpy.arange":
                for taints in arg_taints:
                    shape |= taints
            self._sink_size(f"{simple}() shape", node.lineno, shape)
        elif simple == "range":
            bound: Taints = _EMPTY
            for taints in arg_taints:
                bound |= taints
            self._sink_size("a range() bound", node.lineno, bound)
        elif simple == "derive_seed":
            mixed: Taints = _EMPTY
            for taints in arg_taints:
                mixed |= taints
            for taints in kw_taints.values():
                mixed |= taints
            self._sink_seed(node.lineno, mixed)

        self._record_propagation(node, arg_taints, kw_taints)

        if simple in _PASSTHROUGH:
            out: Taints = _EMPTY
            for taints in arg_taints:
                out |= taints
            return out
        return _EMPTY

    def _record_propagation(
        self,
        node: ast.Call,
        arg_taints: Sequence[Taints],
        kw_taints: Dict[str, Taints],
    ) -> None:
        func = node.func
        if isinstance(func, ast.Name):
            ref = CallRef("name", func.id, node.lineno)
            is_method = func.id in self.graph.table.classes
        elif (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"
        ):
            ref = CallRef("self", func.attr, node.lineno)
            is_method = True
        else:
            return
        pseudo: Dict[str, Taints] = {}
        for index, taints in enumerate(arg_taints):
            if taints:
                pseudo[f"#pos{index}"] = taints
        for kw, taints in kw_taints.items():
            if taints:
                pseudo[kw] = taints
        if not pseudo:
            return
        for uid in self.graph.resolve(self.node, ref, dynamic=False):
            callee = self.graph.nodes.get(uid)
            if callee is None:
                continue
            params = _bind_params(callee, pseudo, is_method)
            if params:
                self.propagate.append((uid, params))

    # -- expression evaluation -------------------------------------------
    def eval_expr(self, node: ast.expr) -> Taints:
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.Name):
            return self.env.get(node.id, _EMPTY)
        if isinstance(node, ast.Attribute):
            return self._attribute_taint(node)
        if isinstance(node, ast.Subscript):
            value_taints = self.eval_expr(node.value)
            index_taints = self.eval_expr(node.slice)
            array = dotted(node.value).rsplit(".", 1)[-1].lstrip("_")
            if array in _CSR_NAMES:
                self._sink_index(array, node.lineno, index_taints)
            return value_taints | index_taints
        if isinstance(node, ast.IfExp):
            self.eval_expr(node.test)
            return self.eval_expr(node.body) | self.eval_expr(node.orelse)
        out: Taints = _EMPTY
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                out |= self.eval_expr(child)
        return out


def _bind_params(
    callee: FunctionNode, pseudo: Dict[str, Taints], is_method_call: bool
) -> Dict[str, Taints]:
    """Translate ``#posN``/keyword taints onto the callee signature."""
    fn = callee.scope.node
    params = [a.arg for a in [*fn.args.posonlyargs, *fn.args.args]]
    if is_method_call and params and params[0] in ("self", "cls"):
        params = params[1:]
    names = set(params) | {a.arg for a in fn.args.kwonlyargs}
    out: Dict[str, Taints] = {}
    for key, taints in pseudo.items():
        if key.startswith("#pos"):
            index = int(key[4:])
            if index < len(params):
                out[params[index]] = out.get(params[index], _EMPTY) | taints
        elif key in names:
            out[key] = out.get(key, _EMPTY) | taints
    return out


# ---------------------------------------------------------------------------
# Pass entry point: seed every function, propagate over precise edges
# ---------------------------------------------------------------------------

def _exempt(module: ModuleInfo) -> bool:
    return module.rel.endswith(_EXEMPT_SUFFIXES)


def run_pass(
    modules: Sequence[ModuleInfo], table: SymbolTable
) -> List[Finding]:
    graph = CallGraph.build(modules, table)
    queries = QueryIndex(modules, table)
    alias_cache: Dict[str, Dict[str, str]] = {}
    findings: List[Finding] = []
    seen_sinks: Set[Tuple[str, int, str]] = set()
    visited: Set[Tuple[str, FrozenSet[Tuple[str, str]]]] = set()

    def analyze(
        uid: str, param_taints: Dict[str, Taints], chain: Tuple[str, ...]
    ) -> None:
        if len(chain) > _MAX_DEPTH:
            return
        key = (
            uid,
            frozenset(
                (param, source)
                for param, taints in param_taints.items()
                for source, _ in taints
            ),
        )
        if key in visited:
            return
        visited.add(key)
        node = graph.nodes[uid]
        rel = node.module.rel
        aliases = alias_cache.get(rel)
        if aliases is None:
            aliases = import_aliases(node.module)
            alias_cache[rel] = aliases
        interp = _TaintInterp(
            node,
            graph,
            queries,
            aliases,
            param_taints,
            chain,
            sinks_exempt=_exempt(node.module),
        )
        interp.run(node.scope.node.body)
        for finding in interp.findings:
            sink = (finding.path, finding.line, finding.rule)
            if sink not in seen_sinks:
                seen_sinks.add(sink)
                findings.append(finding)
        for callee_uid, params in interp.propagate:
            callee = graph.nodes[callee_uid]
            analyze(
                callee_uid, params, chain + (callee.scope.qualname,)
            )

    for uid in sorted(graph.nodes):
        analyze(uid, {}, (graph.nodes[uid].scope.qualname,))
    return findings
