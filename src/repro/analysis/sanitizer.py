"""Runtime simulation sanitizer (EventBus subscriber + substrate hooks).

GPU random walk engines validate their schedulers with runtime assertion
layers on real hardware (races, lost walks, use-after-free of evicted
partitions); this simulated engine needs the same backstop, because its
claims — pipeline overlap, selective eviction, adaptive zero copy — are
statements about *who waits for what* and silently break when a refactor
reorders the timeline or drops a walk.

The :class:`Sanitizer` observes a run through two channels and never
mutates anything:

* **bus events** — it is a plain ``on_<event>`` subscriber on the run's
  :class:`~repro.core.events.EventBus`;
* **substrate hooks** — optional observer slots on
  :class:`~repro.gpu.timeline.Stream` (every scheduled op),
  :class:`~repro.gpu.memory.BlockPool` (graph-pool inserts/evicts) and
  :class:`~repro.walks.pool.DeviceWalkPool` (walk appends/takes).

Multi-device runs bind one substrate *shard* per device
(:meth:`Sanitizer.bind_shard`); every per-shard invariant is then checked
per device (stream frontiers are keyed by stream identity, because each
shard's timeline reuses the compute/load/evict names), and two
cross-device invariants join the list.

Checked invariants (rule ids in :mod:`repro.analysis.violations`):

==========================  ============================================
``stream-monotonic``        per-stream op starts never precede the
                            stream's completion frontier or the op's
                            declared ``earliest`` release time; durations
                            are non-negative.
``stream-affinity``         ops ride the stream their category belongs
                            to (loads on *load*, evictions and migration
                            sends on *evict*, kernels on *compute*) — the
                            full-duplex PCIe invariant of §III-D.
``partition-residency``     every non-zero-copy ``KernelDispatched``
                            targets a partition resident in its device's
                            graph pool.
``evict-in-flight-load``    no graph-pool evict of a partition whose
                            explicit load has not been consumed by a
                            dependent kernel yet.
``walk-capacity``           every device walk pool respects ``m_w`` at
                            iteration boundaries; batches never carry
                            more walks than their capacity.
``double-consume``          device buffer takes never exceed what the
                            buffer holds (a double-consumed frontier).
``walk-conservation``       pending + finished walks (summed over every
                            shard) equal the seeded count at every
                            reshuffle, iteration boundary and run
                            completion.
``cross-device-residency``  no walk id is resident in two shards' pools
                            at an iteration boundary.
``migration-conservation``  per peer channel, walks delivered never
                            exceed walks sent, and a completed run has
                            sent == delivered; extended over the failure
                            and rebalance paths — walks recovered from a
                            failed device must equal its drained pending
                            count, and rebalance handoffs ride the same
                            per-channel send/deliver accounting.
``stale-owner-mask``        every iteration targets a partition its
                            device owns per the cluster's live owner
                            map, and the device is alive — a scheduler
                            running on a stale mask after a rebalance
                            or failure is caught at the very next
                            iteration.
``request-conservation``    every admitted serve query completes exactly
                            once with exactly its requested walks: no
                            orphan completions, no double completions,
                            no wrong walk counts, and a completed run
                            leaves no admitted query unfinished.
==========================  ============================================

Violations are collected (never raised) with a provenance trail of the
most recent events/ops; :meth:`Sanitizer.summary` is what lands in
``RunStats.sanitizer``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Set, Tuple, cast

import numpy as np

from repro.analysis.violations import (
    RULE_CROSS_DEVICE,
    RULE_DOUBLE_CONSUME,
    RULE_EVICT_IN_FLIGHT,
    RULE_MIGRATION,
    RULE_REQUEST_CONSERVATION,
    RULE_RESIDENCY,
    RULE_STALE_OWNER,
    RULE_STREAM_AFFINITY,
    RULE_STREAM_MONOTONIC,
    RULE_WALK_CAPACITY,
    RULE_WALK_CONSERVATION,
    Violation,
)
from repro.core.events import (
    SERVED_EXPLICIT,
    BatchEvicted,
    BatchLoaded,
    DeviceFailed,
    DeviceRecoveredWalks,
    GraphServed,
    IterationStarted,
    KernelDispatched,
    QueryAdmitted,
    QueryCompleted,
    Reshuffled,
    RunCompleted,
    ShardRebalanced,
    WalkFinished,
    WalksDelivered,
    WalksMigrated,
    WalksSeeded,
)
from repro.core.stats import (
    CAT_CPU_COMPUTE,
    CAT_GRAPH_LOAD,
    CAT_KERNEL_OTHER,
    CAT_PATH_SHIP,
    CAT_RESHUFFLE,
    CAT_SUBGRAPH,
    CAT_WALK_EVICT,
    CAT_WALK_LOAD,
    CAT_WALK_MIGRATE,
    CAT_WALK_UPDATE,
    CAT_ZERO_COPY,
)
from repro.gpu.memory import BlockPool
from repro.gpu.timeline import TIME_EPS, Stream, Timeline
from repro.walks.pool import DeviceWalkPool, HostWalkPool

#: Which stream each breakdown category must ride (the §III-D pipeline
#: contract).  Categories not listed (e.g. the P2P channel occupancy,
#: which rides dedicated channel streams) are unchecked.
STREAM_AFFINITY: Dict[str, str] = {
    CAT_GRAPH_LOAD: Timeline.LOAD,
    CAT_WALK_LOAD: Timeline.LOAD,
    CAT_ZERO_COPY: Timeline.LOAD,
    CAT_WALK_EVICT: Timeline.EVICT,
    CAT_WALK_MIGRATE: Timeline.EVICT,
    CAT_PATH_SHIP: Timeline.EVICT,
    CAT_WALK_UPDATE: Timeline.COMPUTE,
    CAT_RESHUFFLE: Timeline.COMPUTE,
    CAT_KERNEL_OTHER: Timeline.COMPUTE,
    CAT_CPU_COMPUTE: Timeline.COMPUTE,
    CAT_SUBGRAPH: Timeline.COMPUTE,
}


@dataclass
class _ShardState:
    """Substrate bound for one device shard."""

    device_id: int
    timeline: Optional[Timeline] = None
    graph_pool: Optional[BlockPool] = None
    host: Optional[HostWalkPool] = None
    device: Optional[DeviceWalkPool] = None
    batch_capacity: Optional[int] = None


class Sanitizer:
    """Collects invariant violations from one engine (or baseline) run.

    Event-only mode (no :meth:`bind` call) checks what events alone can
    prove — batch sizes, migration conservation, finished-walk counts.
    :meth:`bind` wires the full substrate hooks for the single-device
    engine; the multi-device engine calls :meth:`bind_shard` once per
    device shard instead.
    """

    def __init__(
        self, max_violations: int = 64, provenance_depth: int = 12
    ) -> None:
        self.max_violations = max_violations
        self.violations: List[Violation] = []
        self.checks = 0
        self.dropped = 0
        self._trail: Deque[str] = deque(maxlen=provenance_depth)
        self._seq = 0
        self._iteration = 0
        self._finished = 0
        #: bound substrate shards, keyed by device id (see bind_shard()).
        self._shards: Dict[int, _ShardState] = {}
        self._expected_walks: Optional[int] = None
        # derived state.  Stream frontiers are keyed by stream *identity*:
        # every shard's timeline names its streams compute/load/evict, so
        # name keys would blend devices and raise false monotonicity
        # violations.
        self._stream_frontier: Dict[int, float] = {}
        self._stream_device: Dict[int, int] = {}
        self._pool_device: Dict[int, int] = {}
        self._wpool_device: Dict[int, int] = {}
        #: explicit loads not yet consumed, keyed (device, partition).
        self._loads_in_flight: Set[Tuple[int, int]] = set()
        #: migration counters per directed (src, dst) channel.
        self._migrated_sent: Dict[Tuple[int, int], int] = {}
        self._migrated_recv: Dict[Tuple[int, int], int] = {}
        #: cluster owner map / liveness, wired by bind_cluster().
        self._cluster: Optional[object] = None
        #: pending walks drained per failed device (DeviceFailed).
        self._failed_pending: Dict[int, int] = {}
        #: walks recovered per failed source (DeviceRecoveredWalks).
        self._recovered: Dict[int, int] = {}
        #: requested walk count per admitted serve query (QueryAdmitted).
        self._admitted_queries: Dict[int, int] = {}
        #: request ids that have completed (QueryCompleted).
        self._completed_queries: Set[int] = set()

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def bind(
        self,
        timeline: Optional[Timeline] = None,
        graph_pool: Optional[BlockPool] = None,
        host: Optional[HostWalkPool] = None,
        device: Optional[DeviceWalkPool] = None,
        expected_walks: Optional[int] = None,
    ) -> "Sanitizer":
        """Install substrate hooks for a single-device run (shard 0)."""
        return self.bind_shard(
            0,
            timeline=timeline,
            graph_pool=graph_pool,
            host=host,
            device=device,
            expected_walks=expected_walks,
        )

    def bind_shard(
        self,
        device_id: int,
        timeline: Optional[Timeline] = None,
        graph_pool: Optional[BlockPool] = None,
        host: Optional[HostWalkPool] = None,
        device: Optional[DeviceWalkPool] = None,
        expected_walks: Optional[int] = None,
    ) -> "Sanitizer":
        """Install substrate hooks for one device shard.

        ``expected_walks`` is the run-global seeded walk count (identical
        across shards); call :meth:`unbind` when the run ends.
        """
        shard = self._shards.get(device_id)
        if shard is None:
            shard = self._shards[device_id] = _ShardState(device_id)
        if expected_walks is not None:
            self._expected_walks = expected_walks
        if timeline is not None:
            shard.timeline = timeline
            timeline.install_observer(self.stream_op)
            for stream in timeline.streams:
                self._stream_device[id(stream)] = device_id
        if graph_pool is not None:
            shard.graph_pool = graph_pool
            graph_pool.observer = self
            self._pool_device[id(graph_pool)] = device_id
        if host is not None:
            shard.host = host
        if device is not None:
            shard.device = device
            device.observer = self
            shard.batch_capacity = device.batch_capacity
            self._wpool_device[id(device)] = device_id
        return self

    def bind_cluster(self, cluster: object) -> "Sanitizer":
        """Wire the cluster's owner map for stale-owner-mask auditing.

        ``cluster`` is a :class:`~repro.gpu.cluster.DeviceCluster` (typed
        as ``object`` to keep the analysis layer import-light); its live
        ``device_of`` array and ``alive`` mask let the sanitizer verify
        each iteration against current — not construction-time —
        ownership.
        """
        self._cluster = cluster
        return self

    def unbind(self) -> None:
        """Remove every hook installed by :meth:`bind` / :meth:`bind_shard`."""
        for shard in self._shards.values():
            if shard.timeline is not None:
                shard.timeline.remove_observer()
            if (
                shard.graph_pool is not None
                and shard.graph_pool.observer is self
            ):
                shard.graph_pool.observer = None
            if shard.device is not None and shard.device.observer is self:
                shard.device.observer = None

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    @property
    def _multi(self) -> bool:
        return len(self._shards) > 1

    def _stream_label(self, stream: Stream) -> str:
        device = self._stream_device.get(id(stream))
        if device is not None and self._multi:
            return f"d{device}:{stream.name}"
        return stream.name

    def _record(self, what: str) -> None:
        self._seq += 1
        self._trail.append(f"#{self._seq} it={self._iteration} {what}")

    def _violate(self, rule: str, message: str) -> None:
        if len(self.violations) >= self.max_violations:
            self.dropped += 1
            return
        self.violations.append(
            Violation(
                rule=rule,
                message=message,
                iteration=self._iteration,
                provenance=tuple(self._trail),
            )
        )

    # ------------------------------------------------------------------
    # Stream hook (gpu/timeline.py)
    # ------------------------------------------------------------------
    def stream_op(
        self,
        stream: Stream,
        category: str,
        start: float,
        end: float,
        earliest: float,
    ) -> None:
        label = self._stream_label(stream)
        self._record(
            f"op {label}/{category} "
            f"start={start:.6e} end={end:.6e} earliest={earliest:.6e}"
        )
        self.checks += 1
        key = id(stream)
        frontier = self._stream_frontier.get(key, 0.0)
        if start < frontier - TIME_EPS:
            self._violate(
                RULE_STREAM_MONOTONIC,
                f"op {category!r} starts at {start:.6e} before stream "
                f"{label!r}'s completion frontier {frontier:.6e} "
                f"(the simulated clock rewound)",
            )
        if start < earliest - TIME_EPS:
            self._violate(
                RULE_STREAM_MONOTONIC,
                f"op {category!r} starts at {start:.6e} before its "
                f"declared release time {earliest:.6e}",
            )
        if end < start:
            self._violate(
                RULE_STREAM_MONOTONIC,
                f"op {category!r} has negative duration "
                f"(start={start:.6e}, end={end:.6e})",
            )
        self._stream_frontier[key] = max(frontier, end)
        expected_stream = STREAM_AFFINITY.get(category)
        if expected_stream is not None and stream.name != expected_stream:
            self._violate(
                RULE_STREAM_AFFINITY,
                f"category {category!r} scheduled on stream "
                f"{label!r}, must ride {expected_stream!r} "
                f"(full-duplex PCIe contract)",
            )

    # ------------------------------------------------------------------
    # Pool hooks (gpu/memory.py)
    # ------------------------------------------------------------------
    def pool_inserted(self, pool: BlockPool, key: object) -> None:
        self._record(f"pool {pool.name} insert {key!r}")

    def pool_evicted(self, pool: BlockPool, key: object) -> None:
        self._record(f"pool {pool.name} evict {key!r}")
        self.checks += 1
        device = self._pool_device.get(id(pool), 0)
        if (device, key) in self._loads_in_flight:
            self._violate(
                RULE_EVICT_IN_FLIGHT,
                f"partition {key!r} evicted from {pool.name!r} while its "
                f"explicit load was still in flight (no dependent kernel "
                f"had consumed it)",
            )

    # ------------------------------------------------------------------
    # Device walk pool hooks (walks/pool.py)
    # ------------------------------------------------------------------
    def device_appended(
        self, pool: DeviceWalkPool, partition: int, count: int
    ) -> None:
        self._record(f"device append part={partition} walks={count}")

    def device_taken(
        self, pool: DeviceWalkPool, partition: int, count: int, available: int
    ) -> None:
        self._record(
            f"device take part={partition} walks={count} "
            f"buffered={available}"
        )
        self.checks += 1
        if count > available:
            self._violate(
                RULE_DOUBLE_CONSUME,
                f"took {count} walks of partition {partition} with only "
                f"{available} buffered (double-consumed frontier batch)",
            )

    # ------------------------------------------------------------------
    # Bus event handlers (bound by EventBus.attach)
    # ------------------------------------------------------------------
    def on_walks_seeded(self, event: WalksSeeded) -> None:
        self._record(f"{event!r}")
        if self._expected_walks is None:
            # Arms the conservation checks even when bind() was not told
            # the walk count — the seeding event is the ground truth.
            self._expected_walks = event.walks
        elif event.walks != self._expected_walks:
            self._violate(
                RULE_WALK_CONSERVATION,
                f"seeded {event.walks} walks but the run expects "
                f"{self._expected_walks}",
            )

    def on_iteration_started(self, event: IterationStarted) -> None:
        self._iteration = event.iteration
        self._record(f"{event!r}")
        self._check_stale_owner(event)
        self._check_walk_capacity()
        self._check_conservation("iteration start")
        self._check_cross_device()

    def on_graph_served(self, event: GraphServed) -> None:
        self._record(f"{event!r}")
        if event.mode == SERVED_EXPLICIT:
            self._loads_in_flight.add((event.device, event.partition))

    def on_batch_loaded(self, event: BatchLoaded) -> None:
        self._record(f"{event!r}")
        self._check_batch_size(event.walks, "loaded", event.device)

    def on_kernel_dispatched(self, event: KernelDispatched) -> None:
        self._record(f"{event!r}")
        self._loads_in_flight.discard((event.device, event.partition))
        shard = self._shards.get(event.device)
        graph_pool = shard.graph_pool if shard is not None else None
        if graph_pool is not None and not event.zero_copy:
            self.checks += 1
            if event.partition not in graph_pool:
                where = (
                    f" of device {event.device}" if self._multi else ""
                )
                self._violate(
                    RULE_RESIDENCY,
                    f"kernel dispatched for partition {event.partition} "
                    f"which is not resident in the graph pool{where} "
                    f"(evicted or never loaded)",
                )

    def on_reshuffled(self, event: Reshuffled) -> None:
        self._record(f"{event!r}")
        self._check_conservation("reshuffle")

    def on_batch_evicted(self, event: BatchEvicted) -> None:
        self._record(f"{event!r}")
        self._check_batch_size(event.walks, "evicted", event.device)

    def on_walk_finished(self, event: WalkFinished) -> None:
        self._record(f"{event!r}")
        self._finished += event.count

    def on_walks_migrated(self, event: WalksMigrated) -> None:
        self._record(f"{event!r}")
        key = (event.src_device, event.dst_device)
        self._migrated_sent[key] = (
            self._migrated_sent.get(key, 0) + event.walks
        )

    def on_walks_delivered(self, event: WalksDelivered) -> None:
        self._record(f"{event!r}")
        key = (event.src_device, event.dst_device)
        recv = self._migrated_recv.get(key, 0) + event.walks
        self._migrated_recv[key] = recv
        self.checks += 1
        sent = self._migrated_sent.get(key, 0)
        if recv > sent:
            self._violate(
                RULE_MIGRATION,
                f"channel {key[0]}->{key[1]} delivered {recv} walks but "
                f"only {sent} were sent (phantom delivery)",
            )

    def on_device_failed(self, event: DeviceFailed) -> None:
        self._record(f"{event!r}")
        self._failed_pending[event.device] = event.pending_walks
        # The engine emits DeviceFailed only after recovery re-appended
        # the drained walks, so the population must already balance.
        self._check_conservation("device failure")

    def on_device_recovered_walks(self, event: DeviceRecoveredWalks) -> None:
        self._record(f"{event!r}")
        src = event.src_device
        recovered = self._recovered.get(src, 0) + event.walks
        self._recovered[src] = recovered
        self.checks += 1
        drained = self._failed_pending.get(src, 0)
        if recovered > drained:
            self._violate(
                RULE_MIGRATION,
                f"recovered {recovered} walks from failed device {src} "
                f"which only drained {drained} (recovery duplicated "
                f"walks)",
            )

    def on_shard_rebalanced(self, event: ShardRebalanced) -> None:
        self._record(f"{event!r}")
        # A handoff must leave the population intact and no walk resident
        # on both the old and new owner.
        self._check_conservation("shard rebalance")
        self._check_cross_device()

    def on_query_admitted(self, event: QueryAdmitted) -> None:
        self._record(f"{event!r}")
        self.checks += 1
        if event.request_id in self._admitted_queries:
            self._violate(
                RULE_REQUEST_CONSERVATION,
                f"request {event.request_id} admitted twice (the "
                f"admission controller re-issued a live request id)",
            )
            return
        self._admitted_queries[event.request_id] = event.walks

    def on_query_completed(self, event: QueryCompleted) -> None:
        self._record(f"{event!r}")
        self.checks += 1
        rid = event.request_id
        if rid not in self._admitted_queries:
            self._violate(
                RULE_REQUEST_CONSERVATION,
                f"request {rid} completed with {event.walks} walks but "
                f"was never admitted (orphan walks routed to a phantom "
                f"request)",
            )
            return
        if rid in self._completed_queries:
            self._violate(
                RULE_REQUEST_CONSERVATION,
                f"request {rid} completed twice (the completion router "
                f"demultiplexed the same request again)",
            )
            return
        self._completed_queries.add(rid)
        expected = self._admitted_queries[rid]
        if event.walks != expected:
            self._violate(
                RULE_REQUEST_CONSERVATION,
                f"request {rid} completed with {event.walks} walks, "
                f"admitted with {expected} (walks "
                f"{'lost' if event.walks < expected else 'duplicated'} "
                f"in the coalesced batch)",
            )

    def on_run_completed(self, event: RunCompleted) -> None:
        self._record(f"{event!r}")
        self._check_conservation("run completion")
        self._check_migration_closed()
        self._check_recovery_closed()
        self._check_requests_closed()
        if self._expected_walks is not None:
            self.checks += 1
            if event.finished_walks != self._expected_walks:
                self._violate(
                    RULE_WALK_CONSERVATION,
                    f"run completed with {event.finished_walks} finished "
                    f"walks, expected {self._expected_walks}",
                )

    # ------------------------------------------------------------------
    # Checks
    # ------------------------------------------------------------------
    def _check_batch_size(self, walks: int, verb: str, device: int) -> None:
        shard = self._shards.get(device)
        capacity = shard.batch_capacity if shard is not None else None
        if capacity is None:
            return
        self.checks += 1
        if walks > capacity:
            self._violate(
                RULE_WALK_CAPACITY,
                f"batch {verb} with {walks} walks exceeds the fixed "
                f"batch capacity {capacity} (overfilled batch)",
            )

    def _check_walk_capacity(self) -> None:
        for shard in self._shards.values():
            device = shard.device
            if device is None:
                continue
            self.checks += 1
            if device.overflow > 0:
                where = (
                    f"device {shard.device_id} walk pool"
                    if self._multi
                    else "device walk pool"
                )
                self._violate(
                    RULE_WALK_CAPACITY,
                    f"{where} holds {device.cached_walks} walks, "
                    f"{device.overflow} over m_w={device.capacity_walks} "
                    f"at an iteration boundary (eviction was not enforced)",
                )

    def _check_conservation(self, when: str) -> None:
        if self._expected_walks is None:
            return
        shards = [
            s
            for s in self._shards.values()
            if s.host is not None and s.device is not None
        ]
        if not shards:
            return
        self.checks += 1
        pending = 0
        for shard in shards:
            assert shard.host is not None and shard.device is not None
            pending += shard.host.total_walks + shard.device.cached_walks
        total = pending + self._finished
        if total != self._expected_walks:
            self._violate(
                RULE_WALK_CONSERVATION,
                f"at {when}: {pending} pending + {self._finished} finished "
                f"= {total} walks, expected {self._expected_walks} "
                f"(a walk was {'lost' if total < self._expected_walks else 'duplicated'})",
            )

    def _shard_walk_ids(self, shard: _ShardState) -> np.ndarray:
        chunks: List[np.ndarray] = []
        if shard.host is not None:
            chunks.extend(walks.ids for walks in shard.host.iter_walks())
        if shard.device is not None:
            chunks.extend(walks.ids for walks in shard.device.iter_walks())
        if not chunks:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(chunks)

    def _check_cross_device(self) -> None:
        """No walk id may be resident in two shards' pools at once."""
        shards = [
            s
            for s in self._shards.values()
            if s.host is not None or s.device is not None
        ]
        if len(shards) < 2:
            return
        self.checks += 1
        resident = [(s.device_id, self._shard_walk_ids(s)) for s in shards]
        for i in range(len(resident)):
            for j in range(i + 1, len(resident)):
                common = np.intersect1d(resident[i][1], resident[j][1])
                if common.size:
                    sample = common[:4].tolist()
                    self._violate(
                        RULE_CROSS_DEVICE,
                        f"walk id(s) {sample} resident on devices "
                        f"{resident[i][0]} and {resident[j][0]} "
                        f"simultaneously ({common.size} shared)",
                    )
                    # At most one violation per boundary check: a single
                    # duplicated walk would otherwise flood the report.
                    return

    def _check_stale_owner(self, event: IterationStarted) -> None:
        """Each iteration's partition must be owned by its alive device."""
        cluster = self._cluster
        if cluster is None:
            return
        self.checks += 1
        device_of = getattr(cluster, "device_of")
        alive = getattr(cluster, "alive")
        owner = int(device_of[event.partition])
        if not bool(alive[event.device]):
            self._violate(
                RULE_STALE_OWNER,
                f"iteration ran on device {event.device}, which has "
                f"failed (the sweep loop did not observe the failure)",
            )
        elif owner != event.device:
            self._violate(
                RULE_STALE_OWNER,
                f"device {event.device} iterated over partition "
                f"{event.partition}, owned by device {owner} — its "
                f"scheduler is deciding on a stale owned mask",
            )

    def _check_recovery_closed(self) -> None:
        """Every failed device's drained walks must have been recovered.

        The failure-path extension of migration conservation: walks
        drained out of a dead shard are 'in flight' until a
        ``DeviceRecoveredWalks`` lands them on a survivor, and a
        completed run may not leave any behind (over-recovery is caught
        live in :meth:`on_device_recovered_walks`).
        """
        for device in sorted(self._failed_pending):
            self.checks += 1
            drained = self._failed_pending[device]
            recovered = self._recovered.get(device, 0)
            if recovered < drained:
                self._violate(
                    RULE_MIGRATION,
                    f"device {device} failed with {drained} pending walks "
                    f"but only {recovered} were recovered onto survivors "
                    f"({drained - recovered} lost to the failure)",
                )

    def _check_migration_closed(self) -> None:
        """At run completion every channel must have sent == delivered."""
        channels = sorted(
            set(self._migrated_sent) | set(self._migrated_recv)
        )
        for key in channels:
            self.checks += 1
            sent = self._migrated_sent.get(key, 0)
            recv = self._migrated_recv.get(key, 0)
            if sent != recv:
                verb = "lost" if sent > recv else "duplicated"
                self._violate(
                    RULE_MIGRATION,
                    f"channel {key[0]}->{key[1]} completed the run with "
                    f"{sent} walks sent but {recv} delivered "
                    f"({abs(sent - recv)} {verb} in flight)",
                )

    def _check_requests_closed(self) -> None:
        """A completed run may leave no admitted query unfinished."""
        for rid in sorted(self._admitted_queries):
            self.checks += 1
            if rid not in self._completed_queries:
                self._violate(
                    RULE_REQUEST_CONSERVATION,
                    f"request {rid} was admitted with "
                    f"{self._admitted_queries[rid]} walks but never "
                    f"completed (dropped completion)",
                )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def clean(self) -> bool:
        return not self.violations and not self.dropped

    def summary(self) -> Dict[str, object]:
        """The ``RunStats.sanitizer`` payload."""
        by_rule: Dict[str, int] = {}
        for violation in self.violations:
            by_rule[violation.rule] = by_rule.get(violation.rule, 0) + 1
        return {
            "checks": self.checks,
            "violation_count": len(self.violations) + self.dropped,
            "violations": [v.as_dict() for v in self.violations],
            "by_rule": by_rule,
            "clean": self.clean,
        }

    def format_report(self) -> str:
        """Human-readable multi-line report (CLI output)."""
        return format_summary(self.summary())


def format_summary(summary: Dict[str, object]) -> str:
    """Render a :meth:`Sanitizer.summary` dict (``RunStats.sanitizer``)."""
    checks = summary["checks"]
    count = cast(int, summary["violation_count"])
    violations = cast(List[Dict[str, object]], summary["violations"])
    if summary["clean"]:
        return f"sanitizer: clean ({checks} checks)"
    lines = [f"sanitizer: {count} violation(s) in {checks} checks"]
    for violation in violations:
        lines.append(
            f"  [{violation['rule']}] iteration "
            f"{violation['iteration']}: {violation['message']}"
        )
        for entry in cast(List[str], violation["provenance"]):
            lines.append(f"    {entry}")
    dropped = count - len(violations)
    if dropped > 0:
        lines.append(f"  ... and {dropped} more (truncated)")
    return "\n".join(lines)
