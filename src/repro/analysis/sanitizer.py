"""Runtime simulation sanitizer (EventBus subscriber + substrate hooks).

GPU random walk engines validate their schedulers with runtime assertion
layers on real hardware (races, lost walks, use-after-free of evicted
partitions); this simulated engine needs the same backstop, because its
claims — pipeline overlap, selective eviction, adaptive zero copy — are
statements about *who waits for what* and silently break when a refactor
reorders the timeline or drops a walk.

The :class:`Sanitizer` observes a run through two channels and never
mutates anything:

* **bus events** — it is a plain ``on_<event>`` subscriber on the run's
  :class:`~repro.core.events.EventBus`;
* **substrate hooks** — optional observer slots on
  :class:`~repro.gpu.timeline.Stream` (every scheduled op),
  :class:`~repro.gpu.memory.BlockPool` (graph-pool inserts/evicts) and
  :class:`~repro.walks.pool.DeviceWalkPool` (walk appends/takes).

Checked invariants (rule ids in :mod:`repro.analysis.violations`):

==========================  ============================================
``stream-monotonic``        per-stream op starts never precede the
                            stream's completion frontier or the op's
                            declared ``earliest`` release time; durations
                            are non-negative.
``stream-affinity``         ops ride the stream their category belongs
                            to (loads on *load*, evictions on *evict*,
                            kernels on *compute*) — the full-duplex PCIe
                            invariant of §III-D.
``partition-residency``     every non-zero-copy ``KernelDispatched``
                            targets a partition resident in the graph
                            pool.
``evict-in-flight-load``    no graph-pool evict of a partition whose
                            explicit load has not been consumed by a
                            dependent kernel yet.
``walk-capacity``           the device walk pool respects ``m_w`` at
                            iteration boundaries; batches never carry
                            more walks than their capacity.
``double-consume``          device buffer takes never exceed what the
                            buffer holds (a double-consumed frontier).
``walk-conservation``       pending + finished walks equal the seeded
                            count at every reshuffle, iteration boundary
                            and run completion.
==========================  ============================================

Violations are collected (never raised) with a provenance trail of the
most recent events/ops; :meth:`Sanitizer.summary` is what lands in
``RunStats.sanitizer``.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Set, cast

from repro.analysis.violations import (
    RULE_DOUBLE_CONSUME,
    RULE_EVICT_IN_FLIGHT,
    RULE_RESIDENCY,
    RULE_STREAM_AFFINITY,
    RULE_STREAM_MONOTONIC,
    RULE_WALK_CAPACITY,
    RULE_WALK_CONSERVATION,
    Violation,
)
from repro.core.events import (
    SERVED_EXPLICIT,
    BatchEvicted,
    BatchLoaded,
    GraphServed,
    IterationStarted,
    KernelDispatched,
    Reshuffled,
    RunCompleted,
    WalkFinished,
)
from repro.core.stats import (
    CAT_CPU_COMPUTE,
    CAT_GRAPH_LOAD,
    CAT_KERNEL_OTHER,
    CAT_PATH_SHIP,
    CAT_RESHUFFLE,
    CAT_SUBGRAPH,
    CAT_WALK_EVICT,
    CAT_WALK_LOAD,
    CAT_WALK_UPDATE,
    CAT_ZERO_COPY,
)
from repro.gpu.memory import BlockPool
from repro.gpu.timeline import TIME_EPS, Stream, Timeline
from repro.walks.pool import DeviceWalkPool, HostWalkPool

#: Which stream each breakdown category must ride (the §III-D pipeline
#: contract).  Categories not listed (e.g. user-defined) are unchecked.
STREAM_AFFINITY: Dict[str, str] = {
    CAT_GRAPH_LOAD: Timeline.LOAD,
    CAT_WALK_LOAD: Timeline.LOAD,
    CAT_ZERO_COPY: Timeline.LOAD,
    CAT_WALK_EVICT: Timeline.EVICT,
    CAT_PATH_SHIP: Timeline.EVICT,
    CAT_WALK_UPDATE: Timeline.COMPUTE,
    CAT_RESHUFFLE: Timeline.COMPUTE,
    CAT_KERNEL_OTHER: Timeline.COMPUTE,
    CAT_CPU_COMPUTE: Timeline.COMPUTE,
    CAT_SUBGRAPH: Timeline.COMPUTE,
}


class Sanitizer:
    """Collects invariant violations from one engine (or baseline) run.

    Event-only mode (no :meth:`bind` call) checks what events alone can
    prove — batch sizes, conservation if pools are bound, residency if a
    graph pool is bound.  :meth:`bind` wires the full substrate hooks.
    """

    def __init__(
        self, max_violations: int = 64, provenance_depth: int = 12
    ) -> None:
        self.max_violations = max_violations
        self.violations: List[Violation] = []
        self.checks = 0
        self.dropped = 0
        self._trail: Deque[str] = deque(maxlen=provenance_depth)
        self._seq = 0
        self._iteration = 0
        self._finished = 0
        # bound substrate (all optional; see bind())
        self._timeline: Optional[Timeline] = None
        self._graph_pool: Optional[BlockPool] = None
        self._host: Optional[HostWalkPool] = None
        self._device: Optional[DeviceWalkPool] = None
        self._expected_walks: Optional[int] = None
        self._batch_capacity: Optional[int] = None
        # derived state
        self._stream_frontier: Dict[str, float] = {}
        self._loads_in_flight: Set[int] = set()

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def bind(
        self,
        timeline: Optional[Timeline] = None,
        graph_pool: Optional[BlockPool] = None,
        host: Optional[HostWalkPool] = None,
        device: Optional[DeviceWalkPool] = None,
        expected_walks: Optional[int] = None,
    ) -> "Sanitizer":
        """Install substrate hooks; call :meth:`unbind` when the run ends."""
        self._timeline = timeline
        self._graph_pool = graph_pool
        self._host = host
        self._device = device
        self._expected_walks = expected_walks
        if timeline is not None:
            timeline.install_observer(self.stream_op)
        if graph_pool is not None:
            graph_pool.observer = self
        if device is not None:
            device.observer = self
            self._batch_capacity = device.batch_capacity
        return self

    def unbind(self) -> None:
        """Remove every hook installed by :meth:`bind`."""
        if self._timeline is not None:
            self._timeline.remove_observer()
        if self._graph_pool is not None and self._graph_pool.observer is self:
            self._graph_pool.observer = None
        if self._device is not None and self._device.observer is self:
            self._device.observer = None

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def _record(self, what: str) -> None:
        self._seq += 1
        self._trail.append(f"#{self._seq} it={self._iteration} {what}")

    def _violate(self, rule: str, message: str) -> None:
        if len(self.violations) >= self.max_violations:
            self.dropped += 1
            return
        self.violations.append(
            Violation(
                rule=rule,
                message=message,
                iteration=self._iteration,
                provenance=tuple(self._trail),
            )
        )

    # ------------------------------------------------------------------
    # Stream hook (gpu/timeline.py)
    # ------------------------------------------------------------------
    def stream_op(
        self,
        stream: Stream,
        category: str,
        start: float,
        end: float,
        earliest: float,
    ) -> None:
        self._record(
            f"op {stream.name}/{category} "
            f"start={start:.6e} end={end:.6e} earliest={earliest:.6e}"
        )
        self.checks += 1
        frontier = self._stream_frontier.get(stream.name, 0.0)
        if start < frontier - TIME_EPS:
            self._violate(
                RULE_STREAM_MONOTONIC,
                f"op {category!r} starts at {start:.6e} before stream "
                f"{stream.name!r}'s completion frontier {frontier:.6e} "
                f"(the simulated clock rewound)",
            )
        if start < earliest - TIME_EPS:
            self._violate(
                RULE_STREAM_MONOTONIC,
                f"op {category!r} starts at {start:.6e} before its "
                f"declared release time {earliest:.6e}",
            )
        if end < start:
            self._violate(
                RULE_STREAM_MONOTONIC,
                f"op {category!r} has negative duration "
                f"(start={start:.6e}, end={end:.6e})",
            )
        self._stream_frontier[stream.name] = max(frontier, end)
        expected_stream = STREAM_AFFINITY.get(category)
        if expected_stream is not None and stream.name != expected_stream:
            self._violate(
                RULE_STREAM_AFFINITY,
                f"category {category!r} scheduled on stream "
                f"{stream.name!r}, must ride {expected_stream!r} "
                f"(full-duplex PCIe contract)",
            )

    # ------------------------------------------------------------------
    # Pool hooks (gpu/memory.py)
    # ------------------------------------------------------------------
    def pool_inserted(self, pool: BlockPool, key: object) -> None:
        self._record(f"pool {pool.name} insert {key!r}")

    def pool_evicted(self, pool: BlockPool, key: object) -> None:
        self._record(f"pool {pool.name} evict {key!r}")
        self.checks += 1
        if key in self._loads_in_flight:
            self._violate(
                RULE_EVICT_IN_FLIGHT,
                f"partition {key!r} evicted from {pool.name!r} while its "
                f"explicit load was still in flight (no dependent kernel "
                f"had consumed it)",
            )

    # ------------------------------------------------------------------
    # Device walk pool hooks (walks/pool.py)
    # ------------------------------------------------------------------
    def device_appended(
        self, pool: DeviceWalkPool, partition: int, count: int
    ) -> None:
        self._record(f"device append part={partition} walks={count}")

    def device_taken(
        self, pool: DeviceWalkPool, partition: int, count: int, available: int
    ) -> None:
        self._record(
            f"device take part={partition} walks={count} "
            f"buffered={available}"
        )
        self.checks += 1
        if count > available:
            self._violate(
                RULE_DOUBLE_CONSUME,
                f"took {count} walks of partition {partition} with only "
                f"{available} buffered (double-consumed frontier batch)",
            )

    # ------------------------------------------------------------------
    # Bus event handlers (bound by EventBus.attach)
    # ------------------------------------------------------------------
    def on_iteration_started(self, event: IterationStarted) -> None:
        self._iteration = event.iteration
        self._record(f"{event!r}")
        self._check_walk_capacity()
        self._check_conservation("iteration start")

    def on_graph_served(self, event: GraphServed) -> None:
        self._record(f"{event!r}")
        if event.mode == SERVED_EXPLICIT:
            self._loads_in_flight.add(event.partition)

    def on_batch_loaded(self, event: BatchLoaded) -> None:
        self._record(f"{event!r}")
        self._check_batch_size(event.walks, "loaded")

    def on_kernel_dispatched(self, event: KernelDispatched) -> None:
        self._record(f"{event!r}")
        self._loads_in_flight.discard(event.partition)
        if self._graph_pool is not None and not event.zero_copy:
            self.checks += 1
            if event.partition not in self._graph_pool:
                self._violate(
                    RULE_RESIDENCY,
                    f"kernel dispatched for partition {event.partition} "
                    f"which is not resident in the graph pool "
                    f"(evicted or never loaded)",
                )

    def on_reshuffled(self, event: Reshuffled) -> None:
        self._record(f"{event!r}")
        self._check_conservation("reshuffle")

    def on_batch_evicted(self, event: BatchEvicted) -> None:
        self._record(f"{event!r}")
        self._check_batch_size(event.walks, "evicted")

    def on_walk_finished(self, event: WalkFinished) -> None:
        self._record(f"{event!r}")
        self._finished += event.count

    def on_run_completed(self, event: RunCompleted) -> None:
        self._record(f"{event!r}")
        self._check_conservation("run completion")
        if self._expected_walks is not None:
            self.checks += 1
            if event.finished_walks != self._expected_walks:
                self._violate(
                    RULE_WALK_CONSERVATION,
                    f"run completed with {event.finished_walks} finished "
                    f"walks, expected {self._expected_walks}",
                )

    # ------------------------------------------------------------------
    # Checks
    # ------------------------------------------------------------------
    def _check_batch_size(self, walks: int, verb: str) -> None:
        if self._batch_capacity is None:
            return
        self.checks += 1
        if walks > self._batch_capacity:
            self._violate(
                RULE_WALK_CAPACITY,
                f"batch {verb} with {walks} walks exceeds the fixed "
                f"batch capacity {self._batch_capacity} (overfilled batch)",
            )

    def _check_walk_capacity(self) -> None:
        device = self._device
        if device is None:
            return
        self.checks += 1
        if device.overflow > 0:
            self._violate(
                RULE_WALK_CAPACITY,
                f"device walk pool holds {device.cached_walks} walks, "
                f"{device.overflow} over m_w={device.capacity_walks} at an "
                f"iteration boundary (eviction was not enforced)",
            )

    def _check_conservation(self, when: str) -> None:
        if (
            self._expected_walks is None
            or self._host is None
            or self._device is None
        ):
            return
        self.checks += 1
        pending = self._host.total_walks + self._device.cached_walks
        total = pending + self._finished
        if total != self._expected_walks:
            self._violate(
                RULE_WALK_CONSERVATION,
                f"at {when}: {pending} pending + {self._finished} finished "
                f"= {total} walks, expected {self._expected_walks} "
                f"(a walk was {'lost' if total < self._expected_walks else 'duplicated'})",
            )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def clean(self) -> bool:
        return not self.violations and not self.dropped

    def summary(self) -> Dict[str, object]:
        """The ``RunStats.sanitizer`` payload."""
        by_rule: Dict[str, int] = {}
        for violation in self.violations:
            by_rule[violation.rule] = by_rule.get(violation.rule, 0) + 1
        return {
            "checks": self.checks,
            "violation_count": len(self.violations) + self.dropped,
            "violations": [v.as_dict() for v in self.violations],
            "by_rule": by_rule,
            "clean": self.clean,
        }

    def format_report(self) -> str:
        """Human-readable multi-line report (CLI output)."""
        return format_summary(self.summary())


def format_summary(summary: Dict[str, object]) -> str:
    """Render a :meth:`Sanitizer.summary` dict (``RunStats.sanitizer``)."""
    checks = summary["checks"]
    count = cast(int, summary["violation_count"])
    violations = cast(List[Dict[str, object]], summary["violations"])
    if summary["clean"]:
        return f"sanitizer: clean ({checks} checks)"
    lines = [f"sanitizer: {count} violation(s) in {checks} checks"]
    for violation in violations:
        lines.append(
            f"  [{violation['rule']}] iteration "
            f"{violation['iteration']}: {violation['message']}"
        )
        for entry in cast(List[str], violation["provenance"]):
            lines.append(f"    {entry}")
    dropped = count - len(violations)
    if dropped > 0:
        lines.append(f"  ... and {dropped} more (truncated)")
    return "\n".join(lines)
