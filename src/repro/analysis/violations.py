"""Violation records shared by the runtime sanitizer and reports.

Every check the sanitizer performs is identified by a stable rule id;
when a check fails it produces one :class:`Violation` carrying the rule,
a human-readable message, the engine iteration it happened in, and the
*provenance trail* — the most recent bus events and stream ops leading up
to the failure, each stamped with a global sequence number.  The trail is
what makes a violation debuggable: it shows who scheduled what, in which
order, right before the invariant broke.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

#: A stream op started before the stream's completion frontier (the
#: simulated clock rewound) or before its declared release time.
RULE_STREAM_MONOTONIC = "stream-monotonic"

#: An op ran on the wrong stream for its category — e.g. a device-to-host
#: eviction on the host-to-device load stream, which would break the
#: full-duplex PCIe model (§III-D: loads and evicts overlap *because*
#: they ride separate directions of the link).
RULE_STREAM_AFFINITY = "stream-affinity"

#: A non-zero-copy kernel was dispatched for a partition that is not
#: resident in the graph pool (computing against evicted graph data).
RULE_RESIDENCY = "partition-residency"

#: A partition was evicted from the graph pool while its explicit load
#: was still in flight (no dependent kernel had consumed it yet).
RULE_EVICT_IN_FLIGHT = "evict-in-flight-load"

#: The device walk pool exceeded ``m_w`` at an iteration boundary (the
#: engine must evict down to capacity before loading more walks), or a
#: walk batch carried more walks than its fixed capacity.
RULE_WALK_CAPACITY = "walk-capacity"

#: More walks were consumed from a partition's device buffer than it
#: actually held — the signature of a double-consumed frontier batch.
RULE_DOUBLE_CONSUME = "double-consume"

#: active + finished walks stopped summing to the number of seeded walks
#: (a walk was lost or duplicated across a reshuffle/epoch).
RULE_WALK_CONSERVATION = "walk-conservation"

#: The same walk id was resident in two device shards' pools at an
#: iteration boundary — a migrated walk was delivered without being
#: removed from its source shard (or delivered twice).
RULE_CROSS_DEVICE = "cross-device-residency"

#: A peer channel's send and receive sides stopped matching: walks were
#: delivered that were never sent, or a completed run left sent walks
#: undelivered (migration dropped or duplicated walks in flight).
RULE_MIGRATION = "migration-conservation"

#: An iteration ran on a device that has failed, or processed a
#: partition the cluster's ownership map assigns to another shard —
#: the scheduler decided on a stale owned mask after a failure or
#: elastic rebalance moved ownership.
RULE_STALE_OWNER = "stale-owner-mask"

#: A serve-session query broke request conservation: it completed
#: without being admitted (orphan walks), completed twice, completed
#: with a walk count different from what it requested, or a completed
#: run left admitted queries unfinished (dropped completion).
RULE_REQUEST_CONSERVATION = "request-conservation"

ALL_RULES = (
    RULE_STREAM_MONOTONIC,
    RULE_STREAM_AFFINITY,
    RULE_RESIDENCY,
    RULE_EVICT_IN_FLIGHT,
    RULE_WALK_CAPACITY,
    RULE_DOUBLE_CONSUME,
    RULE_WALK_CONSERVATION,
    RULE_CROSS_DEVICE,
    RULE_MIGRATION,
    RULE_STALE_OWNER,
    RULE_REQUEST_CONSERVATION,
)


@dataclass(frozen=True)
class Violation:
    """One failed sanitizer check, with full event provenance."""

    rule: str
    message: str
    iteration: int = 0
    provenance: Tuple[str, ...] = field(default_factory=tuple)

    def as_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "message": self.message,
            "iteration": self.iteration,
            "provenance": list(self.provenance),
        }

    def __str__(self) -> str:
        return f"[{self.rule}] iteration {self.iteration}: {self.message}"
