"""Correctness tooling: runtime simulation sanitizer + repo-specific lint.

Two complementary passes guard the engine's invariants so perf PRs can
refactor aggressively without corrupting the cost model:

* :class:`~repro.analysis.sanitizer.Sanitizer` — a runtime checker that
  rides a run's event bus and substrate hooks, validating timeline
  causality, PCIe duplex/stream affinity, partition residency, walk-batch
  lifecycle and global walk conservation.  Enabled per run via
  ``EngineConfig(sanitize=True)`` / ``repro run --sanitize``.
* :mod:`~repro.analysis.static` — the multi-pass static-analysis
  framework behind ``repro lint``: the ported house rules plus, under
  ``--strict``, a unit-of-measure pass over the cost stack and a
  cross-stage aliasing pass over the pipeline, all sharing one symbol
  table, one :class:`~repro.analysis.static.findings.Finding` type, one
  waiver syntax and one suppression baseline.
"""

from repro.analysis.lint import LintViolation, lint_paths, run_lint
from repro.analysis.static import Finding, analyze_paths
from repro.analysis.sanitizer import STREAM_AFFINITY, Sanitizer, format_summary
from repro.analysis.violations import (
    ALL_RULES,
    RULE_CROSS_DEVICE,
    RULE_DOUBLE_CONSUME,
    RULE_EVICT_IN_FLIGHT,
    RULE_MIGRATION,
    RULE_REQUEST_CONSERVATION,
    RULE_RESIDENCY,
    RULE_STALE_OWNER,
    RULE_STREAM_AFFINITY,
    RULE_STREAM_MONOTONIC,
    RULE_WALK_CAPACITY,
    RULE_WALK_CONSERVATION,
    Violation,
)

__all__ = [
    "ALL_RULES",
    "Finding",
    "LintViolation",
    "analyze_paths",
    "RULE_CROSS_DEVICE",
    "RULE_DOUBLE_CONSUME",
    "RULE_EVICT_IN_FLIGHT",
    "RULE_MIGRATION",
    "RULE_REQUEST_CONSERVATION",
    "RULE_RESIDENCY",
    "RULE_STALE_OWNER",
    "RULE_STREAM_AFFINITY",
    "RULE_STREAM_MONOTONIC",
    "RULE_WALK_CAPACITY",
    "RULE_WALK_CONSERVATION",
    "STREAM_AFFINITY",
    "Sanitizer",
    "Violation",
    "format_summary",
    "lint_paths",
    "run_lint",
]
