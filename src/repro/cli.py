"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``datasets``
    Print the synthetic dataset registry next to the paper's Table II.
``run``
    Run one algorithm on one dataset (or a graph file) with the
    LightTraffic engine or any baseline, printing the run statistics.
``experiment``
    Regenerate one paper table/figure by name (``fig3`` ... ``fig18``,
    ``table1``/``table2``/``table3``) and print its rows.
``generate``
    Generate a synthetic graph and save it (edge list or ``.npz`` CSR).
``serve``
    Run a closed-loop walk-serving session: simulated client workers
    submit typed queries (``ppr``, ``uniform``, ``metapath``,
    ``node2vec``) against one resident graph, compatible queries are
    coalesced into shared frontier batches, and per-request
    queue/service/total latency is reported under the
    ``request-conservation`` sanitizer rule.
``bench samplers``
    Run the transition-sampler microbenchmark (loop vs vectorized alias
    build, node2vec stepping, per-sampler throughput + distribution
    parity) and write ``BENCH_samplers.json``.
``bench devices``
    Run the multi-device scaling benchmark (1/2/4 shards with P2P walk
    migration, simulated speedup + migration counts) and write
    ``BENCH_devices.json``.
``bench elastic``
    Run the elastic-cluster benchmark: heterogeneity-aware vs uniform
    partition assignment on skewed 4-device specs, and a mid-run
    single-device failure that must complete sanitizer-clean with zero
    lost walks and bounded slowdown.  Writes ``BENCH_elastic.json``.
``bench backends``
    Run the execution-backend benchmark: the real kernels (``numba``,
    ``multiprocess``) against the ``simulated`` NumPy interpreter path
    on the same seeded workload — bit-identical results enforced, real
    wall-clock speedups reported, and the analytic kernel cost model
    cross-validated against the measured per-kernel times.  Writes
    ``BENCH_backends.json``.
``bench serve``
    Run the sustained-load serving benchmark: the mixed query workload
    under closed- and open-loop arrivals at two client-worker counts,
    p50/p90/p99 latency + throughput per run, with the coalescing
    parity gate (every coalescible request re-run standalone must match
    bit-for-bit) enforced inside the bench.  Writes ``BENCH_serve.json``.
``lint``
    Run the repo's static-analysis framework
    (:mod:`repro.analysis.static`).  The default pass set is the cheap
    house rules: RNG calls outside the ``core/prng.py`` factory, ``==``
    on float timestamps, unfrozen event dataclasses, bus events without
    a registered handler.  ``--strict`` adds the dataflow passes
    (unit-of-measure over the cost stack, cross-stage aliasing over the
    pipeline) and gates on the committed ``lint-baseline.json``;
    ``--json`` writes the machine-readable findings report CI uploads.

Examples
--------
::

    python -m repro datasets
    python -m repro run --dataset uk-sim --algorithm pagerank --system lighttraffic
    python -m repro run --graph mygraph.npz --algorithm ppr --walks 100000
    python -m repro run --dataset lj-sim --metrics-json metrics.json
    python -m repro run --dataset uk-sim --algorithm uniform --sampler alias
    python -m repro run --dataset uk-sim --algorithm uniform --sanitize
    python -m repro run --dataset uk-sim --algorithm uniform --backend multiprocess
    python -m repro run --dataset uk-sim --devices 2 --sanitize
    python -m repro run --dataset uk-sim --devices 3 --topology ring \
        --device-spec compute=2 --device-spec compute=1 --device-spec compute=0.5 \
        --fail 1@40 --rebalance-threshold 1.5 --metrics-prom metrics.prom
    python -m repro experiment table3
    python -m repro generate --kind rmat --scale 14 --edge-factor 8 --out g.npz
    python -m repro bench samplers --quick --out BENCH_samplers.json
    python -m repro bench devices --quick --out BENCH_devices.json
    python -m repro bench elastic --quick --out BENCH_elastic.json
    python -m repro bench backends --quick --out BENCH_backends.json
    python -m repro serve --scale 10 --workers 8 --queries 32
    python -m repro serve --kinds ppr,uniform --workers 4 --seed 11
    python -m repro bench serve --quick --out BENCH_serve.json
    python -m repro lint src/repro
    python -m repro lint --strict --json lint-report.json src/repro
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import TYPE_CHECKING, Any, List, Optional

from repro.bench import harness, reporting
from repro.bench.workloads import (
    DATASETS,
    default_platform,
    load_dataset,
    standard_config,
    standard_walks,
)
from repro.core.engine import LightTrafficEngine
from repro.core.metrics import MetricsCollector
from repro.core.stats import RunStats

if TYPE_CHECKING:
    from repro.graph.csr import CSRGraph

SYSTEMS = (
    "lighttraffic",
    "thunderrw",
    "flashmob",
    "subway",
    "nextdoor",
    "uvm",
    "multiround",
)
#: systems whose engines publish on the event bus (support --metrics-json).
BUS_SYSTEMS = ("lighttraffic", "subway", "uvm", "multiround")

EXPERIMENTS = {
    "table1": (harness.table1_subway_breakdown, ()),
    "table2": (harness.table2_dataset_stats, ()),
    "table3": (harness.table3_scheduling, ()),
    "fig3": (harness.fig3_active_ratio, ()),
    "fig9": (harness.fig9_cpu_comparison, ()),
    "fig10": (harness.fig10_subway_comparison, ()),
    "fig11": (harness.fig11_nextdoor, ()),
    "fig12": (harness.fig12_reshuffle, ()),
    "fig13": (harness.fig13_pipeline, ()),
    "fig14": (harness.fig14_adaptive, ()),
    "fig15": (harness.fig15_memory_size, ()),
    "fig16": (harness.fig16_multiround, ()),
    "fig17": (harness.fig17_partition_size, ()),
    "fig18": (harness.fig18_scalability, ()),
    "metrics": (harness.metrics_observatory, ()),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="LightTraffic (ICDE 2023) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list the synthetic dataset registry")

    run = sub.add_parser("run", help="run one workload")
    source = run.add_mutually_exclusive_group(required=True)
    source.add_argument("--dataset", choices=sorted(DATASETS))
    source.add_argument("--graph", help="path to a .npz CSR or edge-list file")
    run.add_argument(
        "--algorithm",
        choices=("uniform", "pagerank", "ppr"),
        default="pagerank",
    )
    run.add_argument("--system", choices=SYSTEMS, default="lighttraffic")
    run.add_argument(
        "--sampler", default=None, metavar="NAME",
        help="transition-sampler override for algorithms with configurable "
             "sampling (see `python -m repro bench samplers` for the "
             "registry: uniform, alias, inverse, rejection, ...)",
    )
    run.add_argument(
        "--backend", default="simulated", metavar="NAME",
        help="execution backend for the kernel inner loops (lighttraffic "
             "only): 'simulated' is the historical NumPy path; 'numba' and "
             "'multiprocess' run real JIT/shared-memory kernels that stay "
             "bit-identical to it (they force the counter-based RNG); "
             "validated against the backend registry so plugin-registered "
             "names work too",
    )
    run.add_argument("--walks", type=int, default=None,
                     help="walk count (default: 2|V|)")
    run.add_argument("--interconnect", choices=("pcie3", "pcie4", "nvlink2"),
                     default="pcie3")
    run.add_argument(
        "--devices", type=int, default=1, metavar="N",
        help="shard the graph across N simulated devices with P2P walk "
             "migration (lighttraffic only; default 1 = the paper's "
             "single-GPU engine)",
    )
    run.add_argument(
        "--peer-interconnect", choices=("nvlink", "pcie-p2p"),
        default="nvlink",
        help="peer link carrying cross-shard walk migrations "
             "(with --devices > 1)",
    )
    run.add_argument(
        "--topology", choices=("all-pairs", "ring", "switch"),
        default="all-pairs",
        help="peer interconnect topology (with --devices > 1): migrations "
             "between non-adjacent shards are routed multi-hop",
    )
    run.add_argument(
        "--device-spec", action="append", default=None, metavar="SPEC",
        dest="device_specs",
        help="heterogeneous per-device spec 'name:compute=2,memory=0.5,"
             "link=1' (shorthands c/m/l; repeat once per device, in device "
             "order; default: homogeneous)",
    )
    run.add_argument(
        "--fail", action="append", default=None, metavar="DEV@ITER",
        dest="failures",
        help="inject a simulated failure of device DEV at iteration ITER "
             "(repeatable); its pending walks are recovered onto survivors",
    )
    run.add_argument(
        "--rebalance-threshold", type=float, default=None, metavar="X",
        help="enable elastic shard rebalancing: hand partitions off when "
             "the most loaded device exceeds X times the mean load "
             "(X > 1.0; default: rebalancing off)",
    )
    run.add_argument("--seed", type=int, default=42)
    run.add_argument(
        "--metrics-json", default=None, metavar="PATH",
        help="dump per-partition metrics as JSON ('-' for stdout); "
             f"supported for {', '.join(BUS_SYSTEMS)}",
    )
    run.add_argument(
        "--metrics-prom", default=None, metavar="PATH",
        help="export run metrics (including the per-device pending-walk "
             "time series) in Prometheus text format ('-' for stdout); "
             f"supported for {', '.join(BUS_SYSTEMS)}",
    )
    run.add_argument(
        "--sanitize", action="store_true",
        help="attach the runtime invariant sanitizer to the run and fail "
             "(exit 1) on any violation; "
             f"supported for {', '.join(BUS_SYSTEMS)}",
    )

    exp = sub.add_parser("experiment", help="regenerate a paper table/figure")
    exp.add_argument("name", choices=sorted(EXPERIMENTS))

    report = sub.add_parser(
        "report", help="regenerate all experiments into one markdown file"
    )
    report.add_argument("--out", required=True)
    report.add_argument(
        "--only", default=None,
        help="comma-separated experiment names (default: all)",
    )

    serve = sub.add_parser(
        "serve",
        help="closed-loop walk-serving session with query coalescing "
             "and per-request latency accounting",
    )
    serve.add_argument("--scale", type=int, default=10,
                       help="rmat scale of the resident graph")
    serve.add_argument("--edge-factor", type=int, default=8)
    serve.add_argument("--workers", type=int, default=4,
                       help="simulated concurrent client workers")
    serve.add_argument("--queries", type=int, default=16,
                       help="total queries across all workers")
    serve.add_argument(
        "--kinds", default=None, metavar="KIND[,KIND...]",
        help="comma-separated query kinds the workload cycles through "
             "(default: all kinds)",
    )
    serve.add_argument("--seed", type=int, default=7)
    serve.add_argument("--max-batch-walks", type=int, default=512,
                       help="walk budget of one coalesced batch")

    bench = sub.add_parser(
        "bench", help="performance microbenchmarks with JSON output"
    )
    bench_sub = bench.add_subparsers(dest="bench_target", required=True)
    samplers = bench_sub.add_parser(
        "samplers",
        help="loop-vs-vectorized transition sampling benchmark",
    )
    samplers.add_argument(
        "--quick", action="store_true",
        help="small sizes for CI smoke runs (speedup floor not enforced)",
    )
    samplers.add_argument("--vertices", type=int, default=10_000)
    samplers.add_argument("--edge-factor", type=int, default=8)
    samplers.add_argument("--seed", type=int, default=7)
    samplers.add_argument(
        "--out", default="BENCH_samplers.json",
        help="results JSON path ('-' to skip the file and print only)",
    )
    samplers.add_argument(
        "--no-check", action="store_true",
        help="report without failing on parity/speedup violations",
    )
    devices = bench_sub.add_parser(
        "devices",
        help="multi-device sharding scaling benchmark (1/2/4 shards)",
    )
    devices.add_argument(
        "--quick", action="store_true",
        help="small workload for CI smoke runs (speedup floor not enforced)",
    )
    devices.add_argument("--scale", type=int, default=12,
                         help="rmat scale of the scaling workload")
    devices.add_argument("--edge-factor", type=int, default=8)
    devices.add_argument("--walks", type=int, default=None,
                         help="walk count (default: workload-sized)")
    devices.add_argument("--seed", type=int, default=7)
    devices.add_argument(
        "--out", default="BENCH_devices.json",
        help="results JSON path ('-' to skip the file and print only)",
    )
    devices.add_argument(
        "--no-check", action="store_true",
        help="report without failing on conservation/speedup violations",
    )
    elastic = bench_sub.add_parser(
        "elastic",
        help="elastic-cluster benchmark: heterogeneity-aware assignment "
             "on skewed specs + mid-run device failure with walk recovery",
    )
    elastic.add_argument(
        "--quick", action="store_true",
        help="small workload for CI smoke runs (speedup floor not enforced)",
    )
    elastic.add_argument("--scale", type=int, default=12,
                         help="rmat scale of the benchmark workload")
    elastic.add_argument("--edge-factor", type=int, default=8)
    elastic.add_argument("--walks", type=int, default=None,
                         help="walk count (default: workload-sized)")
    elastic.add_argument("--seed", type=int, default=7)
    elastic.add_argument(
        "--out", default="BENCH_elastic.json",
        help="results JSON path ('-' to skip the file and print only)",
    )
    elastic.add_argument(
        "--no-check", action="store_true",
        help="report without failing on conservation/slowdown violations",
    )
    backends = bench_sub.add_parser(
        "backends",
        help="execution-backend benchmark: real numba/multiprocess kernels "
             "vs the simulated NumPy path, bit-identity + cost-model "
             "cross-validation",
    )
    backends.add_argument(
        "--quick", action="store_true",
        help="small workload for CI smoke runs (speedup floor not enforced)",
    )
    backends.add_argument("--scale", type=int, default=13,
                          help="rmat scale of the benchmark workload")
    backends.add_argument("--edge-factor", type=int, default=8)
    backends.add_argument("--walks", type=int, default=None,
                          help="walk count (default: workload-sized)")
    backends.add_argument("--seed", type=int, default=7)
    backends.add_argument(
        "--out", default="BENCH_backends.json",
        help="results JSON path ('-' to skip the file and print only)",
    )
    backends.add_argument(
        "--no-check", action="store_true",
        help="report without failing on identity/speedup violations",
    )
    bench_serve = bench_sub.add_parser(
        "serve",
        help="sustained-load serving benchmark: open/closed-loop latency "
             "percentiles + throughput with the coalescing parity gate",
    )
    bench_serve.add_argument(
        "--quick", action="store_true",
        help="small workload for CI smoke runs (latency is structural-"
             "checked only)",
    )
    bench_serve.add_argument("--scale", type=int, default=10,
                             help="rmat scale of the benchmark workload")
    bench_serve.add_argument("--edge-factor", type=int, default=8)
    bench_serve.add_argument("--queries", type=int, default=None,
                             help="query count (default: workload-sized)")
    bench_serve.add_argument("--seed", type=int, default=7)
    bench_serve.add_argument(
        "--out", default="BENCH_serve.json",
        help="results JSON path ('-' to skip the file and print only)",
    )
    bench_serve.add_argument(
        "--no-check", action="store_true",
        help="report without failing on parity/conservation violations",
    )

    lint = sub.add_parser(
        "lint", help="run the repo-specific static-analysis passes"
    )
    lint.add_argument(
        "paths", nargs="*", default=None, metavar="PATH",
        help="files or directories to lint (default: the repro package "
             "sources)",
    )
    lint.add_argument(
        "--strict", action="store_true",
        help="also run the dataflow passes (unit-of-measure, cross-stage "
             "aliasing) and gate on the suppression baseline",
    )
    lint.add_argument(
        "--json", default=None, metavar="PATH", dest="json_path",
        help="write the machine-readable findings report to PATH",
    )
    lint.add_argument(
        "--sarif", default=None, metavar="PATH", dest="sarif_path",
        help="write the findings as a SARIF 2.1.0 log to PATH (for "
             "GitHub code-scanning upload)",
    )
    lint.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="suppression baseline for --strict (default: "
             "lint-baseline.json when present)",
    )
    lint.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the suppression baseline from the current findings "
             "(a reviewed, committed action)",
    )

    gen = sub.add_parser("generate", help="generate a synthetic graph")
    gen.add_argument("--kind", choices=("rmat", "erdos", "ba"), default="rmat")
    gen.add_argument("--scale", type=int, default=12,
                     help="rmat: log2 vertex count")
    gen.add_argument("--edge-factor", type=float, default=8.0)
    gen.add_argument("--vertices", type=int, default=4096,
                     help="erdos/ba vertex count")
    gen.add_argument("--seed", type=int, default=1)
    gen.add_argument("--out", required=True,
                     help=".npz for binary CSR, anything else for edge list")
    return parser


def _load_graph(args: argparse.Namespace) -> "CSRGraph":
    from repro.graph.io import load_csr, load_edge_list

    if args.dataset:
        return load_dataset(args.dataset)
    if args.graph.endswith(".npz"):
        return load_csr(args.graph)
    return load_edge_list(args.graph, preprocess=True, name=args.graph)


def _run_system(
    args: argparse.Namespace,
    graph: "CSRGraph",
    metrics: Optional[MetricsCollector] = None,
) -> RunStats:
    from repro.baselines import (
        FlashMobEngine,
        MultiRoundEngine,
        NextDoorConfig,
        NextDoorEngine,
        SubwayConfig,
        SubwayEngine,
        ThunderRWEngine,
        UVMConfig,
        UVMEngine,
    )

    platform = default_platform()
    algorithm = harness.make_algorithm(args.algorithm)
    sampler = getattr(args, "sampler", None)
    if sampler is not None and args.system not in ("lighttraffic", "multiround"):
        # Bus-less baselines get the override applied directly; the engine
        # systems route it through EngineConfig.sampler below so the
        # config-validation path is exercised too.
        algorithm.set_transition_sampler(sampler)
    walks = args.walks or standard_walks(graph)
    sanitize = getattr(args, "sanitize", False)
    if args.system == "lighttraffic":
        backend = getattr(args, "backend", "simulated")
        overrides: dict = {"backend": backend}
        if backend != "simulated":
            # Real backends replay the exact trajectories of the simulated
            # path, which requires schedule-independent per-lane draws.
            overrides["rng_mode"] = "counter"
        config = standard_config(
            graph, platform, interconnect=args.interconnect, seed=args.seed,
            sampler=sampler, sanitize=sanitize,
            devices=getattr(args, "devices", 1),
            **overrides,
            peer_interconnect=getattr(args, "peer_interconnect", "nvlink"),
            topology=getattr(args, "topology", "all-pairs"),
            device_specs=getattr(args, "device_specs", None),
            failure_schedule=getattr(args, "failure_schedule", None),
            rebalance_threshold=getattr(args, "rebalance_threshold", None),
        )
        return LightTrafficEngine(
            graph, algorithm, config, metrics=metrics
        ).run(walks)
    if args.system == "multiround":
        config = standard_config(
            graph, platform, interconnect=args.interconnect, seed=args.seed,
            sampler=sampler, sanitize=sanitize,
        )
        factory = harness.ALGORITHM_FACTORIES[args.algorithm]
        return MultiRoundEngine(
            graph, factory, config, rounds=2, metrics=metrics
        ).run(walks)
    if args.system == "thunderrw":
        return ThunderRWEngine(graph, algorithm, cpu=platform.cpu,
                               seed=args.seed).run(walks)
    if args.system == "flashmob":
        return FlashMobEngine(graph, algorithm, cpu=platform.cpu,
                              seed=args.seed).run(walks)
    if args.system == "subway":
        config = SubwayConfig(
            device=platform.device,
            interconnect=platform.interconnect(args.interconnect),
            calibration=platform.calibration,
            gpu_memory_bytes=platform.gpu_memory_bytes,
            seed=args.seed,
        )
        return _run_bus_baseline(
            SubwayEngine(graph, algorithm, config, metrics=metrics),
            walks, sanitize,
        )
    if args.system == "uvm":
        config = UVMConfig(
            device=platform.device,
            interconnect=platform.interconnect(args.interconnect),
            calibration=platform.calibration,
            gpu_memory_bytes=platform.gpu_memory_bytes,
            seed=args.seed,
        )
        return _run_bus_baseline(
            UVMEngine(graph, algorithm, config, metrics=metrics),
            walks, sanitize,
        )
    config = NextDoorConfig(
        device=platform.device,
        interconnect=platform.interconnect(args.interconnect),
        calibration=platform.calibration,
        seed=args.seed,
    )
    return NextDoorEngine(graph, algorithm, config).run(walks)


def _run_bus_baseline(engine: Any, walks: int, sanitize: bool) -> RunStats:
    """Run a bus-emitting baseline, optionally under an event-only sanitizer.

    Subway/UVM have no partition pools or simulated streams to hook, so
    the sanitizer rides their event bus alone: batch lifecycle and the
    finished-walk count are still checked.
    """
    if not sanitize:
        return engine.run(walks)
    from repro.analysis import Sanitizer
    from repro.core.events import EventBus

    bus = engine.bus if engine.bus is not None else EventBus()
    engine.bus = bus
    sanitizer = Sanitizer().bind(expected_walks=walks)
    observer = bus.attach(sanitizer)
    try:
        stats = engine.run(walks)
    finally:
        bus.detach(observer)
        sanitizer.unbind()
    stats.sanitizer = sanitizer.summary()
    return stats


def cmd_datasets() -> int:
    rows = harness.table2_dataset_stats()
    reporting.print_table(
        "Datasets (synthetic twins of the paper's Table II)",
        ["dataset", "paper", "|V|", "|E|", "CSR MB", "d_max", "scale"],
        [
            [
                r["dataset"],
                r["paper"],
                r["V"],
                r["E"],
                f"{r['csr_mb']:.2f}",
                r["d_max"],
                f"{r['scale']:.0f}x",
            ]
            for r in rows
        ],
    )
    return 0


def _unsupported_engine(flag: str, system: str, supported: tuple) -> int:
    """Reject a flag/engine mismatch: hint goes to stderr, exit code 2.

    Keeping the message off stdout matters for scripted callers piping
    stats output — the hint must never be mistaken for run results.
    """
    print(
        f"{flag} is not supported by system {system!r}; "
        f"supported engines: {', '.join(supported)}",
        file=sys.stderr,
    )
    return 2


def _unavailable_backend(name: str, hint: str) -> int:
    """Reject a backend the environment cannot run: stderr hint, exit 2.

    Same stdout/stderr contract as :func:`_unsupported_engine` — scripted
    callers parsing run stats must never see the hint on stdout.
    """
    print(
        f"--backend {name} is not available in this environment: {hint}",
        file=sys.stderr,
    )
    return 2


def cmd_run(args: argparse.Namespace) -> int:
    from repro.core.config import FailureSchedule
    from repro.gpu.cluster import ClusterDeviceSpec

    metrics: Optional[MetricsCollector] = None
    want_metrics = (
        args.metrics_json is not None or args.metrics_prom is not None
    )
    if want_metrics and args.system not in BUS_SYSTEMS:
        flag = (
            "--metrics-json" if args.metrics_json is not None
            else "--metrics-prom"
        )
        return _unsupported_engine(flag, args.system, BUS_SYSTEMS)
    if want_metrics:
        metrics = MetricsCollector()
    if args.sanitize and args.system not in BUS_SYSTEMS:
        return _unsupported_engine("--sanitize", args.system, BUS_SYSTEMS)
    if args.devices > 1 and args.system != "lighttraffic":
        return _unsupported_engine(
            "--devices", args.system, ("lighttraffic",)
        )
    if args.backend != "simulated":
        from repro.backends.registry import available_backends

        registered = available_backends()
        if args.backend not in registered:
            print(
                f"--backend {args.backend!r} is not a registered backend; "
                f"registered backends: {', '.join(registered)}",
                file=sys.stderr,
            )
            return 2
        if args.system != "lighttraffic":
            return _unsupported_engine(
                "--backend", args.system, ("lighttraffic",)
            )
        if args.backend == "numba":
            from repro.backends.numba_kernels import NUMBA_AVAILABLE

            if not NUMBA_AVAILABLE:
                return _unavailable_backend(
                    "numba",
                    "the optional numba package is not installed; use "
                    "--backend multiprocess or --backend simulated",
                )
    cluster_flags = (
        ("--device-spec", args.device_specs),
        ("--fail", args.failures),
        ("--rebalance-threshold", args.rebalance_threshold),
        ("--topology", None if args.topology == "all-pairs" else args.topology),
    )
    for flag, value in cluster_flags:
        if value is None:
            continue
        if args.system != "lighttraffic":
            return _unsupported_engine(flag, args.system, ("lighttraffic",))
        if args.devices <= 1:
            print(f"{flag} requires --devices > 1", file=sys.stderr)
            return 2
    args.failure_schedule = None
    try:
        if args.device_specs is not None:
            args.device_specs = tuple(
                ClusterDeviceSpec.parse(spec) for spec in args.device_specs
            )
            if len(args.device_specs) != args.devices:
                print(
                    f"--device-spec given {len(args.device_specs)} time(s) "
                    f"but --devices is {args.devices}; repeat it once per "
                    "device",
                    file=sys.stderr,
                )
                return 2
        if args.failures is not None:
            args.failure_schedule = FailureSchedule.parse(
                ",".join(args.failures)
            )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    graph = _load_graph(args)
    try:
        stats = _run_system(args, graph, metrics=metrics)
    except ValueError as exc:
        if args.sampler is not None and "sampler" in str(exc):
            print(str(exc), file=sys.stderr)
            return 2
        raise
    if metrics is not None and args.metrics_json is not None:
        payload = json.dumps(metrics.snapshot(), indent=2, sort_keys=True)
        if args.metrics_json == "-":
            print(payload)
        else:
            try:
                with open(args.metrics_json, "w", encoding="utf-8") as handle:
                    handle.write(payload + "\n")
            except OSError as exc:
                print(f"cannot write metrics to {args.metrics_json}: {exc}",
                      file=sys.stderr)
                return 2
            print(f"wrote metrics to {args.metrics_json}")
    if metrics is not None and args.metrics_prom is not None:
        from repro.core.metrics import prometheus_text

        labels = {"system": args.system, "graph": graph.name}
        text = prometheus_text(metrics.snapshot(), extra_labels=labels)
        if args.metrics_prom == "-":
            print(text, end="")
        else:
            try:
                with open(args.metrics_prom, "w", encoding="utf-8") as handle:
                    handle.write(text)
            except OSError as exc:
                print(f"cannot write metrics to {args.metrics_prom}: {exc}",
                      file=sys.stderr)
                return 2
            print(f"wrote Prometheus metrics to {args.metrics_prom}")
    print(stats.summary())
    print(f"  iterations      : {stats.iterations}")
    print(f"  explicit copies : {stats.explicit_copies}")
    if stats.num_devices > 1:
        print(f"  devices         : {stats.num_devices}")
        print(f"  walks migrated  : {stats.walks_migrated}")
        if stats.device_failures:
            print(f"  device failures : {stats.device_failures} "
                  f"({stats.walks_recovered} walks recovered)")
        if stats.rebalances:
            print(f"  rebalances      : {stats.rebalances} "
                  f"({stats.walks_rebalanced} walks handed off)")
        if stats.device_times:
            times = ", ".join(
                f"d{dev}={reporting.format_seconds(t)}"
                for dev, t in sorted(stats.device_times.items())
            )
            print(f"  device times    : {times}")
    if stats.zero_copy_iterations:
        print(f"  zero-copy iters : {stats.zero_copy_iterations}")
    if stats.graph_pool_hits + stats.graph_pool_misses:
        print(f"  pool hit rate   : {stats.graph_pool_hit_rate:.1%}")
    print("  breakdown:")
    for category, seconds in sorted(stats.breakdown.items()):
        print(f"    {category:18s} {reporting.format_seconds(seconds)}")
    if stats.measured is not None:
        measured: Any = stats.measured
        print(f"  measured wall-clock ({stats.backend} backend):")
        print(f"    setup              "
              f"{reporting.format_seconds(measured['setup_seconds'])}")
        print(f"    walk_update        "
              f"{reporting.format_seconds(measured['walk_update_seconds'])}"
              f" over {measured['num_kernels']} kernels")
        print(f"    group              "
              f"{reporting.format_seconds(measured['group_seconds'])}")
    if args.sanitize:
        from repro.analysis import format_summary

        if stats.sanitizer is None:
            print("sanitizer did not attach to the run", file=sys.stderr)
            return 2
        print(format_summary(stats.sanitizer))
        if not stats.sanitizer["clean"]:
            return 1
    return 0


def cmd_experiment(name: str) -> int:
    func, args = EXPERIMENTS[name]
    rows = func(*args)
    if not rows:
        print("no rows produced")
        return 1
    keys = list(rows[0].keys())
    reporting.print_table(
        f"experiment {name}", keys, reporting.rows_from_dicts(rows, keys)
    )
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.graph.generators import rmat
    from repro.serve import (
        QUERY_KINDS,
        ServeSession,
        default_workload,
        make_vertex_types,
    )

    kinds = (
        tuple(k.strip() for k in args.kinds.split(",") if k.strip())
        if args.kinds is not None
        else QUERY_KINDS
    )
    for kind in kinds:
        if kind not in QUERY_KINDS:
            return _unsupported_engine(
                f"--kinds {kind}", "serve", QUERY_KINDS
            )
    graph = rmat(
        scale=args.scale, edge_factor=args.edge_factor, seed=args.seed
    )
    config = harness.bench_engine_config(args.seed, quick=args.scale <= 8)
    try:
        session = ServeSession(
            graph,
            config,
            workers=args.workers,
            max_batch_walks=args.max_batch_walks,
            vertex_types=make_vertex_types(graph, args.seed),
        )
        workload = default_workload(
            graph, kinds=kinds, queries=args.queries, seed=args.seed
        )
        # Admission rejections (e.g. a query whose walks exceed
        # --max-batch-walks) are client errors: exit 2 with a hint,
        # consistent with _unsupported_engine.
        report = session.run(workload)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    summary = report.summary_dict()
    latency = summary["latency"]
    print(
        f"served {summary['queries']} queries "
        f"({summary['walks_served']} walks) on {graph.name or 'rmat'} "
        f"with {args.workers} workers: {summary['batches']} batches, "
        f"{summary['coalesced_queries']} coalesced, "
        f"makespan {report.makespan * 1e3:.3f} ms"
    )
    for name in ("queue_seconds", "service_seconds", "total_seconds"):
        series = latency[name]  # type: ignore[index]
        print(
            f"  {name:16s} p50={series['p50'] * 1e3:8.3f} ms "
            f"p90={series['p90'] * 1e3:8.3f} ms "
            f"p99={series['p99'] * 1e3:8.3f} ms"
        )
    throughput = summary["throughput"]
    print(
        f"  throughput: {throughput['queries_per_second']:.1f} queries/s, "  # type: ignore[index]
        f"{throughput['walks_per_second']:.1f} walks/s"  # type: ignore[index]
    )
    if report.sanitizer is not None:
        clean = bool(report.sanitizer.get("clean", False))
        print(
            "  sanitizer: "
            + ("clean" if clean else "VIOLATIONS DETECTED")
            + (
                ""
                if report.engine_sanitizers_clean
                else " (engine runs DIRTY)"
            )
        )
        if not clean or not report.engine_sanitizers_clean:
            return 1
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    if args.bench_target == "serve":
        from repro.bench import serve as bench_serve

        results = bench_serve.run_bench(
            scale=args.scale,
            edge_factor=args.edge_factor,
            queries=args.queries,
            seed=args.seed,
            quick=args.quick,
        )
        print(bench_serve.format_summary(results))
        if args.out != "-":
            bench_serve.write_results(results, args.out)
            print(f"wrote {args.out}")
        if not args.no_check and not results["checks"]["all_ok"]:
            print("serve benchmark checks FAILED", file=sys.stderr)
            return 1
        return 0
    if args.bench_target == "backends":
        from repro.bench import backends as bench_backends

        results = bench_backends.run_bench(
            scale=args.scale,
            edge_factor=args.edge_factor,
            walks=args.walks,
            seed=args.seed,
            quick=args.quick,
        )
        print(bench_backends.format_summary(results))
        if args.out != "-":
            bench_backends.write_results(results, args.out)
            print(f"wrote {args.out}")
        if not args.no_check and not results["checks"]["all_ok"]:
            print("backend benchmark checks FAILED", file=sys.stderr)
            return 1
        return 0
    if args.bench_target == "elastic":
        from repro.bench import elastic as bench_elastic

        results = bench_elastic.run_bench(
            scale=args.scale,
            edge_factor=args.edge_factor,
            walks=args.walks,
            seed=args.seed,
            quick=args.quick,
        )
        print(bench_elastic.format_summary(results))
        if args.out != "-":
            bench_elastic.write_results(results, args.out)
            print(f"wrote {args.out}")
        if not args.no_check and not results["checks"]["all_ok"]:
            print("elastic benchmark checks FAILED", file=sys.stderr)
            return 1
        return 0
    if args.bench_target == "devices":
        from repro.bench import devices as bench_devices

        results = bench_devices.run_bench(
            scale=args.scale,
            edge_factor=args.edge_factor,
            walks=args.walks,
            seed=args.seed,
            quick=args.quick,
        )
        print(bench_devices.format_summary(results))
        if args.out != "-":
            bench_devices.write_results(results, args.out)
            print(f"wrote {args.out}")
        if not args.no_check and not results["checks"]["all_ok"]:
            print("device benchmark checks FAILED", file=sys.stderr)
            return 1
        return 0
    from repro.bench import samplers as bench_samplers

    results = bench_samplers.run_bench(
        vertices=args.vertices,
        edge_factor=args.edge_factor,
        seed=args.seed,
        quick=args.quick,
    )
    print(bench_samplers.format_summary(results))
    if args.out != "-":
        bench_samplers.write_results(results, args.out)
        print(f"wrote {args.out}")
    if not args.no_check and not results["checks"]["all_ok"]:
        print("sampler benchmark checks FAILED", file=sys.stderr)
        return 1
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    import os

    from repro.analysis import run_lint
    from repro.analysis.static import DEFAULT_BASELINE

    # Default target: the installed repro package sources themselves.
    paths = args.paths or [os.path.dirname(os.path.abspath(__file__))]
    baseline = args.baseline
    if baseline is None and args.strict and os.path.exists(DEFAULT_BASELINE):
        baseline = DEFAULT_BASELINE
    return run_lint(
        paths,
        strict=args.strict,
        json_path=args.json_path,
        baseline_path=baseline,
        update_baseline=args.update_baseline,
        sarif_path=args.sarif_path,
    )


def cmd_generate(args: argparse.Namespace) -> int:
    from repro.graph import generators
    from repro.graph.io import save_csr, save_edge_list

    if args.kind == "rmat":
        graph = generators.rmat(
            scale=args.scale, edge_factor=args.edge_factor, seed=args.seed
        )
    elif args.kind == "erdos":
        graph = generators.erdos_renyi(
            args.vertices,
            int(args.edge_factor * args.vertices),
            seed=args.seed,
        )
    else:
        graph = generators.barabasi_albert(
            args.vertices, attach=max(1, int(args.edge_factor)), seed=args.seed
        )
    if args.out.endswith(".npz"):
        save_csr(graph, args.out)
    else:
        save_edge_list(graph, args.out)
    print(f"wrote {graph} to {args.out}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "datasets":
        return cmd_datasets()
    if args.command == "run":
        return cmd_run(args)
    if args.command == "experiment":
        return cmd_experiment(args.name)
    if args.command == "report":
        from repro.bench.report import write_report

        only = args.only.split(",") if args.only else None
        write_report(args.out, only=only)
        print(f"wrote report to {args.out}")
        return 0
    if args.command == "serve":
        return cmd_serve(args)
    if args.command == "bench":
        return cmd_bench(args)
    if args.command == "lint":
        return cmd_lint(args)
    if args.command == "generate":
        return cmd_generate(args)
    raise AssertionError("unreachable")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
