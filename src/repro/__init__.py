"""repro — a reproduction of LightTraffic (ICDE 2023).

LightTraffic runs massive random walks on a GPU whose memory cannot hold
the graph or the walk index, by caching fixed-size graph partitions and
walk batches in reserved GPU memory pools and aggressively optimizing the
CPU-GPU transfer schedule (pipelining, preemptive / selective / adaptive
scheduling, two-level walk reshuffling).

This package implements the full system on a *simulated* GPU + PCIe
substrate (see ``DESIGN.md``): walk semantics are exact, hardware timing is
an analytic discrete-event model.

Quickstart::

    from repro import generators, PageRank, EngineConfig, run_walks

    graph = generators.rmat(scale=12, edge_factor=8, seed=1, name="demo")
    stats = run_walks(
        graph,
        PageRank(length=80),
        num_walks=2 * graph.num_vertices,
        config=EngineConfig(partition_bytes=64 * 1024, batch_walks=1024,
                            graph_pool_partitions=8, seed=7),
    )
    print(stats.summary())
"""

# repro.core first: leaf modules (graph.csr, gpu.calibration, ...) import
# the unit aliases from repro.core.units, and resolving that submodule while
# repro.core's own __init__ is mid-flight is safe only when core initiates
# the import chain.
from repro.core import EngineConfig, LightTrafficEngine, RunStats, run_walks
from repro.graph import (
    CSRGraph,
    PartitionedGraph,
    from_adjacency,
    from_edges,
    partition_by_range,
)
from repro.graph import generators
from repro.algorithms import (
    Node2Vec,
    PageRank,
    PersonalizedPageRank,
    UniformSampling,
)
from repro.gpu import A100, RTX3090, DeviceSpec, PCIE3, PCIE4

__version__ = "1.0.0"

__all__ = [
    "CSRGraph",
    "PartitionedGraph",
    "from_edges",
    "from_adjacency",
    "partition_by_range",
    "generators",
    "UniformSampling",
    "PageRank",
    "PersonalizedPageRank",
    "Node2Vec",
    "EngineConfig",
    "LightTrafficEngine",
    "RunStats",
    "run_walks",
    "DeviceSpec",
    "RTX3090",
    "A100",
    "PCIE3",
    "PCIE4",
    "__version__",
]
