"""Multi-device sharding substrate: device shards, topologies, P2P mesh.

The paper's pipeline assumes one GPU.  This module supplies the substrate
for sharding the range-partitioned graph across ``N`` simulated devices:

* :class:`ClusterDeviceSpec` — per-device capability scales (compute
  rate, memory capacity, link bandwidth) so a cluster may be
  *heterogeneous*; the all-ones default reproduces the historical
  uniform model bit-for-bit.
* :func:`assign_partitions` — contiguous partition ranges balanced by
  CSR bytes, optionally weighted by per-device capability.  This is the
  one assignment implementation: initial sharding, elastic rebalance and
  failure reassignment all call it (with different size/weight vectors).
* :class:`PeerLinkSpec` — an NVLink-style device-to-device cost model
  alongside :mod:`repro.gpu.pcie`.  Unlike host-link DMA, P2P traffic is
  quantized into fixed-size link packets, so small migrations pay a
  whole-packet tax on top of the per-message latency.
* :class:`PeerChannel` — one *directed* link between two shards, backed
  by a serial :class:`~repro.gpu.timeline.Stream`: concurrent migrations
  over the same channel serialize, migrations on different channels
  overlap freely.
* The :class:`Topology` protocol with :class:`AllPairsTopology` (the
  NVSwitch-like all-to-all assumption), :class:`RingTopology` (payloads
  relay hop-by-hop around the ring, routing around failed devices) and
  :class:`SwitchTopology` (every payload crosses an explicit switch
  node, serializing its uplink/downlink).
* :class:`DeviceCluster` — the shard map, per-device specs, liveness
  mask and the lazily-built channel mesh, shared by the multi-device
  engine, the elastic controller and the sanitizer.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Protocol, Sequence, Tuple

import numpy as np

from repro.core.units import Seconds
from repro.gpu.timeline import Stream

#: Category of channel-occupancy ops (channel streams carry no breakdown;
#: the migration send cost is accounted as ``CAT_WALK_MIGRATE`` on the
#: source device's evict stream — see :mod:`repro.core.stats`).
CAT_P2P = "p2p_transfer"

#: Interconnect topology names (``EngineConfig.topology``).
TOPOLOGY_ALL_PAIRS = "all-pairs"
TOPOLOGY_RING = "ring"
TOPOLOGY_SWITCH = "switch"

TOPOLOGIES = (TOPOLOGY_ALL_PAIRS, TOPOLOGY_RING, TOPOLOGY_SWITCH)


@dataclass(frozen=True)
class ClusterDeviceSpec:
    """Capability of one device shard, relative to the baseline GPU.

    The multi-device engine scales its per-shard cost model by these
    factors: ``compute_scale`` multiplies the modeled clock and memory
    bandwidth (kernel and reshuffle rates), ``memory_scale`` multiplies
    the graph-pool and walk-pool budgets, and ``link_scale`` multiplies
    the bandwidth of the device's whole I/O complex — its host
    interconnect (graph/walk DMA) and every peer channel touching it.
    All-ones (the default) is the historical homogeneous cluster,
    bit-identical to the pre-heterogeneity engine.
    """

    name: str = "gpu"
    compute_scale: float = 1.0
    memory_scale: float = 1.0
    link_scale: float = 1.0

    def __post_init__(self) -> None:
        for field_name in ("compute_scale", "memory_scale", "link_scale"):
            value = getattr(self, field_name)
            if not (value > 0):
                raise ValueError(f"{field_name} must be positive")

    @property
    def is_uniform(self) -> bool:
        """Whether the spec matches the homogeneous baseline exactly."""
        return (
            self.compute_scale == 1.0
            and self.memory_scale == 1.0
            and self.link_scale == 1.0
        )

    @property
    def assignment_weight(self) -> float:
        """Byte-share weight for heterogeneity-aware assignment.

        A bottleneck model: the walk throughput a shard sustains is
        gated by its scarcest resource — kernels by ``compute_scale``,
        pool hit rates by ``memory_scale``, migration send/receive by
        ``link_scale`` — so its fair share of the partitioned bytes is
        the minimum of the three.  Uniform specs yield 1.0, keeping the
        homogeneous assignment on the historical unweighted path.
        """
        return min(self.compute_scale, self.memory_scale, self.link_scale)

    @classmethod
    def parse(cls, text: str) -> "ClusterDeviceSpec":
        """Parse ``name:compute=2,memory=0.5,link=1`` (every part optional).

        A bare ``name`` (no ``:``) yields the uniform spec under that
        name; key shorthands ``c``/``m``/``l`` are accepted.
        """
        keys = {
            "compute": "compute_scale",
            "c": "compute_scale",
            "memory": "memory_scale",
            "m": "memory_scale",
            "link": "link_scale",
            "l": "link_scale",
        }
        name, _, spec_text = text.partition(":")
        if not _ and "=" in name:
            # "compute=2,..." with no name prefix.
            name, spec_text = "gpu", text
        kwargs: Dict[str, float] = {}
        if spec_text:
            for item in spec_text.split(","):
                key, eq, value = item.partition("=")
                key = key.strip().lower()
                if not eq or key not in keys:
                    raise ValueError(
                        f"bad device-spec item {item!r}; expected "
                        "compute=X, memory=Y or link=Z"
                    )
                kwargs[keys[key]] = float(value)
        return cls(name=name.strip() or "gpu", **kwargs)


def homogeneous_specs(num_devices: int) -> Tuple[ClusterDeviceSpec, ...]:
    """The all-ones spec tuple (the historical uniform cluster)."""
    return tuple(
        ClusterDeviceSpec(name=f"gpu{d}") for d in range(num_devices)
    )


@dataclass(frozen=True)
class PeerLinkSpec:
    """A device-to-device interconnect generation.

    Attributes
    ----------
    name:
        label, e.g. ``nvlink``.
    bandwidth:
        effective per-direction bandwidth of one channel, bytes/second.
    latency_seconds:
        fixed per-message setup latency.
    packet_bytes:
        link packet granularity; transfers are rounded up to whole
        packets (NVLink moves 16-byte flits grouped into packets, so a
        one-walk migration still occupies a full packet).
    """

    name: str
    bandwidth: float
    latency_seconds: float = 2e-6
    packet_bytes: int = 256

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if self.latency_seconds < 0:
            raise ValueError("latency must be non-negative")
        if self.packet_bytes < 1:
            raise ValueError("packet_bytes must be >= 1")

    def transfer_time(self, nbytes: int) -> Seconds:
        """Duration of one P2P message of ``nbytes`` payload."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if nbytes == 0:
            return Seconds(0.0)
        packets = math.ceil(nbytes / self.packet_bytes)
        return Seconds(
            self.latency_seconds + packets * self.packet_bytes / self.bandwidth
        )


#: NVLink-class mesh (per-direction channel bandwidth, NVSwitch topology).
NVLINK_P2P = PeerLinkSpec(name="nvlink", bandwidth=50e9)

#: P2P over the PCIe fabric: lower bandwidth, host-bridge latency.
PCIE_P2P = PeerLinkSpec(name="pcie-p2p", bandwidth=10e9, latency_seconds=8e-6)

_BY_NAME = {spec.name: spec for spec in (NVLINK_P2P, PCIE_P2P)}


def peer_link_by_name(name: str) -> PeerLinkSpec:
    """Look up a preset peer interconnect by name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown peer link {name!r}; choose from {sorted(_BY_NAME)}"
        ) from None


def available_peer_links() -> Tuple[str, ...]:
    """Names of the preset peer interconnects."""
    return tuple(sorted(_BY_NAME))


def assign_partitions(
    sizes: np.ndarray,
    num_devices: int,
    weights: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Map partitions to devices: contiguous ranges balanced by bytes.

    ``sizes[p]`` is partition ``p``'s CSR byte size (or, for elastic
    rebalance, its pending-walk load).  Returns an int64 array
    ``device_of`` with ``device_of[p]`` in ``[0, num_devices)``,
    non-decreasing (contiguous ranges), every device owning at least one
    partition.  A device advances once it has met its byte quota
    ``total * (d + 1) / num_devices``, or earlier when the remaining
    partitions are only just enough to give every remaining device one.

    ``weights`` (optional, one positive weight per device) skews the
    quotas: device ``d``'s share of the total becomes
    ``weights[d] / weights.sum()`` — a device twice as capable absorbs
    twice the bytes.  ``None`` keeps the exact uniform integer-arithmetic
    path (bit-identical to the historical assignment).  This is the
    single shared implementation used by initial sharding, elastic
    rebalance and failure reassignment.
    """
    sizes = np.asarray(sizes, dtype=np.int64)
    num_partitions = int(sizes.size)
    if num_devices < 1:
        raise ValueError("num_devices must be >= 1")
    if num_partitions < 1:
        raise ValueError("need at least one partition")
    if num_devices > num_partitions:
        raise ValueError(
            f"cannot shard {num_partitions} partition(s) across "
            f"{num_devices} devices; every device needs at least one"
        )
    quota: Optional[np.ndarray] = None
    if weights is not None:
        warr = np.asarray(weights, dtype=np.float64)
        if warr.shape != (num_devices,):
            raise ValueError("weights must provide one weight per device")
        if not (warr > 0).all():
            raise ValueError("device weights must be positive")
        # quota[d]: cumulative byte share owed to devices 0..d.
        quota = np.cumsum(warr) / float(warr.sum())
    total = int(sizes.sum())
    device_of = np.empty(num_partitions, dtype=np.int64)
    dev = 0
    acc = 0
    owned = 0
    for p in range(num_partitions):
        if dev < num_devices - 1 and owned > 0:
            devs_after = num_devices - 1 - dev
            if quota is None:
                quota_met = acc * num_devices >= total * (dev + 1)
            else:
                quota_met = acc >= total * quota[dev]
            if quota_met or (num_partitions - p) == devs_after:
                dev += 1
                owned = 0
        device_of[p] = dev
        acc += int(sizes[p])
        owned += 1
    return device_of


class PeerChannel:
    """One directed P2P channel between two cluster nodes.

    Endpoints are device ids, or (under :class:`SwitchTopology`) the
    virtual switch node.  The channel's
    :class:`~repro.gpu.timeline.Stream` serializes the transfers riding
    it; ``sent_walks`` / ``delivered_walks`` are the conservation
    counters the sanitizer audits per channel — relay channels count a
    payload on both sides when it transits.
    """

    def __init__(
        self, src: int, dst: int, spec: PeerLinkSpec, record_ops: bool = False
    ) -> None:
        if src == dst:
            raise ValueError("a peer channel links two distinct devices")
        self.src = src
        self.dst = dst
        self.spec = spec
        # No breakdown: the migration cost is accounted once, on the
        # source device's evict stream; the channel stream is pure link
        # occupancy (it serializes concurrent senders).
        self.stream = Stream(f"p2p{src}->{dst}", None, record_ops)
        self.sent_walks = 0
        self.delivered_walks = 0

    def transfer(self, nbytes: int, earliest: float) -> Tuple[float, float]:
        """Occupy the link for one migration; returns ``(start, end)``."""
        duration = self.spec.transfer_time(nbytes)
        return self.stream.schedule(duration, CAT_P2P, earliest=earliest)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<PeerChannel {self.src}->{self.dst} {self.spec.name} "
            f"sent={self.sent_walks} delivered={self.delivered_walks}>"
        )


class Topology(Protocol):
    """Interconnect shape: which channel hops carry a migration.

    ``route`` returns the directed ``(src, dst)`` channel hops a payload
    rides, in order; intermediate hop endpoints may include virtual
    nodes (ids >= the device count, see ``extra_nodes``).  Routes must
    avoid failed devices (``alive``) — virtual nodes never fail.
    """

    name: str
    #: virtual (non-device) node ids appended after the device range.
    extra_nodes: int

    def route(
        self, src: int, dst: int, alive: np.ndarray
    ) -> Tuple[Tuple[int, int], ...]: ...


class AllPairsTopology:
    """Direct channel between every device pair (NVSwitch-like mesh)."""

    name = TOPOLOGY_ALL_PAIRS
    extra_nodes = 0

    def route(
        self, src: int, dst: int, alive: np.ndarray
    ) -> Tuple[Tuple[int, int], ...]:
        return ((src, dst),)


class RingTopology:
    """Devices on a bidirectional ring; payloads relay hop-by-hop.

    The shorter arc wins (ties break clockwise, toward increasing ids);
    an arc passing through a failed device is unusable, so the payload
    takes the surviving arc.  A single failure leaves the ring a line,
    which still connects every alive pair; two failures may disconnect
    it, in which case routing raises.
    """

    name = TOPOLOGY_RING
    extra_nodes = 0

    def __init__(self, num_devices: int) -> None:
        if num_devices < 2:
            raise ValueError("a ring needs at least two devices")
        self.num_devices = num_devices

    def _arc(self, src: int, dst: int, step: int) -> List[int]:
        nodes = [src]
        node = src
        while node != dst:
            node = (node + step) % self.num_devices
            nodes.append(node)
        return nodes

    def route(
        self, src: int, dst: int, alive: np.ndarray
    ) -> Tuple[Tuple[int, int], ...]:
        clockwise = self._arc(src, dst, +1)
        counter = self._arc(src, dst, -1)
        # Shorter arc first; equal lengths break toward clockwise.
        arcs = sorted((clockwise, counter), key=len)
        if len(arcs[0]) == len(arcs[1]):
            arcs = [clockwise, counter]
        for arc in arcs:
            if all(bool(alive[node]) for node in arc[1:-1]):
                return tuple(zip(arc, arc[1:]))
        raise RuntimeError(
            f"ring topology cannot route {src}->{dst}: both arcs pass "
            f"through failed devices"
        )


class SwitchTopology:
    """All traffic crosses one explicit switch node (uplink + downlink).

    The switch is virtual node ``num_devices``; every payload occupies
    its source's uplink channel and the destination's downlink channel,
    so concurrent migrations *into* one device serialize at the switch
    even when their sources differ.
    """

    name = TOPOLOGY_SWITCH
    extra_nodes = 1

    def __init__(self, num_devices: int) -> None:
        if num_devices < 2:
            raise ValueError("a switch needs at least two devices")
        self.num_devices = num_devices

    @property
    def switch_node(self) -> int:
        return self.num_devices

    def route(
        self, src: int, dst: int, alive: np.ndarray
    ) -> Tuple[Tuple[int, int], ...]:
        return ((src, self.switch_node), (self.switch_node, dst))


def topology_by_name(name: str, num_devices: int) -> Topology:
    """Build the named interconnect topology for ``num_devices`` shards."""
    if name == TOPOLOGY_ALL_PAIRS:
        return AllPairsTopology()
    if name == TOPOLOGY_RING:
        return RingTopology(num_devices)
    if name == TOPOLOGY_SWITCH:
        return SwitchTopology(num_devices)
    raise KeyError(
        f"unknown topology {name!r}; choose from {sorted(TOPOLOGIES)}"
    )


class DeviceCluster:
    """``N`` device shards over one range-partitioned graph.

    Holds the partition owner map, per-device specs, the liveness mask
    and the directed channel mesh; the multi-device engine asks
    :meth:`route` for the channel hops of each migration, the elastic
    controller and failure path mutate ownership via :meth:`set_owners`
    / :meth:`fail_device`, and the sanitizer walks :attr:`channels` to
    audit send/receive conservation.
    """

    def __init__(
        self,
        partition_sizes: np.ndarray,
        num_devices: int,
        link: PeerLinkSpec = NVLINK_P2P,
        record_ops: bool = False,
        specs: Optional[Sequence[ClusterDeviceSpec]] = None,
        topology: Optional[Topology] = None,
        assignment_weights: Optional[np.ndarray] = None,
    ) -> None:
        self.num_devices = num_devices
        self.link = link
        self.record_ops = record_ops
        if specs is None:
            specs = homogeneous_specs(num_devices)
        if len(specs) != num_devices:
            raise ValueError(
                f"got {len(specs)} device spec(s) for {num_devices} devices"
            )
        self.specs: Tuple[ClusterDeviceSpec, ...] = tuple(specs)
        self.topology: Topology = (
            topology if topology is not None else AllPairsTopology()
        )
        #: channel endpoints may include virtual topology nodes.
        self.num_nodes = num_devices + self.topology.extra_nodes
        self.alive = np.ones(num_devices, dtype=bool)
        self.device_of = assign_partitions(
            partition_sizes, num_devices, weights=assignment_weights
        )
        self.channels: Dict[Tuple[int, int], PeerChannel] = {}

    # ------------------------------------------------------------------
    # Ownership
    # ------------------------------------------------------------------
    def owner(self, partition: int) -> int:
        """Device owning ``partition``."""
        return int(self.device_of[partition])

    def owned_mask(self, device: int) -> np.ndarray:
        """Boolean mask over partitions owned by ``device``."""
        return self.device_of == device

    def owned_partitions(self, device: int) -> np.ndarray:
        """Partition indices owned by ``device`` (ascending)."""
        return np.nonzero(self.device_of == device)[0]

    def set_owners(
        self, partitions: np.ndarray, owners: np.ndarray
    ) -> None:
        """Reassign ``partitions`` to ``owners`` (rebalance / failover)."""
        partitions = np.asarray(partitions, dtype=np.int64)
        owners = np.asarray(owners, dtype=np.int64)
        if partitions.shape != owners.shape:
            raise ValueError("partitions and owners must align")
        for dev in np.unique(owners):
            if not 0 <= dev < self.num_devices:
                raise IndexError(f"device {int(dev)} out of range")
            if not self.alive[dev]:
                raise ValueError(
                    f"cannot assign partitions to failed device {int(dev)}"
                )
        self.device_of[partitions] = owners

    # ------------------------------------------------------------------
    # Liveness
    # ------------------------------------------------------------------
    def fail_device(self, device: int) -> None:
        """Mark ``device`` failed; its partitions must be reassigned."""
        if not 0 <= device < self.num_devices:
            raise IndexError(f"device {device} out of range")
        if not self.alive[device]:
            raise ValueError(f"device {device} already failed")
        if int(self.alive.sum()) <= 1:
            raise RuntimeError(
                "cannot fail the last alive device; no shard could "
                "recover its walks"
            )
        self.alive[device] = False

    def alive_devices(self) -> np.ndarray:
        """Ids of the devices still alive (ascending)."""
        return np.nonzero(self.alive)[0].astype(np.int64)

    def spec(self, device: int) -> ClusterDeviceSpec:
        """Capability spec of one device shard."""
        return self.specs[device]

    def _link_scale(self, node: int) -> float:
        """Link capability of a node (virtual switch nodes are neutral)."""
        if node >= self.num_devices:
            return 1.0
        return self.specs[node].link_scale

    # ------------------------------------------------------------------
    # Channels
    # ------------------------------------------------------------------
    def channel(self, src: int, dst: int) -> PeerChannel:
        """The directed channel ``src -> dst`` (built on first use)."""
        for dev in (src, dst):
            if not 0 <= dev < self.num_nodes:
                raise IndexError(f"device {dev} out of range")
        key = (src, dst)
        chan = self.channels.get(key)
        if chan is None:
            scale = min(self._link_scale(src), self._link_scale(dst))
            spec = self.link
            if scale != 1.0:
                # link_scale scales the link's effective transfer rate:
                # sustained bandwidth up AND per-message setup down — a
                # half-rate link is slower for small payloads too.
                spec = replace(
                    spec,
                    name=f"{spec.name}x{scale:g}",
                    bandwidth=spec.bandwidth * scale,
                    latency_seconds=spec.latency_seconds / scale,
                )
            chan = PeerChannel(src, dst, spec, self.record_ops)
            self.channels[key] = chan
        return chan

    def route(self, src: int, dst: int) -> Tuple[PeerChannel, ...]:
        """The channel hops carrying a payload ``src -> dst`` right now."""
        hops = self.topology.route(src, dst, self.alive)
        return tuple(self.channel(a, b) for a, b in hops)

    def all_streams(self) -> List[Stream]:
        """Streams of every built channel (for makespan / validation)."""
        return [chan.stream for chan in self.channels.values()]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<DeviceCluster devices={self.num_devices} "
            f"alive={int(self.alive.sum())} "
            f"partitions={self.device_of.size} link={self.link.name} "
            f"topology={self.topology.name}>"
        )
