"""Multi-device sharding substrate: device shards and the P2P mesh.

The paper's pipeline assumes one GPU.  This module supplies the substrate
for sharding the range-partitioned graph across ``N`` simulated devices:

* :func:`assign_partitions` — contiguous partition ranges, balanced by
  CSR bytes, so each shard owns one vertex interval (migration tests are
  then a single comparison against the owner map, exactly like the
  single-device partition lookup).
* :class:`PeerLinkSpec` — an NVLink-style device-to-device cost model
  alongside :mod:`repro.gpu.pcie`.  Unlike host-link DMA, P2P traffic is
  quantized into fixed-size link packets, so small migrations pay a
  whole-packet tax on top of the per-message latency.
* :class:`PeerChannel` — one *directed* link between two shards, backed
  by a serial :class:`~repro.gpu.timeline.Stream`: concurrent migrations
  over the same channel serialize, migrations on different channels
  overlap freely (an all-to-all mesh, the NVSwitch assumption).
* :class:`DeviceCluster` — the shard map plus the lazily-built channel
  mesh, shared by the multi-device engine and the sanitizer.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.core.units import Seconds
from repro.gpu.timeline import Stream

#: Category of channel-occupancy ops (channel streams carry no breakdown;
#: the migration send cost is accounted as ``CAT_WALK_MIGRATE`` on the
#: source device's evict stream — see :mod:`repro.core.stats`).
CAT_P2P = "p2p_transfer"


@dataclass(frozen=True)
class PeerLinkSpec:
    """A device-to-device interconnect generation.

    Attributes
    ----------
    name:
        label, e.g. ``nvlink``.
    bandwidth:
        effective per-direction bandwidth of one channel, bytes/second.
    latency_seconds:
        fixed per-message setup latency.
    packet_bytes:
        link packet granularity; transfers are rounded up to whole
        packets (NVLink moves 16-byte flits grouped into packets, so a
        one-walk migration still occupies a full packet).
    """

    name: str
    bandwidth: float
    latency_seconds: float = 2e-6
    packet_bytes: int = 256

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if self.latency_seconds < 0:
            raise ValueError("latency must be non-negative")
        if self.packet_bytes < 1:
            raise ValueError("packet_bytes must be >= 1")

    def transfer_time(self, nbytes: int) -> Seconds:
        """Duration of one P2P message of ``nbytes`` payload."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if nbytes == 0:
            return Seconds(0.0)
        packets = math.ceil(nbytes / self.packet_bytes)
        return Seconds(
            self.latency_seconds + packets * self.packet_bytes / self.bandwidth
        )


#: NVLink-class mesh (per-direction channel bandwidth, NVSwitch topology).
NVLINK_P2P = PeerLinkSpec(name="nvlink", bandwidth=50e9)

#: P2P over the PCIe fabric: lower bandwidth, host-bridge latency.
PCIE_P2P = PeerLinkSpec(name="pcie-p2p", bandwidth=10e9, latency_seconds=8e-6)

_BY_NAME = {spec.name: spec for spec in (NVLINK_P2P, PCIE_P2P)}


def peer_link_by_name(name: str) -> PeerLinkSpec:
    """Look up a preset peer interconnect by name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown peer link {name!r}; choose from {sorted(_BY_NAME)}"
        ) from None


def available_peer_links() -> Tuple[str, ...]:
    """Names of the preset peer interconnects."""
    return tuple(sorted(_BY_NAME))


def assign_partitions(sizes: np.ndarray, num_devices: int) -> np.ndarray:
    """Map partitions to devices: contiguous ranges balanced by bytes.

    ``sizes[p]`` is partition ``p``'s CSR byte size.  Returns an int64
    array ``device_of`` with ``device_of[p]`` in ``[0, num_devices)``,
    non-decreasing (contiguous ranges), every device owning at least one
    partition.  A device advances once it has met its byte quota
    ``total * (d + 1) / num_devices``, or earlier when the remaining
    partitions are only just enough to give every remaining device one.
    """
    sizes = np.asarray(sizes, dtype=np.int64)
    num_partitions = int(sizes.size)
    if num_devices < 1:
        raise ValueError("num_devices must be >= 1")
    if num_partitions < 1:
        raise ValueError("need at least one partition")
    if num_devices > num_partitions:
        raise ValueError(
            f"cannot shard {num_partitions} partition(s) across "
            f"{num_devices} devices; every device needs at least one"
        )
    total = int(sizes.sum())
    device_of = np.empty(num_partitions, dtype=np.int64)
    dev = 0
    acc = 0
    owned = 0
    for p in range(num_partitions):
        if dev < num_devices - 1 and owned > 0:
            devs_after = num_devices - 1 - dev
            quota_met = acc * num_devices >= total * (dev + 1)
            if quota_met or (num_partitions - p) == devs_after:
                dev += 1
                owned = 0
        device_of[p] = dev
        acc += int(sizes[p])
        owned += 1
    return device_of


class PeerChannel:
    """One directed P2P channel between two device shards.

    The channel's :class:`~repro.gpu.timeline.Stream` serializes the
    transfers riding it; ``sent_walks`` / ``delivered_walks`` are the
    conservation counters the sanitizer audits per channel.
    """

    def __init__(
        self, src: int, dst: int, spec: PeerLinkSpec, record_ops: bool = False
    ) -> None:
        if src == dst:
            raise ValueError("a peer channel links two distinct devices")
        self.src = src
        self.dst = dst
        self.spec = spec
        # No breakdown: the migration cost is accounted once, on the
        # source device's evict stream; the channel stream is pure link
        # occupancy (it serializes concurrent senders).
        self.stream = Stream(f"p2p{src}->{dst}", None, record_ops)
        self.sent_walks = 0
        self.delivered_walks = 0

    def transfer(self, nbytes: int, earliest: float) -> Tuple[float, float]:
        """Occupy the link for one migration; returns ``(start, end)``."""
        duration = self.spec.transfer_time(nbytes)
        return self.stream.schedule(duration, CAT_P2P, earliest=earliest)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<PeerChannel {self.src}->{self.dst} {self.spec.name} "
            f"sent={self.sent_walks} delivered={self.delivered_walks}>"
        )


class DeviceCluster:
    """``N`` device shards over one range-partitioned graph.

    Holds the partition owner map and the directed channel mesh; the
    multi-device engine asks :meth:`channel` for the link of each
    migration, and the sanitizer walks :attr:`channels` to audit
    send/receive conservation.
    """

    def __init__(
        self,
        partition_sizes: np.ndarray,
        num_devices: int,
        link: PeerLinkSpec = NVLINK_P2P,
        record_ops: bool = False,
    ) -> None:
        self.num_devices = num_devices
        self.link = link
        self.record_ops = record_ops
        self.device_of = assign_partitions(partition_sizes, num_devices)
        self.channels: Dict[Tuple[int, int], PeerChannel] = {}

    def owner(self, partition: int) -> int:
        """Device owning ``partition``."""
        return int(self.device_of[partition])

    def owned_mask(self, device: int) -> np.ndarray:
        """Boolean mask over partitions owned by ``device``."""
        return self.device_of == device

    def owned_partitions(self, device: int) -> np.ndarray:
        """Partition indices owned by ``device`` (ascending)."""
        return np.nonzero(self.device_of == device)[0]

    def channel(self, src: int, dst: int) -> PeerChannel:
        """The directed channel ``src -> dst`` (built on first use)."""
        for dev in (src, dst):
            if not 0 <= dev < self.num_devices:
                raise IndexError(f"device {dev} out of range")
        key = (src, dst)
        chan = self.channels.get(key)
        if chan is None:
            chan = PeerChannel(src, dst, self.link, self.record_ops)
            self.channels[key] = chan
        return chan

    def all_streams(self) -> List[Stream]:
        """Streams of every built channel (for makespan / validation)."""
        return [chan.stream for chan in self.channels.values()]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<DeviceCluster devices={self.num_devices} "
            f"partitions={self.device_of.size} link={self.link.name}>"
        )
