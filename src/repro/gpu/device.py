"""Static GPU device specifications.

Two presets mirror the paper's testbeds (§IV-A): a GeForce RTX 3090
(24 GB, PCIe 3.0 platform) and a Tesla A100 (PCIe 4.0 platform, capped to
24 GB in the paper's comparison for fairness).  Only the parameters that the
cost models consume are represented.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.units import Seconds


@dataclass(frozen=True)
class DeviceSpec:
    """Parameters of a modeled GPU.

    Attributes
    ----------
    name:
        human-readable device label.
    num_sms:
        number of streaming multiprocessors.
    cores_per_sm:
        CUDA cores per SM.
    clock_hz:
        boost clock used to convert cycle counts to seconds.
    mem_bytes:
        device memory capacity (bounds the pools).
    mem_bandwidth:
        device memory bandwidth in bytes/second.
    shared_mem_per_sm:
        programmable shared memory per SM (second-level reshuffle cache).
    l2_bytes:
        L2 cache size (drives the partition-size locality model, Fig 17).
    l1_latency_cycles / l2_latency_cycles / mem_latency_cycles:
        load-to-use latencies of the memory hierarchy (Figure 2).
    """

    name: str
    num_sms: int
    cores_per_sm: int
    clock_hz: float
    mem_bytes: int
    mem_bandwidth: float
    shared_mem_per_sm: int
    l2_bytes: int
    l1_latency_cycles: int = 20
    l2_latency_cycles: int = 200
    mem_latency_cycles: int = 400

    def __post_init__(self) -> None:
        if self.num_sms <= 0 or self.cores_per_sm <= 0:
            raise ValueError("SM/core counts must be positive")
        if self.clock_hz <= 0 or self.mem_bandwidth <= 0:
            raise ValueError("clock and bandwidth must be positive")
        if self.mem_bytes <= 0:
            raise ValueError("mem_bytes must be positive")

    @property
    def total_cores(self) -> int:
        """Total CUDA cores (sets the paper's default batch size, §III-B)."""
        return self.num_sms * self.cores_per_sm

    def cycles_to_seconds(self, cycles: float) -> Seconds:
        """Convert a cycle count to seconds at the device clock."""
        return Seconds(cycles / self.clock_hz)

    def with_memory(self, mem_bytes: int) -> "DeviceSpec":
        """Copy of this spec with a different memory capacity.

        The paper caps the A100 at 24 GB for fair comparison; benchmarks use
        this to sweep memory budgets.
        """
        return replace(self, mem_bytes=mem_bytes)


#: GeForce RTX 3090: 82 SMs x 128 cores, 24 GB GDDR6X @ ~936 GB/s.
RTX3090 = DeviceSpec(
    name="rtx3090",
    num_sms=82,
    cores_per_sm=128,
    clock_hz=1.4e9,
    mem_bytes=24 * (1 << 30),
    mem_bandwidth=936e9,
    shared_mem_per_sm=100 * 1024,
    l2_bytes=6 * (1 << 20),
)

#: Tesla A100 (40 GB variant; the paper limits it to 24 GB): 108 SMs x 64
#: FP32 cores, HBM2e @ ~1.55 TB/s, 40 MB L2.
A100 = DeviceSpec(
    name="a100",
    num_sms=108,
    cores_per_sm=64,
    clock_hz=1.41e9,
    mem_bytes=24 * (1 << 30),
    mem_bandwidth=1555e9,
    shared_mem_per_sm=164 * 1024,
    l2_bytes=40 * (1 << 20),
)
