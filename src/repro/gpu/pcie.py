"""PCIe interconnect model.

Two transfer modes, mirroring §II-A / §III-E:

* **explicit copy** (``cudaMemcpyAsync``): a contiguous DMA achieving the
  link's effective bandwidth, plus a fixed per-call latency.  The paper
  measures PCIe 3.0 at ~12 GB/s in practice (§I) and 128 MB in ~10.4 ms
  (§II-B), which the defaults reproduce.
* **zero copy** (``cudaHostAlloc`` + direct access): the GPU fetches host
  memory in cache-line units on demand; random cache-line traffic reaches
  only a fraction of link bandwidth.

PCIe is full duplex: host-to-device and device-to-host are independent
channels, which the engine exploits by putting loads and evictions on
different streams.
"""

from __future__ import annotations

from dataclasses import dataclass
import math

from repro.core.units import BytesPerSecond, Seconds
from repro.gpu.calibration import Calibration, DEFAULT_CALIBRATION


@dataclass(frozen=True)
class PCIeSpec:
    """An interconnect generation.

    Attributes
    ----------
    name:
        label, e.g. ``pcie3``.
    bandwidth:
        effective unidirectional bandwidth for large DMA, bytes/second.
    latency_seconds:
        fixed per-transfer setup latency.
    """

    name: str
    bandwidth: float
    latency_seconds: float = 10e-6

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if self.latency_seconds < 0:
            raise ValueError("latency must be non-negative")

    def explicit_copy_time(self, nbytes: int) -> Seconds:
        """Duration of a contiguous DMA of ``nbytes``."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if nbytes == 0:
            return Seconds(0.0)
        return Seconds(self.latency_seconds + nbytes / self.bandwidth)

    def zero_copy_bandwidth(
        self, calibration: Calibration = DEFAULT_CALIBRATION
    ) -> BytesPerSecond:
        """Effective bandwidth of random cache-line zero-copy reads."""
        return BytesPerSecond(
            self.bandwidth * calibration.zero_copy_bandwidth_fraction
        )

    def zero_copy_time(
        self, nbytes: int, calibration: Calibration = DEFAULT_CALIBRATION
    ) -> Seconds:
        """Duration of ``nbytes`` of random zero-copy traffic.

        Traffic is rounded up to whole cache lines; there is no per-call
        latency because accesses are issued by the kernel itself.
        """
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if nbytes == 0:
            return Seconds(0.0)
        lines = math.ceil(nbytes / calibration.cacheline_bytes)
        traffic = lines * calibration.cacheline_bytes
        return Seconds(traffic / self.zero_copy_bandwidth(calibration))


#: PCIe 3.0 x16 at the paper's measured practical bandwidth.
PCIE3 = PCIeSpec(name="pcie3", bandwidth=12e9)

#: PCIe 4.0 x16 (double the effective bandwidth).
PCIE4 = PCIeSpec(name="pcie4", bandwidth=24e9)

#: NVLink 2.0-class fast interconnect (the paper's outlook, §IV-B).
NVLINK2 = PCIeSpec(name="nvlink2", bandwidth=64e9, latency_seconds=5e-6)

_BY_NAME = {spec.name: spec for spec in (PCIE3, PCIE4, NVLINK2)}


def interconnect_by_name(name: str) -> PCIeSpec:
    """Look up a preset interconnect by name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown interconnect {name!r}; choose from {sorted(_BY_NAME)}"
        ) from None
